#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::eval {

double MatchResult::accuracy() const {
    return true_blinks == 0
               ? 1.0
               : static_cast<double>(matched) /
                     static_cast<double>(true_blinks);
}

double MatchResult::precision() const {
    return detected == 0 ? 1.0
                         : static_cast<double>(matched) /
                               static_cast<double>(detected);
}

double MatchResult::f1() const {
    const double r = accuracy();
    const double p = precision();
    return (r + p) > 0.0 ? 2.0 * r * p / (r + p) : 0.0;
}

MatchResult match_blinks(std::span<const physio::BlinkEvent> truth,
                         std::span<const core::DetectedBlink> detected,
                         Seconds tolerance_s) {
    BR_EXPECTS(tolerance_s > 0.0);
    MatchResult result;
    result.true_blinks = truth.size();
    result.detected = detected.size();
    result.truth_hit.assign(truth.size(), false);

    std::vector<bool> used(detected.size(), false);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const Seconds target = truth[i].mid_s();
        double best_dist = tolerance_s;
        std::ptrdiff_t best = -1;
        for (std::size_t j = 0; j < detected.size(); ++j) {
            if (used[j]) continue;
            const double dist = std::abs(detected[j].peak_s - target);
            if (dist <= best_dist) {
                best_dist = dist;
                best = static_cast<std::ptrdiff_t>(j);
            }
        }
        if (best >= 0) {
            used[static_cast<std::size_t>(best)] = true;
            result.truth_hit[i] = true;
            ++result.matched;
        }
    }
    return result;
}

MissRunStats miss_run_stats(const std::vector<bool>& truth_hit) {
    MissRunStats stats;
    if (truth_hit.empty()) return stats;

    std::size_t runs1 = 0, runs2 = 0, runs3 = 0;
    std::size_t i = 0;
    const std::size_t n = truth_hit.size();
    while (i < n) {
        if (truth_hit[i]) {
            ++i;
            continue;
        }
        std::size_t run = 0;
        while (i < n && !truth_hit[i]) {
            ++run;
            ++i;
        }
        if (run == 1) ++runs1;
        else if (run == 2) ++runs2;
        else ++runs3;  // three or more, reported in the >=3 bucket
    }
    const double total = static_cast<double>(n);
    stats.pct_run1 = 100.0 * static_cast<double>(runs1) / total;
    stats.pct_run2 = 100.0 * static_cast<double>(runs2) / total;
    stats.pct_run3 = 100.0 * static_cast<double>(runs3) / total;
    return stats;
}

}  // namespace blinkradar::eval
