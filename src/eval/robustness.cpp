#include "eval/robustness.hpp"

#include <array>
#include <cmath>
#include <exception>
#include <fstream>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace blinkradar::eval {

const char* to_string(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::kNone: return "none";
        case FaultKind::kDrop: return "frame_drop";
        case FaultKind::kDuplicate: return "frame_duplicate";
        case FaultKind::kJitter: return "timestamp_jitter";
        case FaultKind::kSaturation: return "iq_saturation";
        case FaultKind::kDeadBins: return "dead_bins";
        case FaultKind::kGainDrift: return "gain_drift";
        case FaultKind::kInterference: return "interference_burst";
        case FaultKind::kNanCorruption: return "nan_corruption";
        case FaultKind::kTruncate: return "short_frame";
        case FaultKind::kDropPlusJitter: return "drop_plus_jitter";
    }
    return "?";
}

std::span<const FaultKind> all_fault_kinds() noexcept {
    static constexpr std::array<FaultKind, 11> kinds = {
        FaultKind::kNone,          FaultKind::kDrop,
        FaultKind::kDuplicate,     FaultKind::kJitter,
        FaultKind::kSaturation,    FaultKind::kDeadBins,
        FaultKind::kGainDrift,     FaultKind::kInterference,
        FaultKind::kNanCorruption, FaultKind::kTruncate,
        FaultKind::kDropPlusJitter};
    return kinds;
}

radar::FaultInjectorConfig make_fault_config(
    FaultKind kind, double rate, const radar::RadarConfig& radar) {
    BR_EXPECTS(rate >= 0.0);
    radar::FaultInjectorConfig config;
    switch (kind) {
        case FaultKind::kNone:
            break;
        case FaultKind::kDrop:
            config.drop_rate = rate;
            break;
        case FaultKind::kDuplicate:
            config.duplicate_rate = rate;
            break;
        case FaultKind::kJitter:
            config.timestamp_jitter_std_s = rate * radar.frame_period_s;
            break;
        case FaultKind::kSaturation:
            config.saturation_rate = rate;
            break;
        case FaultKind::kDeadBins:
            config.dead_bin_count = static_cast<std::size_t>(
                std::round(rate * static_cast<double>(radar.n_bins())));
            break;
        case FaultKind::kGainDrift:
            config.gain_drift_amplitude = rate;
            break;
        case FaultKind::kInterference:
            config.interference_rate = rate;
            break;
        case FaultKind::kNanCorruption:
            config.nan_rate = rate;
            break;
        case FaultKind::kTruncate:
            config.truncate_rate = rate;
            break;
        case FaultKind::kDropPlusJitter:
            // The acceptance schedule: rate% drops plus quarter-period
            // timestamp jitter on every surviving frame.
            config.drop_rate = rate;
            config.timestamp_jitter_std_s = 0.25 * radar.frame_period_s;
            break;
    }
    return config;
}

namespace {

bool is_lost(core::HealthState h) {
    return h == core::HealthState::kSignalLost ||
           h == core::HealthState::kRecovering;
}

}  // namespace

RobustnessSession run_robust_session(const sim::ScenarioConfig& scenario,
                                     FaultKind kind, double rate,
                                     const core::PipelineConfig& pipeline) {
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    radar::FaultInjector injector(
        make_fault_config(kind, rate, session.radar),
        scenario.seed * 1000003 + 17);
    const radar::FrameSeries impaired = injector.apply(session.frames);

    RobustnessSession out;
    core::BlinkRadarPipeline pipe(session.radar, pipeline);
    core::HealthState prev = core::HealthState::kOk;
    double episode_start_s = 0.0;
    bool in_episode = false;
    try {
        for (const radar::RadarFrame& frame : impaired) {
            const core::FrameResult r = pipe.process(frame);
            ++out.frames_processed;
            if (!std::isfinite(r.waveform_value)) out.finite_outputs = false;
            if (r.health == core::HealthState::kDegraded)
                ++out.degraded_frames;
            if (is_lost(r.health)) ++out.lost_frames;
            if (r.health != prev) {
                ++out.health_transitions;
                if (!in_episode && is_lost(r.health)) {
                    in_episode = true;
                    episode_start_s = frame.timestamp_s;
                } else if (in_episode && r.health == core::HealthState::kOk) {
                    in_episode = false;
                    ++out.recovery_episodes;
                    out.total_recovery_s +=
                        frame.timestamp_s - episode_start_s;
                }
                prev = r.health;
            }
        }
        out.completed = true;
    } catch (const std::exception& e) {
        out.completed = false;
        out.error = e.what();
    }
    out.match = match_blinks(session.truth.blinks, pipe.blinks());
    out.guard = pipe.guard_stats();
    out.faults = injector.stats();
    return out;
}

RobustnessPoint run_robustness_point(
    std::span<const sim::ScenarioConfig> scenarios, FaultKind kind,
    double rate, const core::PipelineConfig& pipeline) {
    BR_EXPECTS(!scenarios.empty());
    const std::vector<RobustnessSession> sessions =
        ThreadPool::shared().parallel_map(scenarios.size(), [&](std::size_t i) {
            return run_robust_session(scenarios[i], kind, rate, pipeline);
        });

    RobustnessPoint point;
    point.kind = kind;
    point.rate = rate;
    std::size_t true_blinks = 0, detected = 0, matched = 0;
    std::size_t completed = 0, finite = 0;
    for (const RobustnessSession& s : sessions) {
        true_blinks += s.match.true_blinks;
        detected += s.match.detected;
        matched += s.match.matched;
        completed += s.completed ? 1 : 0;
        finite += s.finite_outputs ? 1 : 0;
        point.recovery_episodes += s.recovery_episodes;
        point.mean_recovery_s += s.total_recovery_s;
        point.degraded_frames += s.degraded_frames;
        point.lost_frames += s.lost_frames;
        point.frames_quarantined += s.guard.frames_quarantined;
        point.samples_repaired += s.guard.samples_repaired;
        point.frames_bridged += s.guard.frames_bridged;
        point.signal_lost_events += s.guard.signal_lost_events;
        point.warm_restarts += s.guard.warm_restarts;
    }
    const auto n = static_cast<double>(sessions.size());
    point.recall = true_blinks == 0
                       ? 1.0
                       : static_cast<double>(matched) /
                             static_cast<double>(true_blinks);
    point.precision = detected == 0 ? 1.0
                                    : static_cast<double>(matched) /
                                          static_cast<double>(detected);
    point.f1 = point.precision + point.recall == 0.0
                   ? 0.0
                   : 2.0 * point.precision * point.recall /
                         (point.precision + point.recall);
    point.completed_fraction = static_cast<double>(completed) / n;
    point.finite_fraction = static_cast<double>(finite) / n;
    point.mean_recovery_s =
        point.recovery_episodes == 0
            ? 0.0
            : point.mean_recovery_s /
                  static_cast<double>(point.recovery_episodes);
    return point;
}

std::vector<FaultSweepSpec> default_robustness_sweep() {
    return {
        {FaultKind::kNone, {0.0}},
        {FaultKind::kDrop, {0.02, 0.05, 0.10}},
        {FaultKind::kDuplicate, {0.02, 0.05}},
        {FaultKind::kJitter, {0.10, 0.30}},
        {FaultKind::kSaturation, {0.05, 0.20}},
        {FaultKind::kDeadBins, {0.05, 0.15}},
        {FaultKind::kGainDrift, {0.10, 0.30}},
        {FaultKind::kInterference, {0.01, 0.05}},
        {FaultKind::kNanCorruption, {0.02, 0.10}},
        {FaultKind::kTruncate, {0.02, 0.10}},
        {FaultKind::kDropPlusJitter, {0.05}},
    };
}

std::vector<RobustnessPoint> run_robustness_sweep(
    std::span<const sim::ScenarioConfig> scenarios,
    std::span<const FaultSweepSpec> specs,
    const core::PipelineConfig& pipeline) {
    std::vector<RobustnessPoint> points;
    for (const FaultSweepSpec& spec : specs)
        for (const double rate : spec.rates)
            points.push_back(
                run_robustness_point(scenarios, spec.kind, rate, pipeline));
    return points;
}

void write_robustness_json(const std::string& path,
                           std::span<const RobustnessPoint> points,
                           std::size_t scenarios_per_point) {
    std::ofstream os(path);
    BR_EXPECTS(os.good());
    os << "{\n"
       << "  \"schema\": \"blinkradar-robustness-v1\",\n"
       << "  \"scenarios_per_point\": " << scenarios_per_point << ",\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const RobustnessPoint& p = points[i];
        os << "    {\"fault\": \"" << to_string(p.kind) << "\""
           << ", \"rate\": " << p.rate
           << ", \"precision\": " << p.precision
           << ", \"recall\": " << p.recall
           << ", \"f1\": " << p.f1
           << ", \"completed_fraction\": " << p.completed_fraction
           << ", \"finite_fraction\": " << p.finite_fraction
           << ", \"mean_recovery_s\": " << p.mean_recovery_s
           << ", \"recovery_episodes\": " << p.recovery_episodes
           << ", \"degraded_frames\": " << p.degraded_frames
           << ", \"lost_frames\": " << p.lost_frames
           << ", \"frames_quarantined\": " << p.frames_quarantined
           << ", \"samples_repaired\": " << p.samples_repaired
           << ", \"frames_bridged\": " << p.frames_bridged
           << ", \"signal_lost_events\": " << p.signal_lost_events
           << ", \"warm_restarts\": " << p.warm_restarts << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    BR_ENSURES(os.good());
}

}  // namespace blinkradar::eval
