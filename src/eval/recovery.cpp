#include "eval/recovery.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "common/thread_pool.hpp"

namespace blinkradar::eval {

std::vector<std::size_t> crash_schedule(const sim::ScenarioConfig& scenario,
                                        std::size_t n_frames,
                                        const CrashDrillSpec& drill) {
    BR_EXPECTS(n_frames >= 8);
    // One independent stream per session, forked so adding draws
    // elsewhere never shifts the schedule (the FaultInjector discipline).
    Rng rng(Rng(scenario.seed * 1000003 + drill.seed * 97 + 29).fork());
    // Crash only after the cold-start window has had a chance to finish:
    // a crash during cold start exercises nothing the cold start itself
    // does not already cover.
    const std::size_t lo = std::min(n_frames - 1, n_frames / 8);
    std::vector<std::size_t> schedule;
    while (schedule.size() < drill.crashes_per_session) {
        const auto idx = static_cast<std::size_t>(rng.uniform_int(
            static_cast<int>(lo), static_cast<int>(n_frames - 1)));
        if (std::find(schedule.begin(), schedule.end(), idx) ==
            schedule.end())
            schedule.push_back(idx);
    }
    std::sort(schedule.begin(), schedule.end());
    return schedule;
}

RecoverySession run_recovery_session(const sim::ScenarioConfig& scenario,
                                     std::size_t snapshot_interval_frames,
                                     const CrashDrillSpec& drill,
                                     const core::PipelineConfig& pipeline) {
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    const std::vector<std::size_t> schedule =
        crash_schedule(scenario, session.frames.size(), drill);

    core::SupervisorConfig sup_config;
    sup_config.snapshot_interval_frames = snapshot_interval_frames;
    sup_config.seed = scenario.seed * 31 + drill.seed;
    sup_config.stall_timeout_s = 0.0;  // no wall-clock in a batch replay
    // Batch drills measure recovery policy, not post-mortems: the flight
    // recorder's raw-frame ring is dead weight across thousands of
    // simulated crashes, so leave the black box off here.
    sup_config.flight_recorder = false;
    core::Supervisor supervisor(session.radar, pipeline, sup_config);

    RecoverySession out;
    std::size_t next_crash = 0;
    std::size_t throws_remaining = 0;
    supervisor.set_fault_hook([&](std::uint64_t frame_index) {
        if (throws_remaining == 0 && next_crash < schedule.size() &&
            frame_index == schedule[next_crash]) {
            ++next_crash;
            ++out.crashes_triggered;
            throws_remaining = drill.attempts_per_crash;
        }
        if (throws_remaining > 0) {
            --throws_remaining;
            throw std::runtime_error("crash drill: injected fault");
        }
    });

    bool down = false;
    double down_start_s = 0.0;
    try {
        for (const radar::RadarFrame& frame : session.frames) {
            const std::size_t crashes_before = out.crashes_triggered;
            const core::FrameResult r = supervisor.process(frame);
            ++out.frames_processed;
            if (out.crashes_triggered > crashes_before && !down) {
                down = true;
                down_start_s = frame.timestamp_s;
            }
            const bool live = !r.cold_start &&
                              r.quality != core::FrameVerdict::kQuarantined;
            if (down && live) {
                down = false;
                const double downtime = frame.timestamp_s - down_start_s;
                out.total_downtime_s += downtime;
                out.max_downtime_s = std::max(out.max_downtime_s, downtime);
                ++out.recovered_crashes;
            }
        }
        out.completed = true;
    } catch (const std::exception& e) {
        out.completed = false;
        out.error = e.what();
    }
    out.match =
        match_blinks(session.truth.blinks, supervisor.pipeline().blinks());
    out.supervisor = supervisor.stats();
    return out;
}

double run_recovery_baseline(std::span<const sim::ScenarioConfig> scenarios,
                             const core::PipelineConfig& pipeline) {
    BR_EXPECTS(!scenarios.empty());
    const std::vector<MatchResult> matches =
        ThreadPool::shared().parallel_map(scenarios.size(), [&](std::size_t i) {
            const sim::SimulatedSession session =
                sim::simulate_session(scenarios[i]);
            const core::BatchResult result =
                core::detect_blinks(session.frames, session.radar, pipeline);
            return match_blinks(session.truth.blinks, result.blinks);
        });
    std::size_t true_blinks = 0, detected = 0, matched = 0;
    for (const MatchResult& m : matches) {
        true_blinks += m.true_blinks;
        detected += m.detected;
        matched += m.matched;
    }
    const double recall = true_blinks == 0 ? 1.0
                                           : static_cast<double>(matched) /
                                                 static_cast<double>(true_blinks);
    const double precision = detected == 0 ? 1.0
                                           : static_cast<double>(matched) /
                                                 static_cast<double>(detected);
    return precision + recall == 0.0
               ? 0.0
               : 2.0 * precision * recall / (precision + recall);
}

RecoveryPoint run_recovery_point(std::span<const sim::ScenarioConfig> scenarios,
                                 std::size_t snapshot_interval_frames,
                                 const CrashDrillSpec& drill,
                                 double baseline_f1,
                                 const core::PipelineConfig& pipeline) {
    BR_EXPECTS(!scenarios.empty());
    const std::vector<RecoverySession> sessions =
        ThreadPool::shared().parallel_map(scenarios.size(), [&](std::size_t i) {
            return run_recovery_session(scenarios[i],
                                        snapshot_interval_frames, drill,
                                        pipeline);
        });

    RecoveryPoint point;
    point.snapshot_interval_frames = snapshot_interval_frames;
    std::size_t true_blinks = 0, detected = 0, matched = 0, completed = 0;
    double total_downtime = 0.0;
    for (const RecoverySession& s : sessions) {
        true_blinks += s.match.true_blinks;
        detected += s.match.detected;
        matched += s.match.matched;
        completed += s.completed ? 1 : 0;
        point.crashes += s.crashes_triggered;
        point.recovered_crashes += s.recovered_crashes;
        total_downtime += s.total_downtime_s;
        point.max_downtime_s = std::max(point.max_downtime_s, s.max_downtime_s);
        point.warm_restores += s.supervisor.warm_restores;
        point.cold_restarts += s.supervisor.cold_restarts;
        point.snapshots += s.supervisor.snapshots;
        point.restore_failures += s.supervisor.restore_failures;
        point.backoff_skipped += s.supervisor.backoff_skipped;
    }
    point.recall = true_blinks == 0 ? 1.0
                                    : static_cast<double>(matched) /
                                          static_cast<double>(true_blinks);
    point.precision = detected == 0 ? 1.0
                                    : static_cast<double>(matched) /
                                          static_cast<double>(detected);
    point.f1 = point.precision + point.recall == 0.0
                   ? 0.0
                   : 2.0 * point.precision * point.recall /
                         (point.precision + point.recall);
    point.f1_loss = baseline_f1 - point.f1;
    point.mean_downtime_s =
        point.recovered_crashes == 0
            ? 0.0
            : total_downtime / static_cast<double>(point.recovered_crashes);
    point.completed_fraction =
        static_cast<double>(completed) / static_cast<double>(sessions.size());
    return point;
}

std::vector<std::size_t> default_recovery_intervals() {
    // 0 = no checkpoints (every crash cold-restarts), then 2 s / 10 s /
    // 40 s cadences at the 25 Hz default frame rate.
    return {0, 50, 250, 1000};
}

std::vector<RecoveryPoint> run_recovery_sweep(
    std::span<const sim::ScenarioConfig> scenarios,
    std::span<const std::size_t> intervals, const CrashDrillSpec& drill,
    const core::PipelineConfig& pipeline) {
    const double baseline_f1 = run_recovery_baseline(scenarios, pipeline);
    std::vector<RecoveryPoint> points;
    for (const std::size_t interval : intervals)
        points.push_back(run_recovery_point(scenarios, interval, drill,
                                            baseline_f1, pipeline));
    return points;
}

void write_recovery_json(const std::string& path,
                         std::span<const RecoveryPoint> points,
                         double baseline_f1, const CrashDrillSpec& drill,
                         std::size_t scenarios_per_point) {
    std::ofstream os(path);
    BR_EXPECTS(os.good());
    os << "{\n"
       << "  \"schema\": \"blinkradar-recovery-v1\",\n"
       << "  \"scenarios_per_point\": " << scenarios_per_point << ",\n"
       << "  \"crashes_per_session\": " << drill.crashes_per_session << ",\n"
       << "  \"attempts_per_crash\": " << drill.attempts_per_crash << ",\n"
       << "  \"drill_seed\": " << drill.seed << ",\n"
       << "  \"baseline_f1\": " << baseline_f1 << ",\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const RecoveryPoint& p = points[i];
        os << "    {\"snapshot_interval_frames\": "
           << p.snapshot_interval_frames
           << ", \"precision\": " << p.precision
           << ", \"recall\": " << p.recall
           << ", \"f1\": " << p.f1
           << ", \"f1_loss\": " << p.f1_loss
           << ", \"mean_downtime_s\": " << p.mean_downtime_s
           << ", \"max_downtime_s\": " << p.max_downtime_s
           << ", \"recovered_crashes\": " << p.recovered_crashes
           << ", \"crashes\": " << p.crashes
           << ", \"warm_restores\": " << p.warm_restores
           << ", \"cold_restarts\": " << p.cold_restarts
           << ", \"snapshots\": " << p.snapshots
           << ", \"restore_failures\": " << p.restore_failures
           << ", \"backoff_skipped_frames\": " << p.backoff_skipped
           << ", \"completed_fraction\": " << p.completed_fraction << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    BR_ENSURES(os.good());
}

}  // namespace blinkradar::eval
