// Experiment runners shared by the benches: run sessions, score them, and
// sweep parameters. These encode the paper's evaluation protocol (train
// on awake+drowsy data per participant, test on simulated drives).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/drowsy.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_config.hpp"
#include "eval/metrics.hpp"
#include "sim/scenario.hpp"

namespace blinkradar::eval {

/// Result of one blink-detection session.
struct SessionScore {
    MatchResult match;
    std::size_t restarts = 0;
    double accuracy = 0.0;
};

/// Simulate a session and run the pipeline over it. `metrics` (optional)
/// instruments the pipeline run (see BlinkRadarPipeline's ctor).
SessionScore run_blink_session(const sim::ScenarioConfig& scenario,
                               const core::PipelineConfig& pipeline = {},
                               obs::MetricsRegistry* metrics = nullptr);

/// Batch engine: score every scenario, fanned out over the shared thread
/// pool. Sessions are independent (each simulates from its own
/// scenario.seed), so results are bit-identical to calling
/// run_blink_session serially in order — for any thread count. Result i
/// corresponds to scenarios[i].
///
/// `rollup` (optional) aggregates observability metrics across the whole
/// batch: each session runs against its own private registry (no locks on
/// the frame path) and the per-session registries are merged into
/// `rollup` in session-index order after the fan-out, so the aggregate is
/// deterministic for any thread count.
std::vector<SessionScore> run_sessions(
    std::span<const sim::ScenarioConfig> scenarios,
    const core::PipelineConfig& pipeline = {},
    obs::MetricsRegistry* rollup = nullptr);

/// Batch engine, repetition form: run `repetitions` sessions with derived
/// seeds (seed, seed+1, ...). Deterministic as above.
std::vector<SessionScore> run_sessions(const sim::ScenarioConfig& scenario,
                                       std::size_t repetitions,
                                       const core::PipelineConfig& pipeline = {},
                                       obs::MetricsRegistry* rollup = nullptr);

/// Run `repetitions` sessions with different seeds (seed, seed+1, ...)
/// and return the per-session accuracies.
std::vector<double> repeated_accuracies(const sim::ScenarioConfig& scenario,
                                        std::size_t repetitions,
                                        const core::PipelineConfig& pipeline = {});

/// One drowsy-driving evaluation for a participant: train the per-user
/// rate model on labelled awake/drowsy windows, then classify held-out
/// windows of both kinds. Returns the fraction of windows classified
/// correctly.
struct DrowsyScore {
    double accuracy = 0.0;          ///< correct windows / total windows
    double threshold_rate = 0.0;    ///< learned per-user threshold
    std::size_t windows = 0;
};

/// Options for the drowsy experiment.
struct DrowsyExperimentOptions {
    Seconds train_minutes_per_class = 3.0;  ///< training data per class
    Seconds test_minutes_per_class = 4.0;   ///< held-out data per class
    Seconds window_s = 60.0;                ///< classification window
    /// Only blinks at least this long count towards the window rate.
    /// Drowsy closures exceed 400 ms (paper Section II); with LEVD's
    /// measurement spread the equivalent detected-duration cut is ~0.75 s.
    /// Set to 0 for the raw-rate variant.
    Seconds long_blink_min_s = 0.75;
    /// Minimum detection confidence for a blink to count towards the
    /// rate; threshold-grazing artifacts score ~1, real blinks several.
    double min_strength = 0.0;
};

DrowsyScore run_drowsy_experiment(sim::ScenarioConfig scenario,
                                  const DrowsyExperimentOptions& options = {},
                                  const core::PipelineConfig& pipeline = {});

/// Batch engine for the drowsy protocol: one experiment per scenario,
/// fanned out over the shared thread pool (and each experiment's four
/// train/test recordings fan out in turn). Bit-identical to the serial
/// loop; result i corresponds to scenarios[i].
std::vector<DrowsyScore> run_drowsy_experiments(
    std::span<const sim::ScenarioConfig> scenarios,
    const DrowsyExperimentOptions& options = {},
    const core::PipelineConfig& pipeline = {});

/// Accumulate per-truth-blink hit flags across many sessions (for the
/// Fig. 15a missed-run statistics).
std::vector<bool> accumulate_truth_hits(const sim::ScenarioConfig& scenario,
                                        std::size_t repetitions,
                                        const core::PipelineConfig& pipeline = {});

}  // namespace blinkradar::eval
