#include "eval/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"

namespace blinkradar::eval {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    BR_EXPECTS(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
    BR_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void AsciiTable::add_row(const std::string& label,
                         const std::vector<double>& values, int precision) {
    BR_EXPECTS(values.size() + 1 == headers_.size());
    std::vector<std::string> cells;
    cells.push_back(label);
    for (const double v : values) cells.push_back(fmt(v, precision));
    add_row(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << std::setw(static_cast<int>(widths[c])) << cells[c]
               << ' ';
        }
        os << "|\n";
    };
    print_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << "|-" << std::string(widths[c], '-') << '-';
    os << "|\n";
    for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void banner(std::ostream& os, const std::string& title) {
    os << "\n== " << title << " ==\n";
}

}  // namespace blinkradar::eval
