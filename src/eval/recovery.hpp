// Crash-drill experiment: detection accuracy and recovery time under a
// supervised pipeline with periodic checkpointing.
//
// Closes the loop on the state-snapshot subsystem the way the
// robustness sweep closes it on the FrameGuard: each sweep point runs a
// batch of simulated sessions through core::Supervisor with a
// deterministic crash schedule (all randomness forked from the scenario
// seed, mirroring radar::FaultInjector's discipline), at one
// autosnapshot interval per point. The report compares blink F1 against
// the crash-free baseline and measures detection downtime per crash, so
// BENCH_recovery.json answers the operational question directly: how
// much detection do we lose per crash at a given checkpoint cadence?
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/supervisor.hpp"
#include "eval/metrics.hpp"
#include "sim/scenario.hpp"

namespace blinkradar::eval {

/// Deterministic crash schedule for one session.
struct CrashDrillSpec {
    /// Crashes injected per session (distinct frames, uniformly placed
    /// after the cold-start window).
    std::size_t crashes_per_session = 3;

    /// Consecutive processing attempts that fault at each crash frame.
    /// 1 exercises only the in-place retry; the default 2 exhausts the
    /// retry budget and drives the ladder into a warm restore, which is
    /// what the drill is for; larger values push into backoff and cold
    /// restarts.
    std::size_t attempts_per_crash = 2;

    /// Schedule seed, combined with each scenario's seed (forked) so a
    /// drill replays identically and sessions stay independent.
    std::uint64_t seed = 7;
};

/// One supervised session under one crash schedule.
struct RecoverySession {
    MatchResult match;
    core::SupervisorStats supervisor;
    std::size_t frames_processed = 0;
    std::size_t crashes_triggered = 0;
    /// Detection downtime: per crash, the stream time from the crash
    /// frame to the first frame whose result is live again (not
    /// quarantined, not cold-starting).
    double total_downtime_s = 0.0;
    double max_downtime_s = 0.0;
    std::size_t recovered_crashes = 0;  ///< crashes with measured downtime
    bool completed = false;
    std::string error;
};

/// Frame indices (into the session's frame series) at which the drill
/// faults, derived deterministically from (scenario seed, drill seed).
std::vector<std::size_t> crash_schedule(const sim::ScenarioConfig& scenario,
                                        std::size_t n_frames,
                                        const CrashDrillSpec& drill);

/// Run one scenario under supervision with the drill's crash schedule.
/// `snapshot_interval_frames` = 0 disables checkpointing (every crash
/// then escalates to a cold restart — the "no snapshots" control).
RecoverySession run_recovery_session(
    const sim::ScenarioConfig& scenario,
    std::size_t snapshot_interval_frames, const CrashDrillSpec& drill,
    const core::PipelineConfig& pipeline = {});

/// One sweep point: a batch of sessions at one snapshot interval.
struct RecoveryPoint {
    std::size_t snapshot_interval_frames = 0;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    /// Crash-free baseline F1 minus this point's F1 (the accuracy cost
    /// of the crashes at this checkpoint cadence).
    double f1_loss = 0.0;
    double mean_downtime_s = 0.0;
    double max_downtime_s = 0.0;
    std::size_t recovered_crashes = 0;
    std::uint64_t crashes = 0;
    std::uint64_t warm_restores = 0;
    std::uint64_t cold_restarts = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t restore_failures = 0;
    std::uint64_t backoff_skipped = 0;
    double completed_fraction = 0.0;
};

/// Run one point over the scenario batch (thread-pool fan-out,
/// bit-identical to the serial loop). `baseline_f1` comes from
/// run_recovery_baseline over the same scenarios.
RecoveryPoint run_recovery_point(std::span<const sim::ScenarioConfig> scenarios,
                                 std::size_t snapshot_interval_frames,
                                 const CrashDrillSpec& drill,
                                 double baseline_f1,
                                 const core::PipelineConfig& pipeline = {});

/// Crash-free F1 over the scenario batch (unsupervised pipeline).
double run_recovery_baseline(std::span<const sim::ScenarioConfig> scenarios,
                             const core::PipelineConfig& pipeline = {});

/// The default interval grid used by bench_recovery: no checkpoints,
/// then 2 s / 10 s / 40 s cadences at the 25 Hz default frame rate.
std::vector<std::size_t> default_recovery_intervals();

std::vector<RecoveryPoint> run_recovery_sweep(
    std::span<const sim::ScenarioConfig> scenarios,
    std::span<const std::size_t> intervals, const CrashDrillSpec& drill,
    const core::PipelineConfig& pipeline = {});

/// Serialise the sweep to `path` (stable hand-rolled JSON, schema
/// "blinkradar-recovery-v1").
void write_recovery_json(const std::string& path,
                         std::span<const RecoveryPoint> points,
                         double baseline_f1, const CrashDrillSpec& drill,
                         std::size_t scenarios_per_point);

}  // namespace blinkradar::eval
