#include "eval/experiment.hpp"

#include "common/contracts.hpp"

namespace blinkradar::eval {

SessionScore run_blink_session(const sim::ScenarioConfig& scenario,
                               const core::PipelineConfig& pipeline) {
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    const core::BatchResult result =
        core::detect_blinks(session.frames, session.radar, pipeline);
    SessionScore score;
    score.match = match_blinks(session.truth.blinks, result.blinks);
    score.restarts = result.restarts;
    score.accuracy = score.match.accuracy();
    return score;
}

std::vector<double> repeated_accuracies(const sim::ScenarioConfig& scenario,
                                        std::size_t repetitions,
                                        const core::PipelineConfig& pipeline) {
    BR_EXPECTS(repetitions >= 1);
    std::vector<double> accuracies;
    accuracies.reserve(repetitions);
    sim::ScenarioConfig cfg = scenario;
    for (std::size_t r = 0; r < repetitions; ++r) {
        cfg.seed = scenario.seed + r;
        accuracies.push_back(run_blink_session(cfg, pipeline).accuracy);
    }
    return accuracies;
}

namespace {

/// Detected blink rates over consecutive windows of a simulated session
/// in the given alertness state.
std::vector<double> session_window_rates(sim::ScenarioConfig scenario,
                                         physio::Alertness state,
                                         Seconds minutes, Seconds window_s,
                                         Seconds long_blink_min_s,
                                         double min_strength,
                                         std::uint64_t seed,
                                         const core::PipelineConfig& pipeline) {
    scenario.alertness = state;
    scenario.duration_s = minutes * 60.0;
    scenario.seed = seed;
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    const core::BatchResult result =
        core::detect_blinks(session.frames, session.radar, pipeline);
    return core::window_blink_rates(result.blinks, scenario.duration_s,
                                    window_s, long_blink_min_s, min_strength);
}

}  // namespace

DrowsyScore run_drowsy_experiment(sim::ScenarioConfig scenario,
                                  const DrowsyExperimentOptions& options,
                                  const core::PipelineConfig& pipeline) {
    BR_EXPECTS(options.train_minutes_per_class >= 1.0);
    BR_EXPECTS(options.test_minutes_per_class >= 1.0);

    // Training: one labelled recording per class (different seeds so the
    // test drive is new data).
    const std::vector<double> train_awake = session_window_rates(
        scenario, physio::Alertness::kAwake, options.train_minutes_per_class,
        options.window_s, options.long_blink_min_s, options.min_strength,
        scenario.seed * 7919 + 1, pipeline);
    const std::vector<double> train_drowsy = session_window_rates(
        scenario, physio::Alertness::kDrowsy, options.train_minutes_per_class,
        options.window_s, options.long_blink_min_s, options.min_strength,
        scenario.seed * 7919 + 2, pipeline);

    core::DrowsinessDetector detector;
    detector.train(train_awake, train_drowsy);

    // Test: held-out windows of both classes.
    const std::vector<double> test_awake = session_window_rates(
        scenario, physio::Alertness::kAwake, options.test_minutes_per_class,
        options.window_s, options.long_blink_min_s, options.min_strength,
        scenario.seed * 7919 + 3, pipeline);
    const std::vector<double> test_drowsy = session_window_rates(
        scenario, physio::Alertness::kDrowsy, options.test_minutes_per_class,
        options.window_s, options.long_blink_min_s, options.min_strength,
        scenario.seed * 7919 + 4, pipeline);

    std::size_t correct = 0;
    for (const double r : test_awake)
        if (detector.classify(r) == core::DrowsinessLabel::kAwake) ++correct;
    for (const double r : test_drowsy)
        if (detector.classify(r) == core::DrowsinessLabel::kDrowsy) ++correct;

    DrowsyScore score;
    score.windows = test_awake.size() + test_drowsy.size();
    score.accuracy = score.windows == 0
                         ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(score.windows);
    score.threshold_rate = detector.threshold_rate();
    return score;
}

std::vector<bool> accumulate_truth_hits(const sim::ScenarioConfig& scenario,
                                        std::size_t repetitions,
                                        const core::PipelineConfig& pipeline) {
    BR_EXPECTS(repetitions >= 1);
    std::vector<bool> hits;
    sim::ScenarioConfig cfg = scenario;
    for (std::size_t r = 0; r < repetitions; ++r) {
        cfg.seed = scenario.seed + r;
        const SessionScore score = run_blink_session(cfg, pipeline);
        hits.insert(hits.end(), score.match.truth_hit.begin(),
                    score.match.truth_hit.end());
    }
    return hits;
}

}  // namespace blinkradar::eval
