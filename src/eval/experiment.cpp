#include "eval/experiment.hpp"

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace blinkradar::eval {

SessionScore run_blink_session(const sim::ScenarioConfig& scenario,
                               const core::PipelineConfig& pipeline,
                               obs::MetricsRegistry* metrics) {
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    const core::BatchResult result =
        core::detect_blinks(session.frames, session.radar, pipeline, metrics);
    SessionScore score;
    score.match = match_blinks(session.truth.blinks, result.blinks);
    score.restarts = result.restarts;
    score.accuracy = score.match.accuracy();
    return score;
}

std::vector<SessionScore> run_sessions(
    std::span<const sim::ScenarioConfig> scenarios,
    const core::PipelineConfig& pipeline, obs::MetricsRegistry* rollup) {
    // Deterministic fan-out: task i touches only scenarios[i] (whose seed
    // fully determines the simulated session) and result slot i, so the
    // output cannot depend on thread count or scheduling. With a rollup
    // each task instruments into a private registry (slot i again) and
    // the merge below runs serially in index order, keeping the
    // aggregate deterministic too.
    struct ScoredSession {
        SessionScore score;
        obs::MetricsRegistry metrics;
    };
    std::vector<ScoredSession> scored = ThreadPool::shared().parallel_map(
        scenarios.size(), [&](std::size_t i) {
            ScoredSession s;
            s.score = run_blink_session(scenarios[i], pipeline,
                                        rollup ? &s.metrics : nullptr);
            return s;
        });
    std::vector<SessionScore> scores;
    scores.reserve(scored.size());
    for (ScoredSession& s : scored) {
        if (rollup != nullptr) rollup->merge_from(s.metrics);
        scores.push_back(std::move(s.score));
    }
    return scores;
}

std::vector<SessionScore> run_sessions(const sim::ScenarioConfig& scenario,
                                       std::size_t repetitions,
                                       const core::PipelineConfig& pipeline,
                                       obs::MetricsRegistry* rollup) {
    BR_EXPECTS(repetitions >= 1);
    std::vector<sim::ScenarioConfig> scenarios(repetitions, scenario);
    for (std::size_t r = 0; r < repetitions; ++r)
        scenarios[r].seed = scenario.seed + r;
    return run_sessions(scenarios, pipeline, rollup);
}

std::vector<double> repeated_accuracies(const sim::ScenarioConfig& scenario,
                                        std::size_t repetitions,
                                        const core::PipelineConfig& pipeline) {
    const std::vector<SessionScore> scores =
        run_sessions(scenario, repetitions, pipeline);
    std::vector<double> accuracies;
    accuracies.reserve(scores.size());
    for (const SessionScore& s : scores) accuracies.push_back(s.accuracy);
    return accuracies;
}

namespace {

/// Detected blink rates over consecutive windows of a simulated session
/// in the given alertness state.
std::vector<double> session_window_rates(sim::ScenarioConfig scenario,
                                         physio::Alertness state,
                                         Seconds minutes, Seconds window_s,
                                         Seconds long_blink_min_s,
                                         double min_strength,
                                         std::uint64_t seed,
                                         const core::PipelineConfig& pipeline) {
    scenario.alertness = state;
    scenario.duration_s = minutes * 60.0;
    scenario.seed = seed;
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    const core::BatchResult result =
        core::detect_blinks(session.frames, session.radar, pipeline);
    return core::window_blink_rates(result.blinks, scenario.duration_s,
                                    window_s, long_blink_min_s, min_strength);
}

}  // namespace

DrowsyScore run_drowsy_experiment(sim::ScenarioConfig scenario,
                                  const DrowsyExperimentOptions& options,
                                  const core::PipelineConfig& pipeline) {
    BR_EXPECTS(options.train_minutes_per_class >= 1.0);
    BR_EXPECTS(options.test_minutes_per_class >= 1.0);

    // The four recordings (train/test x awake/drowsy) are independent —
    // each simulates from its own derived seed — so they fan out over the
    // pool. parallel_for is nesting-safe, so this also holds inside
    // run_drowsy_experiments' outer fan-out.
    const struct {
        physio::Alertness state;
        Seconds minutes;
        std::uint64_t seed;
    } recordings[] = {
        {physio::Alertness::kAwake, options.train_minutes_per_class,
         scenario.seed * 7919 + 1},
        {physio::Alertness::kDrowsy, options.train_minutes_per_class,
         scenario.seed * 7919 + 2},
        {physio::Alertness::kAwake, options.test_minutes_per_class,
         scenario.seed * 7919 + 3},
        {physio::Alertness::kDrowsy, options.test_minutes_per_class,
         scenario.seed * 7919 + 4},
    };
    const std::vector<std::vector<double>> rates =
        ThreadPool::shared().parallel_map(4, [&](std::size_t i) {
            return session_window_rates(
                scenario, recordings[i].state, recordings[i].minutes,
                options.window_s, options.long_blink_min_s,
                options.min_strength, recordings[i].seed, pipeline);
        });
    const std::vector<double>& train_awake = rates[0];
    const std::vector<double>& train_drowsy = rates[1];
    const std::vector<double>& test_awake = rates[2];
    const std::vector<double>& test_drowsy = rates[3];

    core::DrowsinessDetector detector;
    detector.train(train_awake, train_drowsy);

    std::size_t correct = 0;
    for (const double r : test_awake)
        if (detector.classify(r) == core::DrowsinessLabel::kAwake) ++correct;
    for (const double r : test_drowsy)
        if (detector.classify(r) == core::DrowsinessLabel::kDrowsy) ++correct;

    DrowsyScore score;
    score.windows = test_awake.size() + test_drowsy.size();
    score.accuracy = score.windows == 0
                         ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(score.windows);
    score.threshold_rate = detector.threshold_rate();
    return score;
}

std::vector<DrowsyScore> run_drowsy_experiments(
    std::span<const sim::ScenarioConfig> scenarios,
    const DrowsyExperimentOptions& options,
    const core::PipelineConfig& pipeline) {
    return ThreadPool::shared().parallel_map(
        scenarios.size(), [&](std::size_t i) {
            return run_drowsy_experiment(scenarios[i], options, pipeline);
        });
}

std::vector<bool> accumulate_truth_hits(const sim::ScenarioConfig& scenario,
                                        std::size_t repetitions,
                                        const core::PipelineConfig& pipeline) {
    const std::vector<SessionScore> scores =
        run_sessions(scenario, repetitions, pipeline);
    std::vector<bool> hits;
    for (const SessionScore& score : scores)
        hits.insert(hits.end(), score.match.truth_hit.begin(),
                    score.match.truth_hit.end());
    return hits;
}

}  // namespace blinkradar::eval
