// Event-level detection metrics.
//
// The paper defines blink-detection accuracy as "the number of correctly
// detected eye blinks over the total number of eye blinks" (Section
// VI-B), i.e. recall against the camera ground truth. This module matches
// detected events to ground-truth events with a time tolerance, and adds
// the precision/F1 and consecutive-missed-run statistics used by
// Fig. 15a.
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/levd.hpp"
#include "physio/blink.hpp"

namespace blinkradar::eval {

/// Result of matching detections against ground truth.
struct MatchResult {
    std::size_t true_blinks = 0;     ///< ground-truth events
    std::size_t detected = 0;        ///< emitted detections
    std::size_t matched = 0;         ///< detections paired with a truth event
    std::vector<bool> truth_hit;     ///< per truth event: was it detected?

    /// Paper's accuracy: matched / true_blinks (1.0 when no truth events).
    double accuracy() const;
    /// Precision: matched / detected (1.0 when nothing was detected).
    double precision() const;
    /// Harmonic mean of accuracy (recall) and precision.
    double f1() const;
    std::size_t false_positives() const { return detected - matched; }
    std::size_t missed() const { return true_blinks - matched; }
};

/// Greedily match each truth blink to the nearest unused detection within
/// `tolerance_s` of its peak time.
MatchResult match_blinks(std::span<const physio::BlinkEvent> truth,
                         std::span<const core::DetectedBlink> detected,
                         Seconds tolerance_s = 0.4);

/// Consecutive-missed-run statistics (Fig. 15a): element k (k = 0, 1, 2)
/// is the percentage of ground-truth blinks that begin a missed run of
/// exactly k+1 consecutive blinks.
struct MissRunStats {
    double pct_run1 = 0.0;
    double pct_run2 = 0.0;
    double pct_run3 = 0.0;
};

/// Compute missed-run percentages from per-truth hit flags (use the
/// concatenation of many sessions for stable numbers).
MissRunStats miss_run_stats(const std::vector<bool>& truth_hit);

}  // namespace blinkradar::eval
