// Robustness experiment: the detection pipeline under sensor faults.
//
// Closes the loop between the sensor-side FaultInjector and the
// pipeline-side FrameGuard: each sweep point simulates a batch of
// sessions, impairs their frame streams with one fault type at one rate,
// runs the guarded pipeline, and scores blink precision/recall/F1 plus
// the health-machine behaviour (degraded/lost time, time-to-recover).
// The sweep fans out over the shared thread pool with the batch engine's
// determinism contract (every session derives all randomness from its
// scenario seed), and serialises to BENCH_robustness.json.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "radar/impairments.hpp"
#include "sim/scenario.hpp"

namespace blinkradar::eval {

/// Fault axes the sweep can exercise (one injector knob each, plus the
/// combined drop+jitter schedule from the acceptance scenario).
enum class FaultKind {
    kNone,
    kDrop,
    kDuplicate,
    kJitter,
    kSaturation,
    kDeadBins,
    kGainDrift,
    kInterference,
    kNanCorruption,
    kTruncate,
    kDropPlusJitter,
};
const char* to_string(FaultKind kind) noexcept;
std::span<const FaultKind> all_fault_kinds() noexcept;

/// Map (kind, rate) onto injector knobs. `rate` is the event probability
/// per frame for drop/duplicate/saturation/interference/NaN/truncate;
/// the timestamp-jitter std in nominal frame periods for kJitter (also
/// the jitter half of kDropPlusJitter, whose drop half uses `rate`
/// directly); the fraction of bins for kDeadBins; and the fractional
/// gain amplitude for kGainDrift.
radar::FaultInjectorConfig make_fault_config(FaultKind kind, double rate,
                                             const radar::RadarConfig& radar);

/// One scenario run under one fault schedule.
struct RobustnessSession {
    MatchResult match;
    core::GuardStats guard;
    radar::FaultStats faults;
    std::size_t frames_processed = 0;
    std::size_t degraded_frames = 0;
    std::size_t lost_frames = 0;       ///< SIGNAL_LOST or RECOVERING
    std::size_t health_transitions = 0;
    std::size_t recovery_episodes = 0; ///< loss -> OK round trips
    double total_recovery_s = 0.0;     ///< summed episode durations
    bool finite_outputs = true;        ///< every waveform_value finite
    bool completed = false;            ///< processed all frames, no throw
    std::string error;                 ///< set when completed == false
};

RobustnessSession run_robust_session(
    const sim::ScenarioConfig& scenario, FaultKind kind, double rate,
    const core::PipelineConfig& pipeline = {});

/// One sweep point aggregated over a batch of scenarios.
struct RobustnessPoint {
    FaultKind kind = FaultKind::kNone;
    double rate = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    double completed_fraction = 0.0;
    double finite_fraction = 0.0;
    double mean_recovery_s = 0.0;      ///< 0 when no episodes occurred
    std::size_t recovery_episodes = 0;
    std::uint64_t degraded_frames = 0;
    std::uint64_t lost_frames = 0;
    std::uint64_t frames_quarantined = 0;
    std::uint64_t samples_repaired = 0;
    std::uint64_t frames_bridged = 0;
    std::uint64_t signal_lost_events = 0;
    std::uint64_t warm_restarts = 0;
};

/// Run one (kind, rate) point over the scenario batch (thread-pool
/// fan-out, bit-identical to the serial loop).
RobustnessPoint run_robustness_point(
    std::span<const sim::ScenarioConfig> scenarios, FaultKind kind,
    double rate, const core::PipelineConfig& pipeline = {});

/// A fault axis and the rates to sweep it over.
struct FaultSweepSpec {
    FaultKind kind = FaultKind::kNone;
    std::vector<double> rates;
};

/// The default sweep grid used by bench_robustness_faults.
std::vector<FaultSweepSpec> default_robustness_sweep();

std::vector<RobustnessPoint> run_robustness_sweep(
    std::span<const sim::ScenarioConfig> scenarios,
    std::span<const FaultSweepSpec> specs,
    const core::PipelineConfig& pipeline = {});

/// Serialise the sweep to `path` (stable hand-rolled JSON).
void write_robustness_json(const std::string& path,
                           std::span<const RobustnessPoint> points,
                           std::size_t scenarios_per_point);

}  // namespace blinkradar::eval
