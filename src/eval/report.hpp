// ASCII report helpers for the bench harnesses: aligned tables and
// key-value blocks that print the paper's rows/series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace blinkradar::eval {

/// Simple aligned ASCII table.
class AsciiTable {
public:
    explicit AsciiTable(std::vector<std::string> headers);

    /// Add a row of preformatted cells (must match the header count).
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with the given precision.
    void add_row(const std::string& label, const std::vector<double>& values,
                 int precision = 1);

    /// Render with column alignment and a header rule.
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double value, int precision = 1);

/// Print a section banner ("== Fig. 13a: ... ==").
void banner(std::ostream& os, const std::string& title);

}  // namespace blinkradar::eval
