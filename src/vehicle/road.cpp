#include "vehicle/road.hpp"

namespace blinkradar::vehicle {

std::vector<RoadType> all_road_types() {
    return {RoadType::kSmoothHighway, RoadType::kBumpyRoad, RoadType::kUphill,
            RoadType::kDownhill,      RoadType::kIntersection,
            RoadType::kLeftTurn,      RoadType::kRightTurn,
            RoadType::kRoundabout,    RoadType::kUTurn};
}

RoadClass road_class(RoadType type) {
    switch (type) {
        case RoadType::kSmoothHighway:
            return RoadClass::kSmooth;
        case RoadType::kBumpyRoad:
            return RoadClass::kBumpy;
        case RoadType::kUphill:
        case RoadType::kDownhill:
            return RoadClass::kSlope;
        case RoadType::kIntersection:
        case RoadType::kLeftTurn:
        case RoadType::kRightTurn:
        case RoadType::kRoundabout:
        case RoadType::kUTurn:
            return RoadClass::kManeuver;
    }
    return RoadClass::kSmooth;
}

RoadVibrationSpec vibration_spec(RoadType type) {
    // Note these are *differential* radar-to-driver displacements: the
    // windshield-mounted radar and the seated driver shake together, so
    // only a small fraction of the cabin's absolute vibration appears in
    // the measured range.
    RoadVibrationSpec s;
    switch (type) {
        case RoadType::kSmoothHighway:
            s.continuous_rms_m = 0.00010;
            s.vibration_bw_hz = 3.0;
            break;
        case RoadType::kBumpyRoad:
            // On genuinely rough surfaces the driver bounces in the seat
            // suspension independently of the body shell, so the
            // differential radar-to-driver motion is several millimetres
            // continuous plus near-centimetre pothole transients.
            s.continuous_rms_m = 0.0015;
            s.vibration_bw_hz = 6.0;
            s.bump_rate_per_min = 14.0;
            s.bump_amplitude_m = 0.005;
            break;
        case RoadType::kUphill:
        case RoadType::kDownhill:
            s.continuous_rms_m = 0.00020;
            s.vibration_bw_hz = 3.5;
            s.sway_amplitude_m = 0.0012;
            s.sway_rate_hz = 0.08;
            break;
        case RoadType::kIntersection:
        case RoadType::kLeftTurn:
        case RoadType::kRightTurn:
            s.continuous_rms_m = 0.00025;
            s.vibration_bw_hz = 4.0;
            s.sway_amplitude_m = 0.0030;
            s.sway_rate_hz = 0.15;
            break;
        case RoadType::kRoundabout:
        case RoadType::kUTurn:
            s.continuous_rms_m = 0.00030;
            s.vibration_bw_hz = 4.0;
            s.sway_amplitude_m = 0.0045;
            s.sway_rate_hz = 0.2;
            break;
    }
    return s;
}

std::string to_string(RoadType type) {
    switch (type) {
        case RoadType::kSmoothHighway: return "smooth-highway";
        case RoadType::kBumpyRoad: return "bumpy-road";
        case RoadType::kUphill: return "uphill";
        case RoadType::kDownhill: return "downhill";
        case RoadType::kIntersection: return "intersection";
        case RoadType::kLeftTurn: return "left-turn";
        case RoadType::kRightTurn: return "right-turn";
        case RoadType::kRoundabout: return "roundabout";
        case RoadType::kUTurn: return "u-turn";
    }
    return "unknown";
}

std::string to_string(RoadClass cls) {
    switch (cls) {
        case RoadClass::kSmooth: return "smooth";
        case RoadClass::kBumpy: return "bumpy";
        case RoadClass::kSlope: return "slope";
        case RoadClass::kManeuver: return "maneuver";
    }
    return "unknown";
}

}  // namespace blinkradar::vehicle
