#include "vehicle/vibration.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/fir.hpp"
#include "dsp/resample.hpp"
#include "dsp/stats.hpp"

namespace blinkradar::vehicle {

VibrationModel::VibrationModel(RoadVibrationSpec spec, Seconds duration_s,
                               double sample_rate_hz, Rng rng)
    : spec_(spec), sample_rate_hz_(sample_rate_hz) {
    BR_EXPECTS(duration_s > 0.0);
    BR_EXPECTS(sample_rate_hz > 0.0);
    BR_EXPECTS(spec.continuous_rms_m >= 0.0);

    const std::size_t n =
        static_cast<std::size_t>(duration_s * sample_rate_hz) + 2;
    trajectory_.assign(n, 0.0);

    // Broadband component: white Gaussian noise low-passed to the road's
    // vibration bandwidth, then rescaled to the specified RMS.
    if (spec.continuous_rms_m > 0.0) {
        dsp::RealSignal white(n);
        for (std::size_t i = 0; i < n; ++i) white[i] = rng.normal(0.0, 1.0);
        const double nyquist = sample_rate_hz / 2.0;
        const double cutoff = std::min(spec.vibration_bw_hz, 0.9 * nyquist);
        const auto lpf = dsp::FirFilter::low_pass(
            /*order=*/32, cutoff, sample_rate_hz, dsp::WindowType::kHamming);
        dsp::RealSignal shaped = lpf.filtfilt(white);
        const double current_rms = std::sqrt(dsp::variance(shaped));
        const double gain =
            current_rms > 0.0 ? spec.continuous_rms_m / current_rms : 0.0;
        for (std::size_t i = 0; i < n; ++i)
            trajectory_[i] += shaped[i] * gain;
    }

    // Discrete bumps: damped half-sine transients at Poisson times.
    if (spec.bump_rate_per_min > 0.0) {
        const double mean_gap_s = 60.0 / spec.bump_rate_per_min;
        Seconds t = rng.exponential(mean_gap_s);
        while (t < duration_s) {
            const double amp =
                spec.bump_amplitude_m * rng.uniform(0.5, 1.5) *
                (rng.bernoulli(0.5) ? 1.0 : -1.0);
            const Seconds bump_len = rng.uniform(0.15, 0.4);
            const std::size_t start =
                static_cast<std::size_t>(t * sample_rate_hz);
            const std::size_t len = static_cast<std::size_t>(
                bump_len * sample_rate_hz) + 1;
            for (std::size_t k = 0; k < len && start + k < n; ++k) {
                const double u = static_cast<double>(k) /
                                 static_cast<double>(len);
                trajectory_[start + k] +=
                    amp * std::sin(constants::kPi * u) *
                    std::exp(-2.0 * u);
            }
            t += bump_len + rng.exponential(mean_gap_s);
        }
    }

    // Maneuver sway: slow pseudo-sinusoid with random phase drift.
    if (spec.sway_amplitude_m > 0.0 && spec.sway_rate_hz > 0.0) {
        double phase = rng.uniform(0.0, constants::kTwoPi);
        for (std::size_t i = 0; i < n; ++i) {
            trajectory_[i] += spec.sway_amplitude_m * std::sin(phase);
            const double jitter = 1.0 + rng.normal(0.0, 0.1);
            phase += constants::kTwoPi * spec.sway_rate_hz * jitter /
                     sample_rate_hz;
        }
    }
}

VibrationModel VibrationModel::for_road(RoadType type, Seconds duration_s,
                                        double sample_rate_hz, Rng rng) {
    return VibrationModel(vibration_spec(type), duration_s, sample_rate_hz,
                          rng);
}

Meters VibrationModel::displacement(Seconds t) const {
    return dsp::interp_at(trajectory_, t * sample_rate_hz_);
}

Meters VibrationModel::rms() const {
    return std::sqrt(dsp::variance(trajectory_));
}

}  // namespace blinkradar::vehicle
