// Vehicle vibration synthesis.
//
// Vibration enters the radar geometry as a *common-mode* change in the
// distance between the windshield-mounted radar and the driver's body
// (the cabin's rigid interior — seats, steering wheel — shakes with the
// radar and is barely affected). The paper's Section VIII names this the
// key road-condition challenge. The model is band-limited Gaussian noise
// plus discrete bump transients plus slow sway for maneuvers.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "vehicle/road.hpp"

namespace blinkradar::vehicle {

/// Precomputed vibration displacement trajectory for one session.
class VibrationModel {
public:
    /// \param spec     road vibration character.
    /// \param duration_s session length.
    /// \param sample_rate_hz trajectory sampling rate (the radar frame
    ///        rate is sufficient: vibration beyond Nyquist is aliased in
    ///        reality too — the radar samples at 25 fps).
    VibrationModel(RoadVibrationSpec spec, Seconds duration_s,
                   double sample_rate_hz, Rng rng);

    /// Convenience: model for a named road type.
    static VibrationModel for_road(RoadType type, Seconds duration_s,
                                   double sample_rate_hz, Rng rng);

    /// Radar-to-body radial displacement due to vibration at time t.
    Meters displacement(Seconds t) const;

    /// RMS of the generated trajectory (diagnostics / tests).
    Meters rms() const;

private:
    RoadVibrationSpec spec_;
    double sample_rate_hz_;
    std::vector<double> trajectory_;
};

}  // namespace blinkradar::vehicle
