// Road and maneuver taxonomy (paper Section VI-H).
//
// The paper collects data on nine road/maneuver types — smooth highway,
// bumpy road, uphill, downhill, intersection, left turn, right turn,
// roundabout, U-turn — and reports accuracy grouped into the four classes
// of Fig. 16b. This module defines the taxonomy and each type's vibration
// characteristics.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace blinkradar::vehicle {

/// The paper's nine road / maneuver types.
enum class RoadType {
    kSmoothHighway,
    kBumpyRoad,
    kUphill,
    kDownhill,
    kIntersection,
    kLeftTurn,
    kRightTurn,
    kRoundabout,
    kUTurn,
};

/// Fig. 16b groups the nine types into four reported classes.
enum class RoadClass {
    kSmooth = 1,     ///< smooth highway
    kBumpy = 2,      ///< bumpy road
    kSlope = 3,      ///< uphill / downhill
    kManeuver = 4,   ///< intersection, turns, roundabout, U-turn
};

/// Vibration character of a road type, consumed by VibrationModel.
struct RoadVibrationSpec {
    Meters continuous_rms_m = 0.0003;  ///< RMS of the broadband vibration
    Hertz vibration_bw_hz = 4.0;       ///< vibration low-pass bandwidth
    double bump_rate_per_min = 0.0;    ///< discrete bumps (potholes etc.)
    Meters bump_amplitude_m = 0.0;     ///< typical bump displacement
    Meters sway_amplitude_m = 0.0;     ///< slow lateral/longitudinal sway
    Hertz sway_rate_hz = 0.0;          ///< sway pseudo-frequency
};

/// All nine road types.
std::vector<RoadType> all_road_types();

/// The Fig. 16b class of a road type.
RoadClass road_class(RoadType type);

/// Vibration spec for a road type (calibrated so smooth < slope <
/// maneuver < bumpy in disturbance energy, matching the paper's ordering
/// of degradation).
RoadVibrationSpec vibration_spec(RoadType type);

/// Human-readable names.
std::string to_string(RoadType type);
std::string to_string(RoadClass cls);

}  // namespace blinkradar::vehicle
