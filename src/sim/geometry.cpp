#include "sim/geometry.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::sim {

double eye_aspect_factor(Degrees azimuth_deg, Degrees elevation_deg) {
    // Gaussian fall-off, azimuth half-width 45 deg, elevation 80 deg:
    // viewed from the side, the eye opening foreshortens and the
    // lid/cornea contrast washes out quickly; viewed from above it
    // survives longer (the paper tolerates ~30-45 deg of elevation but
    // degrades sharply past 30 deg of azimuth).
    constexpr double kAzHalf = 45.0;
    constexpr double kElHalf = 80.0;
    const double az = azimuth_deg / kAzHalf;
    const double el = elevation_deg / kElHalf;
    return std::exp(-std::log(2.0) * (az * az + el * el));
}

PathGains compute_path_gains(const physio::DriverProfile& driver,
                             const MountingGeometry& geometry,
                             const radar::AntennaPattern& antenna) {
    BR_EXPECTS(geometry.distance_m > 0.0);
    PathGains g;

    const double beam =
        antenna.two_way_gain(geometry.azimuth_deg, geometry.elevation_deg);
    const double aspect =
        eye_aspect_factor(geometry.azimuth_deg, geometry.elevation_deg);

    g.face = reflectivity::kFace * beam;
    g.eye = reflectivity::kEye * beam * aspect * driver.eye_area_factor() *
            driver.glasses_attenuation();
    // Oblique viewing also shrinks the lid/cornea contrast itself.
    g.blink_depth = reflectivity::kBlinkContrast * aspect;

    // The chest sits well below the boresight; raising the radar
    // (elevation) moves the chest even further out of the beam.
    const double chest_el =
        reflectivity::kChestElevationOffset + geometry.elevation_deg;
    g.chest = reflectivity::kChest *
              antenna.two_way_gain(geometry.azimuth_deg, chest_el);

    g.glasses_static = driver.glasses_static_reflection() * beam;
    return g;
}

}  // namespace blinkradar::sim
