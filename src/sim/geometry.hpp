// Mounting geometry: where the radar sits relative to the driver's eyes,
// and how that geometry maps to effective reflection amplitudes.
//
// The paper sweeps three geometric factors (Fig. 15b/c/d): distance
// (0.2/0.4/0.8 m), elevation (0-60 deg) and azimuth angle (0-60 deg).
// Three physical effects are modelled:
//   1. radar-equation amplitude roll-off with distance (in FrameSimulator),
//   2. the antenna beam pattern (azimuth narrower than elevation),
//   3. the aspect-dependent effective reflectivity of the eye region —
//      the eye opening is small and its reflectivity contrast collapses
//      when viewed obliquely, which is why the paper finds azimuth far
//      more punishing than elevation.
#pragma once

#include "common/units.hpp"
#include "physio/driver_profile.hpp"
#include "radar/antenna.hpp"

namespace blinkradar::sim {

/// Radar placement relative to the driver's line of sight (paper Fig. 14).
struct MountingGeometry {
    Meters distance_m = 0.4;    ///< radar-to-eye distance
    Degrees elevation_deg = 0.0; ///< above the line of sight
    Degrees azimuth_deg = 0.0;   ///< off to the side
};

/// Aspect factor of the eye region: relative blink-signal strength when
/// the eye is viewed off-axis (1 at boresight).
double eye_aspect_factor(Degrees azimuth_deg, Degrees elevation_deg);

/// Effective amplitudes for the session's propagation paths, combining
/// intrinsic reflectivity, two-way beam gain, eye aspect and glasses.
struct PathGains {
    double face = 0.0;          ///< face/cheek composite reflection
    double eye = 0.0;           ///< eye-region reflection (blink-modulated)
    double blink_depth = 0.0;   ///< fractional amplitude modulation depth
    double chest = 0.0;         ///< chest reflection (respiration carrier)
    double glasses_static = 0.0;///< lens static reflection (0 if none)
};

/// Compute the path gains for a driver at a mounting geometry.
PathGains compute_path_gains(const physio::DriverProfile& driver,
                             const MountingGeometry& geometry,
                             const radar::AntennaPattern& antenna);

/// Intrinsic (boresight, reference-range) reflectivities used by
/// compute_path_gains; exposed for tests and ablations.
namespace reflectivity {
inline constexpr double kFace = 1.2;
/// The eye region (globe + lids + inner orbit) relative to the face
/// composite in the same range bin. Calibrated so the pipeline's median
/// detection accuracy at the paper's reference geometry (0.4 m, boresight,
/// smooth road) lands at the paper's ~95 %; the geometric/road trends are
/// then emergent rather than fitted.
inline constexpr double kEye = 0.25;
inline constexpr double kChest = 2.0;
inline constexpr double kSeat = 3.0;
inline constexpr double kSteeringWheel = 2.2;
inline constexpr double kDirectLeakage = 5.0;
/// Eyelid-vs-cornea reflectivity contrast: fractional amplitude change of
/// the eye return between open and closed (paper Section IV-C). The open
/// eye is a specular "dark" reflector — the wet cornea deflects most
/// energy away from the monostatic antenna — while lid skin backscatters
/// diffusely, so covering the eye raises the return substantially.
inline constexpr double kBlinkContrast = 0.60;
/// Path-length change when the lid covers the eyeball (lid sits in front
/// of the cornea), metres.
inline constexpr double kLidPathDelta = 0.0008;
/// Elevation offset of the chest below the radar boresight when the
/// radar faces the eyes at the reference distance, degrees.
inline constexpr double kChestElevationOffset = 35.0;
}  // namespace reflectivity

}  // namespace blinkradar::sim
