#include "sim/scenario.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"
#include "physio/heartbeat.hpp"
#include "physio/respiration.hpp"
#include "vehicle/vibration.hpp"

namespace blinkradar::sim {

namespace {

/// All the precomputed trajectories one session needs. Shared (immutably)
/// by the DynamicPath closures.
struct SessionModels {
    physio::RespirationModel respiration;
    physio::HeartbeatModel heartbeat;
    physio::HeadMotionModel head;
    vehicle::VibrationModel vibration;
    std::vector<physio::BlinkEvent> blinks;
    std::vector<physio::BodyEvent> body_events;
    PathGains gains;
    MountingGeometry geometry;

    /// Radial displacement of the whole head at time t (respiration
    /// coupling + BCG + drift + posture shifts).
    Meters head_displacement(Seconds t) const {
        return respiration.head_displacement(t) +
               heartbeat.head_displacement(t) + head.displacement(t);
    }

    /// Common-mode radar-to-body displacement from vehicle vibration.
    Meters vib(Seconds t) const { return vibration.displacement(t); }
};

std::shared_ptr<const SessionModels> build_models(
    const ScenarioConfig& config, Rng& rng) {
    config.radar.validate();
    BR_EXPECTS(config.duration_s > 0.0);
    BR_EXPECTS(config.geometry.distance_m > 0.05);
    BR_EXPECTS(config.geometry.distance_m < config.radar.max_range_m);

    const double fs = config.radar.frame_rate_hz();
    // Oversample the physiological trajectories 4x relative to the frame
    // rate so frame timestamps never alias the waveform shapes.
    const double traj_fs = 4.0 * fs;

    Rng resp_rng = rng.fork();
    Rng heart_rng = rng.fork();
    Rng head_rng = rng.fork();
    Rng vib_rng = rng.fork();
    Rng blink_rng = rng.fork();
    Rng event_rng = rng.fork();

    physio::HeadMotionParams head_params = config.head_motion;
    vehicle::RoadVibrationSpec vib_spec =
        vehicle::vibration_spec(config.road);
    physio::BodyEventParams event_params = config.body_events;
    if (config.environment == Environment::kLaboratory) {
        // Vehicle off: no vibration, no steering activity, calmer posture.
        vib_spec = vehicle::RoadVibrationSpec{};
        vib_spec.continuous_rms_m = 0.0;
        event_params.steering_rate_per_min = 0.0;
        head_params.shift_rate_per_min *= 0.5;
    }

    const double rate = config.alertness == physio::Alertness::kAwake
                            ? config.driver.awake_blink_rate_per_min
                            : config.driver.drowsy_blink_rate_per_min;
    physio::BlinkProcess blink_process(
        physio::BlinkStatistics::for_state(config.alertness, rate),
        blink_rng);

    std::vector<physio::BodyEvent> events;
    if (config.include_body_events) {
        events = physio::generate_body_events(event_params,
                                              config.duration_s, event_rng);
    }

    auto models = std::make_shared<SessionModels>(SessionModels{
        physio::RespirationModel(config.driver.respiration,
                                 config.duration_s, traj_fs, resp_rng),
        physio::HeartbeatModel(config.driver.heartbeat, config.duration_s,
                               traj_fs, heart_rng),
        physio::HeadMotionModel(head_params, config.duration_s, traj_fs,
                                head_rng),
        vehicle::VibrationModel(vib_spec, config.duration_s, traj_fs,
                                vib_rng),
        blink_process.generate(config.duration_s),
        std::move(events),
        compute_path_gains(config.driver, config.geometry,
                           radar::AntennaPattern::paper_default()),
        config.geometry,
    });
    return models;
}

std::vector<radar::DynamicPath> build_paths(
    const ScenarioConfig& config,
    const std::shared_ptr<const SessionModels>& m) {
    std::vector<radar::DynamicPath> paths;
    const Meters d = config.geometry.distance_m;

    // --- Static cabin clutter (rigid with the radar: no vibration) ---
    paths.push_back(radar::DynamicPath{
        "direct-leakage",
        [](Seconds) { return 0.03; },
        [](Seconds) { return reflectivity::kDirectLeakage; },
        /*apply_rolloff=*/false});
    // The wheel sits a fixed ~0.13 m in front of the driver's face plane
    // regardless of where the radar is mounted (moving the radar closer
    // to the driver moves it past the wheel, not the wheel with it).
    const Meters wheel_range = std::max(0.10, d - 0.13);
    paths.push_back(radar::DynamicPath{
        "steering-wheel",
        [wheel_range](Seconds) { return wheel_range; },
        [](Seconds) { return reflectivity::kSteeringWheel; }});
    paths.push_back(radar::DynamicPath{
        "seat-headrest",
        [d](Seconds) { return d + 0.45; },
        [](Seconds) { return reflectivity::kSeat; }});

    // --- Face composite (moves with the head, carries no blink) ---
    paths.push_back(radar::DynamicPath{
        "face",
        [d, m](Seconds t) { return d + 0.04 + m->head_displacement(t) + m->vib(t); },
        [m](Seconds) { return m->gains.face; }});

    // --- Eye region (the signal of interest) ---
    paths.push_back(radar::DynamicPath{
        "eye",
        [d, m](Seconds t) {
            const double closure = physio::eyelid_closure_at(m->blinks, t);
            // The lid surface sits slightly in front of the cornea, so a
            // closing lid shortens the path (paper Eq. 9 displacement).
            return d + m->head_displacement(t) + m->vib(t) -
                   reflectivity::kLidPathDelta * closure;
        },
        [m](Seconds t) {
            const double closure = physio::eyelid_closure_at(m->blinks, t);
            // Lid skin reflects more strongly than the wet cornea, raising
            // the amplitude while the eye is covered (paper Section IV-C).
            return m->gains.eye * (1.0 + m->gains.blink_depth * closure);
        }});

    // --- Glasses lens (static relative to the head; no blink content) ---
    if (m->gains.glasses_static > 0.0) {
        paths.push_back(radar::DynamicPath{
            "glasses-lens",
            [d, m](Seconds t) {
                return d - 0.02 + m->head_displacement(t) + m->vib(t);
            },
            [m](Seconds) { return m->gains.glasses_static; }});
    }

    // --- Chest (respiration carrier) ---
    paths.push_back(radar::DynamicPath{
        "chest",
        [d, m](Seconds t) {
            return d + 0.22 + m->respiration.chest_displacement(t) +
                   m->head.displacement(t) + m->vib(t);
        },
        [m](Seconds) { return m->gains.chest; }});

    // --- Sparse self-interference events (yawns, steering, mirror) ---
    for (std::size_t i = 0; i < m->body_events.size(); ++i) {
        paths.push_back(radar::DynamicPath{
            "body-event-" + std::to_string(i),
            [d, m, i](Seconds t) {
                const physio::BodyEvent& e = m->body_events[i];
                const double env = physio::body_event_envelope(e, t);
                return std::max(0.06, d + 0.04 + e.range_offset_m +
                                          e.displacement_m * env + m->vib(t));
            },
            [m, i](Seconds t) {
                const physio::BodyEvent& e = m->body_events[i];
                return e.amplitude * physio::body_event_envelope(e, t);
            }});
    }

    return paths;
}

GroundTruth build_truth(const std::shared_ptr<const SessionModels>& m) {
    GroundTruth truth;
    truth.blinks = m->blinks;
    truth.posture_shifts = m->head.shifts();
    truth.body_events = m->body_events;
    return truth;
}

}  // namespace

SimulatedSession simulate_session(const ScenarioConfig& config) {
    Rng rng(config.seed);
    auto models = build_models(config, rng);
    radar::FrameSimulator simulator(config.radar, build_paths(config, models),
                                    rng.fork());
    SimulatedSession session;
    session.frames = simulator.generate(config.duration_s);
    session.truth = build_truth(models);
    session.radar = config.radar;
    return session;
}

StreamingSession make_streaming_session(const ScenarioConfig& config) {
    Rng rng(config.seed);
    auto models = build_models(config, rng);
    StreamingSession session;
    session.simulator = std::make_unique<radar::FrameSimulator>(
        config.radar, build_paths(config, models), rng.fork());
    session.truth = build_truth(models);
    return session;
}

}  // namespace blinkradar::sim
