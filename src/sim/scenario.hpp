// Scenario composition: one simulated driving (or lab) session.
//
// Combines a driver profile, an alertness state, a road type and a
// mounting geometry into the multipath scene the radar observes, and
// produces the frame stream plus exact ground truth. This is the module
// that substitutes for the paper's human-participant data collection.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.hpp"
#include "physio/blink.hpp"
#include "physio/body_events.hpp"
#include "physio/driver_profile.hpp"
#include "physio/head_motion.hpp"
#include "radar/config.hpp"
#include "radar/frame.hpp"
#include "radar/simulator.hpp"
#include "sim/geometry.hpp"
#include "vehicle/road.hpp"

namespace blinkradar::sim {

/// Whether the session is on the road (vibration, maneuvers, steering
/// events) or in the laboratory (subject seated, vehicle off).
enum class Environment { kLaboratory, kDriving };

/// Full description of one session.
struct ScenarioConfig {
    physio::DriverProfile driver;
    physio::Alertness alertness = physio::Alertness::kAwake;
    Environment environment = Environment::kDriving;
    vehicle::RoadType road = vehicle::RoadType::kSmoothHighway;
    MountingGeometry geometry;
    Seconds duration_s = 60.0;
    std::uint64_t seed = 1;
    radar::RadarConfig radar;
    physio::HeadMotionParams head_motion;
    physio::BodyEventParams body_events;
    bool include_body_events = true;
};

/// Exact ground truth emitted alongside the frames.
struct GroundTruth {
    std::vector<physio::BlinkEvent> blinks;
    std::vector<physio::PostureShift> posture_shifts;
    std::vector<physio::BodyEvent> body_events;
};

/// A generated session: the frame stream plus its truth.
struct SimulatedSession {
    radar::FrameSeries frames;
    GroundTruth truth;
    radar::RadarConfig radar;
};

/// A streaming session: the simulator (pull frames one at a time, for the
/// real-time pipeline) plus the precomputed truth.
struct StreamingSession {
    std::unique_ptr<radar::FrameSimulator> simulator;
    GroundTruth truth;
};

/// Build the scene and generate all frames for the session at once.
SimulatedSession simulate_session(const ScenarioConfig& config);

/// Build the scene but return the streaming simulator instead of
/// pre-generated frames.
StreamingSession make_streaming_session(const ScenarioConfig& config);

}  // namespace blinkradar::sim
