#include "common/csv.hpp"

#include <charconv>
#include <locale>
#include <stdexcept>
#include <string_view>
#include <system_error>

#include "common/contracts.hpp"

namespace blinkradar {

namespace {

/// Shortest decimal representation that round-trips to the same double
/// (std::to_chars general form), so CSV dumps survive re-parsing exactly.
std::string format_cell(double value) {
    char buf[32];
    const std::to_chars_result r =
        std::to_chars(buf, buf + sizeof(buf), value);
    BR_ASSERT(r.ec == std::errc{});
    return std::string(buf, r.ptr);
}

/// RFC 4180 quoting: cells containing a comma, quote, or newline are
/// wrapped in double quotes with embedded quotes doubled.
void write_cell(std::ostream& out, std::string_view cell) {
    if (cell.find_first_of(",\"\r\n") == std::string_view::npos) {
        out << cell;
        return;
    }
    out << '"';
    for (const char c : cell) {
        if (c == '"') out << '"';
        out << c;
    }
    out << '"';
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), n_columns_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    // The classic locale guarantees '.' decimal points and no thousands
    // grouping regardless of the process environment.
    out_.imbue(std::locale::classic());
    BR_EXPECTS(!columns.empty());
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i != 0) out_ << ',';
        write_cell(out_, columns[i]);
    }
    out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
    BR_EXPECTS(values.size() == n_columns_);
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << format_cell(values[i]);
    }
    out_ << '\n';
    ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    BR_EXPECTS(cells.size() == n_columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) out_ << ',';
        write_cell(out_, cells[i]);
    }
    out_ << '\n';
    ++rows_;
}

}  // namespace blinkradar
