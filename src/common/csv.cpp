#include "common/csv.hpp"

#include <stdexcept>

#include "common/contracts.hpp"

namespace blinkradar {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), n_columns_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    BR_EXPECTS(!columns.empty());
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << columns[i];
    }
    out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
    BR_EXPECTS(values.size() == n_columns_);
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << values[i];
    }
    out_ << '\n';
    ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    BR_EXPECTS(cells.size() == n_columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << cells[i];
    }
    out_ << '\n';
    ++rows_;
}

}  // namespace blinkradar
