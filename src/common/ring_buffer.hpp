// Fixed-capacity ring buffer for the per-frame hot path.
//
// The streaming pipeline keeps several bounded sliding windows (recent
// frames, timestamps, waveform history, noise samples). std::deque models
// them naturally but allocates/frees a block every few dozen pushes, which
// shows up as steady-state churn in the 40 ms frame path. RingBuffer keeps
// the same push_back/pop_front semantics over storage allocated exactly
// once, so a warmed-up window performs zero heap allocations per frame.
// Evicted slots are recycled, not destroyed: push_back() hands back a
// reference to the slot so element types that own heap storage (e.g.
// std::vector) can be refilled in place, reusing their capacity.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace blinkradar {

template <typename T>
class RingBuffer {
public:
    RingBuffer() = default;

    /// A buffer holding at most `capacity` elements; pushing past the
    /// capacity evicts the oldest element.
    explicit RingBuffer(std::size_t capacity) { reset_capacity(capacity); }

    /// Drop all elements and allocate storage for `capacity` slots. The
    /// only allocating operation (slot payloads aside).
    void reset_capacity(std::size_t capacity) {
        BR_EXPECTS(capacity >= 1);
        slots_.clear();
        slots_.resize(capacity);
        head_ = 0;
        size_ = 0;
    }

    /// Append a copy of `value`, evicting the oldest element when full.
    void push_back(const T& value) { emplace_slot() = value; }

    /// Append by assigning into the recycled slot (element types with
    /// their own capacity, e.g. std::vector, keep it across evictions).
    /// Returns the slot so callers can also fill it in place.
    T& emplace_slot() {
        BR_EXPECTS(!slots_.empty());
        const std::size_t idx = (head_ + size_) % slots_.size();
        if (size_ == slots_.size()) {
            head_ = (head_ + 1) % slots_.size();
        } else {
            ++size_;
        }
        return slots_[idx];
    }

    /// Remove the oldest element (its slot is recycled, not destroyed).
    void pop_front() {
        BR_EXPECTS(size_ >= 1);
        head_ = (head_ + 1) % slots_.size();
        --size_;
    }

    /// Forget all elements; capacity and slot payloads are kept.
    void clear() noexcept {
        head_ = 0;
        size_ = 0;
    }

    /// Element access, index 0 = oldest.
    T& operator[](std::size_t i) {
        BR_EXPECTS(i < size_);
        return slots_[(head_ + i) % slots_.size()];
    }
    const T& operator[](std::size_t i) const {
        BR_EXPECTS(i < size_);
        return slots_[(head_ + i) % slots_.size()];
    }

    T& front() { return (*this)[0]; }
    const T& front() const { return (*this)[0]; }
    T& back() { return (*this)[size_ - 1]; }
    const T& back() const { return (*this)[size_ - 1]; }

    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return slots_.size(); }
    bool empty() const noexcept { return size_ == 0; }
    bool full() const noexcept { return size_ == slots_.size(); }

private:
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace blinkradar
