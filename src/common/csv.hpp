// Minimal CSV writer used by the examples and benches to dump traces for
// external plotting. Doubles are written with shortest round-trip
// precision in the classic "C" locale; string cells containing commas,
// quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace blinkradar {

/// Streaming CSV writer. Opens the file on construction, writes a header
/// row, then one row per `row()` call. Flushes and closes on destruction.
class CsvWriter {
public:
    /// Create `path` (truncating) and write `columns` as the header row.
    /// Throws std::runtime_error if the file cannot be opened.
    CsvWriter(const std::string& path, const std::vector<std::string>& columns);

    /// Write one row; the number of values must equal the number of columns.
    void row(const std::vector<double>& values);

    /// Write one row of preformatted cells (for mixed text/number rows).
    void row(const std::vector<std::string>& cells);

    /// Number of data rows written so far.
    std::size_t rows_written() const noexcept { return rows_; }

private:
    std::ofstream out_;
    std::size_t n_columns_;
    std::size_t rows_ = 0;
};

}  // namespace blinkradar
