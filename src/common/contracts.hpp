// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (GSL). Violations indicate programmer error and throw
// ContractViolation so tests can assert on misuse without aborting the
// whole process.
#pragma once

#include <stdexcept>
#include <string>

namespace blinkradar {

/// Thrown when a precondition, postcondition, or invariant is violated.
/// A ContractViolation always indicates a bug in the caller (for
/// preconditions) or in the library (for postconditions/invariants),
/// never a recoverable runtime condition.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* expr,
                                  const char* file, int line);
}  // namespace detail

}  // namespace blinkradar

/// Precondition check: argument/state requirements at function entry.
#define BR_EXPECTS(expr)                                                     \
    do {                                                                     \
        if (!(expr))                                                         \
            ::blinkradar::detail::contract_failed("Precondition", #expr,    \
                                                  __FILE__, __LINE__);      \
    } while (false)

/// Postcondition check: guarantees at function exit.
#define BR_ENSURES(expr)                                                     \
    do {                                                                     \
        if (!(expr))                                                         \
            ::blinkradar::detail::contract_failed("Postcondition", #expr,   \
                                                  __FILE__, __LINE__);      \
    } while (false)

/// Invariant check inside algorithms.
#define BR_ASSERT(expr)                                                      \
    do {                                                                     \
        if (!(expr))                                                         \
            ::blinkradar::detail::contract_failed("Invariant", #expr,       \
                                                  __FILE__, __LINE__);      \
    } while (false)
