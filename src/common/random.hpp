// Deterministic random number generation.
//
// Every stochastic component in the simulator takes an explicit Rng (or a
// seed) so that experiments are exactly reproducible. There is no global
// RNG state anywhere in the library.
#pragma once

#include <cstdint>
#include <random>

namespace blinkradar {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// distribution helpers the simulators need. Copyable; copying forks the
/// stream (both copies produce the same subsequent values).
class Rng {
public:
    /// Construct from a 64-bit seed. Identical seeds yield identical streams.
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi);

    /// Gaussian with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Exponential with the given mean (mean = 1/lambda). mean must be > 0.
    double exponential(double mean);

    /// Gamma with the given shape k and scale theta (mean = k*theta).
    double gamma(double shape, double scale);

    /// Log-normal parameterised by the mean/stddev OF THE UNDERLYING NORMAL.
    double lognormal(double mu, double sigma);

    /// Bernoulli trial with success probability p in [0, 1].
    bool bernoulli(double p);

    /// Derive an independent child generator (for giving each subsystem its
    /// own stream so adding draws to one does not perturb another).
    Rng fork();

    /// Access the raw engine (for std::shuffle and friends).
    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace blinkradar
