// Physical unit aliases and constants shared across the library.
//
// We deliberately use documented aliases rather than heavyweight strong
// types: every public API spells the unit in the parameter name as well
// (e.g. `double range_m`), and the aliases exist to make signatures
// self-describing.
#pragma once

namespace blinkradar {

using Seconds = double;   ///< time in seconds
using Hertz = double;     ///< frequency in Hz
using Meters = double;    ///< distance in metres
using Radians = double;   ///< angle in radians
using Degrees = double;   ///< angle in degrees

namespace constants {

/// Speed of light in vacuum [m/s]; the paper uses c = 3.0e8.
inline constexpr double kSpeedOfLight = 3.0e8;

/// pi to double precision.
inline constexpr double kPi = 3.14159265358979323846;

/// 2*pi.
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace constants

/// Convert degrees to radians.
constexpr Radians deg_to_rad(Degrees deg) noexcept {
    return deg * constants::kPi / 180.0;
}

/// Convert radians to degrees.
constexpr Degrees rad_to_deg(Radians rad) noexcept {
    return rad * 180.0 / constants::kPi;
}

}  // namespace blinkradar
