// Fixed-size work-queue thread pool with deterministic parallel-for.
//
// Built for the batch experiment engine (eval::run_sessions and the
// figure-reproduction harnesses): dozens of independent simulated sessions
// whose results must be bit-identical to the old serial loops. Determinism
// comes from the work decomposition, not from scheduling: every task is an
// index into a pre-sized result array and derives all of its randomness
// from its own per-index seed, so the thread count and interleaving cannot
// influence any result, only the wall clock.
//
// parallel_for is nesting- and deadlock-safe: the calling thread always
// participates in draining the index range, and workers that pick up a
// nested parallel_for drain the inner range the same way, so progress
// never depends on a free pool thread being available.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blinkradar {

class ThreadPool {
public:
    /// Spin up `n_threads` workers (>= 1). The pool size is fixed for the
    /// pool's lifetime.
    explicit ThreadPool(std::size_t n_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return threads_.size(); }

    /// Run fn(0) .. fn(n-1), distributing indices over the pool. The
    /// calling thread participates, so this also works with zero free
    /// workers and from inside another parallel_for. Results are
    /// bit-identical to the serial loop for any thread count as long as
    /// fn(i) depends only on i (the batch-engine contract). The first
    /// exception thrown by any fn is rethrown on the calling thread after
    /// the whole range has been claimed.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

    /// parallel_for that collects fn(i) into a vector (slot i = fn(i)).
    template <typename F>
    auto parallel_map(std::size_t n, F&& fn)
        -> std::vector<decltype(fn(std::size_t{}))> {
        std::vector<decltype(fn(std::size_t{}))> out(n);
        parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /// Process-wide pool, sized from the BLINKRADAR_THREADS environment
    /// variable when set (>= 1), otherwise std::thread::hardware_concurrency.
    /// Constructed on first use; lives for the process.
    static ThreadPool& shared();

    /// The thread count shared() uses (exposed for diagnostics/benches).
    static std::size_t shared_size();

    /// Hard cap on a BLINKRADAR_THREADS override; larger requests are
    /// treated as misconfiguration and fall back to `fallback`.
    static constexpr std::size_t kMaxThreads = 512;

    /// Parse a BLINKRADAR_THREADS-style value. Returns the parsed count
    /// when `text` is a whole positive integer within [1, kMaxThreads];
    /// on null, empty, non-numeric, trailing-garbage, zero, negative,
    /// overflowing, or absurdly large input returns `fallback` instead
    /// (exposed for tests).
    static std::size_t parse_thread_count(const char* text,
                                          std::size_t fallback) noexcept;

private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

}  // namespace blinkradar
