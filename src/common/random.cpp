#include "common/random.hpp"

#include "common/contracts.hpp"

namespace blinkradar {

double Rng::uniform(double lo, double hi) {
    BR_EXPECTS(lo <= hi);
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
    BR_EXPECTS(lo <= hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
    BR_EXPECTS(stddev >= 0.0);
    if (stddev == 0.0) return mean;
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double Rng::exponential(double mean) {
    BR_EXPECTS(mean > 0.0);
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
}

double Rng::gamma(double shape, double scale) {
    BR_EXPECTS(shape > 0.0 && scale > 0.0);
    std::gamma_distribution<double> dist(shape, scale);
    return dist(engine_);
}

double Rng::lognormal(double mu, double sigma) {
    BR_EXPECTS(sigma >= 0.0);
    std::lognormal_distribution<double> dist(mu, sigma);
    return dist(engine_);
}

bool Rng::bernoulli(double p) {
    BR_EXPECTS(p >= 0.0 && p <= 1.0);
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

Rng Rng::fork() {
    // Draw two words from the parent stream to seed the child; this keeps
    // parent and child streams statistically independent while remaining
    // fully deterministic.
    const std::uint64_t a = engine_();
    const std::uint64_t b = engine_();
    return Rng(a ^ (b << 1) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace blinkradar
