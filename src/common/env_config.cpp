#include "common/env_config.hpp"

#include <cstdlib>
#include <mutex>

namespace blinkradar {

namespace {

std::mutex g_mutex;
ProcessConfig g_config;
bool g_resolved = false;

std::string env_or_empty(const char* name) {
    const char* value = std::getenv(name);
    return value != nullptr ? std::string(value) : std::string();
}

ProcessConfig resolve_from_environment() {
    ProcessConfig config;
    config.dsp_path = env_or_empty("BLINKRADAR_DSP_PATH");
    config.simd_backend = env_or_empty("BLINKRADAR_SIMD_BACKEND");
    config.threads = env_or_empty("BLINKRADAR_THREADS");
    config.trace_path = env_or_empty("BLINKRADAR_TRACE");
    return config;
}

}  // namespace

const ProcessConfig& process_config() {
    // Mutex (not a magic static) so the test-only reload below can
    // replace the snapshot; the lock is only ever taken at
    // construction-time call sites, never on a frame path.
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_resolved) {
        g_config = resolve_from_environment();
        g_resolved = true;
    }
    return g_config;
}

void reload_process_config_for_testing() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_config = resolve_from_environment();
    g_resolved = true;
}

}  // namespace blinkradar
