#include "common/thread_pool.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/contracts.hpp"
#include "common/env_config.hpp"

namespace blinkradar {

ThreadPool::ThreadPool(std::size_t n_threads) {
    BR_EXPECTS(n_threads >= 1);
    threads_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace {

/// Shared state of one parallel_for: a claimable index range plus
/// completion accounting. Heap-held via shared_ptr so stray helper tasks
/// that run after the caller returned (possible when the caller drained
/// the whole range itself) touch valid memory.
struct ForState {
    explicit ForState(std::size_t n_,
                      const std::function<void(std::size_t)>& fn_)
        : n(n_), fn(fn_) {}

    const std::size_t n;
    const std::function<void(std::size_t)>& fn;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // guarded by mutex
    std::mutex mutex;
    std::condition_variable cv;

    // Claim and run indices until the range is exhausted. After the first
    // failure remaining indices are claimed but skipped, so `done` still
    // reaches n and the caller wakes.
    void drain() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            if (!failed.load(std::memory_order_acquire)) {
                try {
                    fn(i);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    if (!error) error = std::current_exception();
                    failed.store(true, std::memory_order_release);
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
                const std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        }
    }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (n == 1) {
        fn(0);
        return;
    }
    auto state = std::make_shared<ForState>(n, fn);
    // One helper task per worker (capped by the range size); each drains
    // the shared index range. Helpers that arrive after the range is
    // exhausted return immediately.
    const std::size_t helpers = std::min(threads_.size(), n - 1);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t h = 0; h < helpers; ++h)
            queue_.emplace_back([state] { state->drain(); });
    }
    cv_.notify_all();
    state->drain();  // the caller participates: nesting cannot deadlock
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->cv.wait(lock, [&] {
            return state->done.load(std::memory_order_acquire) == n;
        });
        if (state->error) std::rethrow_exception(state->error);
    }
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool(shared_size());
    return pool;
}

std::size_t ThreadPool::parse_thread_count(const char* text,
                                           std::size_t fallback) noexcept {
    if (text == nullptr || *text == '\0') return fallback;
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text) return fallback;       // no digits at all
    while (*end == ' ' || *end == '\t') ++end;
    if (*end != '\0') return fallback;      // trailing garbage ("8abc")
    if (errno == ERANGE) return fallback;   // out of long's range
    if (v < 1 || static_cast<unsigned long>(v) > kMaxThreads)
        return fallback;                    // zero, negative, or absurd
    return static_cast<std::size_t>(v);
}

std::size_t ThreadPool::shared_size() {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t fallback = hw >= 1 ? hw : 1;
    // Read the one-time process snapshot, not the live environment: a
    // runtime setenv must never race this resolution (see env_config).
    const std::string& text = process_config().threads;
    return parse_thread_count(text.empty() ? nullptr : text.c_str(),
                              fallback);
}

}  // namespace blinkradar
