#include "common/contracts.hpp"

#include <sstream>

namespace blinkradar::detail {

void contract_failed(const char* kind, const char* expr, const char* file,
                     int line) {
    std::ostringstream os;
    os << kind << " violated: (" << expr << ") at " << file << ':' << line;
    throw ContractViolation(os.str());
}

}  // namespace blinkradar::detail
