// Process-wide configuration resolved from the environment exactly once.
//
// Several components historically called std::getenv at construction
// time (the DSP-path default, the SIMD backend pick, the shared pool
// size, the trace gate). Per-construction getenv is a latent data race:
// POSIX setenv/getenv are unsynchronized, so any runtime setenv — a test
// harness, an embedding host configuring itself — races with a pipeline
// being constructed on another thread, and two sessions constructed
// concurrently around a setenv can resolve *different* configs inside
// one process. A fleet of sessions must agree on process-wide knobs.
//
// This module snapshots every BLINKRADAR_* variable into one immutable
// ProcessConfig on first use (thread-safe); all components read the
// snapshot and never touch the environment again. Tests that need to
// exercise the resolution logic re-run it explicitly with
// reload_process_config_for_testing() — a documented single-threaded
// test hook, not a production path.
#pragma once

#include <cstddef>
#include <string>

namespace blinkradar {

/// Immutable snapshot of the BLINKRADAR_* environment, taken on first
/// use. Raw string values are stored as found (empty when unset);
/// consumers own the parsing so resolution errors degrade exactly as
/// the old per-call getenv paths did.
struct ProcessConfig {
    /// BLINKRADAR_DSP_PATH ("scalar" | "simd"): default frame path for
    /// pipelines constructed with DspPath::kAuto.
    std::string dsp_path;
    /// BLINKRADAR_SIMD_BACKEND ("scalar" | "avx2" | "neon"): kernel
    /// table override for the SoA path.
    std::string simd_backend;
    /// BLINKRADAR_THREADS: shared thread-pool size override (unparsed;
    /// ThreadPool::parse_thread_count owns the validation).
    std::string threads;
    /// BLINKRADAR_TRACE: JSONL trace path gate (see obs::TraceSink).
    std::string trace_path;
};

/// The process-wide config. The first call resolves it from the
/// environment; every later call returns the same snapshot. Thread-safe:
/// concurrent first calls resolve once, and concurrently constructed
/// sessions always observe identical values.
const ProcessConfig& process_config();

/// Re-resolve the snapshot from the current environment. TEST-ONLY
/// single-threaded hook (callers must guarantee no concurrent
/// process_config() readers); lets env-override tests exercise the
/// resolution logic without restarting the process.
void reload_process_config_for_testing();

}  // namespace blinkradar
