#include "core/frame_guard.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::core {

const char* to_string(HealthState state) noexcept {
    switch (state) {
        case HealthState::kOk: return "OK";
        case HealthState::kDegraded: return "DEGRADED";
        case HealthState::kSignalLost: return "SIGNAL_LOST";
        case HealthState::kRecovering: return "RECOVERING";
    }
    return "?";
}

const char* to_string(FrameVerdict verdict) noexcept {
    switch (verdict) {
        case FrameVerdict::kClean: return "clean";
        case FrameVerdict::kRepaired: return "repaired";
        case FrameVerdict::kBridged: return "bridged";
        case FrameVerdict::kQuarantined: return "quarantined";
    }
    return "?";
}

FrameGuard::FrameGuard(const radar::RadarConfig& radar,
                       FrameGuardConfig config)
    : radar_(radar), config_(config), n_bins_(radar.n_bins()) {
    BR_EXPECTS(config.gap_tolerance_periods > 1.0);
    BR_EXPECTS(config.max_bridge_gap_s > 0.0);
    BR_EXPECTS(config.max_repair_fraction >= 0.0 &&
               config.max_repair_fraction <= 1.0);
    BR_EXPECTS(config.health_window_s > 0.0);
    BR_EXPECTS(config.degraded_fault_rate > 0.0);
    BR_EXPECTS(config.lost_after_quarantines >= 1);
    const auto window_frames = std::max<std::size_t>(
        8, static_cast<std::size_t>(config.health_window_s *
                                    radar.frame_rate_hz()));
    fault_events_.reset_capacity(window_frames);
    last_good_.bins.reserve(n_bins_);
    repaired_.bins.reserve(n_bins_);
}

double FrameGuard::fault_rate() const noexcept {
    if (fault_events_.empty()) return 0.0;
    return static_cast<double>(faults_in_window_) /
           static_cast<double>(fault_events_.size());
}

void FrameGuard::note_frame(bool faulty) {
    if (fault_events_.full() && fault_events_.front() != 0)
        --faults_in_window_;
    fault_events_.push_back(faulty ? 1 : 0);
    if (faulty) ++faults_in_window_;
}

void FrameGuard::enter_signal_lost() {
    if (health_ != HealthState::kSignalLost) {
        ++stats_.signal_lost_events;
        health_ = HealthState::kSignalLost;
    }
    pending_warm_restart_ = true;
}

void FrameGuard::update_health() {
    const double rate = fault_rate();
    switch (health_) {
        case HealthState::kOk:
            if (rate > config_.degraded_fault_rate)
                health_ = HealthState::kDegraded;
            break;
        case HealthState::kDegraded:
            // Hysteresis: recover only once the rate clearly subsides.
            if (rate < 0.5 * config_.degraded_fault_rate)
                health_ = HealthState::kOk;
            break;
        case HealthState::kSignalLost:
        case HealthState::kRecovering:
            break;  // promoted by admit()/notify_converged()
    }
}

void FrameGuard::notify_converged() {
    if (health_ != HealthState::kRecovering) return;
    health_ = fault_rate() > config_.degraded_fault_rate
                  ? HealthState::kDegraded
                  : HealthState::kOk;
}

GuardDecision FrameGuard::quarantine(Seconds) {
    ++stats_.frames_quarantined;
    ++consecutive_quarantined_;
    note_frame(true);
    if (consecutive_quarantined_ >= config_.lost_after_quarantines)
        enter_signal_lost();
    else
        update_health();
    GuardDecision decision;
    decision.verdict = FrameVerdict::kQuarantined;
    return decision;
}

GuardDecision FrameGuard::admit(const radar::RadarFrame& frame) {
    ++stats_.frames_seen;
    const Seconds t = frame.timestamp_s;

    // Structural validation: anything the detection chain cannot digest
    // at all is quarantined whole.
    if (!std::isfinite(t)) return quarantine(t);
    if (frame.bins.size() != n_bins_) return quarantine(t);
    if (have_last_ && t <= last_ts_) return quarantine(t);  // dup/reorder
    std::uint32_t non_finite = 0;
    for (const dsp::Complex& s : frame.bins)
        if (!std::isfinite(s.real()) || !std::isfinite(s.imag()))
            ++non_finite;
    if (non_finite >
        static_cast<std::uint32_t>(config_.max_repair_fraction *
                                   static_cast<double>(n_bins_)))
        return quarantine(t);

    consecutive_quarantined_ = 0;
    GuardDecision decision;
    out_.clear();

    // Repair isolated non-finite samples by per-bin sample-hold.
    const radar::RadarFrame* emit = &frame;
    if (non_finite > 0) {
        repaired_.timestamp_s = t;
        repaired_.bins = frame.bins;
        for (std::size_t b = 0; b < repaired_.bins.size(); ++b) {
            const dsp::Complex& s = repaired_.bins[b];
            if (std::isfinite(s.real()) && std::isfinite(s.imag())) continue;
            repaired_.bins[b] = have_last_ && b < last_good_.bins.size()
                                    ? last_good_.bins[b]
                                    : dsp::Complex(0.0, 0.0);
        }
        emit = &repaired_;
        decision.verdict = FrameVerdict::kRepaired;
        decision.repaired_samples = non_finite;
        stats_.samples_repaired += non_finite;
    }

    // Timestamp-gap handling, against the *real* inter-frame spacing.
    bool gap_fault = false;
    if (have_last_) {
        const double dt = t - last_ts_;
        const double period = radar_.frame_period_s;
        if (dt > config_.max_bridge_gap_s) {
            // Too long to bridge honestly: the signal was lost; the held
            // baseline is stale, so recover via a warm restart instead.
            enter_signal_lost();
        } else if (dt > config_.gap_tolerance_periods * period &&
                   !pending_warm_restart_) {
            // (With a warm restart pending the held baseline is being
            // discarded anyway — bridging stale frames would be noise.)
            // Short gap (dropped frames): fill with sample-held frames,
            // spacing the synthetic timestamps evenly across the real gap.
            const auto missing = static_cast<std::size_t>(
                std::max(1.0, std::round(dt / period) - 1.0));
            for (std::size_t k = 1; k <= missing; ++k) {
                radar::RadarFrame& held = out_.emplace_back(last_good_);
                held.timestamp_s =
                    last_ts_ + dt * static_cast<double>(k) /
                                   static_cast<double>(missing + 1);
            }
            ++stats_.gaps_bridged;
            stats_.frames_bridged += missing;
            decision.bridged_frames = static_cast<std::uint32_t>(missing);
            if (decision.verdict == FrameVerdict::kClean)
                decision.verdict = FrameVerdict::kBridged;
            gap_fault = true;
        }
    }

    if (out_.empty() && emit == &frame) {
        // Clean pass-through: no copy, span straight over the input.
        decision.frames = std::span<const radar::RadarFrame>(&frame, 1);
    } else {
        out_.push_back(*emit);
        decision.frames =
            std::span<const radar::RadarFrame>(out_.data(), out_.size());
    }

    last_good_.timestamp_s = t;
    last_good_.bins = emit->bins;
    last_ts_ = t;
    have_last_ = true;
    note_frame(decision.verdict != FrameVerdict::kClean || gap_fault);

    if (health_ == HealthState::kSignalLost)
        health_ = HealthState::kRecovering;
    if (pending_warm_restart_) {
        decision.warm_restart = true;
        pending_warm_restart_ = false;
        ++stats_.warm_restarts;
        health_ = HealthState::kRecovering;
    }
    update_health();
    return decision;
}

namespace {
constexpr std::uint32_t kGuardTag = state::make_tag("GURD");
constexpr std::uint16_t kGuardVersion = 1;
}  // namespace

void FrameGuard::save_state(state::StateWriter& writer) const {
    writer.begin_section(kGuardTag, kGuardVersion);
    writer.write_bool(have_last_);
    writer.write_f64(last_ts_);
    writer.write_f64(last_good_.timestamp_s);
    writer.write_complex_span(last_good_.bins);
    // Rolling fault window, oldest first (the logical order is all the
    // health machine sees; the ring's physical head position is not
    // observable state).
    writer.write_size(fault_events_.size());
    for (std::size_t i = 0; i < fault_events_.size(); ++i)
        writer.write_u8(fault_events_[i]);
    writer.write_u8(static_cast<std::uint8_t>(health_));
    writer.write_size(consecutive_quarantined_);
    writer.write_bool(pending_warm_restart_);
    writer.write_u64(stats_.frames_seen);
    writer.write_u64(stats_.frames_quarantined);
    writer.write_u64(stats_.samples_repaired);
    writer.write_u64(stats_.frames_bridged);
    writer.write_u64(stats_.gaps_bridged);
    writer.write_u64(stats_.signal_lost_events);
    writer.write_u64(stats_.warm_restarts);
    writer.end_section();
}

void FrameGuard::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kGuardTag);
    if (version > kGuardVersion)
        throw state::SnapshotError(
            "GURD: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kGuardVersion) + ")");
    const bool have_last = reader.read_bool();
    const Seconds last_ts = reader.read_f64();
    radar::RadarFrame last_good;
    last_good.timestamp_s = reader.read_f64();
    reader.read_complex_into(last_good.bins);
    if (have_last && last_good.bins.size() != n_bins_)
        throw state::SnapshotError(
            "GURD: held baseline has " +
            std::to_string(last_good.bins.size()) +
            " bins but the guard is configured for " +
            std::to_string(n_bins_));
    const std::size_t n_events = reader.read_size();
    if (n_events > fault_events_.capacity())
        throw state::SnapshotError(
            "GURD: fault window holds " + std::to_string(n_events) +
            " events but this configuration's window is " +
            std::to_string(fault_events_.capacity()));
    fault_events_.clear();
    faults_in_window_ = 0;
    for (std::size_t i = 0; i < n_events; ++i) {
        const std::uint8_t faulty = reader.read_u8();
        if (faulty > 1)
            throw state::SnapshotError(
                "GURD: fault-window entry holds invalid value " +
                std::to_string(faulty));
        fault_events_.push_back(faulty);
        faults_in_window_ += faulty;
    }
    const std::uint8_t health = reader.read_u8();
    if (health > static_cast<std::uint8_t>(HealthState::kRecovering))
        throw state::SnapshotError("GURD: invalid health state " +
                                   std::to_string(health));
    have_last_ = have_last;
    last_ts_ = last_ts;
    last_good_ = std::move(last_good);
    health_ = static_cast<HealthState>(health);
    consecutive_quarantined_ = reader.read_size();
    pending_warm_restart_ = reader.read_bool();
    stats_.frames_seen = reader.read_u64();
    stats_.frames_quarantined = reader.read_u64();
    stats_.samples_repaired = reader.read_u64();
    stats_.frames_bridged = reader.read_u64();
    stats_.gaps_bridged = reader.read_u64();
    stats_.signal_lost_events = reader.read_u64();
    stats_.warm_restarts = reader.read_u64();
    reader.close_section();
}

void FrameGuard::reset() {
    have_last_ = false;
    last_ts_ = 0.0;
    last_good_.bins.clear();
    out_.clear();
    fault_events_.clear();
    faults_in_window_ = 0;
    health_ = HealthState::kOk;
    consecutive_quarantined_ = 0;
    pending_warm_restart_ = false;
}

}  // namespace blinkradar::core
