// Local extreme value detection (LEVD) — the paper's blink detector.
//
// LEVD finds alternating local maxima and minima of the relative-distance
// waveform and compares the difference between nearby extrema against a
// threshold of five times the no-blink standard deviation. A blink is a
// bump: a rise (min -> max) exceeding the threshold followed by a fall
// (max -> min) confirming it, with a physiologically plausible width.
//
// The no-blink standard deviation is estimated continuously and robustly
// (median absolute deviation over a rolling window), so sparse blink
// bumps do not inflate their own threshold.
#pragma once

#include <optional>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/units.hpp"
#include "core/pipeline_config.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// One blink detected by the pipeline.
struct DetectedBlink {
    Seconds peak_s = 0.0;      ///< time of maximum lid coverage
    Seconds duration_s = 0.0;  ///< rise-start to fall-end
    double magnitude = 0.0;    ///< bump height in the distance waveform
    /// Detection confidence: magnitude over the LEVD threshold at
    /// emission time (>= 1 by construction). True blinks typically score
    /// several times the threshold; threshold-grazing bumps score ~1.
    double strength = 0.0;
};

/// Streaming LEVD detector over a scalar waveform.
class Levd {
public:
    Levd(const PipelineConfig& config, double frame_rate_hz);

    /// Feed one sample; returns a blink when a complete bump is
    /// confirmed (at the bump's falling edge).
    std::optional<DetectedBlink> push(Seconds t, double value);

    /// Feed one sample into the noise estimator only (no detection).
    /// Used to pre-fill the threshold from the cold-start window so the
    /// detector is live the moment the viewing position exists.
    void warm_up(Seconds t, double value);

    /// Clear all state (after a pipeline restart).
    void reset();

    /// Current detection threshold (5 sigma); 0 until enough samples.
    double threshold() const noexcept { return threshold_; }

    /// Current robust noise sigma estimate.
    double noise_sigma() const noexcept { return sigma_; }

    /// Snapshot the detector (section "LEVD"): noise window, smoother
    /// taps, extremum-tracking state, and the refractory clock, so a
    /// restored detector emits the same blinks at the same samples.
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    struct Sample {
        Seconds t = 0.0;
        double v = 0.0;
    };

    void update_noise_estimate();
    std::optional<DetectedBlink> on_local_max(const Sample& s);
    std::optional<DetectedBlink> on_local_min(const Sample& s);

    PipelineConfig config_;
    double frame_rate_hz_;
    std::size_t noise_window_frames_;

    RingBuffer<Sample> buffer_;          ///< rolling noise-estimation window
    std::vector<Sample> recent_;         ///< last 3 smoothed samples
    RingBuffer<double> smooth_taps_;     ///< 3-point smoother state
    std::vector<double> diff_scratch_;   ///< noise-estimate |lag-diff| pool

    double sigma_ = 0.0;
    double threshold_ = 0.0;
    std::size_t frames_since_sigma_ = 0;
    std::size_t sigma_updates_ = 0;

    std::optional<Sample> last_min_;     ///< most recent local minimum
    std::optional<Sample> pending_max_;  ///< max of a rise awaiting a fall
    std::optional<Sample> rise_start_;   ///< the min the rise started from
    Seconds last_emit_s_ = -1e9;
};

}  // namespace blinkradar::core
