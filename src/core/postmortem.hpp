// Post-mortem flight dumps: self-contained, self-verifying incident
// captures.
//
// The obs::FlightRecorder holds the rings (raw frames, stage taps,
// events, checkpoints) but knows nothing about pipeline construction.
// This module adds the core-side halves that turn a recorder into a
// reproduction of an incident:
//
//   - the "FRCF" section: the full radar + pipeline configuration, so a
//     dump carries everything needed to construct the identical pipeline
//     on another machine;
//   - dump assembly and file IO (make/write/read, atomic write-rename
//     via the state layer, every section CRC-protected);
//   - replay: feed the captured raw frames through freshly constructed
//     pipelines restored from the co-dumped checkpoints and cross-check
//     every FrameResult bit-for-bit against the recorded taps. A dump
//     that replays clean *proves* the capture is a faithful reproduction
//     of the incident — the same contract test_resume enforces for
//     checkpoint/resume, extended to the black box.
//
// Replay contract. A checkpoint labelled seq = S holds the serialized
// state of the live pipeline at the moment frame S had been processed —
// equivalently, the state in effect *before* frame S+1. Self-checkpoints
// satisfy this trivially; the Supervisor's post-restore note_checkpoint()
// does too, because the restored bytes *are* the live state from that
// point on (the replay timeline re-bases across recoveries exactly where
// the live one did). Replay therefore walks the raw ring oldest-first,
// re-basing onto each checkpoint at its boundary, and expects
// bit-identical results everywhere a tap was recorded. Frames with a raw
// entry but no tap are the crash frames themselves.
//
// Base choice: when the dump ever saw an external checkpoint (the owner
// replaced state from outside — a restore), replay bases on the oldest
// *retained* checkpoint, because an evicted external one could mark a
// state replacement a from-frame-1 cold replay would silently miss.
// Only an uninterrupted self-checkpointing run whose raw ring reaches
// back to frame 1 replays from a cold pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline_config.hpp"
#include "obs/flight_recorder.hpp"
#include "radar/config.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Serialize the full radar + pipeline configuration as one "FRCF"
/// section (every tunable, including the frame-guard block).
void save_flight_configs(state::StateWriter& writer,
                         const radar::RadarConfig& radar,
                         const PipelineConfig& pipeline);

struct FlightConfigs {
    radar::RadarConfig radar;
    PipelineConfig pipeline;
};

/// Decode the "FRCF" section. Throws state::SnapshotError when missing,
/// truncated, or newer than this reader.
FlightConfigs load_flight_configs(state::StateReader& reader);

/// Assemble a complete dump container: "FRCF" followed by the recorder's
/// "BRFR"/"FR**" sections.
std::vector<std::uint8_t> make_flight_dump(const obs::FlightRecorder& recorder,
                                           const radar::RadarConfig& radar,
                                           const PipelineConfig& pipeline,
                                           std::string_view reason);

/// make_flight_dump + crash-safe write (atomic rename, like snapshots).
void write_flight_dump_file(const std::string& path,
                            const obs::FlightRecorder& recorder,
                            const radar::RadarConfig& radar,
                            const PipelineConfig& pipeline,
                            std::string_view reason);

/// A fully decoded dump: configuration + every recorder ring.
struct DecodedDump {
    FlightConfigs configs;
    obs::FlightDump flight;
};

/// Decode a dump container; throws state::SnapshotError on any damage.
DecodedDump decode_dump(std::span<const std::uint8_t> bytes);

/// Read + decode a dump file; throws state::SnapshotError on any damage.
DecodedDump read_flight_dump_file(const std::string& path);

/// One field-level divergence between a recorded tap and its replay.
struct ReplayMismatch {
    std::uint64_t seq = 0;
    std::string field;     ///< e.g. "waveform_value", "health"
    double recorded = 0.0; ///< recorded value (numeric view)
    double replayed = 0.0; ///< replayed value (numeric view)
};

/// Outcome of replaying a dump (see replay_flight_dump).
struct ReplayReport {
    bool ok = false;           ///< base found and zero mismatches
    std::string note;          ///< human-readable outcome summary
    std::uint64_t base_seq = 0;///< first replay base (0 = cold pipeline)
    bool from_cold = false;    ///< replay started from a cold pipeline
    std::uint64_t frames_replayed = 0;
    std::uint64_t taps_compared = 0;
    std::uint64_t taps_missing = 0;  ///< raw frames without a tap (crash frames)
    std::uint64_t rebases = 0;       ///< checkpoint boundaries crossed
    std::uint64_t replay_faults = 0; ///< exceptions thrown during replay
    std::uint64_t mismatch_count = 0;
    std::vector<ReplayMismatch> mismatches;  ///< first few, for reporting
};

/// Replay every captured raw frame through freshly constructed pipelines
/// restored from the co-dumped checkpoints, comparing each FrameResult
/// bit-for-bit (doubles compared by bit pattern) against the recorded
/// tap. Never throws for divergence — the report carries the verdict;
/// state::SnapshotError from a damaged nested checkpoint is reported as
/// ok = false with the error in `note`.
ReplayReport replay_flight_dump(const DecodedDump& dump);

}  // namespace blinkradar::core
