#include "core/movement_detector.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"

namespace blinkradar::core {

MovementDetector::MovementDetector(const PipelineConfig& config,
                                   double frame_rate_hz)
    : config_(config) {
    BR_EXPECTS(frame_rate_hz > 0.0);
    BR_EXPECTS(config.movement_threshold_factor > 1.0);
    window_frames_ = static_cast<std::size_t>(
        config.movement_median_window_s * frame_rate_hz);
    BR_ENSURES(window_frames_ >= 8);
    diffs_.reset_capacity(window_frames_);
    median_scratch_.reserve(window_frames_);
}

void MovementDetector::reset() {
    previous_.clear();
    diffs_.clear();
    last_diff_ = 0.0;
}

double MovementDetector::median_difference() const {
    std::vector<double>& v = median_scratch_;
    v.clear();
    for (std::size_t i = 0; i < diffs_.size(); ++i) v.push_back(diffs_[i]);
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                     v.end());
    return v[mid];
}

bool MovementDetector::push(const dsp::ComplexSignal& frame) {
    BR_EXPECTS(!frame.empty());
    if (previous_.size() != frame.size()) {
        previous_.assign(frame.begin(), frame.end());
        return false;
    }
    double diff = 0.0;
    for (std::size_t b = 0; b < frame.size(); ++b)
        diff += std::norm(frame[b] - previous_[b]);
    previous_.assign(frame.begin(), frame.end());  // same size: no realloc
    last_diff_ = diff;

    bool triggered = false;
    // Only judge once the median window is at least half full, so the
    // first seconds establish a baseline instead of firing spuriously.
    if (diffs_.size() >= window_frames_ / 2) {
        const double med = median_difference();
        triggered = med > 0.0 &&
                    diff > config_.movement_threshold_factor * med;
    }
    // A triggered frame's difference is *not* pushed into the history —
    // one posture shift spans many frames and would poison the median.
    if (!triggered) diffs_.push_back(diff);  // ring evicts past the window
    return triggered;
}

}  // namespace blinkradar::core
