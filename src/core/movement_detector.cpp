#include "core/movement_detector.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"

namespace blinkradar::core {

MovementDetector::MovementDetector(const PipelineConfig& config,
                                   double frame_rate_hz)
    : config_(config) {
    BR_EXPECTS(frame_rate_hz > 0.0);
    BR_EXPECTS(config.movement_threshold_factor > 1.0);
    window_frames_ = static_cast<std::size_t>(
        config.movement_median_window_s * frame_rate_hz);
    BR_ENSURES(window_frames_ >= 8);
    diffs_.reset_capacity(window_frames_);
    sorted_diffs_.reserve(window_frames_);
}

void MovementDetector::reset() {
    previous_.clear();
    previous_soa_.clear();
    diffs_.clear();
    sorted_diffs_.clear();
    last_diff_ = 0.0;
}

double MovementDetector::median_difference() const {
    // The upper-middle order statistic, as std::nth_element(mid) returns.
    return sorted_diffs_[sorted_diffs_.size() / 2];
}

void MovementDetector::rebuild_sorted() {
    sorted_diffs_.clear();
    for (std::size_t i = 0; i < diffs_.size(); ++i)
        sorted_diffs_.push_back(diffs_[i]);
    std::sort(sorted_diffs_.begin(), sorted_diffs_.end());
}

namespace {
constexpr std::uint32_t kMovementTag = state::make_tag("MOVD");
constexpr std::uint16_t kMovementVersion = 1;
}  // namespace

void MovementDetector::save_state(state::StateWriter& writer) const {
    writer.begin_section(kMovementTag, kMovementVersion);
    if (soa_)
        writer.write_complex_planes(previous_soa_.i, previous_soa_.q);
    else
        writer.write_complex_span(previous_);
    writer.write_size(diffs_.size());
    for (std::size_t i = 0; i < diffs_.size(); ++i)
        writer.write_f64(diffs_[i]);
    writer.write_f64(last_diff_);
    writer.end_section();
}

void MovementDetector::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kMovementTag);
    if (version > kMovementVersion)
        throw state::SnapshotError(
            "MOVD: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kMovementVersion) + ")");
    dsp::ComplexSignal previous;
    reader.read_complex_into(previous);
    const std::size_t n_diffs = reader.read_size();
    if (n_diffs > diffs_.capacity())
        throw state::SnapshotError(
            "MOVD: snapshot holds " + std::to_string(n_diffs) +
            " window entries but this configuration's window is " +
            std::to_string(diffs_.capacity()));
    diffs_.clear();
    for (std::size_t i = 0; i < n_diffs; ++i)
        diffs_.push_back(reader.read_f64());
    previous_ = std::move(previous);
    // Fill both representations so either frame path continues bit-exactly
    // from the restore; the next push()/push_soa() re-establishes soa_.
    previous_soa_.resize(previous_.size());
    for (std::size_t b = 0; b < previous_.size(); ++b) {
        previous_soa_.i[b] = previous_[b].real();
        previous_soa_.q[b] = previous_[b].imag();
    }
    last_diff_ = reader.read_f64();
    rebuild_sorted();
    reader.close_section();
}

bool MovementDetector::push(const dsp::ComplexSignal& frame) {
    BR_EXPECTS(!frame.empty());
    if (previous_.size() != frame.size()) {
        previous_.assign(frame.begin(), frame.end());
        soa_ = false;
        return false;
    }
    double diff = 0.0;
    for (std::size_t b = 0; b < frame.size(); ++b)
        diff += std::norm(frame[b] - previous_[b]);
    previous_.assign(frame.begin(), frame.end());  // same size: no realloc
    soa_ = false;
    return judge_and_record(diff);
}

bool MovementDetector::push_soa(const dsp::IqPlanes& frame,
                                const dsp::KernelTable& kernels) {
    BR_EXPECTS(!frame.empty());
    if (previous_soa_.size() != frame.size()) {
        previous_soa_ = frame;
        soa_ = true;
        return false;
    }
    const double diff = kernels.movement_energy(
        frame.i.data(), frame.q.data(), previous_soa_.i.data(),
        previous_soa_.q.data(), frame.size());
    previous_soa_.i.assign(frame.i.begin(), frame.i.end());
    previous_soa_.q.assign(frame.q.begin(), frame.q.end());
    soa_ = true;
    return judge_and_record(diff);
}

bool MovementDetector::judge_and_record(double diff) {
    last_diff_ = diff;
    bool triggered = false;
    // Only judge once the median window is at least half full, so the
    // first seconds establish a baseline instead of firing spuriously.
    if (diffs_.size() >= window_frames_ / 2) {
        const double med = median_difference();
        triggered = med > 0.0 &&
                    diff > config_.movement_threshold_factor * med;
    }
    // A triggered frame's difference is *not* pushed into the history —
    // one posture shift spans many frames and would poison the median.
    if (!triggered) {
        if (diffs_.size() == window_frames_) {
            // The ring evicts its oldest entry; drop it from the sorted
            // mirror first (any equal element is interchangeable).
            const auto it = std::lower_bound(sorted_diffs_.begin(),
                                             sorted_diffs_.end(), diffs_[0]);
            sorted_diffs_.erase(it);
        }
        diffs_.push_back(diff);  // ring evicts past the window
        sorted_diffs_.insert(std::upper_bound(sorted_diffs_.begin(),
                                              sorted_diffs_.end(), diff),
                             diff);
    }
    return triggered;
}

}  // namespace blinkradar::core
