#include "core/drowsy.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/stats.hpp"

namespace blinkradar::core {

void DrowsinessDetector::train(std::span<const double> awake_rates,
                               std::span<const double> drowsy_rates) {
    BR_EXPECTS(!awake_rates.empty());
    BR_EXPECTS(!drowsy_rates.empty());
    awake_mean_ = dsp::mean(awake_rates);
    drowsy_mean_ = dsp::mean(drowsy_rates);

    // Spread-weighted midpoint: if one class is noisier, push the
    // threshold away from it. Falls back to the plain midpoint when the
    // spreads are degenerate (single training window per class) or the
    // training data is inverted (detection noise can swamp a small gap —
    // the classifier then degrades gracefully rather than refusing).
    const double sa = awake_rates.size() >= 2 ? dsp::stddev(awake_rates) : 0.0;
    const double sd =
        drowsy_rates.size() >= 2 ? dsp::stddev(drowsy_rates) : 0.0;
    if (drowsy_mean_ > awake_mean_ && sa + sd > 1e-9) {
        threshold_ = (awake_mean_ * sd + drowsy_mean_ * sa) / (sa + sd);
    } else {
        threshold_ = (awake_mean_ + drowsy_mean_) / 2.0;
    }
    trained_ = true;
}

namespace {
constexpr std::uint32_t kDrowsyTag = state::make_tag("DRWS");
constexpr std::uint16_t kDrowsyVersion = 1;
}  // namespace

void DrowsinessDetector::save_state(state::StateWriter& writer) const {
    writer.begin_section(kDrowsyTag, kDrowsyVersion);
    writer.write_bool(trained_);
    writer.write_f64(awake_mean_);
    writer.write_f64(drowsy_mean_);
    writer.write_f64(threshold_);
    writer.end_section();
}

void DrowsinessDetector::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kDrowsyTag);
    if (version > kDrowsyVersion)
        throw state::SnapshotError(
            "DRWS: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kDrowsyVersion) + ")");
    trained_ = reader.read_bool();
    awake_mean_ = reader.read_f64();
    drowsy_mean_ = reader.read_f64();
    threshold_ = reader.read_f64();
    reader.close_section();
}

DrowsinessLabel DrowsinessDetector::classify(double blink_rate_per_min) const {
    BR_EXPECTS(trained_);
    return blink_rate_per_min > threshold_ ? DrowsinessLabel::kDrowsy
                                           : DrowsinessLabel::kAwake;
}

std::vector<double> window_blink_rates(std::span<const DetectedBlink> blinks,
                                       Seconds duration_s, Seconds window_s,
                                       Seconds min_duration_s,
                                       double min_strength) {
    BR_EXPECTS(duration_s > 0.0);
    BR_EXPECTS(window_s > 0.0);
    BR_EXPECTS(min_duration_s >= 0.0);
    BR_EXPECTS(min_strength >= 0.0);
    std::vector<double> rates;
    for (Seconds start = 0.0; start + window_s / 2.0 <= duration_s;
         start += window_s) {
        const Seconds end = std::min(start + window_s, duration_s);
        std::size_t count = 0;
        for (const DetectedBlink& b : blinks)
            if (b.peak_s >= start && b.peak_s < end &&
                b.duration_s >= min_duration_s &&
                b.strength >= min_strength)
                ++count;
        const double minutes = (end - start) / 60.0;
        rates.push_back(static_cast<double>(count) / minutes);
    }
    return rates;
}

}  // namespace blinkradar::core
