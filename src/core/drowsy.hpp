// Drowsy-driving detection (paper Section IV-F).
//
// Drowsiness shows up as an elevated blink rate. The paper builds a
// per-user model from labelled awake/drowsy training windows and then
// classifies 1-minute windows of the live blink stream. This module
// implements that model plus the windowed-rate computation.
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/levd.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Classifier output.
enum class DrowsinessLabel { kAwake, kDrowsy };

/// Per-user blink-rate classifier.
///
/// Training computes the mean awake and mean drowsy rates and places the
/// decision threshold where the two class likelihoods cross under equal
/// in-class variances (the midpoint weighted by class spreads).
class DrowsinessDetector {
public:
    /// Train from labelled window rates (blinks per minute). Both spans
    /// must be non-empty. Physiologically the drowsy mean exceeds the
    /// awake mean; if detection noise inverts the training data the
    /// classifier still trains (plain midpoint) and degrades gracefully.
    void train(std::span<const double> awake_rates,
               std::span<const double> drowsy_rates);

    bool trained() const noexcept { return trained_; }

    /// Classify a 1-minute window rate.
    DrowsinessLabel classify(double blink_rate_per_min) const;

    /// The learned decision threshold (blinks per minute).
    double threshold_rate() const noexcept { return threshold_; }

    double awake_mean() const noexcept { return awake_mean_; }
    double drowsy_mean() const noexcept { return drowsy_mean_; }

    /// Snapshot the trained per-user model (section "DRWS") so a
    /// restarted process classifies without re-training.
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    bool trained_ = false;
    double awake_mean_ = 0.0;
    double drowsy_mean_ = 0.0;
    double threshold_ = 0.0;
};

/// Split a blink stream into consecutive windows of `window_s` and return
/// each window's blink rate in blinks/minute. Windows are counted over
/// [0, duration_s); a trailing partial window shorter than half the
/// window length is dropped. Only blinks with measured duration >=
/// `min_duration_s` are counted (0 counts everything).
///
/// Counting only *long* blinks implements the paper's physiological
/// observation directly: drowsy closures exceed 400 ms while alert blinks
/// stay under it, so the long-blink rate separates the states far more
/// robustly than the raw rate when detection noise is present. (LEVD
/// measures durations between the surrounding extrema, which adds
/// ~0.3 s of spread — hence the 0.75 s default rather than 0.4 s.)
/// `min_strength` additionally requires each counted blink's detection
/// confidence (magnitude over threshold) to reach the given value.
std::vector<double> window_blink_rates(std::span<const DetectedBlink> blinks,
                                       Seconds duration_s,
                                       Seconds window_s = 60.0,
                                       Seconds min_duration_s = 0.0,
                                       double min_strength = 0.0);

}  // namespace blinkradar::core
