#include "core/preprocess.hpp"

#include "common/contracts.hpp"
#include "dsp/smoothing.hpp"

namespace blinkradar::core {

Preprocessor::Preprocessor(const PipelineConfig& config)
    : fir_(dsp::FirFilter::low_pass(config.fir_order,
                                    /*cutoff_hz=*/config.fir_cutoff_norm,
                                    /*sample_rate_hz=*/1.0,
                                    config.fir_window)),
      smooth_window_(config.smooth_window_bins) {
    BR_EXPECTS(config.fir_cutoff_norm > 0.0 && config.fir_cutoff_norm < 0.5);
    BR_EXPECTS(config.smooth_window_bins >= 1);
}

radar::RadarFrame Preprocessor::apply(const radar::RadarFrame& frame) const {
    BR_EXPECTS(!frame.bins.empty());
    radar::RadarFrame out;
    out.timestamp_s = frame.timestamp_s;

    // FIR low-pass along fast time with group-delay compensation.
    const dsp::ComplexSignal filtered = fir_.filter(frame.bins);
    const std::size_t gd = static_cast<std::size_t>(fir_.group_delay_samples());
    dsp::ComplexSignal aligned(frame.bins.size(), dsp::Complex(0.0, 0.0));
    for (std::size_t b = 0; b + gd < filtered.size(); ++b)
        aligned[b] = filtered[b + gd];

    // Smoothing (moving-average) stage of the cascade.
    out.bins = dsp::moving_average(aligned, smooth_window_);
    return out;
}

radar::FrameSeries Preprocessor::apply(const radar::FrameSeries& series) const {
    radar::FrameSeries out;
    out.reserve(series.size());
    for (const radar::RadarFrame& f : series) out.push_back(apply(f));
    return out;
}

}  // namespace blinkradar::core
