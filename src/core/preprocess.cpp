#include "core/preprocess.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "dsp/frame_kernels.hpp"
#include "dsp/smoothing.hpp"
#include "obs/stage_timer.hpp"

namespace blinkradar::core {

Preprocessor::Preprocessor(const PipelineConfig& config)
    : fir_(dsp::FirFilter::low_pass(config.fir_order,
                                    /*cutoff_hz=*/config.fir_cutoff_norm,
                                    /*sample_rate_hz=*/1.0,
                                    config.fir_window)),
      smooth_window_(config.smooth_window_bins) {
    BR_EXPECTS(config.fir_cutoff_norm > 0.0 && config.fir_cutoff_norm < 0.5);
    BR_EXPECTS(config.smooth_window_bins >= 1);
}

radar::RadarFrame Preprocessor::apply(const radar::RadarFrame& frame) const {
    radar::RadarFrame out;
    apply_into(frame, out);
    return out;
}

void Preprocessor::apply_into(const radar::RadarFrame& frame,
                              radar::RadarFrame& out) const {
    BR_EXPECTS(!frame.bins.empty());
    BR_EXPECTS(&frame != &out);
    out.timestamp_s = frame.timestamp_s;

    // FIR low-pass along fast time with group-delay compensation.
    fir_.filter_into(frame.bins, filtered_);
    const std::size_t gd = static_cast<std::size_t>(fir_.group_delay_samples());
    const std::size_t n = frame.bins.size();
    aligned_.resize(n);
    std::size_t b = 0;
    for (; b + gd < n; ++b) aligned_[b] = filtered_[b + gd];
    // The shift leaves no filtered samples for the last `gd` bins. Hold
    // them at the nearest filtered value instead of zeroing: a hard zero
    // edge is a fake clutter step that the movement detector and the
    // smoothing stage would otherwise see every frame.
    const dsp::Complex edge =
        b > 0 ? aligned_[b - 1] : dsp::Complex(0.0, 0.0);
    for (; b < n; ++b) aligned_[b] = edge;

    // Smoothing (moving-average) stage of the cascade.
    dsp::moving_average_into(aligned_, smooth_window_, out.bins, prefix_);
}

void Preprocessor::apply_soa(const radar::RadarFrame& frame,
                             dsp::IqPlanes& out,
                             const obs::KernelTimers* timers) const {
    BR_EXPECTS(!frame.bins.empty());
    const dsp::KernelTable& kern = dsp::active_kernels();
    const std::size_t n = frame.bins.size();
    in_planes_.resize(n);
    kern.deinterleave(frame.bins.data(), n, in_planes_.i.data(),
                      in_planes_.q.data());

    {
        obs::StageTimer t(timers ? timers->preprocess_fir : nullptr);
        fir_.filter_planes_into(in_planes_, filtered_planes_);
    }

    // Group-delay alignment: shift both planes by gd with edge hold,
    // mirroring the complex loop in apply_into() element for element.
    const std::size_t gd = static_cast<std::size_t>(fir_.group_delay_samples());
    aligned_planes_.resize(n);
    const std::size_t m = n > gd ? n - gd : 0;
    std::copy(filtered_planes_.i.begin() + static_cast<std::ptrdiff_t>(gd),
              filtered_planes_.i.begin() + static_cast<std::ptrdiff_t>(gd + m),
              aligned_planes_.i.begin());
    std::copy(filtered_planes_.q.begin() + static_cast<std::ptrdiff_t>(gd),
              filtered_planes_.q.begin() + static_cast<std::ptrdiff_t>(gd + m),
              aligned_planes_.q.begin());
    const double edge_i = m > 0 ? aligned_planes_.i[m - 1] : 0.0;
    const double edge_q = m > 0 ? aligned_planes_.q[m - 1] : 0.0;
    std::fill(aligned_planes_.i.begin() + static_cast<std::ptrdiff_t>(m),
              aligned_planes_.i.end(), edge_i);
    std::fill(aligned_planes_.q.begin() + static_cast<std::ptrdiff_t>(m),
              aligned_planes_.q.end(), edge_q);

    {
        obs::StageTimer t(timers ? timers->preprocess_smooth : nullptr);
        dsp::moving_average_planes_into(aligned_planes_, smooth_window_, out,
                                        prefix_planes_);
    }
}

namespace {
constexpr std::uint32_t kPreprocessTag = state::make_tag("PREP");
constexpr std::uint16_t kPreprocessVersion = 1;
}  // namespace

void Preprocessor::save_state(state::StateWriter& writer) const {
    writer.begin_section(kPreprocessTag, kPreprocessVersion);
    writer.end_section();
}

void Preprocessor::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kPreprocessTag);
    if (version > kPreprocessVersion)
        throw state::SnapshotError(
            "PREP: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kPreprocessVersion) + ")");
    reader.close_section();
}

radar::FrameSeries Preprocessor::apply(const radar::FrameSeries& series) const {
    radar::FrameSeries out;
    out.resize(series.size());
    for (std::size_t i = 0; i < series.size(); ++i)
        apply_into(series[i], out[i]);
    return out;
}

}  // namespace blinkradar::core
