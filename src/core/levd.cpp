#include "core/levd.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::core {

Levd::Levd(const PipelineConfig& config, double frame_rate_hz)
    : config_(config), frame_rate_hz_(frame_rate_hz) {
    BR_EXPECTS(frame_rate_hz > 0.0);
    BR_EXPECTS(config.threshold_sigma > 0.0);
    BR_EXPECTS(config.noise_window_s > 0.0);
    // Round (not truncate): a 7.99-frame window is an 8-frame window,
    // not a contract violation.
    noise_window_frames_ = static_cast<std::size_t>(
        std::llround(config.noise_window_s * frame_rate_hz));
    if (noise_window_frames_ < 8) {
        throw ContractViolation(
            "Levd: noise_window_s * frame_rate_hz must give at least 8 "
            "frames; got noise_window_s=" +
            std::to_string(config.noise_window_s) +
            " * frame_rate_hz=" + std::to_string(frame_rate_hz) + " -> " +
            std::to_string(noise_window_frames_) + " frames");
    }
    // Storage sized once here; the per-sample path never allocates.
    buffer_.reset_capacity(noise_window_frames_);
    smooth_taps_.reset_capacity(3);
    recent_.reserve(4);
    diff_scratch_.reserve(noise_window_frames_);
}

void Levd::reset() {
    buffer_.clear();
    recent_.clear();
    smooth_taps_.clear();
    sigma_ = 0.0;
    threshold_ = 0.0;
    frames_since_sigma_ = 0;
    sigma_updates_ = 0;
    last_min_.reset();
    pending_max_.reset();
    rise_start_.reset();
    // last_emit_s_ is kept: the refractory must survive restarts.
}

void Levd::warm_up(Seconds t, double value) {
    buffer_.push_back(Sample{t, value});  // ring evicts past the window
    update_noise_estimate();
}

void Levd::update_noise_estimate() {
    if (buffer_.size() < noise_window_frames_ / 4) return;
    // Robust sigma of the no-blink waveform *at blink timescale*: 1.4826 *
    // MAD of differences taken at a lag matching a blink's closing phase
    // (~0.15 s). The lag makes the estimate sensitive to exactly the
    // variations a blink must out-climb — local noise plus the baseline
    // slope at that timescale — while the median stays robust to the
    // sparse, steep blink bumps themselves, so blinks never inflate their
    // own threshold.
    const std::size_t lag = std::max<std::size_t>(
        1, static_cast<std::size_t>(0.15 * frame_rate_hz_));
    if (buffer_.size() <= lag + 1) return;
    std::vector<double>& diffs = diff_scratch_;
    diffs.clear();
    for (std::size_t i = lag; i < buffer_.size(); ++i)
        diffs.push_back(std::abs(buffer_[i].v - buffer_[i - lag].v));
    BR_ASSERT(!diffs.empty());
    // 25th percentile rather than the median: drowsy blinks are long and
    // frequent enough to cover ~half of all samples, which would inflate
    // a median-based estimate (and with it the threshold) exactly when
    // sensitivity matters. The 25th percentile of |lag-diff| stays inside
    // the clean half of the data; for half-normal |diffs| the matching
    // scale factor is 1 / (sqrt(2) erfinv(0.25)) = 1/0.3186, and the
    // final 1/sqrt(2) converts a difference sigma to a sample sigma.
    const std::size_t q25 = diffs.size() / 4;
    std::nth_element(diffs.begin(),
                     diffs.begin() + static_cast<std::ptrdiff_t>(q25),
                     diffs.end());
    const double quantile = diffs[q25];
    const double fresh = quantile / 0.3186 / std::sqrt(2.0);
    // Exponentially smooth the estimate: the windowed quantile has enough
    // sampling variance that its transient dips would momentarily drop
    // the threshold into the noise. The very first estimate is doubled —
    // a deliberately conservative start that converges downward, so the
    // cold detector never opens with an under-estimated threshold.
    sigma_ = sigma_ == 0.0 ? 2.0 * fresh : 0.85 * sigma_ + 0.15 * fresh;
    ++sigma_updates_;
    threshold_ = config_.threshold_sigma * sigma_;
}

namespace {

constexpr std::uint32_t kLevdTag = state::make_tag("LEVD");
constexpr std::uint16_t kLevdVersion = 1;

void write_optional_sample(state::StateWriter& writer, Seconds t, double v,
                           bool present) {
    writer.write_bool(present);
    writer.write_f64(present ? t : 0.0);
    writer.write_f64(present ? v : 0.0);
}

}  // namespace

void Levd::save_state(state::StateWriter& writer) const {
    writer.begin_section(kLevdTag, kLevdVersion);
    writer.write_size(buffer_.size());
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
        writer.write_f64(buffer_[i].t);
        writer.write_f64(buffer_[i].v);
    }
    writer.write_size(recent_.size());
    for (const Sample& s : recent_) {
        writer.write_f64(s.t);
        writer.write_f64(s.v);
    }
    writer.write_size(smooth_taps_.size());
    for (std::size_t i = 0; i < smooth_taps_.size(); ++i)
        writer.write_f64(smooth_taps_[i]);
    writer.write_f64(sigma_);
    writer.write_f64(threshold_);
    writer.write_size(frames_since_sigma_);
    writer.write_size(sigma_updates_);
    write_optional_sample(writer, last_min_ ? last_min_->t : 0.0,
                          last_min_ ? last_min_->v : 0.0,
                          last_min_.has_value());
    write_optional_sample(writer, pending_max_ ? pending_max_->t : 0.0,
                          pending_max_ ? pending_max_->v : 0.0,
                          pending_max_.has_value());
    write_optional_sample(writer, rise_start_ ? rise_start_->t : 0.0,
                          rise_start_ ? rise_start_->v : 0.0,
                          rise_start_.has_value());
    writer.write_f64(last_emit_s_);
    writer.end_section();
}

void Levd::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kLevdTag);
    if (version > kLevdVersion)
        throw state::SnapshotError(
            "LEVD: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kLevdVersion) + ")");
    const auto read_sample = [&reader] {
        Sample s;
        s.t = reader.read_f64();
        s.v = reader.read_f64();
        return s;
    };
    const auto read_optional = [&] {
        const bool present = reader.read_bool();
        const Sample s = read_sample();
        return present ? std::optional<Sample>(s) : std::nullopt;
    };
    const std::size_t n_buffer = reader.read_size();
    if (n_buffer > buffer_.capacity())
        throw state::SnapshotError(
            "LEVD: snapshot noise window holds " + std::to_string(n_buffer) +
            " samples but this configuration's window is " +
            std::to_string(buffer_.capacity()));
    buffer_.clear();
    for (std::size_t i = 0; i < n_buffer; ++i)
        buffer_.push_back(read_sample());
    const std::size_t n_recent = reader.read_size();
    if (n_recent > 3)
        throw state::SnapshotError(
            "LEVD: snapshot recent-sample list holds " +
            std::to_string(n_recent) + " entries; at most 3 are valid");
    recent_.clear();
    for (std::size_t i = 0; i < n_recent; ++i)
        recent_.push_back(read_sample());
    const std::size_t n_taps = reader.read_size();
    if (n_taps > smooth_taps_.capacity())
        throw state::SnapshotError(
            "LEVD: snapshot smoother holds " + std::to_string(n_taps) +
            " taps; at most " + std::to_string(smooth_taps_.capacity()) +
            " are valid");
    smooth_taps_.clear();
    for (std::size_t i = 0; i < n_taps; ++i)
        smooth_taps_.push_back(reader.read_f64());
    sigma_ = reader.read_f64();
    threshold_ = reader.read_f64();
    frames_since_sigma_ = reader.read_size();
    sigma_updates_ = reader.read_size();
    last_min_ = read_optional();
    pending_max_ = read_optional();
    rise_start_ = read_optional();
    last_emit_s_ = reader.read_f64();
    reader.close_section();
}

std::optional<DetectedBlink> Levd::push(Seconds t, double value) {
    // 3-point smoothing kills single-sample noise extrema without
    // displacing blink bumps (5+ frames wide).
    smooth_taps_.push_back(value);  // 3-slot ring: oldest tap drops out
    double smoothed = 0.0;
    for (std::size_t i = 0; i < smooth_taps_.size(); ++i)
        smoothed += smooth_taps_[i];
    smoothed /= static_cast<double>(smooth_taps_.size());

    const Sample s{t, smoothed};
    buffer_.push_back(s);  // ring evicts past the noise window
    if (++frames_since_sigma_ >= 5) {
        frames_since_sigma_ = 0;
        update_noise_estimate();
    }

    recent_.push_back(s);
    if (recent_.size() > 3) recent_.erase(recent_.begin());
    // Hold detection until the noise estimate has matured (several EMA
    // updates): an immature threshold wanders low and passes noise.
    if (recent_.size() < 3 || threshold_ <= 0.0 || sigma_updates_ < 8)
        return std::nullopt;

    const Sample& a = recent_[0];
    const Sample& b = recent_[1];
    const Sample& c = recent_[2];
    if (b.v > a.v && b.v >= c.v) return on_local_max(b);
    if (b.v < a.v && b.v <= c.v) return on_local_min(b);
    return std::nullopt;
}

std::optional<DetectedBlink> Levd::on_local_max(const Sample& s) {
    // "Nearby extrema" semantics: the rise is measured against the lowest
    // sample within the preceding max_rise_s window. Using a windowed
    // minimum (rather than the last strict local minimum) keeps blinks
    // detectable when they ride on a slowly rising baseline, where a
    // monotonic climb leaves no recent local minimum at all.
    const Sample* window_min = nullptr;
    const Sample* steep_ref = nullptr;  // newest sample ~0.25 s back
    for (std::size_t i = buffer_.size(); i-- > 0;) {  // newest to oldest
        const Sample& past = buffer_[i];
        if (s.t - past.t > config_.max_rise_s) break;
        if (past.t >= s.t) continue;
        if (!window_min || past.v < window_min->v) window_min = &past;
        if (s.t - past.t >= 0.25 && !steep_ref) steep_ref = &past;
    }
    // Steepness: the eyelid closes within ~100-400 ms, so a genuine blink
    // climbs a large share of the threshold within the last quarter
    // second; a broad swell (respiration, posture drift) does not.
    const bool steep =
        steep_ref == nullptr || s.v - steep_ref->v >= 0.5 * threshold_;
    if (window_min && steep && s.v - window_min->v >= threshold_) {
        // A qualifying rise replaces any pending one — the newest bump is
        // the live candidate.
        if (!pending_max_ || s.v > pending_max_->v ||
            s.t - pending_max_->t > config_.max_blink_s) {
            pending_max_ = s;
            rise_start_ = *window_min;
        }
    }
    return std::nullopt;
}

std::optional<DetectedBlink> Levd::on_local_min(const Sample& s) {
    std::optional<DetectedBlink> result;
    if (pending_max_ && rise_start_) {
        const double fall = pending_max_->v - s.v;
        const double rise = pending_max_->v - rise_start_->v;
        // Confirm only when most of the *bump's own height* has been
        // given back (the waveform may settle on a slightly different
        // baseline after head drift, hence not 100 %). Comparing against
        // the bump height rather than the detection threshold stops noise
        // dips on the flank of a slow, tall swell from confirming it
        // early — the swell instead runs into the max-duration gate.
        if (fall >= 0.6 * rise) {
            const Seconds duration = s.t - rise_start_->t;
            const bool plausible = duration >= config_.min_blink_s &&
                                   duration <= config_.max_blink_s;
            const bool clear_of_refractory =
                pending_max_->t - last_emit_s_ >= config_.refractory_s;
            if (plausible && clear_of_refractory) {
                DetectedBlink blink;
                blink.peak_s = pending_max_->t;
                blink.duration_s = duration;
                blink.magnitude = pending_max_->v - rise_start_->v;
                blink.strength =
                    threshold_ > 0.0 ? blink.magnitude / threshold_ : 0.0;
                last_emit_s_ = pending_max_->t;
                result = blink;
            }
            pending_max_.reset();
            rise_start_.reset();
        } else if (s.t - pending_max_->t > config_.max_blink_s) {
            // The bump never fell back: it was a baseline step (posture
            // drift), not a blink. Expire it so it cannot claim a later,
            // unrelated fall.
            pending_max_.reset();
            rise_start_.reset();
        }
    }
    // Always track the most recent local minimum: LEVD compares *nearby*
    // extrema, so an old deep minimum must not inflate later rises.
    last_min_ = s;
    return result;
}

}  // namespace blinkradar::core
