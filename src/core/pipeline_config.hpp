// All tunables of the BlinkRadar detection pipeline in one place.
//
// Defaults implement the paper's published choices (order-26 Hamming FIR,
// 5 sigma LEVD threshold, 50-chirp / 2 s cold start, Pratt arc fitting);
// the enum knobs select the ablation baselines evaluated in
// bench_ablation_detectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "dsp/window.hpp"

namespace blinkradar::core {

/// Which per-frame DSP implementation the pipeline runs.
///
/// The two paths produce deliberately *different* (both correct) outputs:
/// the SoA path fuses preprocess/background/variance into single-pass
/// kernels with a fixed-stripe reduction order and caps the bin-selection
/// candidate list, so its floating-point results diverge from the scalar
/// reference after a few hundred frames. Each path is individually
/// deterministic, and the resolved path is recorded in the PIPE snapshot
/// fingerprint so resume/replay never silently mixes them. Within the SoA
/// path the SIMD backend (scalar/AVX2/NEON, see dsp::active_kernels) is
/// bit-irrelevant by construction.
enum class DspPath : std::uint8_t {
    kScalar = 0,  ///< legacy interleaved-complex reference path
    kSimd = 1,    ///< structure-of-arrays fused/vectorized path
    kAuto = 2,    ///< resolve at construction: env BLINKRADAR_DSP_PATH
                  ///< ("scalar"/"simd") if set, else kSimd
};

/// How the range bin carrying the blink signal is chosen.
enum class BinSelectionMode {
    /// The paper's method: rank bins by 2-D I/Q scatter variance (driven
    /// by the embedded respiration/BCG interference), then prefer bins
    /// whose trajectory is a clean thin arc.
    kArcVariance,
    /// Naive baseline: the strongest bin by mean power after background
    /// subtraction (the paper argues this fails because eye reflections
    /// are weaker than seats/steering-wheel returns).
    kMaxPower,
};

/// Which circle-fit algorithm estimates the viewing position.
enum class CircleFitMethod { kPratt, kKasa, kTaubin };

/// Which scalar waveform feeds the LEVD detector.
enum class WaveformMode {
    /// The paper's method: distance from the fitted viewing position,
    /// d(t) = |IQ(t) - centre| — insensitive to the phase rotations that
    /// head motion causes, sensitive to the amplitude change blinks cause.
    kArcDistance,
    /// Amplitude-only baseline: d(t) = |IQ(t)| (1-D amplitude).
    kAmplitude,
    /// Phase-only baseline: d(t) = unwrapped arg(IQ(t)) scaled by the
    /// running amplitude.
    kPhase,
};

/// Front-end frame validation and graceful degradation. The guard sits
/// between the sensor and the detection chain: it quarantines structurally
/// broken frames (wrong bin count, non-finite samples or timestamps,
/// out-of-order/duplicate timestamps), bridges short frame-drop gaps by
/// sample-hold using the real timestamps, and drives the
/// OK -> DEGRADED -> SIGNAL_LOST -> recovering health state machine.
/// With a clean input stream it is a pure pass-through: the pipeline's
/// output is bit-identical to running with the guard disabled.
struct FrameGuardConfig {
    bool enabled = true;
    /// A timestamp advance beyond this many nominal frame periods is a
    /// gap (dropped frames); shorter irregularities pass through.
    double gap_tolerance_periods = 1.6;
    /// Longest gap bridged by sample-hold; anything longer is treated as
    /// signal loss and recovered from via a warm restart.
    Seconds max_bridge_gap_s = 0.6;
    /// Largest fraction of a frame's samples repairable (non-finite ->
    /// sample-hold) before the whole frame is quarantined instead.
    double max_repair_fraction = 0.25;
    /// Rolling window for the fault-rate estimate behind DEGRADED.
    Seconds health_window_s = 4.0;
    /// Fault fraction (quarantined/repaired/bridged frames over the
    /// window) at which health degrades; recovers below half this rate.
    double degraded_fault_rate = 0.03;
    /// Consecutive quarantined frames before health drops to SIGNAL_LOST.
    std::size_t lost_after_quarantines = 12;
};

/// Pipeline configuration; defaults follow the paper.
struct PipelineConfig {
    // --- Frame DSP path ---
    /// kAuto resolves at pipeline construction (explicit values win over
    /// the BLINKRADAR_DSP_PATH environment override); the pipeline writes
    /// the resolved value back into its config() copy so snapshots and
    /// flight dumps always carry a concrete path.
    DspPath dsp_path = DspPath::kAuto;

    /// Prefix for every metric this pipeline registers (e.g. "scalar."),
    /// so two instrumented pipelines can share one MetricsRegistry.
    /// Observation-only: not serialized, no effect on results.
    std::string metrics_prefix{};

    // --- Noise reduction (Section IV-B1) ---
    std::size_t fir_order = 26;               ///< paper: order 26
    dsp::WindowType fir_window = dsp::WindowType::kHamming;
    /// Fast-time FIR cutoff as a fraction of the fast-time sampling rate.
    double fir_cutoff_norm = 0.10;
    /// Fast-time smoothing window, in range bins. (The paper smooths over
    /// 50 samples at its much finer fast-time sampling; this is the same
    /// physical extent at the frame simulator's 1 cm bin spacing.)
    std::size_t smooth_window_bins = 5;

    // --- Background subtraction (Section IV-B2) ---
    /// Loopback-filter adaptation rate. Deliberately very slow (~80 s time
    /// constant at 25 fps): static clutter is captured instantly by the
    /// first-frame priming, and a slow filter avoids chasing the breathing
    /// driver (which would wobble the arc centre the detector relies on).
    /// Restarts re-prime it after posture changes.
    double background_alpha = 0.0005;

    // --- Bin selection (Section IV-D) ---
    BinSelectionMode selection_mode = BinSelectionMode::kArcVariance;
    Meters selection_min_range_m = 0.10;  ///< exclude direct leakage
    Meters selection_max_range_m = 1.00;  ///< exclude far clutter
    double min_variance_factor = 5.0;     ///< significance over median bin
    /// SoA-path selection cap: stop fitting once this many candidates
    /// survived the arc gates (0 = uncapped; the scalar path is always
    /// uncapped). See BinSelector::select_soa.
    std::size_t top_candidates = 5;
    /// Slow-time frames per selection pass (the most recent ones).
    std::size_t selection_window_frames = 100;

    // --- Viewing position (Section IV-E) ---
    CircleFitMethod fit_method = CircleFitMethod::kPratt;
    std::size_t cold_start_frames = 50;      ///< paper: 50 chirps = 2 s
    /// Samples per arc fit once enough history exists. Longer windows see
    /// more of the respiration/BCG arc and estimate the centre far more
    /// accurately; the cold start still emits after 50 chirps.
    std::size_t fit_window_frames = 250;
    std::size_t update_interval_frames = 25; ///< refit cadence (1 s)
    std::size_t reselect_interval_frames = 100; ///< bin re-scoring cadence
    /// Exponential blending factor for viewing-position updates: the new
    /// centre is blended into the running one so refits never step the
    /// distance waveform (steps would masquerade as extrema to LEVD).
    double viewing_blend = 0.25;
    /// Hysteresis for bin switching: a challenger must beat the current
    /// bin's arc score by this factor before the pipeline hops bins.
    double reselect_hysteresis = 2.0;
    /// SoA-path steady-state reselect cadence: every Nth periodic
    /// reselect runs the full descending-variance scan; the others only
    /// re-score the tracked bin and keep it while it still traces a
    /// clean arc (a failed keep-check falls through to a full scan, so
    /// bin *switches* always go through the fully gated scan). Raising
    /// this bounds the amortized reselect cost on constrained hosts at
    /// the price of reacting up to N-1 reselect intervals late when a
    /// better far bin appears; the reference configuration keeps every
    /// pass full because that staleness measurably costs detection
    /// accuracy. The scalar path always full-scans.
    std::size_t full_reselect_stride = 1;

    // --- LEVD blink detection (Section IV-E) ---
    WaveformMode waveform_mode = WaveformMode::kArcDistance;
    double threshold_sigma = 5.5;   ///< multiple of the no-blink sigma (paper: 5x)
    Seconds min_blink_s = 0.06;     ///< reject sub-physiological bumps
    Seconds max_blink_s = 1.5;      ///< reject slow posture artefacts
    /// Maximum min->max rise time: the eyelid closes within ~1/3 of the
    /// blink, so even a slow drowsy blink rises in well under 0.6 s;
    /// respiration-driven baseline bumps rise over 1-2 s and are rejected.
    Seconds max_rise_s = 0.6;
    Seconds refractory_s = 0.35;    ///< one event per bump
    Seconds noise_window_s = 4.0;   ///< robust noise estimation window
    /// Motion-artifact veto: drop a detected bump when |corr(d, theta)|
    /// over the bump exceeds this value — the bump is then explained by
    /// head motion sliding the reflector along the range point-spread
    /// slope (range migration), not by a blink. Set >= 1.0 to disable.
    /// Disabled by default: on simulated data it rejects as many true
    /// blinks (which coincide with ongoing BCG rotation) as artifacts;
    /// kept as an ablation knob.
    double motion_veto_correlation = 1.5;
    /// Subtract the theta-regression (rotation leak) from d(t) before
    /// LEVD. Disabled by default: the blink's own lid-path phase change
    /// perturbs theta, so the regression eats part of the blink bump;
    /// kept as an ablation knob.
    bool motion_compensation = false;

    // --- Restart on large body movement (Section IV-E) ---
    double movement_threshold_factor = 120.0; ///< x rolling median frame diff
    Seconds movement_median_window_s = 4.0;

    // --- Frame guard / graceful degradation (reproduction extension) ---
    FrameGuardConfig guard;
};

}  // namespace blinkradar::core
