#include "core/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/contracts.hpp"
#include "core/postmortem.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

namespace {

void bump(std::uint64_t& stat, obs::Counter* counter) {
    ++stat;
    if (counter != nullptr) counter->inc();
}

double steady_now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

Supervisor::Supervisor(const radar::RadarConfig& radar,
                       PipelineConfig pipeline_config, SupervisorConfig config,
                       obs::MetricsRegistry* metrics, obs::TraceSink* trace)
    : radar_(radar),
      pipeline_config_(pipeline_config),
      config_(std::move(config)),
      metrics_(metrics),
      trace_(trace),
      jitter_rng_(Rng(config_.seed).fork()) {
    BR_EXPECTS(config_.backoff_jitter >= 0.0 && config_.backoff_jitter < 1.0);
    BR_EXPECTS(config_.backoff_base_frames >= 1);
    BR_EXPECTS(config_.stall_timeout_s >= 0.0);
    // Reclaim temp files a crashed predecessor left next to the slot
    // files (and in the dump directory, when separate): the unique
    // temp-name scheme never reuses them, so they are pure disk leaks.
    if (!config_.snapshot_dir.empty())
        state::cleanup_orphan_temps(config_.snapshot_dir);
    if (!config_.dump_dir.empty() &&
        config_.dump_dir != config_.snapshot_dir)
        state::cleanup_orphan_temps(config_.dump_dir);
    // The recorder must exist before the first pipeline: every pipeline
    // this supervisor ever constructs shares it.
    if (config_.flight_recorder)
        recorder_ = std::make_unique<obs::FlightRecorder>(config_.recorder);
    pipeline_ = make_pipeline();
    if (metrics_ != nullptr) {
        counters_.frames = &metrics_->counter("supervisor.frames");
        counters_.frame_faults = &metrics_->counter("supervisor.frame_faults");
        counters_.retries = &metrics_->counter("supervisor.retries");
        counters_.warm_restores =
            &metrics_->counter("supervisor.warm_restores");
        counters_.cold_restarts =
            &metrics_->counter("supervisor.cold_restarts");
        counters_.snapshots = &metrics_->counter("supervisor.snapshots");
        counters_.snapshot_failures =
            &metrics_->counter("supervisor.snapshot_failures");
        counters_.restore_failures =
            &metrics_->counter("supervisor.restore_failures");
        counters_.backoff_skipped =
            &metrics_->counter("supervisor.backoff_skipped_frames");
        counters_.stalls = &metrics_->counter("supervisor.stalls");
        counters_.dumps = &metrics_->counter("supervisor.dumps");
        counters_.dump_failures =
            &metrics_->counter("supervisor.dump_failures");
    }
}

std::unique_ptr<BlinkRadarPipeline> Supervisor::make_pipeline() const {
    return std::make_unique<BlinkRadarPipeline>(radar_, pipeline_config_,
                                                metrics_, trace_,
                                                recorder_.get());
}

double Supervisor::now() { return clock_ ? clock_() : steady_now_s(); }

FrameResult Supervisor::skipped_result() const {
    FrameResult result;
    result.quality = FrameVerdict::kQuarantined;
    result.cold_start = true;
    result.health = pipeline_->health();
    return result;
}

FrameResult Supervisor::process(const radar::RadarFrame& frame) {
    bump(stats_.frames, counters_.frames);

    // Stall watchdog: a long wall-clock gap means the feed wedged. The
    // pipeline state itself is intact (FrameGuard handles the timestamp
    // gap), so the response is to checkpoint promptly once the stream is
    // flowing again — an outage that wedged the feed may next take the
    // process down, and the pre-stall checkpoint could be arbitrarily old.
    const double wall = now();
    if (config_.stall_timeout_s > 0.0 && have_last_wall_ &&
        wall - last_wall_s_ > config_.stall_timeout_s) {
        bump(stats_.stalls, counters_.stalls);
        snapshot_due_ = true;
        if (recorder_ != nullptr)
            recorder_->record_event(obs::RecorderEvent::kSupervisorStall,
                                    frame.timestamp_s, wall - last_wall_s_);
        // A feed that wedged once may take the process down next: flush
        // the trace tail and capture the black box while we can.
        escalation_dump("stall");
    }
    have_last_wall_ = true;
    last_wall_s_ = wall;

    // Backoff window after a warm restore that did not stop the crash
    // storm: keep the pipeline untouched until the budget drains.
    if (backoff_remaining_ > 0) {
        --backoff_remaining_;
        bump(stats_.backoff_skipped, counters_.backoff_skipped);
        clean_streak_ = 0;
        return skipped_result();
    }

    std::size_t attempts = 0;
    bool restored_this_frame = false;
    for (;;) {
        try {
            const FrameResult result = attempt(frame);
            fault_dump_written_ = false;  // next fault run dumps afresh
            if (++clean_streak_ >= config_.ladder_reset_frames)
                consecutive_warm_restores_ = 0;
            ++frames_since_snapshot_;
            if (snapshot_due_ ||
                (config_.snapshot_interval_frames > 0 &&
                 frames_since_snapshot_ >= config_.snapshot_interval_frames)) {
                snapshot_now();
                snapshot_due_ = false;
            }
            return result;
        } catch (const std::exception&) {
            bump(stats_.frame_faults, counters_.frame_faults);
            clean_streak_ = 0;
            if (recorder_ != nullptr)
                recorder_->record_event(obs::RecorderEvent::kSupervisorFault,
                                        frame.timestamp_s);
            // One automatic dump per fault run, at the first exception:
            // the rings then hold the healthy lead-up plus the crash
            // frame itself, and later escalation dumps capture the rest.
            if (!fault_dump_written_) {
                fault_dump_written_ = true;
                escalation_dump("frame_fault");
            }
            // Rung 1: retry the frame in place (transient faults).
            if (attempts < config_.max_frame_retries) {
                ++attempts;
                bump(stats_.retries, counters_.retries);
                if (recorder_ != nullptr)
                    recorder_->record_event(
                        obs::RecorderEvent::kSupervisorRetry,
                        frame.timestamp_s, static_cast<double>(attempts));
                continue;
            }
            // A restore already happened for this frame and it still
            // crashes: the fault is input- or environment-driven. Back
            // off (exponentially in the restore run, jittered) before
            // the ladder climbs again.
            if (restored_this_frame) {
                backoff_remaining_ =
                    backoff_frames(consecutive_warm_restores_ - 1);
                if (recorder_ != nullptr)
                    recorder_->record_event(
                        obs::RecorderEvent::kSupervisorBackoff,
                        frame.timestamp_s,
                        static_cast<double>(backoff_remaining_));
                return skipped_result();
            }
            // Rung 3: the ladder is exhausted — rebuild from scratch.
            if (consecutive_warm_restores_ >= config_.max_warm_restores) {
                cold_restart();
                if (recorder_ != nullptr)
                    recorder_->record_event(
                        obs::RecorderEvent::kSupervisorColdRestart,
                        frame.timestamp_s);
                escalation_dump("cold_restart");
                return skipped_result();
            }
            // Rung 2: warm-restore from the newest readable snapshot.
            ++consecutive_warm_restores_;
            if (!warm_restore()) {
                cold_restart();
                if (recorder_ != nullptr)
                    recorder_->record_event(
                        obs::RecorderEvent::kSupervisorColdRestart,
                        frame.timestamp_s);
                escalation_dump("cold_restart");
                return skipped_result();
            }
            restored_this_frame = true;
            if (recorder_ != nullptr)
                recorder_->record_event(
                    obs::RecorderEvent::kSupervisorWarmRestore,
                    frame.timestamp_s,
                    static_cast<double>(consecutive_warm_restores_));
            escalation_dump("warm_restore");
        }
    }
}

FrameResult Supervisor::attempt(const radar::RadarFrame& frame) {
    if (fault_hook_) fault_hook_(stats_.frames - 1);
    return pipeline_->process(frame);
}

std::vector<std::uint8_t> Supervisor::serialize_pipeline() const {
    state::StateWriter writer;
    pipeline_->save_state(writer);
    return writer.finish();
}

std::string Supervisor::slot_path(std::size_t slot) const {
    return config_.snapshot_dir + "/" + config_.snapshot_basename + ".slot" +
           std::to_string(slot) + ".snap";
}

bool Supervisor::snapshot_now() {
    std::vector<std::uint8_t> bytes;
    try {
        bytes = serialize_pipeline();
    } catch (const std::exception&) {
        // Serialisation failing is a bug, but the supervisor's contract
        // is that checkpointing never takes the run loop down.
        bump(stats_.snapshot_failures, counters_.snapshot_failures);
        return false;
    }
    last_good_ = std::move(bytes);
    frames_since_snapshot_ = 0;
    bump(stats_.snapshots, counters_.snapshots);
    // Feed the autosnapshot to the black box as a replay base: it is the
    // live state at the current recorder sequence (see postmortem.hpp).
    if (recorder_ != nullptr) recorder_->note_checkpoint(last_good_);
    if (config_.snapshot_dir.empty()) return true;
    try {
        state::write_snapshot_file(slot_path(next_slot_), last_good_);
        newest_slot_ = next_slot_;
        have_slot_ = true;
        next_slot_ ^= 1u;
        return true;
    } catch (const state::SnapshotError&) {
        bump(stats_.snapshot_failures, counters_.snapshot_failures);
        return false;
    }
}

bool Supervisor::restore_from_bytes(const std::vector<std::uint8_t>& bytes) {
    // Restore into a *fresh* pipeline: restore_state may leave its
    // target half-mutated on throw, and the current pipeline is the only
    // fallback we have until another source is tried.
    std::unique_ptr<BlinkRadarPipeline> fresh = make_pipeline();
    state::StateReader reader(bytes);
    fresh->restore_state(reader);
    pipeline_ = std::move(fresh);
    return true;
}

bool Supervisor::warm_restore() {
    // Source order: the in-memory checkpoint is newest; the slot files
    // cover the case where memory was never populated (or was taken down
    // with a corrupted heap and fails to parse). The older slot is the
    // last resort — it survives a crash mid-write of the newer one.
    const auto try_bytes = [&](const std::vector<std::uint8_t>& bytes) {
        try {
            if (restore_from_bytes(bytes)) {
                bump(stats_.warm_restores, counters_.warm_restores);
                // Re-base the replay timeline: from this recorder seq on,
                // the live pipeline's state IS these bytes.
                note_restore_checkpoint(bytes);
                return true;
            }
        } catch (const std::exception&) {
            bump(stats_.restore_failures, counters_.restore_failures);
        }
        return false;
    };
    if (!last_good_.empty() && try_bytes(last_good_)) return true;
    if (have_slot_) {
        const std::size_t order[2] = {newest_slot_, 1 - newest_slot_};
        for (const std::size_t slot : order) {
            std::vector<std::uint8_t> bytes;
            try {
                bytes = state::read_snapshot_file(slot_path(slot));
            } catch (const state::SnapshotError&) {
                bump(stats_.restore_failures, counters_.restore_failures);
                continue;
            }
            if (try_bytes(bytes)) {
                last_good_ = std::move(bytes);
                return true;
            }
        }
    }
    return false;
}

void Supervisor::cold_restart() {
    pipeline_ = make_pipeline();
    bump(stats_.cold_restarts, counters_.cold_restarts);
    // Re-base the replay timeline on the from-scratch state.
    if (recorder_ != nullptr) {
        try {
            note_restore_checkpoint(serialize_pipeline());
        } catch (const std::exception&) {
            // Serialisation failing must not take the restart down.
        }
    }
    consecutive_warm_restores_ = 0;
    backoff_remaining_ = 0;
    frames_since_snapshot_ = 0;
    clean_streak_ = 0;
    // The in-memory checkpoint either failed to parse or failed to stop
    // the crash run — drop it so the next warm restore starts from a
    // checkpoint of the rebuilt pipeline, not a pre-storm ghost. Disk
    // slots are kept for post-mortem inspection.
    last_good_.clear();
}

std::size_t Supervisor::backoff_frames(std::size_t attempt) {
    const std::size_t shift = std::min<std::size_t>(attempt, 20);
    const std::size_t base =
        std::min(config_.backoff_cap_frames,
                 config_.backoff_base_frames << shift);
    const double factor = jitter_rng_.uniform(1.0 - config_.backoff_jitter,
                                              1.0 + config_.backoff_jitter);
    const auto jittered =
        static_cast<std::size_t>(static_cast<double>(base) * factor);
    return std::clamp<std::size_t>(jittered, 1, config_.backoff_cap_frames);
}

void Supervisor::restore_from_file(const std::string& path) {
    std::vector<std::uint8_t> bytes = state::read_snapshot_file(path);
    restore_from_bytes(bytes);  // throws on rejection; pipeline_ kept
    note_restore_checkpoint(bytes);
    last_good_ = std::move(bytes);
    frames_since_snapshot_ = 0;
}

void Supervisor::note_restore_checkpoint(
    const std::vector<std::uint8_t>& bytes) {
    if (recorder_ != nullptr) recorder_->note_checkpoint(bytes);
}

std::string Supervisor::dump_path(std::size_t slot) const {
    const std::string& dir =
        config_.dump_dir.empty() ? config_.snapshot_dir : config_.dump_dir;
    return dir + "/" + config_.snapshot_basename + ".dump" +
           std::to_string(slot) + ".brfr";
}

std::string Supervisor::dump_now(const std::string& path,
                                 std::string_view reason) {
    if (recorder_ == nullptr) return "";
    std::string target = path;
    if (target.empty()) {
        if (config_.dump_dir.empty() && config_.snapshot_dir.empty())
            return "";
        target = dump_path(next_dump_);
    }
    try {
        write_flight_dump_file(target, *recorder_, radar_, pipeline_config_,
                               reason);
    } catch (const std::exception&) {
        // Dumping is best-effort by contract: a full disk must not turn
        // an absorbed pipeline fault into a supervisor crash.
        bump(stats_.dump_failures, counters_.dump_failures);
        return "";
    }
    if (path.empty()) next_dump_ ^= 1u;
    bump(stats_.dumps, counters_.dumps);
    last_dump_path_ = target;
    recorder_->record_event(obs::RecorderEvent::kDump, last_wall_s_);
    return target;
}

void Supervisor::escalation_dump(std::string_view reason) {
    // Crash-or-escalation path: push the buffered trace tail out first —
    // if the next step takes the process down, the JSONL stream still
    // ends at the incident, not seconds before it.
    if (trace_ != nullptr) trace_->flush();
    if (!config_.dump_on_fault) return;
    dump_now("", reason);
}

}  // namespace blinkradar::core
