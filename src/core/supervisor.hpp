// Supervised pipeline execution: autosnapshot, crash isolation, and a
// recovery escalation ladder.
//
// BlinkRadar runs unattended in a vehicle; the Supervisor is the layer
// that keeps detection alive across faults the pipeline itself cannot
// absorb — a crash inside a stage, a wedged sensor feed, a corrupted
// checkpoint. It owns the run loop around BlinkRadarPipeline::process():
//
//   - autosnapshot: every snapshot_interval_frames clean frames the full
//     pipeline state is serialised (state::StateWriter) to memory and,
//     when a snapshot directory is configured, to one of two alternating
//     slot files via an atomic write-then-rename — a crash mid-write can
//     never destroy the previous good checkpoint;
//   - per-frame exception isolation: a throw out of process() (or out of
//     the test/eval fault hook) is caught and escalated, never leaked;
//   - escalation ladder: retry the frame -> warm-restore the pipeline
//     from the newest readable snapshot (memory, then newest slot, then
//     the other slot) -> capped exponential backoff with seeded jitter
//     between repeated restores -> cold restart from scratch;
//   - stall watchdog: a wall-clock gap between frames beyond
//     stall_timeout_s (with an injectable clock for tests) is counted
//     and forces a fresh checkpoint as soon as the stream is healthy;
//   - observability: every transition is counted in an optional
//     obs::MetricsRegistry (supervisor.* metrics) and mirrored in a
//     plain SupervisorStats struct.
//
// All randomness (backoff jitter) comes from an Rng forked from the
// configured seed, so a crash drill replays identically — the same
// discipline radar::FaultInjector uses for fault schedules.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/pipeline.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace blinkradar::core {

/// Supervisor policy knobs. Defaults suit the 25 Hz in-vehicle stream:
/// a checkpoint every ~10 s, one in-place retry, and a ladder that cold
/// restarts only after three failed warm restores.
struct SupervisorConfig {
    /// Clean frames between autosnapshots (0 disables autosnapshot).
    std::size_t snapshot_interval_frames = 250;

    /// Directory for the two snapshot slot files; empty keeps snapshots
    /// in memory only (still enough for warm restores within a process).
    std::string snapshot_dir;

    /// Slot file basename: <dir>/<basename>.slot{0,1}.snap.
    std::string snapshot_basename = "blinkradar";

    /// Immediate same-frame retries before escalating to a warm restore.
    std::size_t max_frame_retries = 1;

    /// Consecutive warm restores before escalating to a cold restart.
    std::size_t max_warm_restores = 3;

    /// Backoff after the k-th consecutive warm restore skips
    /// ~backoff_base_frames * 2^k frames (capped, jittered).
    std::size_t backoff_base_frames = 8;
    std::size_t backoff_cap_frames = 256;
    /// Relative jitter on the backoff length, in [0, 1): the actual skip
    /// is scaled by a factor drawn uniformly from [1-j, 1+j).
    double backoff_jitter = 0.25;

    /// Consecutive clean frames that reset the escalation ladder.
    std::size_t ladder_reset_frames = 64;

    /// Wall-clock gap between process() calls that counts as a stall
    /// (0 disables the watchdog).
    double stall_timeout_s = 5.0;

    /// Seed for the jitter stream (forked; independent of everything).
    std::uint64_t seed = 1;

    /// Attach an always-on obs::FlightRecorder to the supervised
    /// pipeline (the black box survives pipeline replacement, so the
    /// supervisor owns it). Disable for batch evaluation sweeps where
    /// post-mortem capture is dead weight (eval::run_recovery_session
    /// does).
    bool flight_recorder = true;

    /// Ring depths / cadences for the recorder when enabled.
    obs::FlightRecorderConfig recorder;

    /// Write a flight dump (rotating <basename>.dump{0,1}.brfr) on the
    /// first exception of a fault run, on every warm restore / cold
    /// restart, and on a stall-watchdog fire.
    bool dump_on_fault = true;

    /// Directory for dump files; empty falls back to snapshot_dir, and
    /// with both empty the recorder still records but nothing is written
    /// automatically (dump_now() with an explicit path still works).
    std::string dump_dir;
};

/// Plain mirror of the supervisor.* metrics, available without a
/// registry and cheap to assert on in tests.
struct SupervisorStats {
    std::uint64_t frames = 0;            ///< process() calls
    std::uint64_t frame_faults = 0;      ///< exceptions caught
    std::uint64_t retries = 0;           ///< same-frame retry attempts
    std::uint64_t warm_restores = 0;     ///< snapshot restores performed
    std::uint64_t cold_restarts = 0;     ///< from-scratch pipeline rebuilds
    std::uint64_t snapshots = 0;         ///< checkpoints taken
    std::uint64_t snapshot_failures = 0; ///< disk writes that failed
    std::uint64_t restore_failures = 0;  ///< snapshot sources that failed
    std::uint64_t backoff_skipped = 0;   ///< frames skipped while backing off
    std::uint64_t stalls = 0;            ///< watchdog trips
    std::uint64_t dumps = 0;             ///< flight dumps written
    std::uint64_t dump_failures = 0;     ///< dump writes that failed
};

/// Crash-safe run loop around a BlinkRadarPipeline. Feed frames through
/// process() exactly as with the bare pipeline; the supervisor
/// guarantees a FrameResult comes back for every frame, whatever
/// happens inside the detection chain.
class Supervisor {
public:
    /// Wall-clock source (seconds, monotonic). Injectable so the stall
    /// watchdog is testable with a fake clock.
    using ClockFn = std::function<double()>;

    /// Called at the top of every processing attempt with the frame
    /// index; a throw is treated exactly like a pipeline crash. This is
    /// the injection point the crash drills and tests use.
    using FaultHook = std::function<void(std::uint64_t frame_index)>;

    /// `trace` (optional, e.g. obs::TraceSink::from_env) is passed to
    /// every supervised pipeline and flushed on every escalation step so
    /// a crash cannot swallow the buffered tail of the JSONL stream.
    Supervisor(const radar::RadarConfig& radar, PipelineConfig pipeline_config,
               SupervisorConfig config = {},
               obs::MetricsRegistry* metrics = nullptr,
               obs::TraceSink* trace = nullptr);

    /// Process one frame under supervision. Never throws for pipeline
    /// faults (contract violations in the supervisor's own use of the
    /// API still do). Frames consumed by backoff or a failed recovery
    /// return quality == kQuarantined and cold_start == true.
    FrameResult process(const radar::RadarFrame& frame);

    /// Take a checkpoint now (also resets the autosnapshot countdown).
    /// Returns false when the disk slot write failed (the in-memory
    /// snapshot is still updated).
    bool snapshot_now();

    /// Restore the pipeline from an explicit snapshot file. Throws
    /// state::SnapshotError when the file is unreadable or rejected; the
    /// supervisor keeps its previous pipeline in that case.
    void restore_from_file(const std::string& path);

    /// The supervised pipeline (read-only: blinks, health, config).
    const BlinkRadarPipeline& pipeline() const noexcept { return *pipeline_; }

    const SupervisorStats& stats() const noexcept { return stats_; }
    const SupervisorConfig& config() const noexcept { return config_; }

    /// True once at least one checkpoint exists (memory or disk).
    bool has_snapshot() const noexcept { return !last_good_.empty(); }

    /// The attached flight recorder (null when disabled by config).
    const obs::FlightRecorder* flight_recorder() const noexcept {
        return recorder_.get();
    }

    /// Write a flight dump now, to `path` (or, when empty, to the next
    /// rotating automatic slot). Returns the path written, or "" when no
    /// recorder is attached or no directory is configured/given. Never
    /// throws: a failed write is counted in stats().dump_failures.
    std::string dump_now(const std::string& path = "",
                         std::string_view reason = "manual");

    /// Path of the most recent successfully written flight dump ("" if
    /// none yet).
    const std::string& last_dump_path() const noexcept {
        return last_dump_path_;
    }

    /// Frame index (process() calls so far).
    std::uint64_t frame_index() const noexcept { return stats_.frames; }

    /// Install the test/eval crash hook (null to clear).
    void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

    /// Install a fake clock for the stall watchdog (null restores the
    /// real steady clock).
    void set_clock(ClockFn clock) { clock_ = std::move(clock); }

private:
    std::unique_ptr<BlinkRadarPipeline> make_pipeline() const;
    FrameResult attempt(const radar::RadarFrame& frame);
    bool warm_restore();
    bool restore_from_bytes(const std::vector<std::uint8_t>& bytes);
    void cold_restart();
    std::vector<std::uint8_t> serialize_pipeline() const;
    std::string slot_path(std::size_t slot) const;
    std::size_t backoff_frames(std::size_t attempt);
    double now();
    FrameResult skipped_result() const;
    std::string dump_path(std::size_t slot) const;
    /// Automatic dump + escalation trace flush (no-ops when disabled).
    void escalation_dump(std::string_view reason);
    void note_restore_checkpoint(const std::vector<std::uint8_t>& bytes);

    radar::RadarConfig radar_;
    PipelineConfig pipeline_config_;
    SupervisorConfig config_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::TraceSink* trace_ = nullptr;

    /// The black box. Owned here, not by the pipeline: recovery replaces
    /// pipelines, and the incident record must survive the swap.
    std::unique_ptr<obs::FlightRecorder> recorder_;
    std::size_t next_dump_ = 0;           ///< dump slot to overwrite next
    bool fault_dump_written_ = false;     ///< one auto-dump per fault run
    std::string last_dump_path_;

    std::unique_ptr<BlinkRadarPipeline> pipeline_;

    /// Newest in-memory checkpoint (empty until the first snapshot).
    std::vector<std::uint8_t> last_good_;
    std::size_t next_slot_ = 0;      ///< slot file to overwrite next
    bool have_slot_ = false;         ///< any slot file written yet
    std::size_t newest_slot_ = 0;    ///< slot file written most recently

    std::size_t frames_since_snapshot_ = 0;
    std::size_t consecutive_warm_restores_ = 0;
    std::size_t clean_streak_ = 0;
    std::size_t backoff_remaining_ = 0;
    bool snapshot_due_ = false;  ///< watchdog asked for a prompt checkpoint

    bool have_last_wall_ = false;
    double last_wall_s_ = 0.0;

    Rng jitter_rng_;
    FaultHook fault_hook_;
    ClockFn clock_;

    SupervisorStats stats_;

    /// Registry handles (null when unobserved), registered once.
    struct Counters {
        obs::Counter* frames = nullptr;
        obs::Counter* frame_faults = nullptr;
        obs::Counter* retries = nullptr;
        obs::Counter* warm_restores = nullptr;
        obs::Counter* cold_restarts = nullptr;
        obs::Counter* snapshots = nullptr;
        obs::Counter* snapshot_failures = nullptr;
        obs::Counter* restore_failures = nullptr;
        obs::Counter* backoff_skipped = nullptr;
        obs::Counter* stalls = nullptr;
        obs::Counter* dumps = nullptr;
        obs::Counter* dump_failures = nullptr;
    } counters_;
};

}  // namespace blinkradar::core
