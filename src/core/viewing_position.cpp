#include "core/viewing_position.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace blinkradar::core {

ViewingPosition ViewingPosition::fit(std::span<const dsp::Complex> samples,
                                     CircleFitMethod method) {
    dsp::CircleFit f;
    switch (method) {
        case CircleFitMethod::kPratt:
            f = dsp::fit_circle_pratt(samples);
            break;
        case CircleFitMethod::kKasa:
            f = dsp::fit_circle_kasa(samples);
            break;
        case CircleFitMethod::kTaubin:
            f = dsp::fit_circle_taubin(samples);
            break;
    }
    return ViewingPosition(f);
}

ViewingPosition ViewingPosition::fit_trimmed(
    std::span<const dsp::Complex> samples, CircleFitMethod method,
    double trim_fraction) {
    BR_EXPECTS(trim_fraction >= 0.0 && trim_fraction < 0.5);
    const ViewingPosition first = fit(samples, method);
    if (!first.valid() || samples.size() < 16) return first;

    // Rank samples by |distance-to-centre - radius| and keep the best.
    std::vector<std::pair<double, dsp::Complex>> ranked;
    ranked.reserve(samples.size());
    for (const dsp::Complex& z : samples) {
        const double r = std::abs(z - first.center());
        ranked.emplace_back(std::abs(r - first.radius()), z);
    }
    const std::size_t keep = samples.size() -
                             static_cast<std::size_t>(trim_fraction *
                                                      static_cast<double>(samples.size()));
    std::nth_element(ranked.begin(),
                     ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                     ranked.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<dsp::Complex> inliers;
    inliers.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) inliers.push_back(ranked[i].second);

    const ViewingPosition second = fit(inliers, method);
    return second.valid() ? second : first;
}

ViewingPosition ViewingPosition::from_circle(dsp::Complex center,
                                             double radius) {
    BR_EXPECTS(radius > 0.0);
    dsp::CircleFit f;
    f.center_x = center.real();
    f.center_y = center.imag();
    f.radius = radius;
    f.ok = true;
    return ViewingPosition(f);
}

double ViewingPosition::relative_distance(dsp::Complex sample) const {
    BR_EXPECTS(fit_.ok);
    const double dx = sample.real() - fit_.center_x;
    const double dy = sample.imag() - fit_.center_y;
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace blinkradar::core
