#include "core/pipeline.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::core {

BlinkRadarPipeline::BlinkRadarPipeline(const radar::RadarConfig& radar,
                                       PipelineConfig config)
    : radar_(radar),
      config_(config),
      preprocessor_(config),
      guard_(radar, config.guard),
      background_(radar.n_bins(), config.background_alpha),
      movement_(config, radar.frame_rate_hz()),
      selector_(radar, config),
      levd_(config, radar.frame_rate_hz()) {
    radar_.validate();
    BR_EXPECTS(config.cold_start_frames >= 8);
    BR_EXPECTS(config.fit_window_frames >= 8);
    BR_EXPECTS(config.update_interval_frames >= 1);
    BR_EXPECTS(config.reselect_interval_frames >= 1);

    // Size every bounded window and scratch buffer once, so the steady
    // 40 ms frame path performs zero heap allocations (the per-frame
    // vectors in window_ acquire their capacity on first fill and keep it
    // as slots are recycled).
    const std::size_t max_window =
        std::max(config_.fit_window_frames, config_.cold_start_frames);
    window_.reset_capacity(max_window);
    window_times_.reset_capacity(max_window);
    rolling_window_frames_ =
        std::min(config_.selection_window_frames, max_window);
    rolling_var_.reset(radar_.n_bins());
    wave_history_.reset_capacity(std::max<std::size_t>(
        16, static_cast<std::size_t>(4.0 * radar_.frame_rate_hz())));
    view_scratch_.reserve(max_window);
    var_scratch_.reserve(radar_.n_bins());
    column_scratch_.reserve(max_window);
    blinks_.reserve(256);
}

void BlinkRadarPipeline::reset_detection_state() {
    background_.reset();
    movement_.reset();
    levd_.reset();
    window_.clear();
    window_times_.clear();
    rolling_var_.clear();
    selected_bin_.reset();
    viewing_.reset();
    frames_since_start_ = 0;
    frames_since_fit_ = 0;
    frames_since_reselect_ = 0;
    cumulative_phase_ = 0.0;
    amp_mean_ = 0.0;
    prev_sample_ = dsp::Complex(0.0, 0.0);
    wave_history_.clear();
    theta_unwrapped_ = 0.0;
    have_theta_ = false;
    prev_theta_raw_ = 0.0;
}

void BlinkRadarPipeline::restart() {
    reset_detection_state();
    ++restarts_;
}

void BlinkRadarPipeline::refit_viewing() {
    BR_ASSERT(selected_bin_.has_value());
    dsp::ComplexSignal& column = column_scratch_;
    column.clear();
    for (std::size_t i = 0; i < window_.size(); ++i)
        column.push_back(window_[i][*selected_bin_]);
    const ViewingPosition fit =
        ViewingPosition::fit_trimmed(column, config_.fit_method);
    // Keep the previous viewing position if the new fit degenerated
    // (e.g. the driver held perfectly still for the whole window).
    if (!fit.valid()) return;
    if (!viewing_ || !viewing_->valid()) {
        viewing_ = fit;
        return;
    }
    // Blend instead of replacing: a hard swap steps the relative-distance
    // waveform, and LEVD would read the step as an extremum. The blend
    // weight is scaled by fit quality — a refit whose residual is a large
    // fraction of its radius carries a poorly constrained centre (short
    // or noisy arc) and must barely move the running estimate.
    const double q =
        fit.raw_fit().rms_residual / std::max(fit.radius(), 1e-12);
    const double quality = 1.0 / (1.0 + (q / 0.03) * (q / 0.03));
    const double beta = config_.viewing_blend * quality;
    const dsp::Complex centre =
        (1.0 - beta) * viewing_->center() + beta * fit.center();
    const double radius =
        (1.0 - beta) * viewing_->radius() + beta * fit.radius();
    viewing_ = ViewingPosition::from_circle(centre, radius);
}

bool BlinkRadarPipeline::reselect_bin() {
    // Select over the most recent frames only: after a restart the head of
    // the window still contains the turbulent tail of the movement that
    // caused it, and waiting for that to age out of a long window would
    // stretch the recovery (and the consecutive-miss runs) several-fold.
    // The window is passed as a view (no frame data is copied) and the
    // per-bin variances come from the rolling tracker, which covers
    // exactly these `take` frames by construction.
    const std::size_t take =
        std::min(window_.size(), config_.selection_window_frames);
    BR_ASSERT(rolling_var_.count() == take);
    view_scratch_.clear();
    for (std::size_t i = window_.size() - take; i < window_.size(); ++i)
        view_scratch_.push_back(&window_[i]);
    const FrameWindowView view(view_scratch_);
    rolling_var_.variances_into(var_scratch_);
    const std::optional<BinSelection> sel =
        selector_.select(view, var_scratch_);
    if (!sel) return false;  // nothing arc-like in view: keep what we have
    if (selected_bin_ && *selected_bin_ == sel->bin) return false;
    if (selected_bin_) {
        // Hysteresis: only hop if the challenger clearly beats the
        // currently tracked bin under the same window.
        const std::optional<BinSelection> current =
            selector_.score_bin(view, *selected_bin_);
        if (current &&
            sel->score < config_.reselect_hysteresis * current->score)
            return false;
    }
    selected_bin_ = sel->bin;
    return true;
}

double BlinkRadarPipeline::waveform_value(const dsp::Complex& sample) {
    switch (config_.waveform_mode) {
        case WaveformMode::kArcDistance:
            BR_ASSERT(viewing_ && viewing_->valid());
            return viewing_->relative_distance(sample);
        case WaveformMode::kAmplitude:
            return std::abs(sample);
        case WaveformMode::kPhase: {
            // Unwrapped phase progression, scaled by the running mean
            // amplitude so the LEVD threshold lives in the same units as
            // the other modes.
            const double amp = std::abs(sample);
            amp_mean_ = amp_mean_ == 0.0 ? amp
                                         : 0.98 * amp_mean_ + 0.02 * amp;
            if (std::abs(prev_sample_) > 0.0) {
                const dsp::Complex rot = sample * std::conj(prev_sample_);
                if (std::abs(rot) > 0.0)
                    cumulative_phase_ += std::arg(rot);
            }
            prev_sample_ = sample;
            return cumulative_phase_ * amp_mean_;
        }
    }
    return 0.0;
}

FrameResult BlinkRadarPipeline::process(const radar::RadarFrame& frame) {
    if (!config_.guard.enabled) {
        // Unguarded contract: the caller promises well-formed frames. A
        // bin-count mismatch is a checked error, never an out-of-bounds
        // read further down the chain.
        BR_EXPECTS(frame.bins.size() == radar_.n_bins());
        return process_validated(frame);
    }

    const GuardDecision decision = guard_.admit(frame);
    FrameResult result;
    result.quality = decision.verdict;
    result.repaired_samples = decision.repaired_samples;
    result.bridged_frames = decision.bridged_frames;
    if (decision.warm_restart) {
        // The stream recovered from signal loss: the held baseline and
        // fitted viewing position are stale, so re-converge from scratch
        // (warm restarts are counted by the guard, not in restarts()).
        reset_detection_state();
    }
    if (decision.verdict == FrameVerdict::kQuarantined) {
        result.cold_start = !selected_bin_.has_value();
        result.health = guard_.health();
        return result;
    }
    for (const radar::RadarFrame& admitted : decision.frames) {
        const FrameResult r = process_validated(admitted);
        if (r.blink) result.blink = r.blink;
        result.restarted |= r.restarted;
        result.cold_start = r.cold_start;
        result.waveform_value = r.waveform_value;
    }
    if (!result.cold_start) guard_.notify_converged();
    result.health = guard_.health();
    return result;
}

FrameResult BlinkRadarPipeline::process_validated(
    const radar::RadarFrame& frame) {
    BR_ASSERT(frame.bins.size() == radar_.n_bins());
    FrameResult result;

    // 1. Noise reduction (into per-pipeline scratch: no allocation).
    preprocessor_.apply_into(frame, pre_frame_);

    // 2. Significant body movement => restart the whole detection process.
    if (movement_.push(pre_frame_.bins)) {
        restart();
        result.restarted = true;
        result.cold_start = true;
        return result;
    }

    // 3. Background (static clutter) subtraction, written straight into
    // the window ring's recycled slot. The rolling variance tracker
    // follows the last rolling_window_frames_ frames: evict the frame
    // about to leave that window *before* pushing (when the ring is full
    // it may be the very slot the new frame overwrites).
    if (rolling_var_.count() == rolling_window_frames_)
        rolling_var_.evict(window_[window_.size() - rolling_window_frames_]);
    dsp::ComplexSignal& sub = window_.emplace_slot();
    background_.process_into(pre_frame_.bins, sub);
    rolling_var_.push(sub);
    window_times_.push_back(frame.timestamp_s);
    ++frames_since_start_;

    // 4. Cold start: accumulate, then select the bin and fit the arc.
    if (!selected_bin_) {
        if (frames_since_start_ < config_.cold_start_frames) {
            result.cold_start = true;
            return result;
        }
        if (!reselect_bin()) {
            // Nothing significant in view yet; stay in cold start.
            result.cold_start = true;
            return result;
        }
        refit_viewing();
        if (!viewing_ || !viewing_->valid()) {
            selected_bin_.reset();
            result.cold_start = true;
            return result;
        }
        frames_since_fit_ = 0;
        frames_since_reselect_ = 0;
        // Pre-fill the LEVD noise estimate from the cold-start window so
        // detection is live immediately — the 2 s cold start is the only
        // dead time, exactly as the paper describes.
        if (config_.waveform_mode == WaveformMode::kArcDistance) {
            for (std::size_t i = 0; i + 1 < window_.size(); ++i) {
                levd_.warm_up(window_times_[i],
                              compensated_distance(
                                  window_times_[i],
                                  window_[i][*selected_bin_]));
            }
        }
    }

    // 5. Adaptive update: periodic refit and bin re-selection.
    if (++frames_since_fit_ >= config_.update_interval_frames) {
        frames_since_fit_ = 0;
        refit_viewing();
    }
    if (++frames_since_reselect_ >= config_.reselect_interval_frames) {
        frames_since_reselect_ = 0;
        if (reselect_bin()) {
            // The blink carrier moved to a different bin: refit there.
            // LEVD state is kept — its robust (MAD) noise estimate absorbs
            // the one-off baseline step within a couple of seconds, which
            // costs far less than rebuilding the threshold from scratch.
            refit_viewing();
            cumulative_phase_ = 0.0;
            prev_sample_ = dsp::Complex(0.0, 0.0);
        }
    }

    if (config_.waveform_mode == WaveformMode::kArcDistance &&
        (!viewing_ || !viewing_->valid())) {
        result.cold_start = true;
        return result;
    }

    // 6. Relative-distance waveform and LEVD. (compensated_distance also
    // maintains the d/theta history the motion-artifact veto inspects;
    // with motion_compensation off it returns the raw distance.)
    const dsp::Complex sample = window_.back()[*selected_bin_];
    const double d = config_.waveform_mode == WaveformMode::kArcDistance
                         ? compensated_distance(frame.timestamp_s, sample)
                         : waveform_value(sample);
    result.waveform_value = d;

    std::optional<DetectedBlink> blink = levd_.push(frame.timestamp_s, d);
    if (blink && config_.waveform_mode == WaveformMode::kArcDistance &&
        motion_artifact_veto(*blink)) {
        blink.reset();
    }
    result.blink = blink;
    if (result.blink) blinks_.push_back(*result.blink);
    return result;
}

double BlinkRadarPipeline::compensated_distance(Seconds t,
                                                dsp::Complex sample) {
    BR_ASSERT(viewing_ && viewing_->valid());
    const double d = viewing_->relative_distance(sample);

    // Unwrapped angle around the viewing position.
    const dsp::Complex v = sample - viewing_->center();
    const double theta_raw = std::atan2(v.imag(), v.real());
    if (have_theta_) {
        double step = theta_raw - prev_theta_raw_;
        while (step > constants::kPi) step -= constants::kTwoPi;
        while (step < -constants::kPi) step += constants::kTwoPi;
        theta_unwrapped_ += step;
    } else {
        have_theta_ = true;
    }
    prev_theta_raw_ = theta_raw;

    wave_history_.push_back(WaveSample{t, d, theta_unwrapped_});  // ring
    if (!config_.motion_compensation) return d;
    if (wave_history_.size() < 16) return d;

    // Motion compensation. A residual viewing-position error e leaks the
    // head-motion rotation theta(t) into the distance waveform as
    //   d(theta) ~ R + e_t * theta + (e_r / 2) * theta^2,
    // which is exactly the quasi-periodic interference that mimics blink
    // bumps (BCG beats are the worst: ~1 s period, blink-like rise
    // times). Regressing d on (theta, theta^2) over the recent window and
    // removing the fitted component cancels the leak, while a blink — a
    // radial amplitude change uncorrelated with theta — passes through.
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    double sd = 0, sd1 = 0, sd2 = 0;
    const double theta_mean = [this] {
        double acc = 0.0;
        for (std::size_t i = 0; i < wave_history_.size(); ++i)
            acc += wave_history_[i].theta;
        return acc / static_cast<double>(wave_history_.size());
    }();
    for (std::size_t i = 0; i < wave_history_.size(); ++i) {
        const WaveSample& w = wave_history_[i];
        const double x = w.theta - theta_mean;
        const double x2 = x * x;
        s0 += 1.0;
        s1 += x;
        s2 += x2;
        s3 += x2 * x;
        s4 += x2 * x2;
        sd += w.d;
        sd1 += w.d * x;
        sd2 += w.d * x2;
    }
    // Solve the 3x3 normal equations for d ~ a + b x + c x^2 by Cramer.
    const double m00 = s0, m01 = s1, m02 = s2;
    const double m11 = s2, m12 = s3, m22 = s4;
    const double det = m00 * (m11 * m22 - m12 * m12) -
                       m01 * (m01 * m22 - m12 * m02) +
                       m02 * (m01 * m12 - m11 * m02);
    if (std::abs(det) < 1e-12) return d;
    const double det_b = m00 * (sd1 * m22 - m12 * sd2) -
                         sd * (m01 * m22 - m12 * m02) +
                         m02 * (m01 * sd2 - sd1 * m02);
    const double det_c = m00 * (m11 * sd2 - sd1 * m12) -
                         m01 * (m01 * sd2 - sd1 * m02) +
                         sd * (m01 * m12 - m11 * m02);
    const double b = det_b / det;
    const double c = det_c / det;

    const double x_now = wave_history_.back().theta - theta_mean;
    return d - b * x_now - c * x_now * x_now;
}

bool BlinkRadarPipeline::motion_artifact_veto(
    const DetectedBlink& blink) const {
    // Range migration couples head motion into d(t): as the head moves,
    // the reflector slides along the pulse's range point-spread slope and
    // the bin amplitude follows the displacement. The same displacement
    // simultaneously rotates the I/Q sample around the viewing position,
    // so a migration bump in d(t) is (anti)correlated with theta(t) over
    // its extent. A blink changes the reflection amplitude without moving
    // the head — near-zero correlation. Veto bumps whose d-theta
    // correlation is almost perfect.
    if (config_.motion_veto_correlation >= 1.0) return false;
    const Seconds lo = blink.peak_s - blink.duration_s;
    const Seconds hi = blink.peak_s + blink.duration_s;
    double sd = 0.0, st = 0.0, sdd = 0.0, stt = 0.0, sdt = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < wave_history_.size(); ++i) {
        const WaveSample& w = wave_history_[i];
        if (w.t < lo || w.t > hi) continue;
        sd += w.d;
        st += w.theta;
        sdd += w.d * w.d;
        stt += w.theta * w.theta;
        sdt += w.d * w.theta;
        ++n;
    }
    if (n < 6) return false;
    const double dn = static_cast<double>(n);
    const double cov = sdt / dn - (sd / dn) * (st / dn);
    const double var_d = sdd / dn - (sd / dn) * (sd / dn);
    const double var_t = stt / dn - (st / dn) * (st / dn);
    if (var_d <= 0.0 || var_t <= 0.0) return false;
    const double corr = cov / std::sqrt(var_d * var_t);
    return std::abs(corr) > config_.motion_veto_correlation;
}

BatchResult detect_blinks(const radar::FrameSeries& series,
                          const radar::RadarConfig& radar,
                          const PipelineConfig& config) {
    BlinkRadarPipeline pipeline(radar, config);
    for (const radar::RadarFrame& f : series) pipeline.process(f);
    return BatchResult{pipeline.blinks(), pipeline.restarts()};
}

}  // namespace blinkradar::core
