#include "core/pipeline.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "common/contracts.hpp"
#include "common/env_config.hpp"
#include "obs/stage_timer.hpp"

namespace blinkradar::core {

const char* to_string(PipelineStage stage) noexcept {
    switch (stage) {
        case PipelineStage::kGuard: return "guard";
        case PipelineStage::kPreprocess: return "preprocess";
        case PipelineStage::kMovement: return "movement";
        case PipelineStage::kBackground: return "background";
        case PipelineStage::kBinSelection: return "bin_selection";
        case PipelineStage::kViewingFit: return "viewing_fit";
        case PipelineStage::kWaveform: return "waveform";
        case PipelineStage::kLevd: return "levd";
        case PipelineStage::kFrameTotal: return "frame_total";
    }
    return "?";
}

double PhaseWaveform::push(const dsp::Complex& sample) {
    const double amp = std::abs(sample);
    // Seed the running mean from the first sample with measurable
    // amplitude (a zero first sample must not freeze the scale at 0);
    // track with a slow EMA afterwards.
    amp_mean_ = amp_mean_ == 0.0 ? amp : 0.98 * amp_mean_ + 0.02 * amp;
    if (std::abs(prev_) > 0.0) {
        const dsp::Complex rot = sample * std::conj(prev_);
        // Scale the *increment* by the amplitude now: amplitude drift
        // then bends the waveform slowly instead of rescaling (stepping)
        // everything already accumulated.
        if (std::abs(rot) > 0.0) value_ += std::arg(rot) * amp_mean_;
    }
    prev_ = sample;
    return value_;
}

void PhaseWaveform::reset() noexcept {
    prev_ = dsp::Complex(0.0, 0.0);
    value_ = 0.0;
    amp_mean_ = 0.0;
}

namespace {
constexpr std::uint32_t kPhaseWaveTag = state::make_tag("PHSW");
constexpr std::uint16_t kPhaseWaveVersion = 1;
}  // namespace

void PhaseWaveform::save_state(state::StateWriter& writer) const {
    writer.begin_section(kPhaseWaveTag, kPhaseWaveVersion);
    writer.write_complex(prev_);
    writer.write_f64(value_);
    writer.write_f64(amp_mean_);
    writer.end_section();
}

void PhaseWaveform::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kPhaseWaveTag);
    if (version > kPhaseWaveVersion)
        throw state::SnapshotError(
            "PHSW: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kPhaseWaveVersion) + ")");
    prev_ = reader.read_complex();
    value_ = reader.read_f64();
    amp_mean_ = reader.read_f64();
    reader.close_section();
}

BlinkRadarPipeline::Instrumentation::Instrumentation(
    obs::MetricsRegistry* external, obs::TraceSink* trace_sink,
    const std::string& prefix)
    : trace(trace_sink) {
    if (external == nullptr)  // trace-only pipeline: private registry
        owned_registry = std::make_unique<obs::MetricsRegistry>();
    obs::MetricsRegistry& registry =
        external != nullptr ? *external : *owned_registry;
    // One-time registration (and clock calibration): the frame path
    // after this touches only the returned handles. Every name carries
    // the caller's prefix so two instrumented pipelines (e.g. the scalar
    // and SIMD frame paths benched side by side) can share a registry
    // without colliding.
    obs::detail::calibrate_clock();
    for (std::size_t s = 0; s < kNumPipelineStages; ++s)
        stage[s] = &registry.histogram(
            prefix + "stage." +
            to_string(static_cast<PipelineStage>(s)));
    frames = &registry.counter(prefix + "pipeline.frames");
    blinks = &registry.counter(prefix + "pipeline.blinks");
    restarts = &registry.counter(prefix + "pipeline.restarts");
    cold_start_frames =
        &registry.counter(prefix + "pipeline.cold_start_frames");
    reselect_attempts =
        &registry.counter(prefix + "pipeline.reselect.attempts");
    reselect_switches =
        &registry.counter(prefix + "pipeline.reselect.switches");
    refits = &registry.counter(prefix + "pipeline.refits");
    guard_quarantined =
        &registry.counter(prefix + "guard.frames_quarantined");
    guard_samples_repaired =
        &registry.counter(prefix + "guard.samples_repaired");
    guard_frames_bridged =
        &registry.counter(prefix + "guard.frames_bridged");
    guard_gaps_bridged = &registry.counter(prefix + "guard.gaps_bridged");
    guard_signal_lost =
        &registry.counter(prefix + "guard.signal_lost_events");
    guard_warm_restarts =
        &registry.counter(prefix + "guard.warm_restarts");
    const char* health_names[] = {"guard.health.entered_ok",
                                  "guard.health.entered_degraded",
                                  "guard.health.entered_signal_lost",
                                  "guard.health.entered_recovering"};
    for (std::size_t s = 0; s < health_entered.size(); ++s)
        health_entered[s] = &registry.counter(prefix + health_names[s]);
    fault_rate = &registry.gauge(prefix + "guard.fault_rate");
    levd_threshold = &registry.gauge(prefix + "levd.threshold");
    levd_sigma = &registry.gauge(prefix + "levd.noise_sigma");
    selected_bin = &registry.gauge(prefix + "pipeline.selected_bin");
    kernels.register_in(registry, prefix);
    trace_line.reserve(512);
}

namespace {

/// Resolve DspPath::kAuto at construction time: the one-time process
/// snapshot of BLINKRADAR_DSP_PATH (scalar | simd) decides, defaulting
/// to the SIMD path. Explicit config values always win (the env hook
/// exists so CI can drive the whole test suite down either path without
/// code changes). Reading the snapshot — never the live environment —
/// keeps concurrently constructed sessions on one consistent path.
DspPath resolve_dsp_path(DspPath requested) {
    if (requested != DspPath::kAuto) return requested;
    const std::string_view v = process_config().dsp_path;
    if (v == "scalar") return DspPath::kScalar;
    if (v == "simd") return DspPath::kSimd;
    return DspPath::kSimd;
}

}  // namespace

BlinkRadarPipeline::BlinkRadarPipeline(const radar::RadarConfig& radar,
                                       PipelineConfig config,
                                       obs::MetricsRegistry* metrics,
                                       obs::TraceSink* trace,
                                       obs::FlightRecorder* recorder,
                                       obs::telemetry::SpanCollector* spans)
    : radar_(radar),
      config_(config),
      preprocessor_(config),
      guard_(radar, config.guard),
      background_(radar.n_bins(), config.background_alpha),
      movement_(config, radar.frame_rate_hz()),
      selector_(radar, config),
      levd_(config, radar.frame_rate_hz()) {
    radar_.validate();
    BR_EXPECTS(config.cold_start_frames >= 8);
    BR_EXPECTS(config.fit_window_frames >= 8);
    BR_EXPECTS(config.update_interval_frames >= 1);
    BR_EXPECTS(config.reselect_interval_frames >= 1);
    BR_EXPECTS(config.full_reselect_stride >= 1);

    // Size every bounded window and scratch buffer once, so the steady
    // 40 ms frame path performs zero heap allocations (the per-frame
    // vectors in window_ acquire their capacity on first fill and keep it
    // as slots are recycled).
    const std::size_t max_window =
        std::max(config_.fit_window_frames, config_.cold_start_frames);
    window_.reset_capacity(max_window);
    window_soa_.reset_capacity(max_window);
    window_times_.reset_capacity(max_window);
    rolling_window_frames_ =
        std::min(config_.selection_window_frames, max_window);
    rolling_var_.reset(radar_.n_bins());
    wave_history_.reset_capacity(std::max<std::size_t>(
        16, static_cast<std::size_t>(4.0 * radar_.frame_rate_hz())));
    view_scratch_.reserve(max_window);
    view_soa_scratch_.reserve(max_window);
    select_scratch_.in_range.reserve(radar_.n_bins());
    select_scratch_.candidates.reserve(radar_.n_bins());
    select_scratch_.column.reserve(max_window);
    var_scratch_.reserve(radar_.n_bins());
    column_scratch_.reserve(max_window);
    blinks_.reserve(256);

    // Resolve the frame path once and record the decision back into the
    // config so snapshots fingerprint the *resolved* path (a replay of a
    // kAuto run must not re-resolve differently on another host).
    path_ = resolve_dsp_path(config_.dsp_path);
    config_.dsp_path = path_;
    if (path_ == DspPath::kSimd) kernels_ = &dsp::active_kernels();

    // Observability attaches last: all registration (and the one-time
    // clock calibration) happens here, never on the frame path. A trace
    // sink without a registry gets a private one so stage durations are
    // still measured for the trace records.
    if (metrics != nullptr || trace != nullptr)
        instr_ = std::make_unique<Instrumentation>(metrics, trace,
                                                   config_.metrics_prefix);
    recorder_ = recorder;
    spans_ = spans;
}

void BlinkRadarPipeline::reset_detection_state() {
    background_.reset();
    movement_.reset();
    levd_.reset();
    window_.clear();
    window_soa_.clear();
    window_times_.clear();
    rolling_var_.clear();
    selected_bin_.reset();
    viewing_.reset();
    frames_since_start_ = 0;
    frames_since_fit_ = 0;
    frames_since_reselect_ = 0;
    reselects_since_full_ = 0;
    phase_wave_.reset();
    wave_history_.clear();
    theta_unwrapped_ = 0.0;
    have_theta_ = false;
    prev_theta_raw_ = 0.0;
}

void BlinkRadarPipeline::restart() {
    reset_detection_state();
    ++restarts_;
}

void BlinkRadarPipeline::refit_viewing() {
    BR_ASSERT(selected_bin_.has_value());
    const obs::StageTimer timer(stage_hist(PipelineStage::kViewingFit),
                                stage_ns(PipelineStage::kViewingFit));
    if (instr_) instr_->refits->inc();
    dsp::ComplexSignal& column = column_scratch_;
    column.clear();
    for (std::size_t i = 0; i < window_size(); ++i)
        column.push_back(window_sample(i, *selected_bin_));
    const ViewingPosition fit =
        ViewingPosition::fit_trimmed(column, config_.fit_method);
    // Keep the previous viewing position if the new fit degenerated
    // (e.g. the driver held perfectly still for the whole window).
    if (!fit.valid()) return;
    if (!viewing_ || !viewing_->valid()) {
        viewing_ = fit;
        return;
    }
    // Blend instead of replacing: a hard swap steps the relative-distance
    // waveform, and LEVD would read the step as an extremum. The blend
    // weight is scaled by fit quality — a refit whose residual is a large
    // fraction of its radius carries a poorly constrained centre (short
    // or noisy arc) and must barely move the running estimate.
    const double q =
        fit.raw_fit().rms_residual / std::max(fit.radius(), 1e-12);
    const double quality = 1.0 / (1.0 + (q / 0.03) * (q / 0.03));
    const double beta = config_.viewing_blend * quality;
    const dsp::Complex centre =
        (1.0 - beta) * viewing_->center() + beta * fit.center();
    const double radius =
        (1.0 - beta) * viewing_->radius() + beta * fit.radius();
    viewing_ = ViewingPosition::from_circle(centre, radius);
}

bool BlinkRadarPipeline::reselect_bin() {
    const obs::StageTimer timer(stage_hist(PipelineStage::kBinSelection),
                                stage_ns(PipelineStage::kBinSelection));
    if (instr_) instr_->reselect_attempts->inc();
    // Select over the most recent frames only: after a restart the head of
    // the window still contains the turbulent tail of the movement that
    // caused it, and waiting for that to age out of a long window would
    // stretch the recovery (and the consecutive-miss runs) several-fold.
    // The window is passed as a view (no frame data is copied) and the
    // per-bin variances come from the rolling tracker, which covers
    // exactly these `take` frames by construction.
    const std::size_t take =
        std::min(window_size(), config_.selection_window_frames);
    BR_ASSERT(rolling_var_.count() == take);
    std::optional<BinSelection> sel;
    if (path_ == DspPath::kSimd) {
        view_soa_scratch_.clear();
        for (std::size_t i = window_soa_.size() - take;
             i < window_soa_.size(); ++i)
            view_soa_scratch_.push_back(&window_soa_[i]);
        const SoaWindowView view(view_soa_scratch_);
        // Steady-state reselects mostly run a cheap keep-check: once a
        // bin is tracked *and* the slow-time window has completely
        // filled since the last (re)start (early picks come from short,
        // noisy windows and deserve prompt full re-scans), re-score
        // just the tracked bin. While it still traces a clean arc a
        // challenger would need a 2x-better score to displace it, and
        // challengers are only ever admitted by the full
        // descending-variance scan — which still runs every
        // full_reselect_stride-th pass, and immediately whenever the
        // keep-check fails (the tracked bin degraded). The local pass
        // can therefore only conclude "keep", never switch, so every
        // switch stays behind the fully gated scan.
        if (selected_bin_ && window_soa_.size() == window_soa_.capacity() &&
            reselects_since_full_ + 1 < config_.full_reselect_stride) {
            ++reselects_since_full_;
            if (selector_.score_bin_soa(view, *selected_bin_,
                                        select_scratch_.column))
                return false;  // still arc-like: keep it
        }
        reselects_since_full_ = 0;
        {
            const obs::StageTimer k(
                instr_ ? instr_->kernels.variance_scan : nullptr);
            rolling_var_.variances_into(var_scratch_, *kernels_);
        }
        sel = selector_.select_soa(view, var_scratch_, select_scratch_);
        if (!sel) return false;  // nothing arc-like: keep what we have
        if (selected_bin_ && *selected_bin_ == sel->bin) return false;
        if (selected_bin_) {
            // Hysteresis: only hop if the challenger clearly beats the
            // currently tracked bin under the same window.
            const std::optional<BinSelection> current =
                selector_.score_bin_soa(view, *selected_bin_,
                                        select_scratch_.column);
            if (current &&
                sel->score < config_.reselect_hysteresis * current->score)
                return false;
        }
    } else {
        view_scratch_.clear();
        for (std::size_t i = window_.size() - take; i < window_.size(); ++i)
            view_scratch_.push_back(&window_[i]);
        const FrameWindowView view(view_scratch_);
        rolling_var_.variances_into(var_scratch_);
        sel = selector_.select(view, var_scratch_);
        if (!sel) return false;  // nothing arc-like: keep what we have
        if (selected_bin_ && *selected_bin_ == sel->bin) return false;
        if (selected_bin_) {
            // Hysteresis: only hop if the challenger clearly beats the
            // currently tracked bin under the same window.
            const std::optional<BinSelection> current =
                selector_.score_bin(view, *selected_bin_);
            if (current &&
                sel->score < config_.reselect_hysteresis * current->score)
                return false;
        }
    }
    selected_bin_ = sel->bin;
    if (instr_) instr_->reselect_switches->inc();  // reselection churn
    return true;
}

double BlinkRadarPipeline::waveform_value(const dsp::Complex& sample) {
    switch (config_.waveform_mode) {
        case WaveformMode::kArcDistance:
            BR_ASSERT(viewing_ && viewing_->valid());
            return viewing_->relative_distance(sample);
        case WaveformMode::kAmplitude:
            return std::abs(sample);
        case WaveformMode::kPhase:
            // Unwrapped phase progression with amplitude-scaled
            // increments (see PhaseWaveform) so the LEVD threshold lives
            // in the same units as the other modes.
            return phase_wave_.push(sample);
    }
    return 0.0;
}

FrameResult BlinkRadarPipeline::process(const radar::RadarFrame& frame) {
    const HealthState health_before = guard_.health();
    // The raw ring captures the frame before the guard sees it, so a
    // dump replays the sensor's actual output, corruption included.
    std::uint64_t seq = 0;
    std::int64_t bin_before = -1;
    if (recorder_ != nullptr) {
        seq = recorder_->begin_frame(frame);
        if (selected_bin_)
            bin_before = static_cast<std::int64_t>(*selected_bin_);
    }
    const bool span_frame = spans_ != nullptr && frame.span_id != 0;
    if (instr_) {
        instr_->detailed_frame =
            span_frame || instr_->trace != nullptr ||
            (instr_->frame_index & (kStageSampleFrames - 1)) == 0;
        // A span frame's record reads last_ns as this frame's stage
        // durations, so stale values from earlier detailed frames must
        // not leak in (the trace path wipes after each record instead).
        if (span_frame) instr_->last_ns.fill(0);
    }
    FrameResult result;
    {
        const obs::StageTimer total(stage_hist(PipelineStage::kFrameTotal),
                                    stage_ns(PipelineStage::kFrameTotal));
        result = process_guarded(frame);
    }
    if (recorder_ != nullptr)
        record_frame(seq, frame, result, health_before, bin_before);
    // Close the span before observe_frame: the trace path zeroes
    // last_ns after emitting its own record. stage[0..7] only —
    // frame_total is the whole call, not a hop.
    if (span_frame)
        spans_->complete(frame.span_id,
                         instr_ ? instr_->last_ns.data() : nullptr,
                         kNumPipelineStages - 1);
    if (instr_) observe_frame(frame, result, health_before);
    return result;
}

FrameResult BlinkRadarPipeline::process_guarded(
    const radar::RadarFrame& frame) {
    if (!config_.guard.enabled) {
        // Unguarded contract: the caller promises well-formed frames. A
        // bin-count mismatch is a checked error, never an out-of-bounds
        // read further down the chain.
        BR_EXPECTS(frame.bins.size() == radar_.n_bins());
        return process_validated(frame);
    }

    GuardDecision decision;
    {
        const obs::StageTimer timer(stage_hist(PipelineStage::kGuard),
                                    stage_ns(PipelineStage::kGuard));
        decision = guard_.admit(frame);
    }
    FrameResult result;
    result.quality = decision.verdict;
    result.repaired_samples = decision.repaired_samples;
    result.bridged_frames = decision.bridged_frames;
    if (decision.warm_restart) {
        // The stream recovered from signal loss: the held baseline and
        // fitted viewing position are stale, so re-converge from scratch
        // (warm restarts are counted by the guard, not in restarts()).
        reset_detection_state();
    }
    if (decision.verdict == FrameVerdict::kQuarantined) {
        result.cold_start = !selected_bin_.has_value();
        result.health = guard_.health();
        return result;
    }
    for (const radar::RadarFrame& admitted : decision.frames) {
        const FrameResult r = process_validated(admitted);
        if (r.blink) result.blink = r.blink;
        result.restarted |= r.restarted;
        result.cold_start = r.cold_start;
        result.waveform_value = r.waveform_value;
    }
    if (!result.cold_start) guard_.notify_converged();
    result.health = guard_.health();
    return result;
}

FrameResult BlinkRadarPipeline::process_validated(
    const radar::RadarFrame& frame) {
    BR_ASSERT(frame.bins.size() == radar_.n_bins());
    FrameResult result;
    const bool simd = path_ == DspPath::kSimd;
    // Per-kernel sub-stage timers, duty-cycled with the stage timers.
    const obs::KernelTimers* kt =
        (simd && instr_ && instr_->detailed_frame) ? &instr_->kernels
                                                   : nullptr;

    // 1. Noise reduction (into per-pipeline scratch: no allocation).
    {
        const obs::StageTimer timer(stage_hist(PipelineStage::kPreprocess),
                                    stage_ns(PipelineStage::kPreprocess));
        if (simd)
            preprocessor_.apply_soa(frame, pre_planes_, kt);
        else
            preprocessor_.apply_into(frame, pre_frame_);
    }

    // 2. Significant body movement => restart the whole detection process.
    bool moved = false;
    {
        const obs::StageTimer timer(stage_hist(PipelineStage::kMovement),
                                    stage_ns(PipelineStage::kMovement));
        if (simd) {
            const obs::StageTimer k(kt ? kt->movement_energy : nullptr);
            moved = movement_.push_soa(pre_planes_, *kernels_);
        } else {
            moved = movement_.push(pre_frame_.bins);
        }
    }
    if (moved) {
        restart();
        result.restarted = true;
        result.cold_start = true;
        return result;
    }

    // 3. Background (static clutter) subtraction, written straight into
    // the window ring's recycled slot. The rolling variance tracker
    // follows the last rolling_window_frames_ frames: evict the frame
    // about to leave that window *before* pushing (when the ring is full
    // it may be the very slot the new frame overwrites).
    {
        const obs::StageTimer timer(stage_hist(PipelineStage::kBackground),
                                    stage_ns(PipelineStage::kBackground));
        if (simd) {
            // Fused kernel: evict + subtract + variance-push + background
            // adapt in one pass over the bins. The evicted frame may be
            // the very ring slot being recycled as the output, so its
            // pointers are captured before emplace_slot() and the kernel
            // loads them before storing (see background_var_fused).
            const obs::StageTimer k(kt ? kt->background_fused : nullptr);
            const std::size_t n = radar_.n_bins();
            const dsp::IqPlanes* evict = nullptr;
            if (rolling_var_.count() == rolling_window_frames_) {
                evict = &window_soa_[window_soa_.size() -
                                     rolling_window_frames_];
                rolling_var_.note_evict();
            }
            const double* old_i = evict ? evict->i.data() : nullptr;
            const double* old_q = evict ? evict->q.data() : nullptr;
            dsp::IqPlanes& sub = window_soa_.emplace_slot();
            sub.resize(n);
            background_.begin_soa_frame(pre_planes_);
            kernels_->background_var_fused(
                pre_planes_.i.data(), pre_planes_.q.data(), n,
                config_.background_alpha, background_.bg_i().data(),
                background_.bg_q().data(), sub.i.data(), sub.q.data(),
                old_i, old_q, rolling_var_.sum_i_data(),
                rolling_var_.sum_q_data(), rolling_var_.sum_sq_data());
            rolling_var_.note_push();
        } else {
            if (rolling_var_.count() == rolling_window_frames_)
                rolling_var_.evict(
                    window_[window_.size() - rolling_window_frames_]);
            dsp::ComplexSignal& sub = window_.emplace_slot();
            background_.process_into(pre_frame_.bins, sub);
            rolling_var_.push(sub);
        }
        window_times_.push_back(frame.timestamp_s);
    }
    // Decimated full-profile tap (outside the stage span: it is recorder
    // cost, not background-subtraction cost). First call per recorder
    // frame wins — a bridged gap replays several synthetic frames
    // through here for one sensor frame, and the tap captures the first.
    if (recorder_ != nullptr && recorder_->profiles_due()) {
        if (simd) {
            // Rare (decimated) tap: interleave the SoA planes into the
            // recorder's AoS wire format via reused scratch.
            const dsp::IqPlanes& sub = window_soa_.back();
            tap_pre_scratch_.resize(pre_planes_.size());
            tap_sub_scratch_.resize(sub.size());
            kernels_->interleave(pre_planes_.i.data(), pre_planes_.q.data(),
                                 pre_planes_.size(),
                                 tap_pre_scratch_.data());
            kernels_->interleave(sub.i.data(), sub.q.data(), sub.size(),
                                 tap_sub_scratch_.data());
            recorder_->tap_profiles(tap_pre_scratch_, tap_sub_scratch_);
        } else {
            recorder_->tap_profiles(pre_frame_.bins, window_.back());
        }
    }
    ++frames_since_start_;

    // 4. Cold start: accumulate, then select the bin and fit the arc.
    if (!selected_bin_) {
        if (frames_since_start_ < config_.cold_start_frames) {
            result.cold_start = true;
            return result;
        }
        if (!reselect_bin()) {
            // Nothing significant in view yet; stay in cold start.
            result.cold_start = true;
            return result;
        }
        refit_viewing();
        if (!viewing_ || !viewing_->valid()) {
            selected_bin_.reset();
            result.cold_start = true;
            return result;
        }
        frames_since_fit_ = 0;
        frames_since_reselect_ = 0;
        // Pre-fill the LEVD noise estimate from the cold-start window so
        // detection is live immediately — the 2 s cold start is the only
        // dead time, exactly as the paper describes.
        if (config_.waveform_mode == WaveformMode::kArcDistance) {
            const obs::StageTimer timer(stage_hist(PipelineStage::kLevd),
                                        stage_ns(PipelineStage::kLevd));
            for (std::size_t i = 0; i + 1 < window_size(); ++i) {
                levd_.warm_up(window_times_[i],
                              compensated_distance(
                                  window_times_[i],
                                  window_sample(i, *selected_bin_)));
            }
        }
    }

    // 5. Adaptive update: periodic refit and bin re-selection.
    if (++frames_since_fit_ >= config_.update_interval_frames) {
        frames_since_fit_ = 0;
        refit_viewing();
    }
    if (++frames_since_reselect_ >= config_.reselect_interval_frames) {
        frames_since_reselect_ = 0;
        if (reselect_bin()) {
            // The blink carrier moved to a different bin: refit there.
            // LEVD state is kept — its robust (MAD) noise estimate absorbs
            // the one-off baseline step within a couple of seconds, which
            // costs far less than rebuilding the threshold from scratch.
            refit_viewing();
            phase_wave_.reset();
        }
    }

    if (config_.waveform_mode == WaveformMode::kArcDistance &&
        (!viewing_ || !viewing_->valid())) {
        result.cold_start = true;
        return result;
    }

    // 6. Relative-distance waveform and LEVD. (compensated_distance also
    // maintains the d/theta history the motion-artifact veto inspects;
    // with motion_compensation off it returns the raw distance.)
    const dsp::Complex sample =
        window_sample(window_size() - 1, *selected_bin_);
    double d = 0.0;
    {
        const obs::StageTimer timer(stage_hist(PipelineStage::kWaveform),
                                    stage_ns(PipelineStage::kWaveform));
        d = config_.waveform_mode == WaveformMode::kArcDistance
                ? compensated_distance(frame.timestamp_s, sample)
                : waveform_value(sample);
    }
    result.waveform_value = d;

    std::optional<DetectedBlink> blink;
    {
        const obs::StageTimer timer(stage_hist(PipelineStage::kLevd),
                                    stage_ns(PipelineStage::kLevd));
        blink = levd_.push(frame.timestamp_s, d);
        if (blink && config_.waveform_mode == WaveformMode::kArcDistance &&
            motion_artifact_veto(*blink)) {
            blink.reset();
        }
    }
    result.blink = blink;
    if (result.blink) blinks_.push_back(*result.blink);
    return result;
}

double BlinkRadarPipeline::compensated_distance(Seconds t,
                                                dsp::Complex sample) {
    BR_ASSERT(viewing_ && viewing_->valid());
    const double d = viewing_->relative_distance(sample);

    // Unwrapped angle around the viewing position.
    const dsp::Complex v = sample - viewing_->center();
    const double theta_raw = std::atan2(v.imag(), v.real());
    if (have_theta_) {
        double step = theta_raw - prev_theta_raw_;
        while (step > constants::kPi) step -= constants::kTwoPi;
        while (step < -constants::kPi) step += constants::kTwoPi;
        theta_unwrapped_ += step;
    } else {
        have_theta_ = true;
    }
    prev_theta_raw_ = theta_raw;

    wave_history_.push_back(WaveSample{t, d, theta_unwrapped_});  // ring
    if (!config_.motion_compensation) return d;
    if (wave_history_.size() < 16) return d;

    // Motion compensation. A residual viewing-position error e leaks the
    // head-motion rotation theta(t) into the distance waveform as
    //   d(theta) ~ R + e_t * theta + (e_r / 2) * theta^2,
    // which is exactly the quasi-periodic interference that mimics blink
    // bumps (BCG beats are the worst: ~1 s period, blink-like rise
    // times). Regressing d on (theta, theta^2) over the recent window and
    // removing the fitted component cancels the leak, while a blink — a
    // radial amplitude change uncorrelated with theta — passes through.
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    double sd = 0, sd1 = 0, sd2 = 0;
    const double theta_mean = [this] {
        double acc = 0.0;
        for (std::size_t i = 0; i < wave_history_.size(); ++i)
            acc += wave_history_[i].theta;
        return acc / static_cast<double>(wave_history_.size());
    }();
    for (std::size_t i = 0; i < wave_history_.size(); ++i) {
        const WaveSample& w = wave_history_[i];
        const double x = w.theta - theta_mean;
        const double x2 = x * x;
        s0 += 1.0;
        s1 += x;
        s2 += x2;
        s3 += x2 * x;
        s4 += x2 * x2;
        sd += w.d;
        sd1 += w.d * x;
        sd2 += w.d * x2;
    }
    // Solve the 3x3 normal equations for d ~ a + b x + c x^2 by Cramer.
    const double m00 = s0, m01 = s1, m02 = s2;
    const double m11 = s2, m12 = s3, m22 = s4;
    const double det = m00 * (m11 * m22 - m12 * m12) -
                       m01 * (m01 * m22 - m12 * m02) +
                       m02 * (m01 * m12 - m11 * m02);
    if (std::abs(det) < 1e-12) return d;
    const double det_b = m00 * (sd1 * m22 - m12 * sd2) -
                         sd * (m01 * m22 - m12 * m02) +
                         m02 * (m01 * sd2 - sd1 * m02);
    const double det_c = m00 * (m11 * sd2 - sd1 * m12) -
                         m01 * (m01 * sd2 - sd1 * m02) +
                         sd * (m01 * m12 - m11 * m02);
    const double b = det_b / det;
    const double c = det_c / det;

    const double x_now = wave_history_.back().theta - theta_mean;
    return d - b * x_now - c * x_now * x_now;
}

bool BlinkRadarPipeline::motion_artifact_veto(
    const DetectedBlink& blink) const {
    // Range migration couples head motion into d(t): as the head moves,
    // the reflector slides along the pulse's range point-spread slope and
    // the bin amplitude follows the displacement. The same displacement
    // simultaneously rotates the I/Q sample around the viewing position,
    // so a migration bump in d(t) is (anti)correlated with theta(t) over
    // its extent. A blink changes the reflection amplitude without moving
    // the head — near-zero correlation. Veto bumps whose d-theta
    // correlation is almost perfect.
    if (config_.motion_veto_correlation >= 1.0) return false;
    const Seconds lo = blink.peak_s - blink.duration_s;
    const Seconds hi = blink.peak_s + blink.duration_s;
    double sd = 0.0, st = 0.0, sdd = 0.0, stt = 0.0, sdt = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < wave_history_.size(); ++i) {
        const WaveSample& w = wave_history_[i];
        if (w.t < lo || w.t > hi) continue;
        sd += w.d;
        st += w.theta;
        sdd += w.d * w.d;
        stt += w.theta * w.theta;
        sdt += w.d * w.theta;
        ++n;
    }
    if (n < 6) return false;
    const double dn = static_cast<double>(n);
    const double cov = sdt / dn - (sd / dn) * (st / dn);
    const double var_d = sdd / dn - (sd / dn) * (sd / dn);
    const double var_t = stt / dn - (st / dn) * (st / dn);
    if (var_d <= 0.0 || var_t <= 0.0) return false;
    const double corr = cov / std::sqrt(var_d * var_t);
    return std::abs(corr) > config_.motion_veto_correlation;
}

namespace {

/// Append `v` to `out` with %.9g formatting (locale-independent enough
/// for diagnostics; the exporter uses round-trip formatting instead).
void append_double(std::string& out, double v) {
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%.9g", v);
    out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    const int n = std::snprintf(buf, sizeof(buf), "%llu",
                                static_cast<unsigned long long>(v));
    out.append(buf, static_cast<std::size_t>(n > 0 ? n : 0));
}

}  // namespace

void BlinkRadarPipeline::observe_frame(const radar::RadarFrame& frame,
                                       const FrameResult& result,
                                       HealthState before) {
    Instrumentation& in = *instr_;
    in.frames->inc();
    if (result.blink) in.blinks->inc();
    if (result.restarted) in.restarts->inc();
    if (result.cold_start) in.cold_start_frames->inc();

    // Guard counters mirror GuardStats incrementally (per-frame deltas),
    // so a merged batch roll-up sums cleanly across sessions. The
    // mirrored fields only move on fault events, so the overwhelmingly
    // common clean frame pays a contiguous compare instead of six
    // read-modify-writes on scattered counter nodes.
    const GuardStats& gs = guard_.stats();
    const GuardStats& pg = in.prev_guard;
    if (gs.frames_quarantined != pg.frames_quarantined ||
        gs.samples_repaired != pg.samples_repaired ||
        gs.frames_bridged != pg.frames_bridged ||
        gs.gaps_bridged != pg.gaps_bridged ||
        gs.signal_lost_events != pg.signal_lost_events ||
        gs.warm_restarts != pg.warm_restarts) {
        in.guard_quarantined->inc(gs.frames_quarantined -
                                  pg.frames_quarantined);
        in.guard_samples_repaired->inc(gs.samples_repaired -
                                       pg.samples_repaired);
        in.guard_frames_bridged->inc(gs.frames_bridged -
                                     pg.frames_bridged);
        in.guard_gaps_bridged->inc(gs.gaps_bridged - pg.gaps_bridged);
        in.guard_signal_lost->inc(gs.signal_lost_events -
                                  pg.signal_lost_events);
        in.guard_warm_restarts->inc(gs.warm_restarts - pg.warm_restarts);
        in.prev_guard = gs;
    }

    const HealthState after = guard_.health();
    if (after != before)
        in.health_entered[static_cast<std::size_t>(after)]->inc();
    // Gauges are last-written snapshots; refreshing them on sampled
    // frames only (every frame when tracing) is indistinguishable at
    // snapshot time and keeps the steady-state frame cost down.
    if (in.detailed_frame) {
        in.fault_rate->set(guard_.fault_rate());
        in.levd_threshold->set(levd_.threshold());
        in.levd_sigma->set(levd_.noise_sigma());
        in.selected_bin->set(
            selected_bin_ ? static_cast<double>(*selected_bin_) : -1.0);
    }

    if (in.trace != nullptr) {
        // One JSONL record per frame, built by appending into the reused
        // (pre-reserved) line buffer — no temporaries, so steady-state
        // tracing never allocates; the only cost beyond formatting is the
        // sink's write.
        std::string& line = in.trace_line;
        line.clear();
        line += "{\"frame\": ";
        append_u64(line, in.frame_index);
        line += ", \"t\": ";
        append_double(line, frame.timestamp_s);
        line += ", \"verdict\": \"";
        line += to_string(result.quality);
        line += "\", \"health\": \"";
        line += to_string(after);
        line += "\", \"cold_start\": ";
        line += result.cold_start ? "true" : "false";
        line += ", \"restarted\": ";
        line += result.restarted ? "true" : "false";
        line += ", \"blink\": ";
        line += result.blink ? "true" : "false";
        line += ", \"wave\": ";
        append_double(line, result.waveform_value);
        line += ", \"stages_ns\": {";
        for (std::size_t s = 0; s < kNumPipelineStages; ++s) {
            if (s != 0) line += ", ";
            line += '"';
            line += to_string(static_cast<PipelineStage>(s));
            line += "\": ";
            append_u64(line, in.last_ns[s]);
        }
        line += "}}";
        in.trace->write_line(line);
        // Stages skipped next frame must not show stale durations; only
        // the trace reads last_ns, so the wipe is trace-gated too.
        in.last_ns.fill(0);
    }
    ++in.frame_index;
}

void BlinkRadarPipeline::record_frame(std::uint64_t seq,
                                      const radar::RadarFrame& frame,
                                      const FrameResult& result,
                                      HealthState before,
                                      std::int64_t bin_before) {
    obs::FlightRecorder& rec = *recorder_;
    const double t = frame.timestamp_s;

    obs::FrameTap tap;
    tap.seq = seq;
    tap.t = t;
    tap.verdict = static_cast<std::uint8_t>(result.quality);
    tap.health = static_cast<std::uint8_t>(result.health);
    tap.cold_start = result.cold_start;
    tap.restarted = result.restarted;
    tap.has_blink = result.blink.has_value();
    tap.selected_bin =
        selected_bin_ ? static_cast<std::int64_t>(*selected_bin_) : -1;
    if (selected_bin_ && window_size() > 0)
        tap.bin_iq = window_sample(window_size() - 1, *selected_bin_);
    if (viewing_) {
        const dsp::CircleFit& fit = viewing_->raw_fit();
        tap.fit_cx = fit.center_x;
        tap.fit_cy = fit.center_y;
        tap.fit_radius = fit.radius;
        tap.fit_residual = fit.rms_residual;
    }
    tap.waveform = result.waveform_value;
    tap.levd_threshold = levd_.threshold();
    tap.levd_sigma = levd_.noise_sigma();
    if (result.blink) {
        tap.blink_peak_s = result.blink->peak_s;
        tap.blink_duration_s = result.blink->duration_s;
        tap.blink_magnitude = result.blink->magnitude;
        tap.blink_strength = result.blink->strength;
    }
    tap.repaired_samples = result.repaired_samples;
    tap.bridged_frames = result.bridged_frames;
    rec.end_frame(tap);

    if (result.health != before)
        rec.record_event(obs::RecorderEvent::kHealthTransition, t,
                         static_cast<double>(before),
                         static_cast<double>(result.health));
    if (result.restarted)
        rec.record_event(obs::RecorderEvent::kMovementRestart, t);
    if (tap.selected_bin != bin_before)
        rec.record_event(obs::RecorderEvent::kBinSwitch, t,
                         static_cast<double>(bin_before),
                         static_cast<double>(tap.selected_bin));
    if (result.blink)
        rec.record_event(obs::RecorderEvent::kBlink, t,
                         result.blink->peak_s, result.blink->strength);

    if (rec.metrics_due()) {
        obs::MetricsSnap snap;
        snap.seq = seq;
        snap.t = t;
        snap.frames = seq;
        snap.blinks = blinks_.size();
        snap.restarts = restarts_;
        const GuardStats& gs = guard_.stats();
        snap.quarantined = gs.frames_quarantined;
        snap.repaired = gs.samples_repaired;
        snap.bridged = gs.frames_bridged;
        snap.gaps = gs.gaps_bridged;
        snap.signal_losses = gs.signal_lost_events;
        snap.warm_restarts = gs.warm_restarts;
        snap.fault_rate = guard_.fault_rate();
        snap.levd_threshold = levd_.threshold();
        snap.levd_sigma = levd_.noise_sigma();
        rec.record_metrics(snap);
    }

    // Periodic self-checkpoint: serialize into the recorder's recycled
    // buffer so dumps always carry a replay base (see postmortem.hpp for
    // the seq labelling contract). The three rotating buffers make this
    // allocation-free once they have grown to the state's working size.
    if (rec.checkpoint_due()) {
        state::StateWriter writer(rec.take_checkpoint_buffer());
        // CRCs are deferred: checksumming ~600 KB of window state costs
        // ~30x the bulk copy and is only needed when a dump actually
        // leaves the process — FlightRecorder::dump() seals it then.
        writer.defer_crcs();
        save_state(writer);
        rec.store_checkpoint(writer.finish());
    }
}

namespace {
constexpr std::uint32_t kPipelineTag = state::make_tag("PIPE");
// v2: the resolved DspPath joined the fingerprint (the scalar and SIMD
// frame paths produce deliberately different — both correct — results,
// so a snapshot only replays bit-exactly on the path that produced it).
constexpr std::uint16_t kPipelineVersion = 2;

const char* to_string(DspPath path) noexcept {
    switch (path) {
        case DspPath::kScalar: return "scalar";
        case DspPath::kSimd: return "simd";
        case DspPath::kAuto: return "auto";
    }
    return "?";
}
}  // namespace

void BlinkRadarPipeline::save_state(state::StateWriter& writer) const {
    writer.begin_section(kPipelineTag, kPipelineVersion);

    // Configuration fingerprint: a snapshot only makes sense restored
    // into a pipeline with the same geometry, waveform semantics and
    // frame path. path_ is always resolved (never kAuto) by the ctor.
    writer.write_size(radar_.n_bins());
    writer.write_f64(radar_.frame_rate_hz());
    writer.write_u8(static_cast<std::uint8_t>(config_.waveform_mode));
    writer.write_u8(static_cast<std::uint8_t>(path_));

    // Sliding windows, oldest first (the ring's physical head position
    // is unobservable, so logical order is the canonical form). The SoA
    // window interleaves through write_complex_planes, so the wire bytes
    // are identical to the scalar window's.
    writer.write_size(window_size());
    if (path_ == DspPath::kSimd) {
        for (std::size_t i = 0; i < window_soa_.size(); ++i)
            writer.write_complex_planes(window_soa_[i].i, window_soa_[i].q);
    } else {
        for (std::size_t i = 0; i < window_.size(); ++i)
            writer.write_complex_span(window_[i]);
    }
    writer.write_size(window_times_.size());
    for (std::size_t i = 0; i < window_times_.size(); ++i)
        writer.write_f64(window_times_[i]);
    writer.write_size(wave_history_.size());
    for (std::size_t i = 0; i < wave_history_.size(); ++i) {
        const WaveSample& w = wave_history_[i];
        writer.write_f64(w.t);
        writer.write_f64(w.d);
        writer.write_f64(w.theta);
    }

    writer.write_f64(theta_unwrapped_);
    writer.write_bool(have_theta_);
    writer.write_f64(prev_theta_raw_);

    writer.write_bool(selected_bin_.has_value());
    writer.write_size(selected_bin_.value_or(0));

    writer.write_bool(viewing_.has_value());
    {
        const dsp::CircleFit fit =
            viewing_ ? viewing_->raw_fit() : dsp::CircleFit{};
        writer.write_f64(fit.center_x);
        writer.write_f64(fit.center_y);
        writer.write_f64(fit.radius);
        writer.write_f64(fit.rms_residual);
        writer.write_bool(fit.ok);
    }

    writer.write_size(blinks_.size());
    for (const DetectedBlink& b : blinks_) {
        writer.write_f64(b.peak_s);
        writer.write_f64(b.duration_s);
        writer.write_f64(b.magnitude);
        writer.write_f64(b.strength);
    }

    writer.write_size(frames_since_start_);
    writer.write_size(frames_since_fit_);
    writer.write_size(frames_since_reselect_);
    writer.write_size(reselects_since_full_);
    writer.write_size(restarts_);
    writer.end_section();

    // One section per stateful stage, written after the pipeline's own
    // so a partial writer failure cannot leave a PIPE-less container
    // that still opens.
    preprocessor_.save_state(writer);
    guard_.save_state(writer);
    background_.save_state(writer);
    movement_.save_state(writer);
    rolling_var_.save_state(writer);
    levd_.save_state(writer);
    phase_wave_.save_state(writer);
}

void BlinkRadarPipeline::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kPipelineTag);
    if (version > kPipelineVersion)
        throw state::SnapshotError(
            "PIPE: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kPipelineVersion) + ")");

    const std::size_t snap_bins = reader.read_size();
    const double snap_rate = reader.read_f64();
    const std::uint8_t snap_mode = reader.read_u8();
    if (snap_bins != radar_.n_bins())
        throw state::SnapshotError(
            "PIPE: snapshot was taken with " + std::to_string(snap_bins) +
            " range bins but this pipeline is configured for " +
            std::to_string(radar_.n_bins()));
    if (snap_rate != radar_.frame_rate_hz())
        throw state::SnapshotError(
            "PIPE: snapshot frame rate " + std::to_string(snap_rate) +
            " Hz does not match the configured " +
            std::to_string(radar_.frame_rate_hz()) + " Hz");
    if (snap_mode != static_cast<std::uint8_t>(config_.waveform_mode))
        throw state::SnapshotError(
            "PIPE: snapshot waveform mode " + std::to_string(snap_mode) +
            " does not match the configured mode " +
            std::to_string(
                static_cast<std::uint8_t>(config_.waveform_mode)));
    // v1 snapshots predate the SIMD path and were always scalar.
    const DspPath snap_path =
        version >= 2 ? static_cast<DspPath>(reader.read_u8())
                     : DspPath::kScalar;
    if (snap_path != path_)
        throw state::SnapshotError(
            std::string("PIPE: snapshot was taken on the ") +
            to_string(snap_path) +
            " frame path but this pipeline resolved the " +
            to_string(path_) +
            " path; the paths diverge numerically, so replay requires the"
            " original (set PipelineConfig::dsp_path explicitly)");

    const std::size_t n_frames = reader.read_size();
    if (n_frames > window_.capacity())
        throw state::SnapshotError(
            "PIPE: snapshot window holds " + std::to_string(n_frames) +
            " frames but this pipeline's window capacity is " +
            std::to_string(window_.capacity()));
    window_.clear();
    window_soa_.clear();
    for (std::size_t i = 0; i < n_frames; ++i) {
        std::size_t got = 0;
        if (path_ == DspPath::kSimd) {
            dsp::IqPlanes& slot = window_soa_.emplace_slot();
            reader.read_complex_planes_into(slot.i, slot.q);
            got = slot.size();
        } else {
            dsp::ComplexSignal& slot = window_.emplace_slot();
            reader.read_complex_into(slot);
            got = slot.size();
        }
        if (got != radar_.n_bins())
            throw state::SnapshotError(
                "PIPE: snapshot window frame " + std::to_string(i) +
                " holds " + std::to_string(got) +
                " bins, expected " + std::to_string(radar_.n_bins()));
    }
    const std::size_t n_times = reader.read_size();
    if (n_times != n_frames)
        throw state::SnapshotError(
            "PIPE: snapshot holds " + std::to_string(n_times) +
            " window timestamps for " + std::to_string(n_frames) +
            " window frames");
    window_times_.clear();
    for (std::size_t i = 0; i < n_times; ++i)
        window_times_.push_back(reader.read_f64());

    const std::size_t n_wave = reader.read_size();
    if (n_wave > wave_history_.capacity())
        throw state::SnapshotError(
            "PIPE: snapshot wave history holds " + std::to_string(n_wave) +
            " samples but this pipeline's capacity is " +
            std::to_string(wave_history_.capacity()));
    wave_history_.clear();
    for (std::size_t i = 0; i < n_wave; ++i) {
        WaveSample w;
        w.t = reader.read_f64();
        w.d = reader.read_f64();
        w.theta = reader.read_f64();
        wave_history_.push_back(w);
    }

    theta_unwrapped_ = reader.read_f64();
    have_theta_ = reader.read_bool();
    prev_theta_raw_ = reader.read_f64();

    const bool have_bin = reader.read_bool();
    const std::size_t bin = reader.read_size();
    if (have_bin && bin >= radar_.n_bins())
        throw state::SnapshotError(
            "PIPE: snapshot selected bin " + std::to_string(bin) +
            " is out of range for " + std::to_string(radar_.n_bins()) +
            " bins");
    selected_bin_ = have_bin ? std::optional<std::size_t>(bin)
                             : std::nullopt;

    const bool have_viewing = reader.read_bool();
    dsp::CircleFit fit;
    fit.center_x = reader.read_f64();
    fit.center_y = reader.read_f64();
    fit.radius = reader.read_f64();
    fit.rms_residual = reader.read_f64();
    fit.ok = reader.read_bool();
    viewing_ = have_viewing
                   ? std::optional<ViewingPosition>(
                         ViewingPosition::from_raw_fit(fit))
                   : std::nullopt;

    const std::size_t n_blinks = reader.read_size();
    blinks_.clear();
    blinks_.reserve(std::max<std::size_t>(n_blinks, 256));
    for (std::size_t i = 0; i < n_blinks; ++i) {
        DetectedBlink b;
        b.peak_s = reader.read_f64();
        b.duration_s = reader.read_f64();
        b.magnitude = reader.read_f64();
        b.strength = reader.read_f64();
        blinks_.push_back(b);
    }

    frames_since_start_ = reader.read_size();
    frames_since_fit_ = reader.read_size();
    frames_since_reselect_ = reader.read_size();
    // v1 snapshots are scalar-path (checked above), which never runs
    // local reselects, so 0 is exact rather than an approximation.
    reselects_since_full_ = version >= 2 ? reader.read_size() : 0;
    restarts_ = reader.read_size();
    reader.close_section();

    preprocessor_.restore_state(reader);
    guard_.restore_state(reader);
    background_.restore_state(reader);
    movement_.restore_state(reader);
    rolling_var_.restore_state(reader);
    levd_.restore_state(reader);
    phase_wave_.restore_state(reader);
}

BatchResult detect_blinks(const radar::FrameSeries& series,
                          const radar::RadarConfig& radar,
                          const PipelineConfig& config,
                          obs::MetricsRegistry* metrics) {
    BlinkRadarPipeline pipeline(radar, config, metrics);
    for (const radar::RadarFrame& f : series) pipeline.process(f);
    return BatchResult{pipeline.blinks(), pipeline.restarts()};
}

}  // namespace blinkradar::core
