// The BlinkRadar detection pipeline (paper Section III/IV, Fig. 3).
//
// Streaming facade over the full chain:
//   frame -> noise reduction -> movement check -> background subtraction
//         -> (cold start: bin selection + viewing-position fit)
//         -> relative-distance waveform -> LEVD -> blink events
// with the paper's adaptive behaviour: a 50-chirp (2 s) one-time cold
// start, periodic viewing-position refits, periodic bin re-selection, and
// a full restart whenever a significant body movement is detected.
#pragma once

#include <optional>
#include <vector>

#include "common/ring_buffer.hpp"
#include "core/bin_selection.hpp"
#include "core/frame_guard.hpp"
#include "core/levd.hpp"
#include "core/movement_detector.hpp"
#include "core/pipeline_config.hpp"
#include "core/preprocess.hpp"
#include "core/viewing_position.hpp"
#include "dsp/background.hpp"
#include "radar/config.hpp"
#include "radar/frame.hpp"

namespace blinkradar::core {

/// Per-frame output of the streaming pipeline.
struct FrameResult {
    std::optional<DetectedBlink> blink; ///< set when a blink completes
    bool restarted = false;             ///< a large movement reset the pipe
    bool cold_start = false;            ///< still initialising, no output
    double waveform_value = 0.0;        ///< current d(t) (diagnostics)

    // Robustness surface (populated by the frame guard; on a clean
    // stream: health == kOk, quality == kClean, counters zero).
    HealthState health = HealthState::kOk;          ///< current health
    FrameVerdict quality = FrameVerdict::kClean;    ///< this frame's fate
    std::uint32_t repaired_samples = 0;  ///< non-finite samples fixed
    std::uint32_t bridged_frames = 0;    ///< gap-fill frames synthesised
};

/// Streaming BlinkRadar pipeline. Feed frames in order; blinks come out.
class BlinkRadarPipeline {
public:
    BlinkRadarPipeline(const radar::RadarConfig& radar,
                       PipelineConfig config = {});

    /// Process the next frame. With the frame guard enabled (the
    /// default) any sensor output is accepted: corrupt frames are
    /// quarantined or repaired, dropped-frame gaps are bridged, and the
    /// result's health/quality fields report what happened. With the
    /// guard disabled the caller must feed well-formed frames (checked:
    /// a bin-count mismatch throws ContractViolation).
    FrameResult process(const radar::RadarFrame& frame);

    /// All blinks detected so far.
    const std::vector<DetectedBlink>& blinks() const noexcept {
        return blinks_;
    }

    /// Number of large-movement restarts so far.
    std::size_t restarts() const noexcept { return restarts_; }

    /// Currently selected range bin (empty during cold start).
    std::optional<std::size_t> selected_bin() const noexcept {
        return selected_bin_;
    }

    /// Current viewing position (empty during cold start).
    const std::optional<ViewingPosition>& viewing_position() const noexcept {
        return viewing_;
    }

    /// Current LEVD threshold (diagnostics).
    double levd_threshold() const noexcept { return levd_.threshold(); }

    /// Current sensor/pipeline health (kOk with the guard disabled).
    HealthState health() const noexcept { return guard_.health(); }

    /// Frame-guard counters: quarantines, repairs, bridged gaps, signal
    /// losses, warm restarts.
    const GuardStats& guard_stats() const noexcept { return guard_.stats(); }

    const PipelineConfig& config() const noexcept { return config_; }
    const radar::RadarConfig& radar_config() const noexcept { return radar_; }

private:
    /// The detection chain behind the guard (the pre-guard process()).
    FrameResult process_validated(const radar::RadarFrame& frame);
    void reset_detection_state();
    void restart();
    double waveform_value(const dsp::Complex& sample);
    void refit_viewing();
    bool reselect_bin();

    radar::RadarConfig radar_;
    PipelineConfig config_;

    Preprocessor preprocessor_;
    FrameGuard guard_;
    dsp::LoopbackFilter background_;
    MovementDetector movement_;
    BinSelector selector_;
    Levd levd_;

    /// Veto blinks whose distance bump is explained by concurrent head
    /// rotation (see motion_artifact_veto in pipeline.cpp).
    bool motion_artifact_veto(const DetectedBlink& blink) const;

    /// Compute the motion-compensated relative distance for a new sample:
    /// tracks the unwrapped angle theta around the viewing position,
    /// regresses d on (theta, theta^2) over the recent window and removes
    /// that component (see pipeline.cpp for the physics).
    double compensated_distance(Seconds t, dsp::Complex sample);

    RingBuffer<dsp::ComplexSignal> window_;  ///< recent subtracted frames
    RingBuffer<Seconds> window_times_;       ///< their timestamps

    /// Incremental per-bin variance over the last selection_window_frames
    /// frames of window_, so periodic reselection reads variances in
    /// O(bins) instead of recomputing O(bins * window).
    RollingBinVariance rolling_var_;
    std::size_t rolling_window_frames_ = 0;  ///< its window length

    // Steady-state scratch (sized once; reused every frame/reselect).
    radar::RadarFrame pre_frame_;                       ///< preprocessed frame
    std::vector<const dsp::ComplexSignal*> view_scratch_;  ///< reselect view
    std::vector<double> var_scratch_;                   ///< rolling variances
    dsp::ComplexSignal column_scratch_;                 ///< refit column

    /// Recent (t, d, theta) triples for the motion-artifact veto.
    struct WaveSample {
        Seconds t = 0.0;
        double d = 0.0;      ///< relative distance
        double theta = 0.0;  ///< unwrapped angle around the viewing centre
    };
    RingBuffer<WaveSample> wave_history_;
    double theta_unwrapped_ = 0.0;
    bool have_theta_ = false;
    double prev_theta_raw_ = 0.0;
    std::optional<std::size_t> selected_bin_;
    std::optional<ViewingPosition> viewing_;
    std::vector<DetectedBlink> blinks_;

    std::size_t frames_since_start_ = 0;   ///< since last (re)start
    std::size_t frames_since_fit_ = 0;
    std::size_t frames_since_reselect_ = 0;
    std::size_t restarts_ = 0;

    // Phase-baseline state (WaveformMode::kPhase).
    dsp::Complex prev_sample_{0.0, 0.0};
    double cumulative_phase_ = 0.0;
    double amp_mean_ = 0.0;
};

/// Batch result of running the pipeline over a recorded series.
struct BatchResult {
    std::vector<DetectedBlink> blinks;
    std::size_t restarts = 0;
};

/// Convenience: run the streaming pipeline over a whole frame series.
BatchResult detect_blinks(const radar::FrameSeries& series,
                          const radar::RadarConfig& radar,
                          const PipelineConfig& config = {});

}  // namespace blinkradar::core
