// The BlinkRadar detection pipeline (paper Section III/IV, Fig. 3).
//
// Streaming facade over the full chain:
//   frame -> noise reduction -> movement check -> background subtraction
//         -> (cold start: bin selection + viewing-position fit)
//         -> relative-distance waveform -> LEVD -> blink events
// with the paper's adaptive behaviour: a 50-chirp (2 s) one-time cold
// start, periodic viewing-position refits, periodic bin re-selection, and
// a full restart whenever a significant body movement is detected.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ring_buffer.hpp"
#include "core/bin_selection.hpp"
#include "core/frame_guard.hpp"
#include "core/levd.hpp"
#include "core/movement_detector.hpp"
#include "core/pipeline_config.hpp"
#include "core/preprocess.hpp"
#include "core/viewing_position.hpp"
#include "dsp/background.hpp"
#include "dsp/frame_kernels.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/kernel_timers.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/span.hpp"
#include "obs/trace.hpp"
#include "radar/config.hpp"
#include "radar/frame.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Pipeline stages instrumented by the observability layer; indexes the
/// per-stage latency histograms and the per-frame trace durations.
enum class PipelineStage : std::size_t {
    kGuard,         ///< FrameGuard::admit
    kPreprocess,    ///< FIR + smoothing noise reduction
    kMovement,      ///< large-body-movement check
    kBackground,    ///< clutter subtraction + window bookkeeping
    kBinSelection,  ///< arc-variance bin (re)selection
    kViewingFit,    ///< viewing-position circle fit
    kWaveform,      ///< relative-distance / phase waveform
    kLevd,          ///< local-extreme-value blink detection
    kFrameTotal,    ///< whole process() call
};
constexpr std::size_t kNumPipelineStages = 9;
const char* to_string(PipelineStage stage) noexcept;

/// Phase-mode waveform accumulator (WaveformMode::kPhase): unwrapped
/// phase progression with *each increment* scaled by the running mean
/// amplitude at accumulation time, so the waveform lives in the same
/// units as the other modes. Scaling increments (not the accumulated
/// total) keeps amplitude drift from retroactively rescaling history —
/// the total-scaling variant stepped the baseline whenever the running
/// mean moved, faking LEVD extrema. A zero-amplitude first sample does
/// not freeze the scale: the mean seeds from the first sample with
/// measurable amplitude.
class PhaseWaveform {
public:
    /// Feed one I/Q sample; returns the accumulated scaled phase.
    double push(const dsp::Complex& sample);

    /// Forget all state (pipeline restart or bin switch).
    void reset() noexcept;

    /// Snapshot hooks (section "PHSW"): the previous sample, accumulated
    /// value, and running amplitude mean — everything push() reads.
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    dsp::Complex prev_{0.0, 0.0};
    double value_ = 0.0;
    double amp_mean_ = 0.0;
};

/// Per-frame output of the streaming pipeline.
struct FrameResult {
    std::optional<DetectedBlink> blink; ///< set when a blink completes
    bool restarted = false;             ///< a large movement reset the pipe
    bool cold_start = false;            ///< still initialising, no output
    double waveform_value = 0.0;        ///< current d(t) (diagnostics)

    // Robustness surface (populated by the frame guard; on a clean
    // stream: health == kOk, quality == kClean, counters zero).
    HealthState health = HealthState::kOk;          ///< current health
    FrameVerdict quality = FrameVerdict::kClean;    ///< this frame's fate
    std::uint32_t repaired_samples = 0;  ///< non-finite samples fixed
    std::uint32_t bridged_frames = 0;    ///< gap-fill frames synthesised
};

/// Streaming BlinkRadar pipeline. Feed frames in order; blinks come out.
class BlinkRadarPipeline {
public:
    /// `metrics` (optional) attaches the observability layer: every
    /// stage is timed into latency histograms (duty-cycled, see
    /// kStageSampleFrames) and guard health / reselection / restart
    /// events become exact per-frame counters, all registered in the
    /// given registry at construction time (the frame path never
    /// allocates or does string work). `trace` (optional, see obs::TraceSink::from_env
    /// and BLINKRADAR_TRACE) additionally emits one JSONL record per
    /// frame; stage durations in the trace require `metrics` too.
    /// `recorder` (optional) attaches the always-on flight recorder: the
    /// raw frame is ringed before the guard sees it, a per-stage scalar
    /// tap (plus decimated full profiles) is ringed after every frame,
    /// and the pipeline checkpoints its own state into the recorder on
    /// the recorder's cadence so dumps replay (see core/postmortem.hpp).
    /// The recorder outlives crashed pipelines, so it is owned by the
    /// caller (typically core::Supervisor) — never by the pipeline.
    /// `spans` (optional) closes end-to-end trace spans: a frame whose
    /// span_id is non-zero is timed in full (detailed) and its measured
    /// stage durations complete the span after processing.
    /// All pointers must outlive the pipeline. Instrumentation only
    /// observes: output is bit-identical with metrics on, off, or absent,
    /// and likewise with or without a recorder or span collector.
    BlinkRadarPipeline(const radar::RadarConfig& radar,
                       PipelineConfig config = {},
                       obs::MetricsRegistry* metrics = nullptr,
                       obs::TraceSink* trace = nullptr,
                       obs::FlightRecorder* recorder = nullptr,
                       obs::telemetry::SpanCollector* spans = nullptr);

    /// Process the next frame. With the frame guard enabled (the
    /// default) any sensor output is accepted: corrupt frames are
    /// quarantined or repaired, dropped-frame gaps are bridged, and the
    /// result's health/quality fields report what happened. With the
    /// guard disabled the caller must feed well-formed frames (checked:
    /// a bin-count mismatch throws ContractViolation).
    FrameResult process(const radar::RadarFrame& frame);

    /// Stage-latency sampling period: the observability layer times the
    /// pipeline stages on 1 frame in kStageSampleFrames (deterministic
    /// in the frame index; every frame while a trace sink is attached).
    /// Counters stay exact on every frame — only the latency histograms
    /// are duty-cycled. Rationale: a timestamp read costs ~65-95 ns
    /// under a hypervisor, so even the single whole-frame span timed on
    /// every frame would eat the entire <2 % overhead budget of a ~8.5 us
    /// frame (measured; see scripts/check_metrics_overhead.sh).
    static constexpr std::uint64_t kStageSampleFrames = 16;

    /// All blinks detected so far.
    const std::vector<DetectedBlink>& blinks() const noexcept {
        return blinks_;
    }

    /// Number of large-movement restarts so far.
    std::size_t restarts() const noexcept { return restarts_; }

    /// Currently selected range bin (empty during cold start).
    std::optional<std::size_t> selected_bin() const noexcept {
        return selected_bin_;
    }

    /// Current viewing position (empty during cold start).
    const std::optional<ViewingPosition>& viewing_position() const noexcept {
        return viewing_;
    }

    /// Current LEVD threshold (diagnostics).
    double levd_threshold() const noexcept { return levd_.threshold(); }

    /// Current sensor/pipeline health (kOk with the guard disabled).
    HealthState health() const noexcept { return guard_.health(); }

    /// Frame-guard counters: quarantines, repairs, bridged gaps, signal
    /// losses, warm restarts.
    const GuardStats& guard_stats() const noexcept { return guard_.stats(); }

    const PipelineConfig& config() const noexcept { return config_; }
    const radar::RadarConfig& radar_config() const noexcept { return radar_; }

    /// The frame path this pipeline resolved at construction (never
    /// DspPath::kAuto — see PipelineConfig::dsp_path).
    DspPath dsp_path() const noexcept { return path_; }

    /// Serialize the complete detection state — the pipeline's own
    /// section ("PIPE") followed by one section per stateful stage — so
    /// that restoring into a freshly constructed pipeline (same configs)
    /// and replaying the remaining frames yields bit-identical
    /// FrameResults. Instrumentation is observation-only and is not
    /// snapshotted.
    void save_state(state::StateWriter& writer) const;

    /// Restore from a snapshot taken by save_state. The snapshot's
    /// fingerprint (bin count, frame rate, waveform mode) must match this
    /// pipeline's configuration; any mismatch, truncation, or corruption
    /// throws state::SnapshotError. On throw the pipeline may be left
    /// half-restored — discard it and construct a fresh one.
    void restore_state(state::StateReader& reader);

private:
    /// process() minus the whole-frame span and trace bookkeeping.
    FrameResult process_guarded(const radar::RadarFrame& frame);
    /// The detection chain behind the guard (the pre-guard process()).
    FrameResult process_validated(const radar::RadarFrame& frame);
    void reset_detection_state();
    void restart();
    double waveform_value(const dsp::Complex& sample);
    void refit_viewing();
    bool reselect_bin();

    /// Handles into the metrics registry, registered once at
    /// construction (names in DESIGN.md section 10). Absent when the
    /// pipeline runs uninstrumented; every hot-path touch point is a
    /// single null check then plain integer/double stores.
    struct Instrumentation {
        Instrumentation(obs::MetricsRegistry* external,
                        obs::TraceSink* trace_sink,
                        const std::string& prefix);

        /// Backing registry for trace-only pipelines (stage durations
        /// still need histograms); null when an external one is used.
        std::unique_ptr<obs::MetricsRegistry> owned_registry;

        std::array<obs::LatencyHistogram*, kNumPipelineStages> stage{};
        obs::Counter* frames = nullptr;
        obs::Counter* blinks = nullptr;
        obs::Counter* restarts = nullptr;
        obs::Counter* cold_start_frames = nullptr;
        obs::Counter* reselect_attempts = nullptr;
        obs::Counter* reselect_switches = nullptr;
        obs::Counter* refits = nullptr;
        obs::Counter* guard_quarantined = nullptr;
        obs::Counter* guard_samples_repaired = nullptr;
        obs::Counter* guard_frames_bridged = nullptr;
        obs::Counter* guard_gaps_bridged = nullptr;
        obs::Counter* guard_signal_lost = nullptr;
        obs::Counter* guard_warm_restarts = nullptr;
        /// Indexed by HealthState: transitions *into* each state.
        std::array<obs::Counter*, 4> health_entered{};
        obs::Gauge* fault_rate = nullptr;
        obs::Gauge* levd_threshold = nullptr;
        obs::Gauge* levd_sigma = nullptr;
        obs::Gauge* selected_bin = nullptr;

        /// Sub-stage latency histograms for the vectorized kernels
        /// (prefix + "kernel.*"); timed on detailed frames only, like the
        /// sampled stages.
        obs::KernelTimers kernels;

        /// Per-frame stage durations (trace scratch, ns).
        std::array<std::uint64_t, kNumPipelineStages> last_ns{};
        GuardStats prev_guard{};  ///< last counters, for per-frame deltas
        std::uint64_t frame_index = 0;
        bool detailed_frame = true;  ///< time sampled stages this frame?
        obs::TraceSink* trace = nullptr;
        std::string trace_line;  ///< reused JSONL buffer (no steady alloc)
    };

    /// True for the stages whose spans are duty-cycled (see
    /// kStageSampleFrames). The rare, expensive stages are timed on
    /// every occurrence: they run a handful of times per minute and take
    /// tens of microseconds, so sampling would starve their histograms
    /// while saving nothing.
    static constexpr bool sampled_stage(PipelineStage s) noexcept {
        return s != PipelineStage::kBinSelection &&
               s != PipelineStage::kViewingFit;
    }

    /// Histogram / trace-slot accessors; null (span disabled) when
    /// uninstrumented or when the stage is sampled out this frame.
    obs::LatencyHistogram* stage_hist(PipelineStage s) noexcept {
        if (instr_ == nullptr) return nullptr;
        if (!instr_->detailed_frame && sampled_stage(s)) return nullptr;
        return instr_->stage[static_cast<std::size_t>(s)];
    }
    std::uint64_t* stage_ns(PipelineStage s) noexcept {
        return instr_ ? &instr_->last_ns[static_cast<std::size_t>(s)]
                      : nullptr;
    }

    /// Post-frame bookkeeping: counters, gauges, health transitions,
    /// and the optional trace record. Only called when instrumented.
    void observe_frame(const radar::RadarFrame& frame,
                       const FrameResult& result, HealthState before);

    /// Flight-recorder close-out for one frame: the scalar tap, any
    /// events (health transition, restart, bin switch, blink), a metrics
    /// snapshot when due, and the periodic self-checkpoint. Only called
    /// when a recorder is attached; allocation-free once warm.
    void record_frame(std::uint64_t seq, const radar::RadarFrame& frame,
                      const FrameResult& result, HealthState before,
                      std::int64_t bin_before);

    radar::RadarConfig radar_;
    PipelineConfig config_;

    Preprocessor preprocessor_;
    FrameGuard guard_;
    dsp::LoopbackFilter background_;
    MovementDetector movement_;
    BinSelector selector_;
    Levd levd_;

    /// Veto blinks whose distance bump is explained by concurrent head
    /// rotation (see motion_artifact_veto in pipeline.cpp).
    bool motion_artifact_veto(const DetectedBlink& blink) const;

    /// Compute the motion-compensated relative distance for a new sample:
    /// tracks the unwrapped angle theta around the viewing position,
    /// regresses d on (theta, theta^2) over the recent window and removes
    /// that component (see pipeline.cpp for the physics).
    double compensated_distance(Seconds t, dsp::Complex sample);

    RingBuffer<dsp::ComplexSignal> window_;  ///< recent subtracted frames
                                             ///< (scalar path)
    RingBuffer<dsp::IqPlanes> window_soa_;   ///< same, SIMD path (SoA)
    RingBuffer<Seconds> window_times_;       ///< their timestamps

    /// Which of window_/window_soa_ the frame path fills (resolved from
    /// config_.dsp_path at construction; never DspPath::kAuto here).
    DspPath path_ = DspPath::kScalar;
    /// Kernel table the SIMD path dispatches through (null on kScalar).
    const dsp::KernelTable* kernels_ = nullptr;

    /// Read one subtracted-window sample regardless of frame path.
    dsp::Complex window_sample(std::size_t i, std::size_t bin) const {
        return path_ == DspPath::kSimd ? window_soa_[i].at(bin)
                                       : window_[i][bin];
    }
    std::size_t window_size() const noexcept {
        return path_ == DspPath::kSimd ? window_soa_.size()
                                       : window_.size();
    }

    /// Incremental per-bin variance over the last selection_window_frames
    /// frames of window_, so periodic reselection reads variances in
    /// O(bins) instead of recomputing O(bins * window).
    RollingBinVariance rolling_var_;
    std::size_t rolling_window_frames_ = 0;  ///< its window length

    // Steady-state scratch (sized once; reused every frame/reselect).
    radar::RadarFrame pre_frame_;                       ///< preprocessed frame
    dsp::IqPlanes pre_planes_;                          ///< same, SIMD path
    std::vector<const dsp::ComplexSignal*> view_scratch_;  ///< reselect view
    std::vector<const dsp::IqPlanes*> view_soa_scratch_;   ///< SoA reselect
    BinSelector::SelectScratch select_scratch_;         ///< select_soa scratch
    std::vector<double> var_scratch_;                   ///< rolling variances
    dsp::ComplexSignal column_scratch_;                 ///< refit column
    dsp::ComplexSignal tap_pre_scratch_;   ///< recorder tap interleave (SoA)
    dsp::ComplexSignal tap_sub_scratch_;   ///< recorder tap interleave (SoA)

    /// Recent (t, d, theta) triples for the motion-artifact veto.
    struct WaveSample {
        Seconds t = 0.0;
        double d = 0.0;      ///< relative distance
        double theta = 0.0;  ///< unwrapped angle around the viewing centre
    };
    RingBuffer<WaveSample> wave_history_;
    double theta_unwrapped_ = 0.0;
    bool have_theta_ = false;
    double prev_theta_raw_ = 0.0;
    std::optional<std::size_t> selected_bin_;
    std::optional<ViewingPosition> viewing_;
    std::vector<DetectedBlink> blinks_;

    std::size_t frames_since_start_ = 0;   ///< since last (re)start
    std::size_t frames_since_fit_ = 0;
    std::size_t frames_since_reselect_ = 0;
    /// SoA path: local (neighbourhood-only) reselects since the last full
    /// descending-variance scan (see PipelineConfig::full_reselect_stride).
    std::size_t reselects_since_full_ = 0;
    std::size_t restarts_ = 0;

    PhaseWaveform phase_wave_;  ///< WaveformMode::kPhase accumulator

    std::unique_ptr<Instrumentation> instr_;  ///< null when uninstrumented
    obs::FlightRecorder* recorder_ = nullptr;  ///< null when unrecorded
    obs::telemetry::SpanCollector* spans_ = nullptr;  ///< null = no tracing
};

/// Batch result of running the pipeline over a recorded series.
struct BatchResult {
    std::vector<DetectedBlink> blinks;
    std::size_t restarts = 0;
};

/// Convenience: run the streaming pipeline over a whole frame series.
/// `metrics` (optional) instruments the run as in the pipeline ctor.
BatchResult detect_blinks(const radar::FrameSeries& series,
                          const radar::RadarConfig& radar,
                          const PipelineConfig& config = {},
                          obs::MetricsRegistry* metrics = nullptr);

}  // namespace blinkradar::core
