// Range-bin selection (paper Section IV-D, "Fine-grained blink features").
//
// Without prior knowledge of the eye's distance, BlinkRadar cannot pick
// the eye's range bin by peak amplitude — the eye's reflection is weaker
// than seats and steering wheels. Instead it exploits the "harmful"
// embedded interference: respiration- and heartbeat-coupled head motion
// keeps the eye-region bin's I/Q trajectory moving (tracing thin arcs)
// even when no blink occurs. The selector therefore:
//   1. computes the 2-D I/Q scatter variance per bin over a slow-time
//      window, keeps bins that are significantly above the noise floor,
//   2. arc-fits the top candidates and scores them by arc quality
//      (radius^2 / rms-residual: big clean arcs win; full fast rotations
//      with amplitude wobble — the chest — and pure noise both lose).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/pipeline_config.hpp"
#include "dsp/circle_fit.hpp"
#include "dsp/dsp_types.hpp"
#include "radar/config.hpp"

namespace blinkradar::core {

/// Outcome of a selection pass.
struct BinSelection {
    std::size_t bin = 0;            ///< chosen range bin index
    double variance = 0.0;          ///< its 2-D scatter variance
    double score = 0.0;             ///< arc-quality score
    dsp::CircleFit fit;             ///< the candidate's arc fit
};

/// Selects the blink-carrying bin from a slow-time window of
/// (background-subtracted) frames.
class BinSelector {
public:
    BinSelector(const radar::RadarConfig& radar, const PipelineConfig& config);

    /// Evaluate a window of frames (outer index = slow time, inner =
    /// bins; all frames must share the bin count). Returns std::nullopt
    /// when no bin shows significant dynamic content (e.g. an empty
    /// seat).
    std::optional<BinSelection> select(
        const std::vector<dsp::ComplexSignal>& window) const;

    /// Per-bin 2-D scatter variance over the window (exposed for the
    /// Fig. 10b bench and tests).
    std::vector<double> bin_variances(
        const std::vector<dsp::ComplexSignal>& window) const;

    /// Score one bin under the arc criterion (variance, arc fit and
    /// thinness score). Returns std::nullopt when the bin's trajectory is
    /// not a clean partial arc. Used for switch hysteresis.
    std::optional<BinSelection> score_bin(
        const std::vector<dsp::ComplexSignal>& window, std::size_t bin) const;

    std::size_t min_bin() const noexcept { return min_bin_; }
    std::size_t max_bin() const noexcept { return max_bin_; }

private:
    std::optional<BinSelection> select_arc_variance(
        const std::vector<dsp::ComplexSignal>& window) const;
    std::optional<BinSelection> select_max_power(
        const std::vector<dsp::ComplexSignal>& window) const;

    PipelineConfig config_;
    std::size_t min_bin_;
    std::size_t max_bin_;
};

}  // namespace blinkradar::core
