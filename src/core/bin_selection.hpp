// Range-bin selection (paper Section IV-D, "Fine-grained blink features").
//
// Without prior knowledge of the eye's distance, BlinkRadar cannot pick
// the eye's range bin by peak amplitude — the eye's reflection is weaker
// than seats and steering wheels. Instead it exploits the "harmful"
// embedded interference: respiration- and heartbeat-coupled head motion
// keeps the eye-region bin's I/Q trajectory moving (tracing thin arcs)
// even when no blink occurs. The selector therefore:
//   1. computes the 2-D I/Q scatter variance per bin over a slow-time
//      window, keeps bins that are significantly above the noise floor,
//   2. arc-fits the top candidates and scores them by arc quality
//      (radius^2 / rms-residual: big clean arcs win; full fast rotations
//      with amplitude wobble — the chest — and pure noise both lose).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/pipeline_config.hpp"
#include "dsp/circle_fit.hpp"
#include "dsp/dsp_types.hpp"
#include "dsp/frame_kernels.hpp"
#include "radar/config.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Outcome of a selection pass.
struct BinSelection {
    std::size_t bin = 0;            ///< chosen range bin index
    double variance = 0.0;          ///< its 2-D scatter variance
    double score = 0.0;             ///< arc-quality score
    dsp::CircleFit fit;             ///< the candidate's arc fit
};

/// Non-owning view of a slow-time window of frames (outer index = slow
/// time, inner = bins). A span of frame pointers rather than of frames so
/// ring-buffer-backed windows can be viewed without copying frame data.
using FrameWindowView = std::span<const dsp::ComplexSignal* const>;

/// Same, over structure-of-arrays frames (the SoA frame path's window).
using SoaWindowView = std::span<const dsp::IqPlanes* const>;

/// Incremental per-bin 2-D I/Q scatter variance over a sliding window.
/// Maintains running sums of I, Q and |z|^2 per bin so that periodic bin
/// reselection reads variances in O(bins) instead of recomputing
/// O(bins * window) from scratch. push/evict cost O(bins) per frame; the
/// caller owns the window policy (push the new frame, evict the frame
/// that left the window). Matches the batch computation to within
/// floating-point reassociation (~1e-12 relative).
class RollingBinVariance {
public:
    RollingBinVariance() = default;
    explicit RollingBinVariance(std::size_t n_bins) { reset(n_bins); }

    /// Size for `n_bins` bins and forget all frames (allocates; every
    /// later operation is allocation-free).
    void reset(std::size_t n_bins);

    /// Forget all frames, keeping the bin layout.
    void clear() noexcept;

    /// Add a frame to the window.
    void push(std::span<const dsp::Complex> frame);

    /// Remove a previously pushed frame (the caller passes the frame now
    /// leaving the window — its values, not an index).
    void evict(std::span<const dsp::Complex> frame);

    /// Frames currently in the window.
    std::size_t count() const noexcept { return count_; }
    std::size_t n_bins() const noexcept { return sum_sq_.size(); }

    /// Scatter variance var(I) + var(Q) of one bin (0 until 1+ frames).
    double variance(std::size_t bin) const;

    /// All per-bin variances, written into `out` (resized, capacity
    /// reused).
    void variances_into(std::vector<double>& out) const;

    /// Same through the SIMD kernel table; bit-identical to the loop
    /// above on every backend (see dsp/frame_kernels.hpp).
    void variances_into(std::vector<double>& out,
                        const dsp::KernelTable& kernels) const;

    /// Direct access to the running sums plus manual count bookkeeping,
    /// for the fused background+variance kernel which updates the sums
    /// in the same pass that subtracts the background (see
    /// KernelTable::background_var_fused). The kernel mutates the arrays;
    /// the caller tells the tracker how the frame count changed.
    double* sum_i_data() noexcept { return sum_i_.data(); }
    double* sum_q_data() noexcept { return sum_q_.data(); }
    double* sum_sq_data() noexcept { return sum_sq_.data(); }
    void note_push() noexcept { ++count_; }
    void note_evict() noexcept { --count_; }

    /// Snapshot the running sums (section "RVAR"). The sums are saved
    /// rather than recomputed from the frame window on restore because
    /// they carry the accumulated floating-point reassociation of every
    /// push/evict since the window opened — recomputation would be
    /// equal only to ~1e-12, not bit-identical.
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    std::vector<double> sum_i_;
    std::vector<double> sum_q_;
    std::vector<double> sum_sq_;
    std::size_t count_ = 0;
};

/// Selects the blink-carrying bin from a slow-time window of
/// (background-subtracted) frames. Stateless: const methods are safe to
/// call from multiple threads.
class BinSelector {
public:
    BinSelector(const radar::RadarConfig& radar, const PipelineConfig& config);

    /// Evaluate a window of frames (all frames must share the bin
    /// count). Returns std::nullopt when no bin shows significant dynamic
    /// content (e.g. an empty seat).
    std::optional<BinSelection> select(FrameWindowView window) const;

    /// Same, with per-bin variances already computed (e.g. by a
    /// RollingBinVariance tracked alongside the window) so selection
    /// skips the O(bins * window) recomputation.
    std::optional<BinSelection> select(FrameWindowView window,
                                       std::span<const double> variances) const;

    /// Caller-owned scratch for select_soa() so the periodic reselection
    /// pass allocates nothing once warmed up.
    struct SelectScratch {
        std::vector<double> in_range;
        std::vector<std::size_t> candidates;
        dsp::ComplexSignal column;
    };

    /// Allocation-free SoA-window selection for the vector frame path.
    /// Unlike select(), the fit fan-out is capped: candidates are fitted
    /// in descending-variance order until config.top_candidates of them
    /// survive the arc gates, then a short hill-climb refines to the
    /// local score maximum — bounding the worst-case fits per pass while
    /// still skipping past the high-variance rotation (chest) bins the
    /// gates reject. The scalar select() stays uncapped as the
    /// reference; per-candidate scoring is identical.
    std::optional<BinSelection> select_soa(SoaWindowView window,
                                           std::span<const double> variances,
                                           SelectScratch& scratch) const;

    /// Convenience overload for contiguous windows (tests/benches).
    std::optional<BinSelection> select(
        const std::vector<dsp::ComplexSignal>& window) const;

    /// Per-bin 2-D scatter variance over the window (exposed for the
    /// Fig. 10b bench and tests).
    std::vector<double> bin_variances(FrameWindowView window) const;
    std::vector<double> bin_variances(
        const std::vector<dsp::ComplexSignal>& window) const;

    /// Score one bin under the arc criterion (variance, arc fit and
    /// thinness score). Returns std::nullopt when the bin's trajectory is
    /// not a clean partial arc. Used for switch hysteresis.
    std::optional<BinSelection> score_bin(FrameWindowView window,
                                          std::size_t bin) const;
    std::optional<BinSelection> score_bin(
        const std::vector<dsp::ComplexSignal>& window, std::size_t bin) const;

    /// SoA-window variant of score_bin: gathers the bin's slow-time
    /// column into `column_scratch` and applies the identical fit, gates
    /// and score.
    std::optional<BinSelection> score_bin_soa(
        SoaWindowView window, std::size_t bin,
        dsp::ComplexSignal& column_scratch) const;

    std::size_t min_bin() const noexcept { return min_bin_; }
    std::size_t max_bin() const noexcept { return max_bin_; }

private:
    std::optional<BinSelection> select_arc_variance(
        FrameWindowView window, std::span<const double> variances) const;
    std::optional<BinSelection> select_max_power(FrameWindowView window) const;
    std::optional<BinSelection> select_max_power_soa(
        SoaWindowView window, dsp::ComplexSignal& column_scratch) const;
    /// The fit/gate/score sequence shared by every score_bin variant.
    std::optional<BinSelection> score_column(const dsp::ComplexSignal& column,
                                             std::size_t bin) const;

    PipelineConfig config_;
    std::size_t min_bin_;
    std::size_t max_bin_;
};

/// Build the pointer view a contiguous window presents (helper for the
/// convenience overloads; allocates, so not for the per-frame path).
std::vector<const dsp::ComplexSignal*> make_frame_view(
    const std::vector<dsp::ComplexSignal>& window);

}  // namespace blinkradar::core
