// RF signal preprocessing (paper Section IV-B1).
//
// A cascading filter — low-pass FIR (order 26, Hamming window) followed by
// a smoothing (moving-average) filter — applied along the fast-time axis
// of each frame to raise SNR before any feature extraction. The Gaussian
// range point-spread function of the pulse spans several bins, so
// low-passing fast time suppresses per-bin thermal noise without eroding
// the range structure.
#pragma once

#include "core/pipeline_config.hpp"
#include "dsp/fir.hpp"
#include "obs/kernel_timers.hpp"
#include "radar/frame.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Per-frame noise-reduction stage. Logically stateless (the output
/// depends only on the input frame), but it reuses internal scratch
/// buffers across calls so a warmed-up instance performs zero heap
/// allocations per frame — therefore one instance must not be shared
/// between threads (each pipeline owns its own).
class Preprocessor {
public:
    explicit Preprocessor(const PipelineConfig& config);

    /// Apply the cascading filter to one frame (returns a new frame; the
    /// FIR group delay is compensated so range bins stay calibrated).
    radar::RadarFrame apply(const radar::RadarFrame& frame) const;

    /// Allocation-free variant: writes into `out`, reusing its capacity.
    /// `out` must not be the input frame.
    void apply_into(const radar::RadarFrame& frame,
                    radar::RadarFrame& out) const;

    /// Structure-of-arrays variant for the vector frame path: same cascade
    /// (FIR -> group-delay alignment -> smoothing) on I/Q planes through
    /// the active SIMD kernels; component-wise bit-identical to
    /// apply_into(). `timers` (optional) receives per-kernel latencies.
    void apply_soa(const radar::RadarFrame& frame, dsp::IqPlanes& out,
                   const obs::KernelTimers* timers = nullptr) const;

    /// Apply to a whole series (convenience for batch analysis).
    radar::FrameSeries apply(const radar::FrameSeries& series) const;

    const dsp::FirFilter& fir() const noexcept { return fir_; }
    std::size_t smooth_window() const noexcept { return smooth_window_; }

    /// Snapshot hooks (section "PREP"). The stage is logically stateless
    /// (the scratch buffers carry no cross-frame information), so the
    /// section is empty in v1 — it exists so every pipeline stage speaks
    /// the same save/restore protocol and the format has a place to put
    /// preprocessor state if a future version becomes stateful.
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    dsp::FirFilter fir_;
    std::size_t smooth_window_;

    // Scratch reused across frames (see class comment re: thread safety).
    mutable dsp::ComplexSignal filtered_;
    mutable dsp::ComplexSignal aligned_;
    mutable dsp::ComplexSignal prefix_;
    mutable dsp::IqPlanes in_planes_;
    mutable dsp::IqPlanes filtered_planes_;
    mutable dsp::IqPlanes aligned_planes_;
    mutable dsp::IqPlanes prefix_planes_;
};

}  // namespace blinkradar::core
