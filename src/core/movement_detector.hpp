// Large body-movement detection.
//
// When the driver shifts posture (or a heavy road transient hits), the
// whole range profile changes far faster than breathing or blinking ever
// moves it, the fitted viewing position becomes stale, and the paper's
// answer is to restart the entire detection process. This detector
// watches the frame-to-frame difference energy and flags frames whose
// difference exceeds a large multiple of the rolling median.
#pragma once

#include <vector>

#include "common/ring_buffer.hpp"
#include "core/pipeline_config.hpp"
#include "dsp/dsp_types.hpp"
#include "dsp/frame_kernels.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Streaming detector of large movements over raw (pre-background-
/// subtraction) frames.
class MovementDetector {
public:
    MovementDetector(const PipelineConfig& config, double frame_rate_hz);

    /// Feed one frame; true when a large movement is detected.
    bool push(const dsp::ComplexSignal& frame);

    /// Structure-of-arrays variant: identical judgement logic with the
    /// difference energy computed by `kernels`. The kernel's fixed-stripe
    /// reduction order differs from push()'s single accumulator, so the
    /// two variants agree only to rounding — a pipeline must stick to one
    /// (see core::DspPath).
    bool push_soa(const dsp::IqPlanes& frame,
                  const dsp::KernelTable& kernels);

    /// Forget all history (used after the pipeline restarts so the
    /// movement that caused the restart is not re-detected).
    void reset();

    /// Most recent frame-difference energy (diagnostics).
    double last_difference() const noexcept { return last_diff_; }

    /// Snapshot the rolling median window and held frame ("MOVD").
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    double median_difference() const;
    /// Shared tail of push()/push_soa(): record `diff`, judge against the
    /// rolling median, grow the history on non-triggered frames.
    bool judge_and_record(double diff);
    /// Rebuild the sorted mirror from the ring (restore/reset paths).
    void rebuild_sorted();

    PipelineConfig config_;
    std::size_t window_frames_;
    dsp::ComplexSignal previous_;
    dsp::IqPlanes previous_soa_;
    RingBuffer<double> diffs_;
    /// diffs_ kept in ascending order, maintained incrementally by
    /// binary-search insert/erase (O(log n) search + O(n) memmove on ~100
    /// doubles) so the per-frame median is an array read instead of an
    /// O(n) copy + nth_element. Bit-identical: the k-th order statistic
    /// of the same multiset.
    std::vector<double> sorted_diffs_;
    double last_diff_ = 0.0;
    /// True when the held frame lives in previous_soa_ (last fed via
    /// push_soa()); save_state() interleaves so the MOVD wire format is
    /// representation-independent.
    bool soa_ = false;
};

}  // namespace blinkradar::core
