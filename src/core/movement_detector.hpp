// Large body-movement detection.
//
// When the driver shifts posture (or a heavy road transient hits), the
// whole range profile changes far faster than breathing or blinking ever
// moves it, the fitted viewing position becomes stale, and the paper's
// answer is to restart the entire detection process. This detector
// watches the frame-to-frame difference energy and flags frames whose
// difference exceeds a large multiple of the rolling median.
#pragma once

#include <vector>

#include "common/ring_buffer.hpp"
#include "core/pipeline_config.hpp"
#include "dsp/dsp_types.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Streaming detector of large movements over raw (pre-background-
/// subtraction) frames.
class MovementDetector {
public:
    MovementDetector(const PipelineConfig& config, double frame_rate_hz);

    /// Feed one frame; true when a large movement is detected.
    bool push(const dsp::ComplexSignal& frame);

    /// Forget all history (used after the pipeline restarts so the
    /// movement that caused the restart is not re-detected).
    void reset();

    /// Most recent frame-difference energy (diagnostics).
    double last_difference() const noexcept { return last_diff_; }

    /// Snapshot the rolling median window and held frame ("MOVD").
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    double median_difference() const;

    PipelineConfig config_;
    std::size_t window_frames_;
    dsp::ComplexSignal previous_;
    RingBuffer<double> diffs_;
    mutable std::vector<double> median_scratch_;
    double last_diff_ = 0.0;
};

}  // namespace blinkradar::core
