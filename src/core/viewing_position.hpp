// Viewing-position estimation (paper Section IV-E).
//
// The "optimal viewing position" is the centre of the arc that the
// selected bin's I/Q samples trace under embedded interference. Blink
// detection then tracks the *relative distance* from this position to
// each new I/Q sample: head-motion phase rotations slide along the arc
// (constant distance), while the blink's amplitude change moves the
// sample radially (distance bump) — the separation at the heart of the
// method.
#pragma once

#include <span>

#include "core/pipeline_config.hpp"
#include "dsp/circle_fit.hpp"
#include "dsp/dsp_types.hpp"

namespace blinkradar::core {

/// Wraps a circle fit into the viewing-position abstraction.
class ViewingPosition {
public:
    /// Fit a viewing position from a window of I/Q samples using the
    /// configured method. Returns an invalid (ok == false) fit for
    /// degenerate input.
    static ViewingPosition fit(std::span<const dsp::Complex> samples,
                               CircleFitMethod method);

    /// Robust (trimmed) fit: fit, discard the `trim_fraction` of samples
    /// with the largest residuals — blink excursions are exactly such
    /// outliers — and refit on the rest. This keeps the centre anchored
    /// on the interference arc even while the driver blinks through the
    /// fit window.
    static ViewingPosition fit_trimmed(std::span<const dsp::Complex> samples,
                                       CircleFitMethod method,
                                       double trim_fraction = 0.2);

    /// Construct directly from a centre and radius (used when blending a
    /// fresh fit into the running estimate).
    static ViewingPosition from_circle(dsp::Complex center, double radius);

    /// Rehydrate from a previously captured raw fit, preserving every
    /// field (including residual and ok flag) exactly — required for
    /// bit-identical snapshot restore, where from_circle would lose the
    /// residual and cannot represent an invalid fit.
    static ViewingPosition from_raw_fit(const dsp::CircleFit& fit) {
        return ViewingPosition(fit);
    }

    /// Whether the underlying fit succeeded.
    bool valid() const noexcept { return fit_.ok; }

    /// The viewing position (arc centre) in the I/Q plane.
    dsp::Complex center() const noexcept {
        return dsp::Complex(fit_.center_x, fit_.center_y);
    }

    /// Arc radius (the dynamic-vector amplitude).
    double radius() const noexcept { return fit_.radius; }

    /// Relative distance from the viewing position to a new sample — the
    /// waveform LEVD operates on.
    double relative_distance(dsp::Complex sample) const;

    /// The raw fit (residuals etc.) for diagnostics.
    const dsp::CircleFit& raw_fit() const noexcept { return fit_; }

private:
    explicit ViewingPosition(dsp::CircleFit fit) : fit_(fit) {}
    dsp::CircleFit fit_;
};

}  // namespace blinkradar::core
