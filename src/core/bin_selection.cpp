#include "core/bin_selection.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/stats.hpp"

namespace blinkradar::core {

void RollingBinVariance::reset(std::size_t n_bins) {
    sum_i_.assign(n_bins, 0.0);
    sum_q_.assign(n_bins, 0.0);
    sum_sq_.assign(n_bins, 0.0);
    count_ = 0;
}

void RollingBinVariance::clear() noexcept {
    std::fill(sum_i_.begin(), sum_i_.end(), 0.0);
    std::fill(sum_q_.begin(), sum_q_.end(), 0.0);
    std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
    count_ = 0;
}

void RollingBinVariance::push(std::span<const dsp::Complex> frame) {
    BR_EXPECTS(frame.size() == sum_sq_.size());
    for (std::size_t b = 0; b < frame.size(); ++b) {
        const double i = frame[b].real();
        const double q = frame[b].imag();
        sum_i_[b] += i;
        sum_q_[b] += q;
        sum_sq_[b] += i * i + q * q;
    }
    ++count_;
}

void RollingBinVariance::evict(std::span<const dsp::Complex> frame) {
    BR_EXPECTS(frame.size() == sum_sq_.size());
    BR_EXPECTS(count_ >= 1);
    for (std::size_t b = 0; b < frame.size(); ++b) {
        const double i = frame[b].real();
        const double q = frame[b].imag();
        sum_i_[b] -= i;
        sum_q_[b] -= q;
        sum_sq_[b] -= i * i + q * q;
    }
    --count_;
}

double RollingBinVariance::variance(std::size_t bin) const {
    BR_EXPECTS(bin < sum_sq_.size());
    if (count_ == 0) return 0.0;
    const double n = static_cast<double>(count_);
    const double mean_i = sum_i_[bin] / n;
    const double mean_q = sum_q_[bin] / n;
    // E[|z|^2] - |E[z]|^2; clamped because cancellation can leave a tiny
    // negative residue when the window is nearly constant.
    const double v =
        sum_sq_[bin] / n - (mean_i * mean_i + mean_q * mean_q);
    return v > 0.0 ? v : 0.0;
}

void RollingBinVariance::variances_into(std::vector<double>& out) const {
    out.resize(sum_sq_.size());
    for (std::size_t b = 0; b < sum_sq_.size(); ++b) out[b] = variance(b);
}

void RollingBinVariance::variances_into(
    std::vector<double>& out, const dsp::KernelTable& kernels) const {
    out.resize(sum_sq_.size());
    if (count_ == 0) {
        std::fill(out.begin(), out.end(), 0.0);
        return;
    }
    kernels.variances_from_sums(sum_i_.data(), sum_q_.data(), sum_sq_.data(),
                                sum_sq_.size(),
                                static_cast<double>(count_), out.data());
}

namespace {
constexpr std::uint32_t kRollingVarTag = state::make_tag("RVAR");
constexpr std::uint16_t kRollingVarVersion = 1;
}  // namespace

void RollingBinVariance::save_state(state::StateWriter& writer) const {
    writer.begin_section(kRollingVarTag, kRollingVarVersion);
    writer.write_size(count_);
    writer.write_f64_span(sum_i_);
    writer.write_f64_span(sum_q_);
    writer.write_f64_span(sum_sq_);
    writer.end_section();
}

void RollingBinVariance::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kRollingVarTag);
    if (version > kRollingVarVersion)
        throw state::SnapshotError(
            "RVAR: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kRollingVarVersion) + ")");
    const std::size_t count = reader.read_size();
    std::vector<double> sum_i, sum_q, sum_sq;
    reader.read_f64_into(sum_i);
    reader.read_f64_into(sum_q);
    reader.read_f64_into(sum_sq);
    if (sum_i.size() != sum_sq_.size() || sum_q.size() != sum_sq_.size() ||
        sum_sq.size() != sum_sq_.size())
        throw state::SnapshotError(
            "RVAR: snapshot holds sums for " + std::to_string(sum_i.size()) +
            "/" + std::to_string(sum_q.size()) + "/" +
            std::to_string(sum_sq.size()) +
            " bins but the tracker is configured for " +
            std::to_string(sum_sq_.size()));
    count_ = count;
    sum_i_ = std::move(sum_i);
    sum_q_ = std::move(sum_q);
    sum_sq_ = std::move(sum_sq);
    reader.close_section();
}

std::vector<const dsp::ComplexSignal*> make_frame_view(
    const std::vector<dsp::ComplexSignal>& window) {
    std::vector<const dsp::ComplexSignal*> view;
    view.reserve(window.size());
    for (const dsp::ComplexSignal& f : window) view.push_back(&f);
    return view;
}

BinSelector::BinSelector(const radar::RadarConfig& radar,
                         const PipelineConfig& config)
    : config_(config) {
    radar.validate();
    BR_EXPECTS(config.selection_min_range_m < config.selection_max_range_m);
    const std::size_t n_bins = radar.n_bins();
    min_bin_ = static_cast<std::size_t>(config.selection_min_range_m /
                                        radar.bin_spacing_m);
    max_bin_ = std::min(n_bins - 1,
                        static_cast<std::size_t>(config.selection_max_range_m /
                                                 radar.bin_spacing_m));
    BR_ENSURES(min_bin_ < max_bin_);
}

std::vector<double> BinSelector::bin_variances(FrameWindowView window) const {
    BR_EXPECTS(!window.empty());
    const std::size_t n_bins = window.front()->size();
    for (const auto* f : window) BR_EXPECTS(f->size() == n_bins);

    std::vector<double> variances(n_bins, 0.0);
    dsp::ComplexSignal column(window.size());
    for (std::size_t b = 0; b < n_bins; ++b) {
        for (std::size_t t = 0; t < window.size(); ++t)
            column[t] = (*window[t])[b];
        variances[b] = dsp::scatter_variance(column);
    }
    return variances;
}

std::vector<double> BinSelector::bin_variances(
    const std::vector<dsp::ComplexSignal>& window) const {
    return bin_variances(FrameWindowView(make_frame_view(window)));
}

std::optional<BinSelection> BinSelector::select(FrameWindowView window) const {
    BR_EXPECTS(window.size() >= 8);
    switch (config_.selection_mode) {
        case BinSelectionMode::kArcVariance:
            return select_arc_variance(window, bin_variances(window));
        case BinSelectionMode::kMaxPower:
            return select_max_power(window);
    }
    return std::nullopt;
}

std::optional<BinSelection> BinSelector::select(
    FrameWindowView window, std::span<const double> variances) const {
    BR_EXPECTS(window.size() >= 8);
    BR_EXPECTS(!window.empty() && variances.size() == window.front()->size());
    switch (config_.selection_mode) {
        case BinSelectionMode::kArcVariance:
            return select_arc_variance(window, variances);
        case BinSelectionMode::kMaxPower:
            return select_max_power(window);
    }
    return std::nullopt;
}

std::optional<BinSelection> BinSelector::select(
    const std::vector<dsp::ComplexSignal>& window) const {
    return select(FrameWindowView(make_frame_view(window)));
}

std::optional<BinSelection> BinSelector::select_soa(
    SoaWindowView window, std::span<const double> variances,
    SelectScratch& scratch) const {
    BR_EXPECTS(window.size() >= 8);
    BR_EXPECTS(!window.empty() && variances.size() == window.front()->size());
    if (config_.selection_mode == BinSelectionMode::kMaxPower)
        return select_max_power_soa(window, scratch.column);

    // Significance gate, as in select_arc_variance but allocation-free.
    scratch.in_range.assign(
        variances.begin() + static_cast<std::ptrdiff_t>(min_bin_),
        variances.begin() + static_cast<std::ptrdiff_t>(max_bin_ + 1));
    const double floor = dsp::median_inplace(scratch.in_range);
    const double significance = floor * config_.min_variance_factor;

    scratch.candidates.clear();
    for (std::size_t b = min_bin_; b <= max_bin_; ++b)
        if (variances[b] > significance) scratch.candidates.push_back(b);
    if (scratch.candidates.empty()) return std::nullopt;

    // Cap the fits per pass. The uncapped scalar select() occasionally
    // fits dozens of bins when the scene is busy (the 4 ms bin_selection
    // spikes), and most of those fits are the chest's rotation bins —
    // which dominate by raw variance and which the arc gates reject
    // anyway. So: fit in descending-variance order but count only
    // candidates that *survive* the gates against the cap, stopping once
    // top_candidates arc-like bins have been scored. A cap on raw
    // variance rank would instead spend the whole budget on the chest
    // and never reach the eye bins at all.
    std::sort(scratch.candidates.begin(), scratch.candidates.end(),
              [&variances](std::size_t a, std::size_t b) {
                  return variances[a] != variances[b]
                             ? variances[a] > variances[b]
                             : a < b;
              });
    std::optional<BinSelection> best_gated;
    std::size_t gated = 0;
    for (const std::size_t b : scratch.candidates) {
        const std::optional<BinSelection> sel =
            score_bin_soa(window, b, scratch.column);
        if (!sel) continue;
        if (!best_gated || sel->score > best_gated->score) best_gated = sel;
        if (config_.top_candidates > 0 &&
            ++gated >= config_.top_candidates)
            break;
    }
    if (!best_gated) return std::nullopt;

    // Local refinement: the early stop can cut the scan just short of the
    // true carrier. Adjacent bins share the arc's signal (the pulse's
    // range point-spread spans several bins), so the score varies
    // smoothly with range — hill-climb to the local maximum, a handful of
    // extra fits at most.
    for (int step = 0; step < 8; ++step) {
        const std::size_t b = best_gated->bin;
        std::optional<BinSelection> improved;
        for (const std::size_t nb : {b - 1, b + 1}) {
            if (nb < min_bin_ || nb > max_bin_) continue;
            if (variances[nb] <= significance) continue;
            const std::optional<BinSelection> sel =
                score_bin_soa(window, nb, scratch.column);
            if (!sel || sel->score <= best_gated->score) continue;
            if (!improved || sel->score > improved->score) improved = sel;
        }
        if (!improved) break;
        best_gated = improved;
    }
    return best_gated;
}

namespace {

// Angular extent of the trajectory around the fitted centre: max - min of
// the unwrapped angle. The eye/face bins sweep well under a half-turn —
// their micro-motion is far below lambda/4 — while the chest sweeps
// through multiple full turns every breath. This is the "arc, not
// rotation" signature the paper's Fig. 10 illustrates. Extent (rather
// than total travel) is used so sample noise does not accumulate.
//
// `bail` short-circuits the walk once the extent reaches it: the extent
// only ever grows, so any return value >= bail is interchangeable with
// the full walk's for a caller that rejects at bail — which lets the
// selection hot path drop a rotating chest bin after ~a dozen atan2
// calls instead of walking the whole window (the dominant cost of the
// uncapped 4 ms selection spikes). Accepted bins always complete the
// full (bit-identical) walk.
double angular_extent(const dsp::ComplexSignal& column,
                      const dsp::CircleFit& fit, double bail) {
    double cumulative = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    bool have_prev = false;
    dsp::Complex prev;
    const dsp::Complex centre(fit.center_x, fit.center_y);
    for (const dsp::Complex& z : column) {
        const dsp::Complex v = z - centre;
        if (std::abs(v) < 1e-12) continue;
        if (have_prev) {
            const dsp::Complex rot = v * std::conj(prev);
            if (std::abs(rot) > 0.0) cumulative += std::arg(rot);
            lo = std::min(lo, cumulative);
            hi = std::max(hi, cumulative);
            if (hi - lo >= bail) return hi - lo;
        }
        prev = v;
        have_prev = true;
    }
    return hi - lo;
}

}  // namespace

std::optional<BinSelection> BinSelector::select_arc_variance(
    FrameWindowView window, std::span<const double> variances) const {
    // Significance gate: candidate bins must stand clearly above the
    // median bin variance (which is dominated by thermal noise).
    std::vector<double> in_range(variances.begin() + static_cast<std::ptrdiff_t>(min_bin_),
                                 variances.begin() + static_cast<std::ptrdiff_t>(max_bin_ + 1));
    const double floor = dsp::median(in_range);
    const double significance = floor * config_.min_variance_factor;

    std::vector<std::size_t> candidates;
    for (std::size_t b = min_bin_; b <= max_bin_; ++b)
        if (variances[b] > significance) candidates.push_back(b);
    if (candidates.empty()) return std::nullopt;

    // Arc-fit every significant bin (fits are cheap: ~50 points each).
    // Two-pass scoring:
    //  - gate on "true arc": total angular travel around the centre under
    //    a full turn (eye/face micro-motion) rather than the chest's
    //    multi-turn rotation, and
    //  - among gated bins, maximise the arc-explained variance ratio
    //    variance / residual^2 (scale-invariant thinness), tie-broken by
    //    variance through the product below.
    std::optional<BinSelection> best_gated;
    for (const std::size_t b : candidates) {
        const std::optional<BinSelection> sel = score_bin(window, b);
        if (!sel) continue;
        if (!best_gated || sel->score > best_gated->score) best_gated = sel;
    }
    // No fallback: if nothing in view traces a clean partial arc (e.g. the
    // cabin is empty, or the driver is mid-posture-shift), report no
    // selection and let the caller stay in / return to cold start.
    return best_gated;
}

std::optional<BinSelection> BinSelector::score_bin(FrameWindowView window,
                                                   std::size_t bin) const {
    BR_EXPECTS(!window.empty());
    BR_EXPECTS(bin < window.front()->size());
    dsp::ComplexSignal column(window.size());
    for (std::size_t t = 0; t < window.size(); ++t)
        column[t] = (*window[t])[bin];
    return score_column(column, bin);
}

std::optional<BinSelection> BinSelector::score_bin_soa(
    SoaWindowView window, std::size_t bin,
    dsp::ComplexSignal& column_scratch) const {
    BR_EXPECTS(!window.empty());
    BR_EXPECTS(bin < window.front()->size());
    column_scratch.resize(window.size());
    for (std::size_t t = 0; t < window.size(); ++t)
        column_scratch[t] = window[t]->at(bin);
    return score_column(column_scratch, bin);
}

std::optional<BinSelection> BinSelector::score_column(
    const dsp::ComplexSignal& column, std::size_t bin) const {
    const dsp::CircleFit fit = dsp::fit_circle_pratt(column);
    if (!fit.ok || fit.radius <= 0.0) return std::nullopt;
    // Gates are conjunctive, so ordering is free — run the O(n)
    // multiply-add radius gate before the atan2-heavy extent walk.
    // Radius plausibility: a short noisy arc lets the algebraic fit run
    // away to an enormous circle; such a fit explains nothing about the
    // dynamic vector and must not be allowed to win on any score.
    const double var = dsp::scatter_variance(column);
    const double spread = std::sqrt(var);
    if (fit.radius > 8.0 * spread || fit.radius < 0.5 * spread)
        return std::nullopt;
    const double extent = angular_extent(column, fit, constants::kPi);
    if (extent >= constants::kPi || extent <= 1e-3) return std::nullopt;
    const double score =
        var / (fit.rms_residual * fit.rms_residual + 1e-9 * var);
    return BinSelection{bin, var, score, fit};
}

std::optional<BinSelection> BinSelector::score_bin(
    const std::vector<dsp::ComplexSignal>& window, std::size_t bin) const {
    return score_bin(FrameWindowView(make_frame_view(window)), bin);
}

std::optional<BinSelection> BinSelector::select_max_power(
    FrameWindowView window) const {
    const std::size_t n_bins = window.front()->size();
    std::size_t best_bin = min_bin_;
    double best_power = -1.0;
    for (std::size_t b = min_bin_; b <= max_bin_ && b < n_bins; ++b) {
        double acc = 0.0;
        for (const auto* f : window) acc += std::norm((*f)[b]);
        if (acc > best_power) {
            best_power = acc;
            best_bin = b;
        }
    }
    dsp::ComplexSignal column(window.size());
    for (std::size_t t = 0; t < window.size(); ++t)
        column[t] = (*window[t])[best_bin];
    BinSelection sel;
    sel.bin = best_bin;
    sel.variance = dsp::scatter_variance(column);
    sel.fit = dsp::fit_circle_pratt(column);
    sel.score = best_power;
    return sel;
}

std::optional<BinSelection> BinSelector::select_max_power_soa(
    SoaWindowView window, dsp::ComplexSignal& column_scratch) const {
    const std::size_t n_bins = window.front()->size();
    std::size_t best_bin = min_bin_;
    double best_power = -1.0;
    for (std::size_t b = min_bin_; b <= max_bin_ && b < n_bins; ++b) {
        double acc = 0.0;
        for (const auto* f : window) acc += std::norm(f->at(b));
        if (acc > best_power) {
            best_power = acc;
            best_bin = b;
        }
    }
    column_scratch.resize(window.size());
    for (std::size_t t = 0; t < window.size(); ++t)
        column_scratch[t] = window[t]->at(best_bin);
    BinSelection sel;
    sel.bin = best_bin;
    sel.variance = dsp::scatter_variance(column_scratch);
    sel.fit = dsp::fit_circle_pratt(column_scratch);
    sel.score = best_power;
    return sel;
}

}  // namespace blinkradar::core
