// Frame validation front-end and sensor-health state machine.
//
// The pipeline's public contract is "feed whatever the sensor produced":
// deployed radars drop and duplicate frames, jitter timestamps, saturate,
// and occasionally hand over NaN-riddled or short frames. The FrameGuard
// is the single place that deals with all of it, so the detection chain
// behind it can keep assuming well-formed, monotonically timestamped
// frames:
//
//   - structural validation: bin count, finite samples, finite and
//     strictly increasing timestamps;
//   - repair: isolated non-finite samples are replaced by sample-hold
//     from the last good frame (a frame past `max_repair_fraction` is
//     quarantined whole);
//   - gap bridging: a short timestamp gap (dropped frames) is filled
//     with sample-held frames at the nominal cadence, using the real
//     timestamps on either side rather than assuming a perfect period;
//   - health: an explicit OK -> DEGRADED -> SIGNAL_LOST -> recovering
//     state machine driven by the rolling fault rate, with warm-restart
//     requests to the downstream pipeline after signal loss.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ring_buffer.hpp"
#include "core/pipeline_config.hpp"
#include "radar/config.hpp"
#include "radar/frame.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {

/// Sensor/pipeline health as seen by the guard.
enum class HealthState {
    kOk,         ///< clean stream, detector fully converged
    kDegraded,   ///< faults above threshold but detection continues
    kSignalLost, ///< no usable frames; detection suspended
    kRecovering, ///< frames are back; warm restart converging
};
const char* to_string(HealthState state) noexcept;

/// Per-frame verdict of the guard.
enum class FrameVerdict {
    kClean,       ///< passed through untouched
    kRepaired,    ///< isolated samples fixed by sample-hold
    kBridged,     ///< preceded by synthetic gap-fill frames
    kQuarantined, ///< rejected whole; nothing fed downstream
};
const char* to_string(FrameVerdict verdict) noexcept;

/// Cumulative guard counters (pipeline diagnostics).
struct GuardStats {
    std::uint64_t frames_seen = 0;
    std::uint64_t frames_quarantined = 0;
    std::uint64_t samples_repaired = 0;
    std::uint64_t frames_bridged = 0;  ///< synthetic held frames emitted
    std::uint64_t gaps_bridged = 0;
    std::uint64_t signal_lost_events = 0;
    std::uint64_t warm_restarts = 0;
};

/// Outcome of admitting one sensor frame.
struct GuardDecision {
    /// Frames to feed the detection chain, oldest first (empty when the
    /// input was quarantined; more than one when a gap was bridged).
    /// Valid until the next admit() call.
    std::span<const radar::RadarFrame> frames;
    FrameVerdict verdict = FrameVerdict::kClean;
    std::uint32_t repaired_samples = 0;
    std::uint32_t bridged_frames = 0;
    /// The stream just recovered from signal loss: restart the detection
    /// state before processing `frames`.
    bool warm_restart = false;
};

/// Streaming frame validator; one instance per pipeline.
class FrameGuard {
public:
    FrameGuard(const radar::RadarConfig& radar, FrameGuardConfig config);

    /// Validate/repair one incoming frame and update the health machine.
    GuardDecision admit(const radar::RadarFrame& frame);

    /// Downstream signal: the detector finished (re)converging. Promotes
    /// kRecovering to kOk/kDegraded.
    void notify_converged();

    HealthState health() const noexcept { return health_; }
    const GuardStats& stats() const noexcept { return stats_; }

    /// Rolling fault fraction over the health window (diagnostics).
    double fault_rate() const noexcept;

    /// Forget stream history and return to kOk (full pipeline reset).
    void reset();

    /// Snapshot the guard (section "GURD"): held baseline frame, health
    /// machine, rolling fault window, and cumulative stats, so a
    /// restored guard makes the same admit() decisions the original
    /// would have (bit-identical resume).
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

private:
    GuardDecision quarantine(Seconds t);
    void note_frame(bool faulty);
    void update_health();
    void enter_signal_lost();

    radar::RadarConfig radar_;
    FrameGuardConfig config_;
    std::size_t n_bins_;

    bool have_last_ = false;
    Seconds last_ts_ = 0.0;
    radar::RadarFrame last_good_;      ///< most recent valid frame (held)
    radar::RadarFrame repaired_;       ///< scratch for sample repair
    std::vector<radar::RadarFrame> out_;  ///< scratch for bridged output

    /// Rolling per-frame fault flags over the health window (uint8, not
    /// bool: RingBuffer needs real references to its slots).
    RingBuffer<std::uint8_t> fault_events_;
    std::size_t faults_in_window_ = 0;

    HealthState health_ = HealthState::kOk;
    std::size_t consecutive_quarantined_ = 0;
    bool pending_warm_restart_ = false;

    GuardStats stats_;
};

}  // namespace blinkradar::core
