#include "core/postmortem.hpp"

#include <bit>
#include <memory>
#include <utility>

#include "core/pipeline.hpp"

namespace blinkradar::core {

namespace {

constexpr std::uint32_t kTagConfigs = state::make_tag("FRCF");
constexpr std::uint16_t kConfigsVersion = 2;

/// Bit-pattern double equality: replay verification must distinguish
/// -0.0 from 0.0 and treat NaN == NaN (a repeated NaN is *correct*
/// reproduction), which operator== gets wrong on both counts.
bool bit_eq(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

void save_flight_configs(state::StateWriter& writer,
                         const radar::RadarConfig& radar,
                         const PipelineConfig& pipeline) {
    writer.begin_section(kTagConfigs, kConfigsVersion);

    writer.write_f64(radar.carrier_hz);
    writer.write_f64(radar.bandwidth_hz);
    writer.write_f64(radar.frame_period_s);
    writer.write_f64(radar.tx_amplitude);
    writer.write_f64(radar.max_range_m);
    writer.write_f64(radar.bin_spacing_m);
    writer.write_f64(radar.reference_range_m);
    writer.write_f64(radar.min_rolloff_range_m);
    writer.write_f64(radar.noise_sigma);
    writer.write_f64(radar.phase_noise_rad);

    writer.write_u64(pipeline.fir_order);
    writer.write_u8(static_cast<std::uint8_t>(pipeline.fir_window));
    writer.write_f64(pipeline.fir_cutoff_norm);
    writer.write_u64(pipeline.smooth_window_bins);
    writer.write_f64(pipeline.background_alpha);
    writer.write_u8(static_cast<std::uint8_t>(pipeline.selection_mode));
    writer.write_f64(pipeline.selection_min_range_m);
    writer.write_f64(pipeline.selection_max_range_m);
    writer.write_f64(pipeline.min_variance_factor);
    writer.write_u64(pipeline.top_candidates);
    writer.write_u64(pipeline.selection_window_frames);
    writer.write_u8(static_cast<std::uint8_t>(pipeline.fit_method));
    writer.write_u64(pipeline.cold_start_frames);
    writer.write_u64(pipeline.fit_window_frames);
    writer.write_u64(pipeline.update_interval_frames);
    writer.write_u64(pipeline.reselect_interval_frames);
    writer.write_f64(pipeline.viewing_blend);
    writer.write_f64(pipeline.reselect_hysteresis);
    writer.write_u8(static_cast<std::uint8_t>(pipeline.waveform_mode));
    writer.write_f64(pipeline.threshold_sigma);
    writer.write_f64(pipeline.min_blink_s);
    writer.write_f64(pipeline.max_blink_s);
    writer.write_f64(pipeline.max_rise_s);
    writer.write_f64(pipeline.refractory_s);
    writer.write_f64(pipeline.noise_window_s);
    writer.write_f64(pipeline.motion_veto_correlation);
    writer.write_bool(pipeline.motion_compensation);
    writer.write_f64(pipeline.movement_threshold_factor);
    writer.write_f64(pipeline.movement_median_window_s);

    writer.write_bool(pipeline.guard.enabled);
    writer.write_f64(pipeline.guard.gap_tolerance_periods);
    writer.write_f64(pipeline.guard.max_bridge_gap_s);
    writer.write_f64(pipeline.guard.max_repair_fraction);
    writer.write_f64(pipeline.guard.health_window_s);
    writer.write_f64(pipeline.guard.degraded_fault_rate);
    writer.write_u64(pipeline.guard.lost_after_quarantines);

    // v2: the resolved DSP path, so replay rebuilds the pipeline on the
    // same per-frame arithmetic that produced the recording.
    writer.write_u8(static_cast<std::uint8_t>(pipeline.dsp_path));

    writer.end_section();
}

FlightConfigs load_flight_configs(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kTagConfigs);
    if (version > kConfigsVersion)
        throw state::SnapshotError(
            "FRCF: dump section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kConfigsVersion) + ")");
    FlightConfigs c;

    c.radar.carrier_hz = reader.read_f64();
    c.radar.bandwidth_hz = reader.read_f64();
    c.radar.frame_period_s = reader.read_f64();
    c.radar.tx_amplitude = reader.read_f64();
    c.radar.max_range_m = reader.read_f64();
    c.radar.bin_spacing_m = reader.read_f64();
    c.radar.reference_range_m = reader.read_f64();
    c.radar.min_rolloff_range_m = reader.read_f64();
    c.radar.noise_sigma = reader.read_f64();
    c.radar.phase_noise_rad = reader.read_f64();

    c.pipeline.fir_order = reader.read_size();
    c.pipeline.fir_window = static_cast<dsp::WindowType>(reader.read_u8());
    c.pipeline.fir_cutoff_norm = reader.read_f64();
    c.pipeline.smooth_window_bins = reader.read_size();
    c.pipeline.background_alpha = reader.read_f64();
    c.pipeline.selection_mode =
        static_cast<BinSelectionMode>(reader.read_u8());
    c.pipeline.selection_min_range_m = reader.read_f64();
    c.pipeline.selection_max_range_m = reader.read_f64();
    c.pipeline.min_variance_factor = reader.read_f64();
    c.pipeline.top_candidates = reader.read_size();
    c.pipeline.selection_window_frames = reader.read_size();
    c.pipeline.fit_method = static_cast<CircleFitMethod>(reader.read_u8());
    c.pipeline.cold_start_frames = reader.read_size();
    c.pipeline.fit_window_frames = reader.read_size();
    c.pipeline.update_interval_frames = reader.read_size();
    c.pipeline.reselect_interval_frames = reader.read_size();
    c.pipeline.viewing_blend = reader.read_f64();
    c.pipeline.reselect_hysteresis = reader.read_f64();
    c.pipeline.waveform_mode = static_cast<WaveformMode>(reader.read_u8());
    c.pipeline.threshold_sigma = reader.read_f64();
    c.pipeline.min_blink_s = reader.read_f64();
    c.pipeline.max_blink_s = reader.read_f64();
    c.pipeline.max_rise_s = reader.read_f64();
    c.pipeline.refractory_s = reader.read_f64();
    c.pipeline.noise_window_s = reader.read_f64();
    c.pipeline.motion_veto_correlation = reader.read_f64();
    c.pipeline.motion_compensation = reader.read_bool();
    c.pipeline.movement_threshold_factor = reader.read_f64();
    c.pipeline.movement_median_window_s = reader.read_f64();

    c.pipeline.guard.enabled = reader.read_bool();
    c.pipeline.guard.gap_tolerance_periods = reader.read_f64();
    c.pipeline.guard.max_bridge_gap_s = reader.read_f64();
    c.pipeline.guard.max_repair_fraction = reader.read_f64();
    c.pipeline.guard.health_window_s = reader.read_f64();
    c.pipeline.guard.degraded_fault_rate = reader.read_f64();
    c.pipeline.guard.lost_after_quarantines = reader.read_size();

    // v1 dumps predate the DSP-path choice; they were recorded by the
    // scalar-only build.
    c.pipeline.dsp_path =
        version >= 2 ? static_cast<DspPath>(reader.read_u8())
                     : DspPath::kScalar;

    reader.close_section();
    return c;
}

std::vector<std::uint8_t> make_flight_dump(const obs::FlightRecorder& recorder,
                                           const radar::RadarConfig& radar,
                                           const PipelineConfig& pipeline,
                                           std::string_view reason) {
    state::StateWriter writer;
    save_flight_configs(writer, radar, pipeline);
    recorder.dump(writer, reason);
    return writer.finish();
}

void write_flight_dump_file(const std::string& path,
                            const obs::FlightRecorder& recorder,
                            const radar::RadarConfig& radar,
                            const PipelineConfig& pipeline,
                            std::string_view reason) {
    state::write_snapshot_file(
        path, make_flight_dump(recorder, radar, pipeline, reason));
}

DecodedDump decode_dump(std::span<const std::uint8_t> bytes) {
    state::StateReader reader(bytes);
    DecodedDump dump;
    dump.configs = load_flight_configs(reader);
    dump.flight = obs::decode_flight_dump(reader);
    return dump;
}

DecodedDump read_flight_dump_file(const std::string& path) {
    return decode_dump(state::read_snapshot_file(path));
}

namespace {

/// One comparison; appends a mismatch record (capped) on divergence.
void check(ReplayReport& report, std::uint64_t seq, const char* field,
           double recorded, double replayed) {
    if (bit_eq(recorded, replayed)) return;
    ++report.mismatch_count;
    if (report.mismatches.size() < 16)
        report.mismatches.push_back(
            ReplayMismatch{seq, field, recorded, replayed});
}

void compare_tap(ReplayReport& report, const obs::FrameTap& tap,
                 const FrameResult& result, const BlinkRadarPipeline& pipe) {
    const std::uint64_t s = tap.seq;
    check(report, s, "waveform_value", tap.waveform, result.waveform_value);
    check(report, s, "quality", tap.verdict,
          static_cast<double>(static_cast<std::uint8_t>(result.quality)));
    check(report, s, "health", tap.health,
          static_cast<double>(static_cast<std::uint8_t>(result.health)));
    check(report, s, "cold_start", tap.cold_start ? 1.0 : 0.0,
          result.cold_start ? 1.0 : 0.0);
    check(report, s, "restarted", tap.restarted ? 1.0 : 0.0,
          result.restarted ? 1.0 : 0.0);
    check(report, s, "repaired_samples", tap.repaired_samples,
          result.repaired_samples);
    check(report, s, "bridged_frames", tap.bridged_frames,
          result.bridged_frames);
    check(report, s, "has_blink", tap.has_blink ? 1.0 : 0.0,
          result.blink ? 1.0 : 0.0);
    if (tap.has_blink && result.blink) {
        check(report, s, "blink.peak_s", tap.blink_peak_s,
              result.blink->peak_s);
        check(report, s, "blink.duration_s", tap.blink_duration_s,
              result.blink->duration_s);
        check(report, s, "blink.magnitude", tap.blink_magnitude,
              result.blink->magnitude);
        check(report, s, "blink.strength", tap.blink_strength,
              result.blink->strength);
    }
    const std::int64_t replayed_bin =
        pipe.selected_bin()
            ? static_cast<std::int64_t>(*pipe.selected_bin())
            : -1;
    check(report, s, "selected_bin", static_cast<double>(tap.selected_bin),
          static_cast<double>(replayed_bin));
}

}  // namespace

ReplayReport replay_flight_dump(const DecodedDump& dump) {
    ReplayReport report;
    const obs::FlightDump& flight = dump.flight;

    if (flight.raw.empty()) {
        report.ok = true;
        report.note = "no raw frames captured; nothing to replay";
        return report;
    }

    const std::uint64_t oldest = flight.raw.front().seq;

    // Pick the replay base. A checkpoint labelled S is usable only if
    // every frame after it is still in the raw ring (S >= oldest-1); the
    // oldest such checkpoint verifies the most frames. When the ring
    // reaches back to frame 1 AND the owner never replaced pipeline
    // state from outside (no external checkpoints: uninterrupted run), a
    // cold-constructed pipeline is the ultimate base and covers
    // everything. With external checkpoints, an *evicted* one could mark
    // a state replacement (a Supervisor restore) the replay would walk
    // straight past — so only a retained checkpoint is a trustworthy
    // base, and replay re-bases at the other retained one on the way.
    const obs::FlightDump::Checkpoint* base = nullptr;
    if (oldest != 1 || flight.external_checkpoints) {
        for (const obs::FlightDump::Checkpoint& c : flight.checkpoints) {
            if (oldest == 1 || c.seq >= oldest - 1) {
                base = &c;
                break;
            }
        }
        if (base == nullptr) {
            report.note =
                flight.checkpoints.empty()
                    ? "no replay base: the dump carries no checkpoint that "
                      "reaches back to the captured frames"
                    : "no replay base: every checkpoint predates the oldest "
                      "captured frame";
            return report;
        }
    }

    const auto fresh_pipeline = [&] {
        return std::make_unique<BlinkRadarPipeline>(dump.configs.radar,
                                                    dump.configs.pipeline);
    };
    const auto restore_from = [&](const obs::FlightDump::Checkpoint& c) {
        std::unique_ptr<BlinkRadarPipeline> pipe = fresh_pipeline();
        state::StateReader reader(c.bytes);
        pipe->restore_state(reader);
        return pipe;
    };

    std::unique_ptr<BlinkRadarPipeline> pipe;
    std::uint64_t base_seq = 0;
    try {
        if (base != nullptr) {
            pipe = restore_from(*base);
            base_seq = base->seq;
        } else {
            pipe = fresh_pipeline();
            report.from_cold = true;
        }
    } catch (const state::SnapshotError& e) {
        report.note = std::string("replay base rejected: ") + e.what();
        return report;
    }
    report.base_seq = base_seq;

    // Walk taps and checkpoints in lockstep with the raw frames (all
    // three are sorted by seq).
    std::size_t tap_i = 0;
    std::size_t ckpt_i = 0;

    for (const obs::FlightDump::RawFrame& raw : flight.raw) {
        if (raw.seq <= base_seq) continue;

        // Re-base wherever the live pipeline's state was replaced or
        // checkpointed: a checkpoint labelled raw.seq-1 is the state in
        // effect before this frame. Self-checkpoints re-base onto what
        // the resume contract guarantees is the identical state; the
        // Supervisor's post-restore checkpoints re-base onto the restored
        // state, reproducing the recovery exactly.
        while (ckpt_i < flight.checkpoints.size() &&
               flight.checkpoints[ckpt_i].seq < raw.seq) {
            const obs::FlightDump::Checkpoint& c = flight.checkpoints[ckpt_i];
            ++ckpt_i;
            if (c.seq != raw.seq - 1 || c.seq <= base_seq) continue;
            try {
                pipe = restore_from(c);
                base_seq = c.seq;
                ++report.rebases;
            } catch (const state::SnapshotError& e) {
                report.note =
                    std::string("checkpoint at seq ") + std::to_string(c.seq) +
                    " rejected during replay: " + e.what();
                return report;
            }
        }

        FrameResult result;
        bool faulted = false;
        try {
            result = pipe->process(raw.frame);
        } catch (const std::exception&) {
            // The incident pipeline may have thrown here too (that is
            // often why the dump exists); the recorded timeline shows
            // whether it did — a crash frame has no tap.
            ++report.replay_faults;
            faulted = true;
        }
        ++report.frames_replayed;

        while (tap_i < flight.taps.size() && flight.taps[tap_i].seq < raw.seq)
            ++tap_i;
        const bool have_tap =
            tap_i < flight.taps.size() && flight.taps[tap_i].seq == raw.seq;
        if (!have_tap) {
            ++report.taps_missing;
            continue;
        }
        if (faulted) {
            // Recorded tap says the frame completed; replay crashed.
            ++report.mismatch_count;
            if (report.mismatches.size() < 16)
                report.mismatches.push_back(
                    ReplayMismatch{raw.seq, "replay_fault", 0.0, 1.0});
            continue;
        }
        compare_tap(report, flight.taps[tap_i], result, *pipe);
        ++report.taps_compared;
    }

    report.ok = report.mismatch_count == 0;
    report.note =
        report.ok
            ? "replay verified: every recorded tap reproduced bit-identically"
            : std::to_string(report.mismatch_count) +
                  " field(s) diverged from the recorded taps";
    return report;
}

}  // namespace blinkradar::core
