// Local-extremum detection primitives.
//
// The paper's LEVD (local extreme value detection) blink detector works on
// alternating local maxima/minima of the relative-distance waveform; this
// module provides the generic extremum machinery (core/levd.hpp builds the
// blink-specific logic on top).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// One detected local extremum.
struct Extremum {
    std::size_t index = 0;   ///< sample index in the analysed signal
    double value = 0.0;      ///< signal value at that index
    bool is_maximum = false; ///< true for a local maximum, false for minimum
};

/// Find local maxima: samples strictly greater than both neighbours (plateaus
/// report their first sample). `min_separation` suppresses maxima closer than
/// that many samples to a previously accepted, larger maximum.
std::vector<std::size_t> find_local_maxima(std::span<const double> signal,
                                           std::size_t min_separation = 1);

/// Find local minima (mirror of find_local_maxima).
std::vector<std::size_t> find_local_minima(std::span<const double> signal,
                                           std::size_t min_separation = 1);

/// Produce the strictly alternating sequence of local maxima and minima of
/// the signal: consecutive extrema always differ in kind. Runs of same-kind
/// extrema keep only the most extreme member. This is the "alternative
/// local maxima and minima" sequence LEVD compares against its threshold.
std::vector<Extremum> alternating_extrema(std::span<const double> signal);

/// Peak prominence: height of the peak at `peak_index` above the higher of
/// the two minima separating it from higher terrain (classic topographic
/// prominence on 1-D signals).
double prominence(std::span<const double> signal, std::size_t peak_index);

}  // namespace blinkradar::dsp
