// Windowed-sinc FIR filter design and application.
//
// The paper's noise-reduction stage uses a low-pass FIR of order 26 with a
// Hamming window, cascaded with a 50-point smoothing filter (see
// core/preprocess.hpp). This module provides the general designer.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/dsp_types.hpp"
#include "dsp/window.hpp"

namespace blinkradar::dsp {

/// A linear-phase FIR filter described by its tap coefficients.
class FirFilter {
public:
    /// Construct directly from taps (must be non-empty).
    explicit FirFilter(RealSignal taps);

    /// Design a low-pass filter.
    /// \param order       filter order (taps = order + 1); must be >= 2.
    /// \param cutoff_hz   -6 dB cutoff frequency.
    /// \param sample_rate_hz sampling rate; cutoff must be < Nyquist.
    /// \param window      window applied to the ideal sinc response.
    static FirFilter low_pass(std::size_t order, double cutoff_hz,
                              double sample_rate_hz,
                              WindowType window = WindowType::kHamming);

    /// Design a high-pass filter via spectral inversion of the low-pass.
    /// `order` must be even so the impulse response has a centre tap.
    static FirFilter high_pass(std::size_t order, double cutoff_hz,
                               double sample_rate_hz,
                               WindowType window = WindowType::kHamming);

    /// Design a band-pass filter (low_hz < high_hz < Nyquist). `order`
    /// must be even.
    static FirFilter band_pass(std::size_t order, double low_hz, double high_hz,
                               double sample_rate_hz,
                               WindowType window = WindowType::kHamming);

    /// Causal filtering; output has the same length as the input (the
    /// first `order` samples contain the start-up transient).
    RealSignal filter(std::span<const double> input) const;

    /// Same, element-wise on a complex signal (taps are real).
    ComplexSignal filter(std::span<const Complex> input) const;

    /// Allocation-free variants for the per-frame hot path: `out` is
    /// resized to the input length (reusing its capacity) and must not
    /// alias the input. Results are bit-identical to filter().
    void filter_into(std::span<const double> input, RealSignal& out) const;
    void filter_into(std::span<const Complex> input, ComplexSignal& out) const;

    /// Structure-of-arrays variant for the vector frame path: filters both
    /// I/Q planes in one call through the active SIMD kernel table. `out`
    /// is resized to the input size and must not alias the input.
    /// Component-wise bit-identical to the complex filter_into().
    void filter_planes_into(const IqPlanes& input, IqPlanes& out) const;

    /// Zero-phase filtering: forward pass, reverse, forward pass, reverse.
    /// Doubles the magnitude response in dB but removes the group delay;
    /// used where waveform timing matters (blink event localisation).
    RealSignal filtfilt(std::span<const double> input) const;

    /// Magnitude of the frequency response at `freq_hz` given the sampling
    /// rate (direct evaluation of the DTFT of the taps).
    double magnitude_response(double freq_hz, double sample_rate_hz) const;

    /// Group delay in samples (linear phase: (taps-1)/2).
    double group_delay_samples() const noexcept;

    const RealSignal& taps() const noexcept { return taps_; }
    std::size_t order() const noexcept { return taps_.size() - 1; }

private:
    RealSignal taps_;
};

}  // namespace blinkradar::dsp
