#include "dsp/fir.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/frame_kernels.hpp"

namespace blinkradar::dsp {

namespace {

double sinc(double x) {
    if (std::abs(x) < 1e-12) return 1.0;
    return std::sin(constants::kPi * x) / (constants::kPi * x);
}

// Ideal windowed-sinc low-pass taps with normalised cutoff fc in (0, 0.5).
RealSignal design_lowpass_taps(std::size_t order, double fc_norm,
                               WindowType window) {
    const std::size_t n_taps = order + 1;
    const RealSignal w = make_window(window, n_taps);
    RealSignal taps(n_taps);
    const double mid = static_cast<double>(order) / 2.0;
    for (std::size_t i = 0; i < n_taps; ++i) {
        const double m = static_cast<double>(i) - mid;
        taps[i] = 2.0 * fc_norm * sinc(2.0 * fc_norm * m) * w[i];
    }
    // Normalise DC gain to exactly 1.
    double sum = 0.0;
    for (const double t : taps) sum += t;
    BR_ASSERT(sum > 0.0);
    for (double& t : taps) t /= sum;
    return taps;
}

}  // namespace

FirFilter::FirFilter(RealSignal taps) : taps_(std::move(taps)) {
    BR_EXPECTS(!taps_.empty());
}

FirFilter FirFilter::low_pass(std::size_t order, double cutoff_hz,
                              double sample_rate_hz, WindowType window) {
    BR_EXPECTS(order >= 2);
    BR_EXPECTS(sample_rate_hz > 0.0);
    BR_EXPECTS(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0);
    return FirFilter(
        design_lowpass_taps(order, cutoff_hz / sample_rate_hz, window));
}

FirFilter FirFilter::high_pass(std::size_t order, double cutoff_hz,
                               double sample_rate_hz, WindowType window) {
    BR_EXPECTS(order >= 2 && order % 2 == 0);
    BR_EXPECTS(sample_rate_hz > 0.0);
    BR_EXPECTS(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0);
    RealSignal taps =
        design_lowpass_taps(order, cutoff_hz / sample_rate_hz, window);
    // Spectral inversion: negate all taps and add 1 to the centre tap.
    for (double& t : taps) t = -t;
    taps[order / 2] += 1.0;
    return FirFilter(std::move(taps));
}

FirFilter FirFilter::band_pass(std::size_t order, double low_hz, double high_hz,
                               double sample_rate_hz, WindowType window) {
    BR_EXPECTS(order >= 2 && order % 2 == 0);
    BR_EXPECTS(sample_rate_hz > 0.0);
    BR_EXPECTS(low_hz > 0.0 && low_hz < high_hz &&
               high_hz < sample_rate_hz / 2.0);
    const RealSignal lp_high =
        design_lowpass_taps(order, high_hz / sample_rate_hz, window);
    const RealSignal lp_low =
        design_lowpass_taps(order, low_hz / sample_rate_hz, window);
    RealSignal taps(order + 1);
    for (std::size_t i = 0; i <= order; ++i) taps[i] = lp_high[i] - lp_low[i];
    return FirFilter(std::move(taps));
}

RealSignal FirFilter::filter(std::span<const double> input) const {
    RealSignal out;
    filter_into(input, out);
    return out;
}

ComplexSignal FirFilter::filter(std::span<const Complex> input) const {
    ComplexSignal out;
    filter_into(input, out);
    return out;
}

void FirFilter::filter_into(std::span<const double> input,
                            RealSignal& out) const {
    BR_EXPECTS(input.empty() || input.data() != out.data());
    out.resize(input.size());
    const std::size_t n_taps = taps_.size();
    for (std::size_t n = 0; n < input.size(); ++n) {
        double acc = 0.0;
        const std::size_t k_max = std::min(n_taps - 1, n);
        for (std::size_t k = 0; k <= k_max; ++k) acc += taps_[k] * input[n - k];
        out[n] = acc;
    }
}

void FirFilter::filter_into(std::span<const Complex> input,
                            ComplexSignal& out) const {
    BR_EXPECTS(input.empty() || input.data() != out.data());
    out.resize(input.size());
    const std::size_t n_taps = taps_.size();
    for (std::size_t n = 0; n < input.size(); ++n) {
        Complex acc(0.0, 0.0);
        const std::size_t k_max = std::min(n_taps - 1, n);
        for (std::size_t k = 0; k <= k_max; ++k) acc += taps_[k] * input[n - k];
        out[n] = acc;
    }
}

void FirFilter::filter_planes_into(const IqPlanes& input, IqPlanes& out) const {
    BR_EXPECTS(input.empty() || input.i.data() != out.i.data());
    out.resize(input.size());
    active_kernels().fir2(input.i.data(), input.q.data(), input.size(),
                          taps_.data(), taps_.size(), out.i.data(),
                          out.q.data());
}

RealSignal FirFilter::filtfilt(std::span<const double> input) const {
    RealSignal forward = filter(input);
    std::reverse(forward.begin(), forward.end());
    RealSignal backward = filter(forward);
    std::reverse(backward.begin(), backward.end());
    return backward;
}

double FirFilter::magnitude_response(double freq_hz,
                                     double sample_rate_hz) const {
    BR_EXPECTS(sample_rate_hz > 0.0);
    const double omega = constants::kTwoPi * freq_hz / sample_rate_hz;
    Complex h(0.0, 0.0);
    for (std::size_t k = 0; k < taps_.size(); ++k) {
        h += taps_[k] * Complex(std::cos(omega * static_cast<double>(k)),
                                -std::sin(omega * static_cast<double>(k)));
    }
    return std::abs(h);
}

double FirFilter::group_delay_samples() const noexcept {
    return static_cast<double>(taps_.size() - 1) / 2.0;
}

}  // namespace blinkradar::dsp
