#include "dsp/smoothing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "dsp/frame_kernels.hpp"

namespace blinkradar::dsp {

namespace {

// Solve the square system a*x = b by Gaussian elimination with partial
// pivoting. `a` is row-major n*n. Used only for the tiny Savitzky-Golay
// normal equations, so numerical sophistication beyond pivoting is not
// required.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col]))
                pivot = r;
        }
        BR_ASSERT(std::abs(a[pivot * n + col]) > 1e-14);
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a[col * n + c], a[pivot * n + c]);
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r * n + col] / a[col * n + col];
            for (std::size_t c = col; c < n; ++c)
                a[r * n + c] -= factor * a[col * n + c];
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
        x[ri] = acc / a[ri * n + ri];
    }
    return x;
}

}  // namespace

namespace {

// Shared implementation: prefix sums give O(n) evaluation independent of
// window size. Works for double and Complex alike (complex addition and
// complex/double division act component-wise, so the complex result is
// bit-identical to smoothing I and Q separately).
template <typename T>
void moving_average_impl(std::span<const T> input, std::size_t window,
                         std::vector<T>& out, std::vector<T>& prefix) {
    BR_EXPECTS(window >= 1);
    BR_EXPECTS(input.empty() || (input.data() != out.data() &&
                                 input.data() != prefix.data()));
    const std::size_t half = window / 2;
    out.resize(input.size());
    prefix.resize(input.size() + 1);
    prefix[0] = T{};
    for (std::size_t i = 0; i < input.size(); ++i)
        prefix[i + 1] = prefix[i] + input[i];
    for (std::size_t i = 0; i < input.size(); ++i) {
        const std::size_t lo = i >= half ? i - half : 0;
        const std::size_t hi = std::min(i + half, input.size() - 1);
        out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
    }
}

}  // namespace

RealSignal moving_average(std::span<const double> input, std::size_t window) {
    RealSignal out, prefix;
    moving_average_impl(input, window, out, prefix);
    return out;
}

ComplexSignal moving_average(std::span<const Complex> input,
                             std::size_t window) {
    ComplexSignal out, prefix;
    moving_average_impl(input, window, out, prefix);
    return out;
}

void moving_average_into(std::span<const double> input, std::size_t window,
                         RealSignal& out, RealSignal& prefix) {
    moving_average_impl(input, window, out, prefix);
}

void moving_average_into(std::span<const Complex> input, std::size_t window,
                         ComplexSignal& out, ComplexSignal& prefix) {
    moving_average_impl(input, window, out, prefix);
}

void moving_average_planes_into(const IqPlanes& input, std::size_t window,
                                IqPlanes& out, IqPlanes& prefix) {
    BR_EXPECTS(window >= 1);
    BR_EXPECTS(input.empty() || (input.i.data() != out.i.data() &&
                                 input.i.data() != prefix.i.data()));
    const std::size_t n = input.size();
    out.resize(n);
    prefix.resize(n + 1);
    // The prefix sums are inherently serial; the complex prefix above adds
    // componentwise, so the per-plane sums are bit-identical to it.
    prefix.i[0] = 0.0;
    prefix.q[0] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        prefix.i[j + 1] = prefix.i[j] + input.i[j];
        prefix.q[j + 1] = prefix.q[j] + input.q[j];
    }
    active_kernels().smooth_from_prefix(prefix.i.data(), prefix.q.data(), n,
                                        window / 2, out.i.data(),
                                        out.q.data());
}

RealSignal median_filter(std::span<const double> input, std::size_t window) {
    BR_EXPECTS(window >= 1 && window % 2 == 1);
    const std::size_t half = window / 2;
    RealSignal out(input.size(), 0.0);
    std::vector<double> buf;
    buf.reserve(window);
    for (std::size_t i = 0; i < input.size(); ++i) {
        const std::size_t lo = i >= half ? i - half : 0;
        const std::size_t hi = std::min(i + half, input.size() - 1);
        buf.assign(input.begin() + static_cast<std::ptrdiff_t>(lo),
                   input.begin() + static_cast<std::ptrdiff_t>(hi + 1));
        const std::size_t mid = buf.size() / 2;
        std::nth_element(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(mid),
                         buf.end());
        out[i] = buf[mid];
    }
    return out;
}

RealSignal exponential_smooth(std::span<const double> input, double alpha) {
    BR_EXPECTS(alpha > 0.0 && alpha <= 1.0);
    RealSignal out(input.size(), 0.0);
    if (input.empty()) return out;
    out[0] = input[0];
    for (std::size_t i = 1; i < input.size(); ++i)
        out[i] = alpha * input[i] + (1.0 - alpha) * out[i - 1];
    return out;
}

RealSignal savitzky_golay(std::span<const double> input, std::size_t window,
                          std::size_t poly_order) {
    BR_EXPECTS(window % 2 == 1 && window > poly_order);
    const std::size_t half = window / 2;
    const std::size_t n_coef = poly_order + 1;

    // Precompute the convolution kernel: the centre-sample weights of the
    // least-squares polynomial fit over the symmetric window. The kernel is
    // the first row of (A^T A)^{-1} A^T where A[i][j] = i^j.
    std::vector<double> ata(n_coef * n_coef, 0.0);
    for (std::size_t r = 0; r < n_coef; ++r)
        for (std::size_t c = 0; c < n_coef; ++c)
            for (std::ptrdiff_t m = -static_cast<std::ptrdiff_t>(half);
                 m <= static_cast<std::ptrdiff_t>(half); ++m)
                ata[r * n_coef + c] += std::pow(static_cast<double>(m),
                                                static_cast<double>(r + c));
    // Solve (A^T A) w = e0 column-by-column against the A^T basis.
    std::vector<double> e0(n_coef, 0.0);
    e0[0] = 1.0;
    const std::vector<double> beta = solve_linear(ata, e0, n_coef);
    std::vector<double> kernel(window, 0.0);
    for (std::size_t i = 0; i < window; ++i) {
        const double m =
            static_cast<double>(static_cast<std::ptrdiff_t>(i) -
                                static_cast<std::ptrdiff_t>(half));
        double w = 0.0;
        for (std::size_t j = 0; j < n_coef; ++j)
            w += beta[j] * std::pow(m, static_cast<double>(j));
        kernel[i] = w;
    }

    RealSignal out(input.size(), 0.0);
    for (std::size_t i = 0; i < input.size(); ++i) {
        double acc = 0.0;
        double weight_sum = 0.0;
        for (std::size_t k = 0; k < window; ++k) {
            const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(i) +
                                       static_cast<std::ptrdiff_t>(k) -
                                       static_cast<std::ptrdiff_t>(half);
            if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(input.size()))
                continue;
            acc += kernel[k] * input[static_cast<std::size_t>(idx)];
            weight_sum += kernel[k];
        }
        // Renormalise at edges where part of the kernel falls outside.
        out[i] = weight_sum != 0.0 ? acc / weight_sum : input[i];
    }
    return out;
}

}  // namespace blinkradar::dsp
