#include "dsp/frame_kernels.hpp"

#include <string_view>

#include "common/env_config.hpp"
#include "dsp/frame_kernels_impl.hpp"

namespace blinkradar::dsp {

const KernelTable& scalar_kernels() noexcept {
    static const KernelTable table =
        detail::make_kernel_table<detail::ScalarVec>("scalar");
    return table;
}

#if defined(BLINKRADAR_HAVE_AVX2_TU)
namespace detail {
// Defined in frame_kernels_avx2.cpp, the only TU built with -mavx2.
const KernelTable& avx2_kernel_table() noexcept;
}  // namespace detail
#endif

const KernelTable* avx2_kernels() noexcept {
#if defined(BLINKRADAR_HAVE_AVX2_TU) && \
    (defined(__x86_64__) || defined(__i386__))
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported ? &detail::avx2_kernel_table() : nullptr;
#else
    return nullptr;
#endif
}

const KernelTable* neon_kernels() noexcept {
#if defined(__ARM_NEON)
    static const KernelTable table =
        detail::make_kernel_table<detail::NeonVec>("neon");
    return &table;
#else
    return nullptr;
#endif
}

const KernelTable& active_kernels() noexcept {
    // The override comes from the one-time process config snapshot, not
    // a live getenv, so concurrent first calls from two sessions can
    // never race a runtime setenv (and always pick the same table; the
    // magic static then pins it for the process).
    static const KernelTable& table = []() -> const KernelTable& {
        const std::string_view want = process_config().simd_backend;
        if (!want.empty()) {
            if (want == "scalar") return scalar_kernels();
            if (want == "avx2") {
                if (const KernelTable* t = avx2_kernels()) return *t;
            }
            if (want == "neon") {
                if (const KernelTable* t = neon_kernels()) return *t;
            }
            // Unknown or unavailable backend: fall through to auto.
        }
        if (const KernelTable* t = avx2_kernels()) return *t;
        if (const KernelTable* t = neon_kernels()) return *t;
        return scalar_kernels();
    }();
    return table;
}

}  // namespace blinkradar::dsp
