#include "dsp/frame_kernels.hpp"

#include <cstdlib>
#include <string_view>

#include "dsp/frame_kernels_impl.hpp"

namespace blinkradar::dsp {

const KernelTable& scalar_kernels() noexcept {
    static const KernelTable table =
        detail::make_kernel_table<detail::ScalarVec>("scalar");
    return table;
}

#if defined(BLINKRADAR_HAVE_AVX2_TU)
namespace detail {
// Defined in frame_kernels_avx2.cpp, the only TU built with -mavx2.
const KernelTable& avx2_kernel_table() noexcept;
}  // namespace detail
#endif

const KernelTable* avx2_kernels() noexcept {
#if defined(BLINKRADAR_HAVE_AVX2_TU) && \
    (defined(__x86_64__) || defined(__i386__))
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported ? &detail::avx2_kernel_table() : nullptr;
#else
    return nullptr;
#endif
}

const KernelTable* neon_kernels() noexcept {
#if defined(__ARM_NEON)
    static const KernelTable table =
        detail::make_kernel_table<detail::NeonVec>("neon");
    return &table;
#else
    return nullptr;
#endif
}

const KernelTable& active_kernels() noexcept {
    static const KernelTable& table = []() -> const KernelTable& {
        if (const char* env = std::getenv("BLINKRADAR_SIMD_BACKEND")) {
            const std::string_view want(env);
            if (want == "scalar") return scalar_kernels();
            if (want == "avx2") {
                if (const KernelTable* t = avx2_kernels()) return *t;
            }
            if (want == "neon") {
                if (const KernelTable* t = neon_kernels()) return *t;
            }
            // Unknown or unavailable backend: fall through to auto.
        }
        if (const KernelTable* t = avx2_kernels()) return *t;
        if (const KernelTable* t = neon_kernels()) return *t;
        return scalar_kernels();
    }();
    return table;
}

}  // namespace blinkradar::dsp
