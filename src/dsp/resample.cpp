#include "dsp/resample.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::dsp {

RealSignal resample_linear(std::span<const double> input,
                           std::size_t out_len) {
    BR_EXPECTS(input.size() >= 2);
    BR_EXPECTS(out_len >= 2);
    RealSignal out(out_len);
    const double scale = static_cast<double>(input.size() - 1) /
                         static_cast<double>(out_len - 1);
    for (std::size_t i = 0; i < out_len; ++i)
        out[i] = interp_at(input, static_cast<double>(i) * scale);
    return out;
}

RealSignal decimate(std::span<const double> input, std::size_t factor) {
    BR_EXPECTS(factor >= 1);
    RealSignal out;
    out.reserve(input.size() / factor + 1);
    for (std::size_t i = 0; i < input.size(); i += factor)
        out.push_back(input[i]);
    return out;
}

double interp_at(std::span<const double> input, double index) {
    BR_EXPECTS(!input.empty());
    if (index <= 0.0) return input.front();
    const double max_idx = static_cast<double>(input.size() - 1);
    if (index >= max_idx) return input.back();
    const std::size_t lo = static_cast<std::size_t>(index);
    const double frac = index - static_cast<double>(lo);
    return input[lo] * (1.0 - frac) + input[lo + 1] * frac;
}

}  // namespace blinkradar::dsp
