// Window functions for FIR design and spectral analysis.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// Supported window shapes.
enum class WindowType {
    kRectangular,
    kHamming,   ///< used by the paper's order-26 FIR design
    kHann,
    kBlackman,
};

/// Generate an n-point symmetric window of the given type (n >= 1).
RealSignal make_window(WindowType type, std::size_t n);

/// Multiply `signal` element-wise by `window` (sizes must match) and return
/// the result.
RealSignal apply_window(std::span<const double> signal,
                        std::span<const double> window);

/// Coherent gain of a window: mean of its samples (1.0 for rectangular).
double coherent_gain(std::span<const double> window);

}  // namespace blinkradar::dsp
