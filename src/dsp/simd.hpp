// Portable double-lane SIMD shim for the per-frame DSP kernels.
//
// Each backend is a tiny value type with a uniform interface (width W,
// zero/broadcast/loadu/storeu, + - * /, and a ternary-semantics max), so
// the kernels in frame_kernels_impl.hpp are written once against a
// template parameter and instantiated per backend:
//
//   - ScalarVec (W=1): always compiled; the fallback on any host, and the
//     semantics reference the wider backends are held bit-identical to.
//   - Avx2Vec (W=4): only defined when the including translation unit is
//     compiled with -mavx2 (see frame_kernels_avx2.cpp; the rest of the
//     build keeps the default architecture flags, so the AVX2 kernels
//     live behind a runtime CPU check).
//   - NeonVec (W=2): AArch64 NEON, defined under __ARM_NEON.
//
// Bit-exactness contract: every operation here is a lane-wise IEEE-754
// double operation, and max(a, b) is defined as `a > b ? a : b` per lane
// on every backend (including NaN and signed-zero behaviour: _mm256_max_pd
// returns its *second* operand when the first is NaN or the operands are
// equal, which matches the ternary with the (a, b) argument order used
// below; NEON uses an explicit compare+select). Combined with the fixed
// accumulator striping in the kernels, every backend produces bitwise
// identical results — the backend choice is a pure speed knob.
#pragma once

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace blinkradar::dsp::detail {

struct ScalarVec {
    static constexpr std::size_t W = 1;
    /// No paired complex butterfly: fft_pass uses the scalar loop.
    static constexpr bool kComplexButterfly = false;

    double v;

    static ScalarVec zero() noexcept { return {0.0}; }
    static ScalarVec broadcast(double x) noexcept { return {x}; }
    static ScalarVec loadu(const double* p) noexcept { return {*p}; }
    void storeu(double* p) const noexcept { *p = v; }
    static ScalarVec max(ScalarVec a, ScalarVec b) noexcept {
        return {a.v > b.v ? a.v : b.v};
    }
    friend ScalarVec operator+(ScalarVec a, ScalarVec b) noexcept {
        return {a.v + b.v};
    }
    friend ScalarVec operator-(ScalarVec a, ScalarVec b) noexcept {
        return {a.v - b.v};
    }
    friend ScalarVec operator*(ScalarVec a, ScalarVec b) noexcept {
        return {a.v * b.v};
    }
    friend ScalarVec operator/(ScalarVec a, ScalarVec b) noexcept {
        return {a.v / b.v};
    }
};

#if defined(__AVX2__)

struct Avx2Vec {
    static constexpr std::size_t W = 4;
    static constexpr bool kComplexButterfly = true;

    __m256d v;

    static Avx2Vec zero() noexcept { return {_mm256_setzero_pd()}; }
    static Avx2Vec broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
    static Avx2Vec loadu(const double* p) noexcept {
        return {_mm256_loadu_pd(p)};
    }
    void storeu(double* p) const noexcept { _mm256_storeu_pd(p, v); }
    // maxpd(a, b) returns b when a is NaN or a == b, exactly matching the
    // scalar `a > b ? a : b` per lane (including -0.0 vs +0.0).
    static Avx2Vec max(Avx2Vec a, Avx2Vec b) noexcept {
        return {_mm256_max_pd(a.v, b.v)};
    }
    friend Avx2Vec operator+(Avx2Vec a, Avx2Vec b) noexcept {
        return {_mm256_add_pd(a.v, b.v)};
    }
    friend Avx2Vec operator-(Avx2Vec a, Avx2Vec b) noexcept {
        return {_mm256_sub_pd(a.v, b.v)};
    }
    friend Avx2Vec operator*(Avx2Vec a, Avx2Vec b) noexcept {
        return {_mm256_mul_pd(a.v, b.v)};
    }
    friend Avx2Vec operator/(Avx2Vec a, Avx2Vec b) noexcept {
        return {_mm256_div_pd(a.v, b.v)};
    }

    /// Two adjacent radix-2 FFT butterflies in one 256-bit lane set.
    /// `a` and `b` each point at two interleaved complex values
    /// (re0, im0, re1, im1); `w` at two interleaved twiddles. Per lane
    /// this computes exactly the scalar butterfly
    ///   v = b * w;  a' = a + v;  b' = a - v;
    /// with the identical operation order (lane k re: b_r*w_r - b_i*w_i,
    /// lane k im: b_i*w_r + b_r*w_i via addsub of the swapped product),
    /// so results are bit-identical to the scalar loop.
    static void butterflies2(double* a, double* b, const double* w) noexcept {
        const __m256d av = _mm256_loadu_pd(a);
        const __m256d bv = _mm256_loadu_pd(b);
        const __m256d wv = _mm256_loadu_pd(w);
        const __m256d wr = _mm256_movedup_pd(wv);          // wr0 wr0 wr1 wr1
        const __m256d wi = _mm256_permute_pd(wv, 0b1111);  // wi0 wi0 wi1 wi1
        const __m256d bswap = _mm256_permute_pd(bv, 0b0101);
        // addsub: (br*wr - bi*wi, bi*wr + br*wi) per complex value.
        const __m256d vv = _mm256_addsub_pd(_mm256_mul_pd(bv, wr),
                                            _mm256_mul_pd(bswap, wi));
        _mm256_storeu_pd(a, _mm256_add_pd(av, vv));
        _mm256_storeu_pd(b, _mm256_sub_pd(av, vv));
    }
};

#endif  // __AVX2__

#if defined(__ARM_NEON)

struct NeonVec {
    static constexpr std::size_t W = 2;
    static constexpr bool kComplexButterfly = false;

    float64x2_t v;

    static NeonVec zero() noexcept { return {vdupq_n_f64(0.0)}; }
    static NeonVec broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
    static NeonVec loadu(const double* p) noexcept { return {vld1q_f64(p)}; }
    void storeu(double* p) const noexcept { vst1q_f64(p, v); }
    // Explicit compare+select (not FMAX, whose NaN semantics differ from
    // the ternary): bit-identical to `a > b ? a : b` per lane.
    static NeonVec max(NeonVec a, NeonVec b) noexcept {
        return {vbslq_f64(vcgtq_f64(a.v, b.v), a.v, b.v)};
    }
    friend NeonVec operator+(NeonVec a, NeonVec b) noexcept {
        return {vaddq_f64(a.v, b.v)};
    }
    friend NeonVec operator-(NeonVec a, NeonVec b) noexcept {
        return {vsubq_f64(a.v, b.v)};
    }
    friend NeonVec operator*(NeonVec a, NeonVec b) noexcept {
        return {vmulq_f64(a.v, b.v)};
    }
    friend NeonVec operator/(NeonVec a, NeonVec b) noexcept {
        return {vdivq_f64(a.v, b.v)};
    }
};

#endif  // __ARM_NEON

}  // namespace blinkradar::dsp::detail
