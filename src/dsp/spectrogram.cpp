#include "dsp/spectrogram.hpp"

#include "common/contracts.hpp"
#include "dsp/fft.hpp"

namespace blinkradar::dsp {

Spectrogram stft(std::span<const double> signal, double sample_rate_hz,
                 std::size_t segment_len, std::size_t hop, WindowType window) {
    BR_EXPECTS(sample_rate_hz > 0.0);
    BR_EXPECTS(segment_len >= 4);
    BR_EXPECTS(hop >= 1);
    BR_EXPECTS(signal.size() >= segment_len);

    const RealSignal w = make_window(window, segment_len);
    const std::size_t fft_len = next_power_of_two(segment_len);

    Spectrogram out;
    out.bin_hz = sample_rate_hz / static_cast<double>(fft_len);
    out.hop_s = static_cast<double>(hop) / sample_rate_hz;

    for (std::size_t start = 0; start + segment_len <= signal.size();
         start += hop) {
        ComplexSignal seg(fft_len, Complex(0.0, 0.0));
        for (std::size_t i = 0; i < segment_len; ++i)
            seg[i] = Complex(signal[start + i] * w[i], 0.0);
        fft_inplace(seg);
        RealSignal power(fft_len / 2 + 1);
        for (std::size_t f = 0; f < power.size(); ++f)
            power[f] = std::norm(seg[f]);
        out.power.push_back(std::move(power));
    }
    return out;
}

}  // namespace blinkradar::dsp
