#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::dsp {

namespace {

std::vector<std::size_t> find_extrema_impl(std::span<const double> signal,
                                           std::size_t min_separation,
                                           bool maxima) {
    std::vector<std::size_t> raw;
    const std::size_t n = signal.size();
    if (n < 3) return raw;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        const double prev = signal[i - 1];
        const double cur = signal[i];
        // Plateau handling: scan forward over equal samples; accept the
        // plateau start if the sample after the plateau continues the
        // extremum shape.
        std::size_t j = i;
        while (j + 1 < n && signal[j + 1] == cur) ++j;
        if (j + 1 >= n) break;
        const double next = signal[j + 1];
        const bool is_ext = maxima ? (cur > prev && cur > next)
                                   : (cur < prev && cur < next);
        if (is_ext) raw.push_back(i);
        i = j;  // skip the plateau
    }
    if (min_separation <= 1 || raw.size() < 2) return raw;

    // Greedy suppression: visit candidates from most to least extreme,
    // accept if no already-accepted extremum is within min_separation.
    std::vector<std::size_t> order(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return maxima ? signal[raw[a]] > signal[raw[b]]
                      : signal[raw[a]] < signal[raw[b]];
    });
    std::vector<bool> keep(raw.size(), false);
    std::vector<std::size_t> accepted;
    for (const std::size_t cand : order) {
        const std::size_t pos = raw[cand];
        bool ok = true;
        for (const std::size_t a : accepted) {
            const std::size_t d = pos > a ? pos - a : a - pos;
            if (d < min_separation) {
                ok = false;
                break;
            }
        }
        if (ok) {
            keep[cand] = true;
            accepted.push_back(pos);
        }
    }
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < raw.size(); ++i)
        if (keep[i]) out.push_back(raw[i]);
    return out;
}

}  // namespace

std::vector<std::size_t> find_local_maxima(std::span<const double> signal,
                                           std::size_t min_separation) {
    return find_extrema_impl(signal, min_separation, /*maxima=*/true);
}

std::vector<std::size_t> find_local_minima(std::span<const double> signal,
                                           std::size_t min_separation) {
    return find_extrema_impl(signal, min_separation, /*maxima=*/false);
}

std::vector<Extremum> alternating_extrema(std::span<const double> signal) {
    const auto maxima = find_local_maxima(signal);
    const auto minima = find_local_minima(signal);
    std::vector<Extremum> merged;
    merged.reserve(maxima.size() + minima.size());
    for (const std::size_t i : maxima)
        merged.push_back(Extremum{i, signal[i], true});
    for (const std::size_t i : minima)
        merged.push_back(Extremum{i, signal[i], false});
    std::sort(merged.begin(), merged.end(),
              [](const Extremum& a, const Extremum& b) {
                  return a.index < b.index;
              });

    // Collapse runs of same-kind extrema, keeping the most extreme member,
    // so the result strictly alternates max/min/max/...
    std::vector<Extremum> out;
    for (const Extremum& e : merged) {
        if (!out.empty() && out.back().is_maximum == e.is_maximum) {
            const bool replace = e.is_maximum ? e.value > out.back().value
                                              : e.value < out.back().value;
            if (replace) out.back() = e;
        } else {
            out.push_back(e);
        }
    }
    return out;
}

double prominence(std::span<const double> signal, std::size_t peak_index) {
    BR_EXPECTS(peak_index < signal.size());
    const double peak = signal[peak_index];

    // Walk left until a sample higher than the peak (or the edge); record
    // the lowest valley on the way. Same to the right.
    double left_min = peak;
    for (std::size_t i = peak_index; i-- > 0;) {
        if (signal[i] > peak) break;
        left_min = std::min(left_min, signal[i]);
    }
    double right_min = peak;
    for (std::size_t i = peak_index + 1; i < signal.size(); ++i) {
        if (signal[i] > peak) break;
        right_min = std::min(right_min, signal[i]);
    }
    return peak - std::max(left_min, right_min);
}

}  // namespace blinkradar::dsp
