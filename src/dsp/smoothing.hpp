// Smoothing filters for the slow-time signal path.
//
// The paper cascades the order-26 FIR with a 50-point smoothing filter
// (moving average). Median and Savitzky-Golay smoothers are provided for
// the ablation benches.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// Centred moving average with the given window (odd or even; even windows
/// are treated as window+1 to stay centred). Edges use the available
/// samples only (shrinking window), so output length equals input length.
RealSignal moving_average(std::span<const double> input, std::size_t window);

/// Complex moving average (applied independently to I and Q).
ComplexSignal moving_average(std::span<const Complex> input,
                             std::size_t window);

/// Allocation-free variants for the per-frame hot path: `out` and the
/// caller-owned `prefix` scratch are resized (reusing capacity); neither
/// may alias the input. Results are bit-identical to moving_average().
void moving_average_into(std::span<const double> input, std::size_t window,
                         RealSignal& out, RealSignal& prefix);
void moving_average_into(std::span<const Complex> input, std::size_t window,
                         ComplexSignal& out, ComplexSignal& prefix);

/// Structure-of-arrays variant for the vector frame path: smooths both
/// I/Q planes in one call (prefix sums per plane, interior samples through
/// the active SIMD kernel table). Component-wise bit-identical to the
/// complex moving_average_into().
void moving_average_planes_into(const IqPlanes& input, std::size_t window,
                                IqPlanes& out, IqPlanes& prefix);

/// Centred running median with an odd window size.
RealSignal median_filter(std::span<const double> input, std::size_t window);

/// First-order exponential smoother y[n] = alpha*x[n] + (1-alpha)*y[n-1],
/// alpha in (0, 1].
RealSignal exponential_smooth(std::span<const double> input, double alpha);

/// Savitzky-Golay smoothing: least-squares polynomial of degree `poly_order`
/// over a centred window of odd length `window` (> poly_order). Preserves
/// peak shape better than the moving average; used in ablations.
RealSignal savitzky_golay(std::span<const double> input, std::size_t window,
                          std::size_t poly_order);

}  // namespace blinkradar::dsp
