// Resampling helpers: linear interpolation and integer decimation.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// Resample `input` to `out_len` samples by linear interpolation of the
/// sample positions (endpoints map to endpoints). `input` must have >= 2
/// samples and out_len >= 2.
RealSignal resample_linear(std::span<const double> input, std::size_t out_len);

/// Keep every `factor`-th sample starting at index 0 (factor >= 1). Callers
/// are responsible for prior anti-alias filtering where it matters.
RealSignal decimate(std::span<const double> input, std::size_t factor);

/// Evaluate a uniformly sampled signal at an arbitrary fractional index by
/// linear interpolation; indices outside [0, n-1] clamp to the endpoints.
double interp_at(std::span<const double> input, double index);

}  // namespace blinkradar::dsp
