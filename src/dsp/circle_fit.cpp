#include "dsp/circle_fit.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::dsp {

namespace {

struct Moments {
    double mean_x = 0.0, mean_y = 0.0;
    double mxx = 0.0, myy = 0.0, mxy = 0.0;
    double mxz = 0.0, myz = 0.0, mzz = 0.0;
};

// Normalised central moments of the point cloud (z = x^2 + y^2), as used by
// Chernov's circle-fit formulations.
Moments compute_moments(std::span<const Complex> pts) {
    Moments m;
    const double n = static_cast<double>(pts.size());
    for (const Complex& p : pts) {
        m.mean_x += p.real();
        m.mean_y += p.imag();
    }
    m.mean_x /= n;
    m.mean_y /= n;
    for (const Complex& p : pts) {
        const double x = p.real() - m.mean_x;
        const double y = p.imag() - m.mean_y;
        const double z = x * x + y * y;
        m.mxx += x * x;
        m.myy += y * y;
        m.mxy += x * y;
        m.mxz += x * z;
        m.myz += y * z;
        m.mzz += z * z;
    }
    m.mxx /= n;
    m.myy /= n;
    m.mxy /= n;
    m.mxz /= n;
    m.myz /= n;
    m.mzz /= n;
    return m;
}

bool degenerate(std::span<const Complex> pts) {
    if (pts.size() < 3) return true;
    // All points (numerically) coincident or collinear => no unique circle.
    const Moments m = compute_moments(pts);
    const double cov_det = m.mxx * m.myy - m.mxy * m.mxy;
    const double scale = m.mxx + m.myy;
    return scale < 1e-24 || cov_det < 1e-12 * scale * scale;
}

}  // namespace

double circle_rms_residual(std::span<const Complex> points,
                           const CircleFit& fit) {
    BR_EXPECTS(!points.empty());
    double acc = 0.0;
    for (const Complex& p : points) {
        const double dx = p.real() - fit.center_x;
        const double dy = p.imag() - fit.center_y;
        const double d = std::sqrt(dx * dx + dy * dy) - fit.radius;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(points.size()));
}

CircleFit fit_circle_kasa(std::span<const Complex> points) {
    CircleFit out;
    if (degenerate(points)) return out;
    const Moments m = compute_moments(points);

    // Solve the 2x2 system for the centre offset (in centred coordinates):
    //   [mxx mxy][a]   [mxz/2]
    //   [mxy myy][b] = [myz/2]
    const double det = m.mxx * m.myy - m.mxy * m.mxy;
    BR_ASSERT(det != 0.0);
    const double a = (m.mxz * m.myy - m.myz * m.mxy) / (2.0 * det);
    const double b = (m.myz * m.mxx - m.mxz * m.mxy) / (2.0 * det);

    out.center_x = a + m.mean_x;
    out.center_y = b + m.mean_y;
    out.radius = std::sqrt(a * a + b * b + m.mxx + m.myy);
    out.ok = true;
    out.rms_residual = circle_rms_residual(points, out);
    return out;
}

CircleFit fit_circle_pratt(std::span<const Complex> points) {
    CircleFit out;
    if (degenerate(points)) return out;
    const Moments m = compute_moments(points);

    const double mz = m.mxx + m.myy;
    const double cov_xy = m.mxx * m.myy - m.mxy * m.mxy;
    const double var_z = m.mzz - mz * mz;

    const double a2 = 4.0 * cov_xy - 3.0 * mz * mz - m.mzz;
    const double a1 = var_z * mz + 4.0 * cov_xy * mz - m.mxz * m.mxz -
                      m.myz * m.myz;
    const double a0 = m.mxz * (m.mxz * m.myy - m.myz * m.mxy) +
                      m.myz * (m.myz * m.mxx - m.mxz * m.mxy) - var_z * cov_xy;
    const double a22 = a2 + a2;

    // Newton iteration on P(x) = a0 + a1*x + a2*x^2 + 4*x^3, starting at 0.
    double x = 0.0;
    double y = a0;
    for (int iter = 0; iter < 99; ++iter) {
        const double dy = a1 + x * (a22 + 16.0 * x * x);
        if (dy == 0.0) break;
        const double x_new = x - y / dy;
        if (!std::isfinite(x_new) || std::abs(x_new - x) < 1e-12 * std::abs(x_new) + 1e-300)
            break;
        const double y_new = a0 + x_new * (a1 + x_new * (a2 + 4.0 * x_new * x_new));
        if (std::abs(y_new) > std::abs(y)) break;
        x = x_new;
        y = y_new;
    }

    const double det = x * x - x * mz + cov_xy;
    if (det == 0.0 || !std::isfinite(det)) return out;
    const double cx = (m.mxz * (m.myy - x) - m.myz * m.mxy) / det / 2.0;
    const double cy = (m.myz * (m.mxx - x) - m.mxz * m.mxy) / det / 2.0;

    out.center_x = cx + m.mean_x;
    out.center_y = cy + m.mean_y;
    out.radius = std::sqrt(cx * cx + cy * cy + mz + 2.0 * x);
    out.ok = std::isfinite(out.radius);
    if (out.ok) out.rms_residual = circle_rms_residual(points, out);
    return out;
}

CircleFit fit_circle_taubin(std::span<const Complex> points) {
    CircleFit out;
    if (degenerate(points)) return out;
    const Moments m = compute_moments(points);

    const double mz = m.mxx + m.myy;
    const double cov_xy = m.mxx * m.myy - m.mxy * m.mxy;
    const double var_z = m.mzz - mz * mz;

    const double a3 = 4.0 * mz;
    const double a2 = -3.0 * mz * mz - m.mzz;
    const double a1 = var_z * mz + 4.0 * cov_xy * mz - m.mxz * m.mxz -
                      m.myz * m.myz;
    const double a0 = m.mxz * (m.mxz * m.myy - m.myz * m.mxy) +
                      m.myz * (m.myz * m.mxx - m.mxz * m.mxy) - var_z * cov_xy;
    const double a22 = a2 + a2;
    const double a33 = a3 + a3 + a3;

    double x = 0.0;
    double y = a0;
    for (int iter = 0; iter < 99; ++iter) {
        const double dy = a1 + x * (a22 + x * a33);
        if (dy == 0.0) break;
        const double x_new = x - y / dy;
        if (!std::isfinite(x_new) || std::abs(x_new - x) < 1e-12 * std::abs(x_new) + 1e-300)
            break;
        const double y_new = a0 + x_new * (a1 + x_new * (a2 + x_new * a3));
        x = x_new;
        y = y_new;
        if (std::abs(y_new) < 1e-14 * std::abs(a0)) break;
    }

    const double det = x * x - x * mz + cov_xy;
    if (det == 0.0 || !std::isfinite(det)) return out;
    const double cx = (m.mxz * (m.myy - x) - m.myz * m.mxy) / det / 2.0;
    const double cy = (m.myz * (m.mxx - x) - m.mxz * m.mxy) / det / 2.0;

    out.center_x = cx + m.mean_x;
    out.center_y = cy + m.mean_y;
    out.radius = std::sqrt(cx * cx + cy * cy + mz);
    out.ok = std::isfinite(out.radius);
    if (out.ok) out.rms_residual = circle_rms_residual(points, out);
    return out;
}

}  // namespace blinkradar::dsp
