#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::dsp {

double mean(std::span<const double> v) {
    BR_EXPECTS(!v.empty());
    double sum = 0.0;
    for (const double x : v) sum += x;
    return sum / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
    BR_EXPECTS(!v.empty());
    const double m = mean(v);
    double acc = 0.0;
    for (const double x : v) acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double median(std::span<const double> v) { return percentile(v, 50.0); }

double median_inplace(std::span<double> v) {
    BR_EXPECTS(!v.empty());
    std::sort(v.begin(), v.end());
    if (v.size() == 1) return v.front();
    // Same interpolation as percentile(v, 50.0); 0.5 == 50.0/100.0 exactly.
    const double pos = 0.5 * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double percentile(std::span<const double> v, double p) {
    BR_EXPECTS(!v.empty());
    BR_EXPECTS(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(v.begin(), v.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double scatter_variance(std::span<const Complex> v) {
    BR_EXPECTS(!v.empty());
    const Complex m = complex_mean(v);
    double acc = 0.0;
    for (const Complex& z : v) {
        const double di = z.real() - m.real();
        const double dq = z.imag() - m.imag();
        acc += di * di + dq * dq;
    }
    return acc / static_cast<double>(v.size());
}

Complex complex_mean(std::span<const Complex> v) {
    BR_EXPECTS(!v.empty());
    Complex sum(0.0, 0.0);
    for (const Complex& z : v) sum += z;
    return sum / static_cast<double>(v.size());
}

void RunningStats::push(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::reset() noexcept {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
    BR_EXPECTS(!samples.empty());
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
    BR_EXPECTS(q > 0.0 && q <= 1.0);
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
    return sorted_[std::min(idx, sorted_.size() - 1)];
}

}  // namespace blinkradar::dsp
