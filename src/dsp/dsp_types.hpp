// Shared scalar/vector aliases for the DSP layer.
#pragma once

#include <complex>
#include <vector>

namespace blinkradar::dsp {

/// Complex baseband sample (I + jQ).
using Complex = std::complex<double>;

/// Real-valued signal, one sample per element.
using RealSignal = std::vector<double>;

/// Complex-valued signal, one sample per element.
using ComplexSignal = std::vector<Complex>;

}  // namespace blinkradar::dsp
