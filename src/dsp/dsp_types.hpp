// Shared scalar/vector aliases for the DSP layer.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace blinkradar::dsp {

/// Complex baseband sample (I + jQ).
using Complex = std::complex<double>;

/// Real-valued signal, one sample per element.
using RealSignal = std::vector<double>;

/// Complex-valued signal, one sample per element.
using ComplexSignal = std::vector<Complex>;

/// Structure-of-arrays complex signal: the I and Q components stored in
/// separate contiguous planes. The per-frame hot path uses this layout so
/// the vector kernels (see dsp/frame_kernels.hpp) load W consecutive
/// samples of one component per instruction instead of gathering every
/// other double of an interleaved ComplexSignal. Element `b` corresponds
/// to Complex(i[b], q[b]).
struct IqPlanes {
    RealSignal i;
    RealSignal q;

    std::size_t size() const noexcept { return i.size(); }
    bool empty() const noexcept { return i.empty(); }
    void resize(std::size_t n) {
        i.resize(n);
        q.resize(n);
    }
    void clear() noexcept {
        i.clear();
        q.clear();
    }
    Complex at(std::size_t b) const { return Complex(i[b], q[b]); }
};

}  // namespace blinkradar::dsp
