// Circle (arc) fitting in the I/Q plane.
//
// BlinkRadar estimates the "optimal viewing position" by fitting a circle
// to the arc the dynamic vector traces in I/Q space under respiration/BCG
// interference. The paper uses the Pratt method ("lightweight and
// robust"); Kåsa and Taubin fits are provided as ablation baselines.
// Implementations follow Chernov's classic formulations.
#pragma once

#include <span>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// Result of a circle fit.
struct CircleFit {
    double center_x = 0.0;
    double center_y = 0.0;
    double radius = 0.0;
    double rms_residual = 0.0;  ///< RMS of (distance-to-centre - radius)
    bool ok = false;            ///< false for degenerate inputs
};

/// Kåsa algebraic fit (linear least squares). Fast but biased towards
/// smaller radii on short arcs — exactly the regime BlinkRadar operates in,
/// which is why the paper prefers Pratt.
CircleFit fit_circle_kasa(std::span<const Complex> points);

/// Pratt fit (normalisation by the gradient constraint), Newton iteration
/// on the characteristic polynomial. The paper's choice.
CircleFit fit_circle_pratt(std::span<const Complex> points);

/// Taubin fit; near-identical accuracy to Pratt, provided for ablations.
CircleFit fit_circle_taubin(std::span<const Complex> points);

/// RMS residual of `points` against an already-fitted circle.
double circle_rms_residual(std::span<const Complex> points,
                           const CircleFit& fit);

}  // namespace blinkradar::dsp
