// Statistics utilities: summary statistics, running (Welford) statistics,
// percentiles, and empirical CDFs used throughout the pipeline and the
// evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// Arithmetic mean. Input must be non-empty.
double mean(std::span<const double> v);

/// Population variance (divides by N). Input must be non-empty.
double variance(std::span<const double> v);

/// Population standard deviation.
double stddev(std::span<const double> v);

/// Median (copies and partially sorts). Input must be non-empty.
double median(std::span<const double> v);

/// Allocation-free median for hot paths: sorts `v` in place (caller-owned
/// scratch) and returns the same interpolated median as median(). Input
/// must be non-empty.
double median_inplace(std::span<double> v);

/// Linear-interpolated percentile, p in [0, 100]. Input must be non-empty.
double percentile(std::span<const double> v, double p);

/// Two-dimensional scatter variance of a complex point cloud:
/// var(I) + var(Q). This is the quantity the paper maximises to find the
/// eye's range bin ("variance of the 2D signal variation").
double scatter_variance(std::span<const Complex> v);

/// Mean of a complex point cloud (I and Q averaged independently).
Complex complex_mean(std::span<const Complex> v);

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
public:
    void push(double x) noexcept;
    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Population variance; 0 until two samples have been pushed.
    double variance() const noexcept;
    double stddev() const noexcept;
    void reset() noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Empirical CDF over a sample set; supports evaluation at arbitrary x and
/// inverse evaluation (quantiles).
class EmpiricalCdf {
public:
    /// Build from samples (copied and sorted). Must be non-empty.
    explicit EmpiricalCdf(std::span<const double> samples);

    /// P(X <= x) under the empirical distribution.
    double at(double x) const;

    /// Quantile: smallest sample s with CDF(s) >= q, q in (0, 1].
    double quantile(double q) const;

    double min() const { return sorted_.front(); }
    double max() const { return sorted_.back(); }
    std::size_t size() const noexcept { return sorted_.size(); }

    /// The sorted sample values (for plotting CDF curves).
    const std::vector<double>& sorted_samples() const noexcept {
        return sorted_;
    }

private:
    std::vector<double> sorted_;
};

}  // namespace blinkradar::dsp
