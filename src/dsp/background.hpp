// Static-clutter (background) estimation along slow time.
//
// The paper removes reflections from static objects (seats, steering
// wheel, direct antenna leakage) with a "loopback filter": an exponential
// estimate of the static component per range bin, subtracted from each new
// frame. A batch mean-subtraction variant is provided for offline use and
// for the Fig. 8 bench.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/dsp_types.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::dsp {

/// Streaming exponential background estimator over complex range-bin
/// frames. For each bin b: bg[b] <- (1-alpha)*bg[b] + alpha*x[b]; the
/// returned frame is x - bg (computed against the *pre-update* background
/// so a static scene converges to zero output).
class LoopbackFilter {
public:
    /// \param n_bins number of range bins per frame (>= 1).
    /// \param alpha  adaptation rate in (0, 1); small alpha = slow
    ///               background, tracking only truly static reflectors.
    LoopbackFilter(std::size_t n_bins, double alpha);

    /// Process one frame; returns the background-subtracted frame.
    /// `frame.size()` must equal `n_bins()`.
    ComplexSignal process(std::span<const Complex> frame);

    /// Allocation-free variant: writes the subtracted frame into `out`
    /// (resized, reusing capacity; must not alias the input).
    void process_into(std::span<const Complex> frame, ComplexSignal& out);

    /// Current background estimate (one complex value per bin).
    const ComplexSignal& background() const noexcept { return background_; }

    /// Whether the background has been seeded with a first frame. The
    /// structure-of-arrays frame path (see dsp/frame_kernels.hpp) keeps
    /// the estimate in I/Q planes and runs the exponential update inside
    /// the fused kernel; it primes explicitly via prime_soa() and then
    /// reads/writes the planes directly.
    bool primed() const noexcept { return primed_; }

    /// Seed the SoA background planes with `frame` (the first frame after
    /// construction or reset()), mirroring the implicit priming of
    /// process_into().
    void prime_soa(const IqPlanes& frame);

    /// Ensure the SoA planes hold the live estimate before the fused
    /// kernel runs: primes from `frame` when unprimed, otherwise just
    /// marks the planes live (they are already valid — filled by ongoing
    /// SoA processing or by restore_state()).
    void begin_soa_frame(const IqPlanes& frame);

    /// SoA background planes for the fused kernel. Valid after prime_soa().
    RealSignal& bg_i() noexcept { return bg_i_; }
    RealSignal& bg_q() noexcept { return bg_q_; }

    /// Reset the background to the next incoming frame (used after a
    /// detected large body movement, when the old background is stale).
    void reset() noexcept;

    /// Snapshot the background estimate (section "BKGD"). Bit-identical
    /// resume: a restored filter subtracts exactly what the original
    /// would have.
    void save_state(state::StateWriter& writer) const;
    void restore_state(state::StateReader& reader);

    std::size_t n_bins() const noexcept { return background_.size(); }
    double alpha() const noexcept { return alpha_; }

private:
    ComplexSignal background_;
    RealSignal bg_i_;
    RealSignal bg_q_;
    double alpha_;
    bool primed_ = false;
    /// True when the live estimate is in the SoA planes (last primed via
    /// prime_soa()), false when it is in background_. A filter only ever
    /// uses one representation between snapshots; save_state() interleaves
    /// the planes so the BKGD wire format is identical either way.
    bool soa_ = false;
    mutable ComplexSignal save_scratch_;
};

/// Batch background subtraction: subtract the per-bin slow-time mean from
/// every frame. `frames` is a slow-time sequence of equal-length range
/// profiles.
std::vector<ComplexSignal> subtract_mean_background(
    const std::vector<ComplexSignal>& frames);

}  // namespace blinkradar::dsp
