// Radix-2 iterative FFT and helpers.
//
// Implemented from scratch (no external dependency). Used by the radar
// simulator (range-profile synthesis checks), the background-subtraction
// stage, and the spectrum benches that reproduce the paper's Fig. 5/6.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

/// True iff n is a power of two (and non-zero).
bool is_power_of_two(std::size_t n) noexcept;

/// Smallest power of two >= n (n must be >= 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. `data.size()` must be a power of two.
void fft_inplace(std::span<Complex> data);

/// In-place inverse FFT (includes the 1/N normalisation).
void ifft_inplace(std::span<Complex> data);

/// Forward FFT of a complex signal, zero-padded to the next power of two.
ComplexSignal fft(std::span<const Complex> input);

/// Forward FFT of a real signal, zero-padded to the next power of two.
ComplexSignal fft_real(std::span<const double> input);

/// Inverse FFT; input size must be a power of two.
ComplexSignal ifft(std::span<const Complex> input);

/// |X[k]|^2 for each bin of the forward FFT (zero-padded to pow2).
RealSignal power_spectrum(std::span<const Complex> input);

/// Magnitude spectrum |X[k]| of a real signal (zero-padded to pow2),
/// returning only the first N/2+1 (non-negative frequency) bins.
RealSignal magnitude_spectrum_real(std::span<const double> input);

/// Shift zero-frequency component to the centre of the spectrum.
ComplexSignal fftshift(std::span<const Complex> input);

}  // namespace blinkradar::dsp
