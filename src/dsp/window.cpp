#include "dsp/window.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace blinkradar::dsp {

RealSignal make_window(WindowType type, std::size_t n) {
    BR_EXPECTS(n >= 1);
    RealSignal w(n, 1.0);
    if (n == 1) return w;
    const double denom = static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) / denom;  // in [0, 1]
        switch (type) {
            case WindowType::kRectangular:
                w[i] = 1.0;
                break;
            case WindowType::kHamming:
                w[i] = 0.54 - 0.46 * std::cos(constants::kTwoPi * x);
                break;
            case WindowType::kHann:
                w[i] = 0.5 - 0.5 * std::cos(constants::kTwoPi * x);
                break;
            case WindowType::kBlackman:
                w[i] = 0.42 - 0.5 * std::cos(constants::kTwoPi * x) +
                       0.08 * std::cos(2.0 * constants::kTwoPi * x);
                break;
        }
    }
    return w;
}

RealSignal apply_window(std::span<const double> signal,
                        std::span<const double> window) {
    BR_EXPECTS(signal.size() == window.size());
    RealSignal out(signal.size());
    for (std::size_t i = 0; i < signal.size(); ++i) out[i] = signal[i] * window[i];
    return out;
}

double coherent_gain(std::span<const double> window) {
    BR_EXPECTS(!window.empty());
    double sum = 0.0;
    for (const double v : window) sum += v;
    return sum / static_cast<double>(window.size());
}

}  // namespace blinkradar::dsp
