// The single translation unit built with -mavx2 (see src/dsp/CMakeLists.txt).
// Everything AVX2 lives here so the rest of the build keeps the default
// architecture baseline; frame_kernels.cpp gates the table behind a
// runtime __builtin_cpu_supports("avx2") check.
#if !defined(__AVX2__)
#error "frame_kernels_avx2.cpp must be compiled with -mavx2"
#endif

#include "dsp/frame_kernels_impl.hpp"

namespace blinkradar::dsp::detail {

const KernelTable& avx2_kernel_table() noexcept {
    static const KernelTable table = make_kernel_table<Avx2Vec>("avx2");
    return table;
}

}  // namespace blinkradar::dsp::detail
