// Short-time Fourier transform (spectrogram), used by the Fig. 5(b)
// transmitted-signal bench and by the signal_explorer example.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/dsp_types.hpp"
#include "dsp/window.hpp"

namespace blinkradar::dsp {

/// Spectrogram result: `power[t][f]` is the windowed power of segment t at
/// frequency bin f (only non-negative frequencies are kept).
struct Spectrogram {
    std::vector<RealSignal> power;  ///< [n_segments][n_freq_bins]
    double bin_hz = 0.0;            ///< frequency spacing between bins
    double hop_s = 0.0;             ///< time spacing between segments
};

/// Compute an STFT spectrogram.
/// \param signal        input samples.
/// \param sample_rate_hz sampling rate.
/// \param segment_len   window length in samples (>= 4); zero-padded to pow2.
/// \param hop           hop between segments in samples (>= 1).
/// \param window        analysis window shape.
Spectrogram stft(std::span<const double> signal, double sample_rate_hz,
                 std::size_t segment_len, std::size_t hop,
                 WindowType window = WindowType::kHann);

}  // namespace blinkradar::dsp
