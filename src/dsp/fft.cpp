#include "dsp/fft.hpp"

#include <cmath>
#include <cstdint>
#include <utility>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/frame_kernels.hpp"

namespace blinkradar::dsp {

bool is_power_of_two(std::size_t n) noexcept {
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) {
    BR_EXPECTS(n >= 1);
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

namespace {

// Precomputed per-size tables: the bit-reversal swap pairs and the
// twiddle factors of every butterfly stage (forward and inverse),
// concatenated stage after stage (lengths 2, 4, ..., n contribute
// 1, 2, ..., n/2 factors = n-1 per direction). The twiddles are generated
// by the same iterative w *= wlen recurrence the direct transform used,
// so cached results are bit-identical to the uncached ones.
struct FftPlan {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;
    std::vector<Complex> twiddles_fwd;
    std::vector<Complex> twiddles_inv;
};

using PlanCache = std::vector<std::pair<std::size_t, FftPlan>>;

// Cold path, deliberately kept out of line: letting the builder (trig,
// push_backs, their exception paths) inline into transform() bloats it
// enough that the compiler stops optimising the butterfly loop tightly —
// measured as a >2x slowdown of the whole FFT.
[[gnu::noinline]] const FftPlan& build_plan(PlanCache& cache, std::size_t n) {
    FftPlan plan;
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j)
            plan.swaps.emplace_back(static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(j));
    }
    for (const bool inverse : {false, true}) {
        std::vector<Complex>& tw =
            inverse ? plan.twiddles_inv : plan.twiddles_fwd;
        tw.reserve(n - 1);
        for (std::size_t len = 2; len <= n; len <<= 1) {
            const double angle =
                (inverse ? constants::kTwoPi : -constants::kTwoPi) /
                static_cast<double>(len);
            const Complex wlen(std::cos(angle), std::sin(angle));
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                tw.push_back(w);
                w *= wlen;
            }
        }
    }
    cache.emplace_back(n, std::move(plan));
    return cache.back().second;
}

const FftPlan& plan_for(std::size_t n) {
    // Keyed by size; thread_local so concurrent batch sessions never
    // contend (each pool thread builds its own small set of plans once).
    thread_local PlanCache cache;
    for (const auto& entry : cache)
        if (entry.first == n) return entry.second;
    return build_plan(cache, n);
}

void transform(std::span<Complex> data, bool inverse) {
    const std::size_t n = data.size();
    BR_EXPECTS(is_power_of_two(n));
    if (n == 1) return;
    const FftPlan& plan = plan_for(n);
    for (const auto& [i, k] : plan.swaps) std::swap(data[i], data[k]);
    // Hoist the table to a raw pointer: indexing through the vector inside
    // the butterfly forces the compiler to re-load the vector's data
    // pointer every iteration (the writes to `data` could alias it).
    const Complex* const tw =
        (inverse ? plan.twiddles_inv : plan.twiddles_fwd).data();
    // Butterflies on the flat double view of the array (std::complex
    // guarantees array-oriented access). Going through std::complex
    // operators here makes GCC assemble each result on the stack (scalar
    // stores re-read as a packed load), a store-forwarding stall per
    // butterfly that more than doubles the transform time.
    double* const d = reinterpret_cast<double*>(data.data());
    const double* const twd = reinterpret_cast<const double*>(tw);
    // Each stage runs through the active kernel table; every backend's
    // fft_pass is bit-identical to the scalar butterfly loop (the AVX2
    // variant pairs adjacent butterflies with lane-exact arithmetic).
    const KernelTable& kern = active_kernels();
    std::size_t stage_base = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        kern.fft_pass(d, twd + 2 * stage_base, n, len);
        stage_base += len / 2;
    }
    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto& x : data) x *= inv_n;
    }
}

}  // namespace

void fft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/false); }

void ifft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/true); }

ComplexSignal fft(std::span<const Complex> input) {
    BR_EXPECTS(!input.empty());
    ComplexSignal out(input.begin(), input.end());
    out.resize(next_power_of_two(out.size()), Complex(0.0, 0.0));
    fft_inplace(out);
    return out;
}

ComplexSignal fft_real(std::span<const double> input) {
    BR_EXPECTS(!input.empty());
    ComplexSignal out(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) out[i] = Complex(input[i], 0.0);
    out.resize(next_power_of_two(out.size()), Complex(0.0, 0.0));
    fft_inplace(out);
    return out;
}

ComplexSignal ifft(std::span<const Complex> input) {
    BR_EXPECTS(is_power_of_two(input.size()));
    ComplexSignal out(input.begin(), input.end());
    ifft_inplace(out);
    return out;
}

RealSignal power_spectrum(std::span<const Complex> input) {
    const ComplexSignal spec = fft(input);
    RealSignal power(spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) power[i] = std::norm(spec[i]);
    return power;
}

RealSignal magnitude_spectrum_real(std::span<const double> input) {
    const ComplexSignal spec = fft_real(input);
    const std::size_t half = spec.size() / 2 + 1;
    RealSignal mag(half);
    for (std::size_t i = 0; i < half; ++i) mag[i] = std::abs(spec[i]);
    return mag;
}

ComplexSignal fftshift(std::span<const Complex> input) {
    const std::size_t n = input.size();
    BR_EXPECTS(n >= 1);
    ComplexSignal out(n);
    const std::size_t half = (n + 1) / 2;
    for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
    return out;
}

}  // namespace blinkradar::dsp
