#include "dsp/fft.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace blinkradar::dsp {

bool is_power_of_two(std::size_t n) noexcept {
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) {
    BR_EXPECTS(n >= 1);
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

namespace {

void bit_reverse_permute(std::span<Complex> data) {
    const std::size_t n = data.size();
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }
}

void transform(std::span<Complex> data, bool inverse) {
    const std::size_t n = data.size();
    BR_EXPECTS(is_power_of_two(n));
    bit_reverse_permute(data);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? constants::kTwoPi : -constants::kTwoPi) /
            static_cast<double>(len);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto& x : data) x *= inv_n;
    }
}

}  // namespace

void fft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/false); }

void ifft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/true); }

ComplexSignal fft(std::span<const Complex> input) {
    BR_EXPECTS(!input.empty());
    ComplexSignal out(input.begin(), input.end());
    out.resize(next_power_of_two(out.size()), Complex(0.0, 0.0));
    fft_inplace(out);
    return out;
}

ComplexSignal fft_real(std::span<const double> input) {
    BR_EXPECTS(!input.empty());
    ComplexSignal out(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) out[i] = Complex(input[i], 0.0);
    out.resize(next_power_of_two(out.size()), Complex(0.0, 0.0));
    fft_inplace(out);
    return out;
}

ComplexSignal ifft(std::span<const Complex> input) {
    BR_EXPECTS(is_power_of_two(input.size()));
    ComplexSignal out(input.begin(), input.end());
    ifft_inplace(out);
    return out;
}

RealSignal power_spectrum(std::span<const Complex> input) {
    const ComplexSignal spec = fft(input);
    RealSignal power(spec.size());
    for (std::size_t i = 0; i < spec.size(); ++i) power[i] = std::norm(spec[i]);
    return power;
}

RealSignal magnitude_spectrum_real(std::span<const double> input) {
    const ComplexSignal spec = fft_real(input);
    const std::size_t half = spec.size() / 2 + 1;
    RealSignal mag(half);
    for (std::size_t i = 0; i < half; ++i) mag[i] = std::abs(spec[i]);
    return mag;
}

ComplexSignal fftshift(std::span<const Complex> input) {
    const std::size_t n = input.size();
    BR_EXPECTS(n >= 1);
    ComplexSignal out(n);
    const std::size_t half = (n + 1) / 2;
    for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
    return out;
}

}  // namespace blinkradar::dsp
