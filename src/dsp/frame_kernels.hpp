// Dispatch table for the per-frame DSP kernels of the hot path.
//
// The pipeline's frame path (preprocess -> movement check -> background
// subtraction + rolling variance) is restructured as structure-of-arrays
// I/Q planes processed by the kernels below, each available in scalar,
// AVX2 and NEON flavours (see dsp/simd.hpp). Dispatch is a table of
// function pointers resolved once per process: the default build carries
// the scalar table plus (on x86-64) an AVX2 table compiled in a dedicated
// -mavx2 translation unit and selected only when the CPU reports AVX2.
//
// Bit-exactness contract: all backends return bitwise identical results
// for every kernel. Element-wise kernels perform the identical per-lane
// operation sequence; reductions use a fixed four-stripe accumulator
// layout (element j always lands in partial sum j mod 4, independent of
// the vector width); the AVX2 FFT butterfly is lane-for-lane the scalar
// butterfly. The backend choice (BLINKRADAR_SIMD_BACKEND) is therefore a
// pure speed knob — only the pipeline-level *path* choice (scalar AoS
// code vs these SoA kernels, see core::DspPath) changes results, because
// the SoA path fuses stages and caps the bin-selection candidate list.
#pragma once

#include <cstddef>

#include "dsp/dsp_types.hpp"

namespace blinkradar::dsp {

struct KernelTable {
    const char* name = "?";  ///< "scalar", "avx2" or "neon"

    /// AoS -> SoA and back (layout shuffles; shared scalar loops).
    void (*deinterleave)(const Complex* in, std::size_t n, double* re,
                         double* im) = nullptr;
    void (*interleave)(const double* re, const double* im, std::size_t n,
                       Complex* out) = nullptr;

    /// Causal FIR over both planes in one call (taps are shared, so each
    /// broadcast tap feeds both components). Output order matches
    /// FirFilter::filter_into exactly: acc += taps[k] * x[n-k], k
    /// ascending. `y` must not alias `x`.
    void (*fir2)(const double* xi, const double* xq, std::size_t n,
                 const double* taps, std::size_t n_taps, double* yi,
                 double* yq) = nullptr;

    /// Centred moving average evaluated from prefix sums (`pi`/`pq` hold
    /// n+1 elements). Interior samples (constant window 2*half+1) are
    /// vectorized; shrinking-window edges use the exact scalar formula of
    /// dsp::moving_average_impl.
    void (*smooth_from_prefix)(const double* pi, const double* pq,
                               std::size_t n, std::size_t half, double* oi,
                               double* oq) = nullptr;

    /// Frame-difference energy sum |x - p|^2 with the fixed four-stripe
    /// reduction (see file comment).
    double (*movement_energy)(const double* xi, const double* xq,
                              const double* pi, const double* pq,
                              std::size_t n) = nullptr;

    /// Fused background subtraction + rolling-variance bookkeeping, one
    /// pass over the bins:
    ///   evict: sums -= old frame (skipped when old_i == nullptr),
    ///   subtract: o = x - bg (stored after the old_* loads, so the
    ///             evicted frame may alias the output),
    ///   push: sums += o,
    ///   adapt: bg = (1-alpha)*bg + alpha*x.
    /// Per-bin operation order matches the legacy evict -> process_into
    /// -> push sequence exactly.
    void (*background_var_fused)(const double* xi, const double* xq,
                                 std::size_t n, double alpha, double* bgi,
                                 double* bgq, double* oi, double* oq,
                                 const double* old_i, const double* old_q,
                                 double* sum_i, double* sum_q,
                                 double* sum_sq) = nullptr;

    /// Per-bin scatter variances from the rolling sums, matching
    /// RollingBinVariance::variance bin-for-bin (division by `count`,
    /// clamp to zero via ternary-semantics max).
    void (*variances_from_sums)(const double* sum_i, const double* sum_q,
                                const double* sum_sq, std::size_t n,
                                double count, double* out) = nullptr;

    /// One radix-2 FFT stage over the flat interleaved array `d` (2*n
    /// doubles) with the stage's twiddles; bit-identical to the scalar
    /// butterfly loop on every backend.
    void (*fft_pass)(double* d, const double* stage_tw, std::size_t n,
                     std::size_t len) = nullptr;
};

/// The always-available scalar table.
const KernelTable& scalar_kernels() noexcept;

/// Backend tables; null when the build or the host CPU lacks the backend.
const KernelTable* avx2_kernels() noexcept;
const KernelTable* neon_kernels() noexcept;

/// Best table for this host, resolved once per process. The environment
/// variable BLINKRADAR_SIMD_BACKEND (scalar | avx2 | neon) forces a
/// backend when available (unknown or unavailable values fall back to
/// auto); auto order is avx2 > neon > scalar. Because all backends are
/// bit-identical (see above) this only affects speed.
const KernelTable& active_kernels() noexcept;

}  // namespace blinkradar::dsp
