// Generic kernel bodies, instantiated once per SIMD backend.
//
// Included by frame_kernels.cpp (scalar, NEON) and frame_kernels_avx2.cpp
// (AVX2, compiled with -mavx2). Every kernel is written so that its
// per-element operation sequence is independent of the vector width W —
// see the bit-exactness contract in frame_kernels.hpp.
#pragma once

#include <algorithm>
#include <cstddef>

#include "dsp/frame_kernels.hpp"
#include "dsp/simd.hpp"

namespace blinkradar::dsp::detail {

template <class V>
struct Kernels {
    // Layout shuffles stay scalar on every backend: at the pipeline's
    // ~151 bins the shuffle-heavy vector variants measure no faster, and
    // a shared loop is trivially bit-identical everywhere.
    static void deinterleave(const Complex* in, std::size_t n, double* re,
                             double* im) {
        // std::complex guarantees array-oriented access (re, im) pairs.
        const double* d = reinterpret_cast<const double*>(in);
        for (std::size_t j = 0; j < n; ++j) {
            re[j] = d[2 * j];
            im[j] = d[2 * j + 1];
        }
    }

    static void interleave(const double* re, const double* im, std::size_t n,
                           Complex* out) {
        double* d = reinterpret_cast<double*>(out);
        for (std::size_t j = 0; j < n; ++j) {
            d[2 * j] = re[j];
            d[2 * j + 1] = im[j];
        }
    }

    static void fir2(const double* xi, const double* xq, std::size_t n,
                     const double* taps, std::size_t n_taps, double* yi,
                     double* yq) {
        // Start-up transient: outputs with fewer than n_taps history
        // samples, scalar with the exact legacy expression.
        const std::size_t start = std::min(n_taps - 1, n);
        for (std::size_t out = 0; out < start; ++out) {
            double ai = 0.0;
            double aq = 0.0;
            for (std::size_t k = 0; k <= out; ++k) {
                ai += taps[k] * xi[out - k];
                aq += taps[k] * xq[out - k];
            }
            yi[out] = ai;
            yq[out] = aq;
        }
        // Main region: vectorize across outputs. Lane j of a block
        // accumulates taps[k] * x[out+j-k] for k ascending — the same
        // per-output operation order as the scalar loop.
        std::size_t out = start;
        for (; out + V::W <= n; out += V::W) {
            V ai = V::zero();
            V aq = V::zero();
            for (std::size_t k = 0; k < n_taps; ++k) {
                const V t = V::broadcast(taps[k]);
                ai = ai + t * V::loadu(xi + out - k);
                aq = aq + t * V::loadu(xq + out - k);
            }
            ai.storeu(yi + out);
            aq.storeu(yq + out);
        }
        for (; out < n; ++out) {
            double ai = 0.0;
            double aq = 0.0;
            for (std::size_t k = 0; k < n_taps; ++k) {
                ai += taps[k] * xi[out - k];
                aq += taps[k] * xq[out - k];
            }
            yi[out] = ai;
            yq[out] = aq;
        }
    }

    static void smooth_one(const double* pi, const double* pq, std::size_t n,
                           std::size_t half, std::size_t j, double* oi,
                           double* oq) {
        const std::size_t lo = j >= half ? j - half : 0;
        const std::size_t hi = std::min(j + half, n - 1);
        const double count = static_cast<double>(hi - lo + 1);
        oi[j] = (pi[hi + 1] - pi[lo]) / count;
        oq[j] = (pq[hi + 1] - pq[lo]) / count;
    }

    static void smooth_from_prefix(const double* pi, const double* pq,
                                   std::size_t n, std::size_t half,
                                   double* oi, double* oq) {
        const std::size_t full = 2 * half + 1;
        std::size_t j = 0;
        for (; j < std::min(half, n); ++j) smooth_one(pi, pq, n, half, j, oi, oq);
        if (n >= full) {
            // Interior: constant window, j in [half, n-1-half].
            const std::size_t interior_end = n - half;  // exclusive
            const V vcount = V::broadcast(static_cast<double>(full));
            for (; j + V::W <= interior_end; j += V::W) {
                const V si = V::loadu(pi + j + half + 1) - V::loadu(pi + j - half);
                const V sq = V::loadu(pq + j + half + 1) - V::loadu(pq + j - half);
                (si / vcount).storeu(oi + j);
                (sq / vcount).storeu(oq + j);
            }
            for (; j < interior_end; ++j)
                smooth_one(pi, pq, n, half, j, oi, oq);
        }
        for (; j < n; ++j) smooth_one(pi, pq, n, half, j, oi, oq);
    }

    static double movement_energy(const double* xi, const double* xq,
                                  const double* pi, const double* pq,
                                  std::size_t n) {
        // Fixed four-stripe accumulation: element j always lands in
        // partial sum j mod 4 with the same per-element arithmetic, so
        // every backend (W = 1, 2, 4) produces the same four partials and
        // the same final (s0+s1)+(s2+s3).
        constexpr std::size_t kStripes = 4;
        static_assert(kStripes % V::W == 0);
        constexpr std::size_t kVecs = kStripes / V::W;
        V acc[kVecs];
        for (std::size_t s = 0; s < kVecs; ++s) acc[s] = V::zero();
        std::size_t j = 0;
        for (; j + kStripes <= n; j += kStripes) {
            for (std::size_t s = 0; s < kVecs; ++s) {
                const std::size_t o = j + s * V::W;
                const V di = V::loadu(xi + o) - V::loadu(pi + o);
                const V dq = V::loadu(xq + o) - V::loadu(pq + o);
                acc[s] = acc[s] + (di * di + dq * dq);
            }
        }
        double lanes[kStripes];
        for (std::size_t s = 0; s < kVecs; ++s) acc[s].storeu(lanes + s * V::W);
        for (; j < n; ++j) {
            const double di = xi[j] - pi[j];
            const double dq = xq[j] - pq[j];
            lanes[j % kStripes] += di * di + dq * dq;
        }
        return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    }

    static void background_var_fused(const double* xi, const double* xq,
                                     std::size_t n, double alpha, double* bgi,
                                     double* bgq, double* oi, double* oq,
                                     const double* old_i, const double* old_q,
                                     double* sum_i, double* sum_q,
                                     double* sum_sq) {
        const V va = V::broadcast(alpha);
        const V vb = V::broadcast(1.0 - alpha);
        std::size_t j = 0;
        for (; j + V::W <= n; j += V::W) {
            const V x_i = V::loadu(xi + j);
            const V x_q = V::loadu(xq + j);
            const V b_i = V::loadu(bgi + j);
            const V b_q = V::loadu(bgq + j);
            V s_i = V::loadu(sum_i + j);
            V s_q = V::loadu(sum_q + j);
            V s_sq = V::loadu(sum_sq + j);
            if (old_i != nullptr) {
                const V e_i = V::loadu(old_i + j);
                const V e_q = V::loadu(old_q + j);
                s_i = s_i - e_i;
                s_q = s_q - e_q;
                s_sq = s_sq - (e_i * e_i + e_q * e_q);
            }
            const V d_i = x_i - b_i;
            const V d_q = x_q - b_q;
            // The evicted frame may alias the output slot (a full ring
            // recycles it); all old_* loads happened above.
            d_i.storeu(oi + j);
            d_q.storeu(oq + j);
            s_i = s_i + d_i;
            s_q = s_q + d_q;
            s_sq = s_sq + (d_i * d_i + d_q * d_q);
            s_i.storeu(sum_i + j);
            s_q.storeu(sum_q + j);
            s_sq.storeu(sum_sq + j);
            (vb * b_i + va * x_i).storeu(bgi + j);
            (vb * b_q + va * x_q).storeu(bgq + j);
        }
        const double one_minus_alpha = 1.0 - alpha;
        for (; j < n; ++j) {
            double s_i = sum_i[j];
            double s_q = sum_q[j];
            double s_sq = sum_sq[j];
            if (old_i != nullptr) {
                const double e_i = old_i[j];
                const double e_q = old_q[j];
                s_i -= e_i;
                s_q -= e_q;
                s_sq -= e_i * e_i + e_q * e_q;
            }
            const double d_i = xi[j] - bgi[j];
            const double d_q = xq[j] - bgq[j];
            oi[j] = d_i;
            oq[j] = d_q;
            sum_i[j] = s_i + d_i;
            sum_q[j] = s_q + d_q;
            sum_sq[j] = s_sq + (d_i * d_i + d_q * d_q);
            bgi[j] = one_minus_alpha * bgi[j] + alpha * xi[j];
            bgq[j] = one_minus_alpha * bgq[j] + alpha * xq[j];
        }
    }

    static void variances_from_sums(const double* sum_i, const double* sum_q,
                                    const double* sum_sq, std::size_t n,
                                    double count, double* out) {
        const V vn = V::broadcast(count);
        const V zero = V::zero();
        std::size_t j = 0;
        for (; j + V::W <= n; j += V::W) {
            const V mi = V::loadu(sum_i + j) / vn;
            const V mq = V::loadu(sum_q + j) / vn;
            const V var = V::loadu(sum_sq + j) / vn - (mi * mi + mq * mq);
            V::max(var, zero).storeu(out + j);
        }
        for (; j < n; ++j) {
            const double mi = sum_i[j] / count;
            const double mq = sum_q[j] / count;
            const double var = sum_sq[j] / count - (mi * mi + mq * mq);
            out[j] = var > 0.0 ? var : 0.0;
        }
    }

    static void fft_pass(double* d, const double* stage_tw, std::size_t n,
                         std::size_t len) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < n; i += len) {
            std::size_t k = 0;
            if constexpr (V::kComplexButterfly) {
                for (; k + 2 <= half; k += 2)
                    V::butterflies2(d + 2 * (i + k), d + 2 * (i + k) + 2 * half,
                                    stage_tw + 2 * k);
            }
            for (; k < half; ++k) {
                const std::size_t a = 2 * (i + k);
                const std::size_t b = a + 2 * half;
                const double wr = stage_tw[2 * k];
                const double wi = stage_tw[2 * k + 1];
                const double vr = d[b] * wr - d[b + 1] * wi;
                const double vi = d[b] * wi + d[b + 1] * wr;
                const double ur = d[a];
                const double ui = d[a + 1];
                d[a] = ur + vr;
                d[a + 1] = ui + vi;
                d[b] = ur - vr;
                d[b + 1] = ui - vi;
            }
        }
    }
};

template <class V>
inline KernelTable make_kernel_table(const char* name) noexcept {
    KernelTable t;
    t.name = name;
    t.deinterleave = &Kernels<V>::deinterleave;
    t.interleave = &Kernels<V>::interleave;
    t.fir2 = &Kernels<V>::fir2;
    t.smooth_from_prefix = &Kernels<V>::smooth_from_prefix;
    t.movement_energy = &Kernels<V>::movement_energy;
    t.background_var_fused = &Kernels<V>::background_var_fused;
    t.variances_from_sums = &Kernels<V>::variances_from_sums;
    t.fft_pass = &Kernels<V>::fft_pass;
    return t;
}

}  // namespace blinkradar::dsp::detail
