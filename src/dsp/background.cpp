#include "dsp/background.hpp"

#include "common/contracts.hpp"

namespace blinkradar::dsp {

LoopbackFilter::LoopbackFilter(std::size_t n_bins, double alpha)
    : background_(n_bins, Complex(0.0, 0.0)), alpha_(alpha) {
    BR_EXPECTS(n_bins >= 1);
    BR_EXPECTS(alpha > 0.0 && alpha < 1.0);
}

ComplexSignal LoopbackFilter::process(std::span<const Complex> frame) {
    ComplexSignal out;
    process_into(frame, out);
    return out;
}

void LoopbackFilter::process_into(std::span<const Complex> frame,
                                  ComplexSignal& out) {
    BR_EXPECTS(frame.size() == background_.size());
    BR_EXPECTS(frame.data() != out.data());
    if (!primed_) {
        // Seed the background with the first frame so start-up output is
        // clutter-free immediately instead of after ~1/alpha frames.
        for (std::size_t b = 0; b < frame.size(); ++b) background_[b] = frame[b];
        primed_ = true;
    }
    out.resize(frame.size());
    for (std::size_t b = 0; b < frame.size(); ++b) {
        out[b] = frame[b] - background_[b];
        background_[b] = (1.0 - alpha_) * background_[b] + alpha_ * frame[b];
    }
}

void LoopbackFilter::reset() noexcept { primed_ = false; }

std::vector<ComplexSignal> subtract_mean_background(
    const std::vector<ComplexSignal>& frames) {
    BR_EXPECTS(!frames.empty());
    const std::size_t n_bins = frames.front().size();
    for (const auto& f : frames) BR_EXPECTS(f.size() == n_bins);

    ComplexSignal mean(n_bins, Complex(0.0, 0.0));
    for (const auto& f : frames)
        for (std::size_t b = 0; b < n_bins; ++b) mean[b] += f[b];
    const double inv_n = 1.0 / static_cast<double>(frames.size());
    for (auto& m : mean) m *= inv_n;

    std::vector<ComplexSignal> out(frames.size(), ComplexSignal(n_bins));
    for (std::size_t t = 0; t < frames.size(); ++t)
        for (std::size_t b = 0; b < n_bins; ++b) out[t][b] = frames[t][b] - mean[b];
    return out;
}

}  // namespace blinkradar::dsp
