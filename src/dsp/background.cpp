#include "dsp/background.hpp"

#include "common/contracts.hpp"

namespace blinkradar::dsp {

LoopbackFilter::LoopbackFilter(std::size_t n_bins, double alpha)
    : background_(n_bins, Complex(0.0, 0.0)),
      bg_i_(n_bins, 0.0),
      bg_q_(n_bins, 0.0),
      alpha_(alpha) {
    BR_EXPECTS(n_bins >= 1);
    BR_EXPECTS(alpha > 0.0 && alpha < 1.0);
}

ComplexSignal LoopbackFilter::process(std::span<const Complex> frame) {
    ComplexSignal out;
    process_into(frame, out);
    return out;
}

void LoopbackFilter::process_into(std::span<const Complex> frame,
                                  ComplexSignal& out) {
    BR_EXPECTS(frame.size() == background_.size());
    BR_EXPECTS(frame.data() != out.data());
    if (!primed_) {
        // Seed the background with the first frame so start-up output is
        // clutter-free immediately instead of after ~1/alpha frames.
        for (std::size_t b = 0; b < frame.size(); ++b) background_[b] = frame[b];
        primed_ = true;
    }
    out.resize(frame.size());
    for (std::size_t b = 0; b < frame.size(); ++b) {
        out[b] = frame[b] - background_[b];
        background_[b] = (1.0 - alpha_) * background_[b] + alpha_ * frame[b];
    }
    soa_ = false;
}

void LoopbackFilter::prime_soa(const IqPlanes& frame) {
    BR_EXPECTS(frame.size() == background_.size());
    bg_i_ = frame.i;
    bg_q_ = frame.q;
    primed_ = true;
    soa_ = true;
}

void LoopbackFilter::begin_soa_frame(const IqPlanes& frame) {
    if (!primed_) {
        prime_soa(frame);
        return;
    }
    soa_ = true;
}

void LoopbackFilter::reset() noexcept { primed_ = false; }

namespace {
constexpr std::uint32_t kBackgroundTag = state::make_tag("BKGD");
constexpr std::uint16_t kBackgroundVersion = 1;
}  // namespace

void LoopbackFilter::save_state(state::StateWriter& writer) const {
    writer.begin_section(kBackgroundTag, kBackgroundVersion);
    writer.write_bool(primed_);
    if (soa_) {
        // Interleave the SoA planes so the wire format is independent of
        // which representation holds the live estimate.
        save_scratch_.resize(bg_i_.size());
        for (std::size_t b = 0; b < bg_i_.size(); ++b)
            save_scratch_[b] = Complex(bg_i_[b], bg_q_[b]);
        writer.write_complex_span(save_scratch_);
    } else {
        writer.write_complex_span(background_);
    }
    writer.end_section();
}

void LoopbackFilter::restore_state(state::StateReader& reader) {
    const std::uint16_t version = reader.open_section(kBackgroundTag);
    if (version > kBackgroundVersion)
        throw state::SnapshotError(
            "BKGD: snapshot section version " + std::to_string(version) +
            " is newer than this build supports (" +
            std::to_string(kBackgroundVersion) + ")");
    const bool primed = reader.read_bool();
    ComplexSignal restored;
    reader.read_complex_into(restored);
    if (restored.size() != background_.size())
        throw state::SnapshotError(
            "BKGD: snapshot holds " + std::to_string(restored.size()) +
            " bins but the filter is configured for " +
            std::to_string(background_.size()));
    primed_ = primed;
    background_ = std::move(restored);
    // Fill both representations so either frame path continues bit-exactly.
    for (std::size_t b = 0; b < background_.size(); ++b) {
        bg_i_[b] = background_[b].real();
        bg_q_[b] = background_[b].imag();
    }
    reader.close_section();
}

std::vector<ComplexSignal> subtract_mean_background(
    const std::vector<ComplexSignal>& frames) {
    BR_EXPECTS(!frames.empty());
    const std::size_t n_bins = frames.front().size();
    for (const auto& f : frames) BR_EXPECTS(f.size() == n_bins);

    ComplexSignal mean(n_bins, Complex(0.0, 0.0));
    for (const auto& f : frames)
        for (std::size_t b = 0; b < n_bins; ++b) mean[b] += f[b];
    const double inv_n = 1.0 / static_cast<double>(frames.size());
    for (auto& m : mean) m *= inv_n;

    std::vector<ComplexSignal> out(frames.size(), ComplexSignal(n_bins));
    for (std::size_t t = 0; t < frames.size(); ++t)
        for (std::size_t b = 0; b < n_bins; ++b) out[t][b] = frames[t][b] - mean[b];
    return out;
}

}  // namespace blinkradar::dsp
