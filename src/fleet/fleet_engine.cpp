#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/contracts.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::fleet {

namespace fs = std::filesystem;

/// Everything one driver session owns. Only ever touched by the control
/// lock's holder or by the single worker currently draining it, so no
/// field needs its own synchronisation.
struct FleetEngine::Session {
    SessionId id = 0;
    radar::RadarConfig radar{};
    core::PipelineConfig pipeline_config{};

    /// Null while evicted. Rebuilt (and restored) by rehydrate().
    std::unique_ptr<core::BlinkRadarPipeline> pipeline;
    std::unique_ptr<obs::MetricsRegistry> metrics;

    /// Serialised state of an evicted session when the engine has no
    /// spill_dir; empty otherwise (the bytes live on disk instead).
    std::vector<std::uint8_t> evicted_state;
    bool evicted = false;

    /// Last periodic autosnapshot — the warm-restore point. The buffer
    /// is recycled through StateWriter so steady state stops allocating.
    std::vector<std::uint8_t> autosnapshot;
    std::size_t frames_since_snapshot = 0;

    /// Recovery ladder position; reset by every successful frame.
    std::size_t consecutive_failures = 0;
    std::size_t warm_restores_spent = 0;

    /// Pump count at creation or the last pump that drained this session
    /// — the residency policy's LRU/idle clock (pump counts, not wall
    /// time, so eviction decisions replay exactly).
    std::uint64_t last_active_pump = 0;

    std::deque<radar::RadarFrame> inbox;
    std::vector<core::FrameResult> results;
    std::vector<core::DetectedBlink> blinks;
    SessionStats stats;
};

FleetEngine::FleetEngine(FleetConfig config, ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool != nullptr ? pool : &ThreadPool::shared()) {
    BR_EXPECTS(config_.n_shards >= 1);
    if (!config_.spill_dir.empty()) {
        std::error_code ec;
        fs::create_directories(config_.spill_dir, ec);
        // A crashed predecessor may have died mid-spill; its unique
        // temp files are pure leaks (never reused), reclaim them.
        state::cleanup_orphan_temps(config_.spill_dir);
    }
}

FleetEngine::~FleetEngine() = default;

std::string FleetEngine::spill_path(SessionId id) const {
    return config_.spill_dir + "/session-" + std::to_string(id) + ".snap";
}

FleetEngine::Session& FleetEngine::session_ref(SessionId id) {
    const auto it = sessions_.find(id);
    BR_EXPECTS(it != sessions_.end());
    return *it->second;
}

const FleetEngine::Session& FleetEngine::session_ref(SessionId id) const {
    const auto it = sessions_.find(id);
    BR_EXPECTS(it != sessions_.end());
    return *it->second;
}

void FleetEngine::build_pipeline(Session& s) const {
    // The registry persists across rebuilds (cold restarts, rehydration)
    // so counters keep accumulating; the pipeline re-registers the same
    // names into it, which is idempotent for the handles it takes.
    obs::MetricsRegistry* registry = s.metrics.get();
    s.pipeline = std::make_unique<core::BlinkRadarPipeline>(
        s.radar, s.pipeline_config, registry, nullptr, nullptr,
        config_.span_collector);
}

SessionId FleetEngine::create_session(const radar::RadarConfig& radar) {
    return create_session(radar, config_.pipeline);
}

SessionId FleetEngine::create_session(const radar::RadarConfig& radar,
                                      core::PipelineConfig overrides) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const SessionId id = next_id_++;
    auto s = std::make_unique<Session>();
    s->id = id;
    s->radar = radar;
    s->pipeline_config = std::move(overrides);
    // Engine-managed prefix: with per-session ids no two sessions can
    // ever collide in a shared downstream registry, snapshot, or trace.
    s->pipeline_config.metrics_prefix =
        config_.per_session_metric_ids
            ? config_.metrics_prefix + "s" + std::to_string(id) + "."
            : config_.metrics_prefix;
    if (config_.collect_metrics)
        s->metrics = std::make_unique<obs::MetricsRegistry>();
    s->last_active_pump = engine_stats_.pumps;  // creation counts as activity
    build_pipeline(*s);
    sessions_.emplace(id, std::move(s));
    return id;
}

void FleetEngine::feed(SessionId id, const radar::RadarFrame& frame) {
    const std::lock_guard<std::mutex> lock(mutex_);
    session_ref(id).inbox.push_back(frame);
}

void FleetEngine::feed(SessionId id, radar::RadarFrame&& frame) {
    const std::lock_guard<std::mutex> lock(mutex_);
    session_ref(id).inbox.push_back(std::move(frame));
}

void FleetEngine::feed(SessionId id, const radar::FrameSeries& frames) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Session& s = session_ref(id);
    s.inbox.insert(s.inbox.end(), frames.begin(), frames.end());
}

void FleetEngine::serialize_session(Session& s) const {
    state::StateWriter writer;
    s.pipeline->save_state(writer);
    std::vector<std::uint8_t> bytes = writer.finish();
    if (config_.spill_dir.empty()) {
        s.evicted_state = std::move(bytes);
    } else {
        state::write_snapshot_file(spill_path(s.id), bytes);
        s.evicted_state.clear();
        s.evicted_state.shrink_to_fit();
    }
}

void FleetEngine::evict_locked(Session& s) {
    if (s.evicted) return;
    serialize_session(s);
    s.pipeline.reset();
    // The autosnapshot is reproducible from the serialised state; drop
    // it so an idle session costs its spill bytes and nothing else.
    s.autosnapshot.clear();
    s.autosnapshot.shrink_to_fit();
    s.evicted = true;
    ++s.stats.evictions;
}

void FleetEngine::evict(SessionId id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    evict_locked(session_ref(id));
}

void FleetEngine::enforce_residency_locked() {
    const ResidencyPolicy& policy = config_.residency;
    if (policy.max_resident == 0 && policy.evict_idle_after_pumps == 0)
        return;

    // Idle timer first: a session untouched for the configured number of
    // pumps is spilled regardless of the budget. Sessions with queued
    // frames are skipped — the next pump would rehydrate them anyway.
    if (policy.evict_idle_after_pumps > 0) {
        for (auto& [id, s] : sessions_) {
            if (s->evicted || !s->inbox.empty()) continue;
            if (engine_stats_.pumps - s->last_active_pump >=
                policy.evict_idle_after_pumps) {
                evict_locked(*s);
                ++engine_stats_.idle_evictions;
            }
        }
    }

    // Then the budget: evict least-recently-active first until the
    // resident count fits. Candidates are collected in ascending-id
    // order and stably sorted by last_active_pump, so ties break by id —
    // fully deterministic, no wall clock anywhere.
    if (policy.max_resident > 0) {
        std::vector<Session*> resident;
        for (auto& [id, s] : sessions_)
            if (!s->evicted) resident.push_back(s.get());
        if (resident.size() <= policy.max_resident) return;
        std::stable_sort(resident.begin(), resident.end(),
                         [](const Session* a, const Session* b) {
                             return a->last_active_pump <
                                    b->last_active_pump;
                         });
        std::size_t n_resident = resident.size();
        for (Session* s : resident) {
            if (n_resident <= policy.max_resident) break;
            if (!s->inbox.empty()) continue;  // never evict queued work
            evict_locked(*s);
            ++engine_stats_.budget_evictions;
            --n_resident;
        }
    }
}

void FleetEngine::rehydrate(Session& s) const {
    std::vector<std::uint8_t> bytes;
    if (config_.spill_dir.empty()) {
        bytes = std::move(s.evicted_state);
    } else {
        bytes = state::read_snapshot_file(spill_path(s.id));
    }
    build_pipeline(s);
    state::StateReader reader(bytes);
    s.pipeline->restore_state(reader);
    s.evicted_state.clear();
    s.evicted_state.shrink_to_fit();
    s.evicted = false;
    s.frames_since_snapshot = 0;
    ++s.stats.rehydrations;
}

SessionStats FleetEngine::close(SessionId id) {
    // Drain-then-release. Because pump() holds mutex_ for its whole
    // call, a close() racing a pump serialises cleanly behind it — but
    // frames fed AFTER the last pump would previously be discarded
    // without a trace. Draining them here (inline, on the closing
    // thread) upholds the engine-wide invariant that every accepted
    // frame is either processed or counted as dropped.
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    BR_EXPECTS(it != sessions_.end());
    Session& s = *it->second;
    if (!s.inbox.empty()) {
        ShardStats scratch;
        drain(s, scratch);
        engine_stats_.frames_processed += scratch.frames_processed;
    }
    const SessionStats final_stats = s.stats;
    if (!config_.spill_dir.empty()) {
        std::error_code ec;
        fs::remove(spill_path(id), ec);  // best-effort
    }
    sessions_.erase(it);
    return final_stats;
}

bool FleetEngine::is_resident(SessionId id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return !session_ref(id).evicted;
}

std::size_t FleetEngine::session_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

std::size_t FleetEngine::resident_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [id, s] : sessions_)
        if (!s->evicted) ++n;
    return n;
}

const std::vector<core::FrameResult>& FleetEngine::results(
    SessionId id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return session_ref(id).results;
}

const std::vector<core::DetectedBlink>& FleetEngine::blinks(
    SessionId id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return session_ref(id).blinks;
}

const SessionStats& FleetEngine::stats(SessionId id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return session_ref(id).stats;
}

const std::vector<ShardStats>& FleetEngine::last_pump_stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return last_pump_stats_;
}

void FleetEngine::set_residency_policy(ResidencyPolicy policy) {
    const std::lock_guard<std::mutex> lock(mutex_);
    config_.residency = policy;
}

ResidencyPolicy FleetEngine::residency_policy() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return config_.residency;
}

const EngineStats& FleetEngine::engine_stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return engine_stats_;
}

void FleetEngine::merge_metrics(obs::MetricsRegistry& out) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    // std::map iteration is ascending-id, so the merge order — and with
    // it every merged histogram — is reproducible run to run.
    for (const auto& [id, s] : sessions_)
        if (s->metrics) out.merge_from(*s->metrics);
}

bool FleetEngine::process_with_recovery(
    Session& s, const radar::RadarFrame& frame) const {
    // Per-session escalation ladder: retry -> warm restore from the
    // session's own autosnapshot -> cold restart. Every branch depends
    // only on session-local state, so recovery decisions are identical
    // no matter which worker drains the session (rule 2 of the
    // determinism contract in the header).
    for (;;) {
        try {
            const core::FrameResult result = s.pipeline->process(frame);
            s.consecutive_failures = 0;
            s.warm_restores_spent = 0;
            ++s.stats.frames_processed;
            if (result.blink) {
                s.blinks.push_back(*result.blink);
                ++s.stats.blinks;
            }
            if (config_.record_results) s.results.push_back(result);
            return true;
        } catch (const std::exception&) {
            if (s.consecutive_failures < config_.max_frame_retries) {
                ++s.consecutive_failures;
                ++s.stats.retries;
                continue;  // retry the same frame
            }
            if (!s.autosnapshot.empty() &&
                s.warm_restores_spent < config_.max_warm_restores) {
                ++s.warm_restores_spent;
                ++s.stats.warm_restores;
                s.consecutive_failures = 0;
                build_pipeline(s);
                state::StateReader reader(s.autosnapshot);
                s.pipeline->restore_state(reader);
                continue;  // replay the frame against the restored state
            }
            // Ladder exhausted: fresh pipeline, drop the poison frame.
            build_pipeline(s);
            s.consecutive_failures = 0;
            s.warm_restores_spent = 0;
            s.frames_since_snapshot = 0;
            s.autosnapshot.clear();
            ++s.stats.cold_restarts;
            ++s.stats.frames_dropped;
            return false;
        }
    }
}

void FleetEngine::drain(Session& s, ShardStats& worker) const {
    if (s.evicted) rehydrate(s);
    while (!s.inbox.empty()) {
        const radar::RadarFrame frame = std::move(s.inbox.front());
        s.inbox.pop_front();
        if (config_.span_collector != nullptr && frame.span_id != 0)
            config_.span_collector->hop(frame.span_id,
                                        obs::telemetry::SpanHop::kPump);
        process_with_recovery(s, frame);
        ++worker.frames_processed;
        if (config_.snapshot_interval_frames > 0 &&
            ++s.frames_since_snapshot >= config_.snapshot_interval_frames) {
            state::StateWriter writer(std::move(s.autosnapshot));
            s.pipeline->save_state(writer);
            s.autosnapshot = writer.finish();
            s.frames_since_snapshot = 0;
        }
    }
    ++worker.sessions_drained;
}

std::size_t FleetEngine::pump() {
    // Held for the whole pump: control ops observe the session table
    // only between pumps, never half-drained. The pool workers below
    // touch sessions and shard cursors directly — not this mutex — so
    // the calling thread participating in parallel_for cannot deadlock.
    const std::lock_guard<std::mutex> lock(mutex_);

    const std::size_t n_shards = config_.n_shards;
    ++engine_stats_.pumps;

    // Ready sessions, sharded by id. Ascending-id within each shard
    // (map order) — not required for bit-identity, but it makes steal
    // traces reproducible enough to read. Draining counts as activity
    // for the residency policy's pump-count clock.
    std::vector<std::vector<Session*>> shard(n_shards);
    for (auto& [id, s] : sessions_)
        if (!s->inbox.empty()) {
            s->last_active_pump = engine_stats_.pumps;
            shard[static_cast<std::size_t>(id % n_shards)].push_back(
                s.get());
        }

    std::vector<std::atomic<std::size_t>> cursor(n_shards);
    for (auto& c : cursor) c.store(0, std::memory_order_relaxed);

    last_pump_stats_.assign(n_shards, ShardStats{});
    std::vector<ShardStats>& stats = last_pump_stats_;

    // One parallel_for index per shard. Worker w drains shard w, then
    // steals round-robin from w+1, w+2, ... Each session is claimed by
    // exactly one fetch_add winner and drained whole (rules 1 and 3 of
    // the determinism contract). Worker w writes only stats[w].
    pool_->parallel_for(n_shards, [&](std::size_t w) {
        for (std::size_t offset = 0; offset < n_shards; ++offset) {
            const std::size_t t = (w + offset) % n_shards;
            for (;;) {
                const std::size_t i =
                    cursor[t].fetch_add(1, std::memory_order_relaxed);
                if (i >= shard[t].size()) break;
                drain(*shard[t][i], stats[w]);
                if (t != w) ++stats[w].sessions_stolen;
            }
        }
    });

    // Residency policy runs after the drain, while every inbox the pump
    // saw is empty — so "has queued frames" below means "fed during this
    // pump by another control thread", exactly the sessions not worth
    // spilling.
    enforce_residency_locked();

    std::size_t total = 0;
    for (const ShardStats& st : stats) {
        total += st.frames_processed;
        engine_stats_.sessions_stolen += st.sessions_stolen;
    }
    engine_stats_.frames_processed += total;
    return total;
}

void FleetEngine::aggregate_into(obs::telemetry::Aggregator& agg) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    agg.begin_cycle();
    // Pass 1: roll every session up (ascending id — deterministic gauge
    // last-writer and merge order). Pass 2: the top-K laggards keep
    // their per-session series.
    for (const auto& [id, s] : sessions_)
        if (s->metrics) agg.add_session(id, *s->metrics);
    for (const std::uint64_t id : agg.select_laggards()) {
        const auto it = sessions_.find(id);
        if (it != sessions_.end() && it->second->metrics)
            agg.add_laggard_detail(id, *it->second->metrics);
    }

    // Engine + per-shard roll-ups: bounded (one set + n_shards sets),
    // independent of fleet size. Monotone stats go in as counters (the
    // output was just reset, so inc(absolute) lands the exact value);
    // instantaneous ones as gauges.
    obs::MetricsRegistry& out = agg.output();
    const std::string& p = config_.metrics_prefix;
    std::size_t resident = 0;
    std::vector<std::uint64_t> shard_resident(config_.n_shards, 0);
    std::vector<std::uint64_t> shard_queued(config_.n_shards, 0);
    for (const auto& [id, s] : sessions_) {
        const std::size_t k = static_cast<std::size_t>(id % config_.n_shards);
        if (!s->evicted) {
            ++resident;
            ++shard_resident[k];
        }
        shard_queued[k] += s->inbox.size();
    }
    out.gauge(p + "engine.sessions")
        .set(static_cast<double>(sessions_.size()));
    out.gauge(p + "engine.resident").set(static_cast<double>(resident));
    out.gauge(p + "engine.evicted")
        .set(static_cast<double>(sessions_.size() - resident));
    out.counter(p + "engine.pumps").inc(engine_stats_.pumps);
    out.counter(p + "engine.budget_evictions")
        .inc(engine_stats_.budget_evictions);
    out.counter(p + "engine.idle_evictions")
        .inc(engine_stats_.idle_evictions);
    out.counter(p + "engine.frames_processed")
        .inc(engine_stats_.frames_processed);
    out.counter(p + "engine.sessions_stolen")
        .inc(engine_stats_.sessions_stolen);
    for (std::size_t k = 0; k < config_.n_shards; ++k) {
        const std::string shard = p + "shard" + std::to_string(k) + ".";
        out.gauge(shard + "resident")
            .set(static_cast<double>(shard_resident[k]));
        out.gauge(shard + "queued")
            .set(static_cast<double>(shard_queued[k]));
    }
}

}  // namespace blinkradar::fleet
