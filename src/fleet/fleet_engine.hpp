// Fleet engine: thousands of concurrent driver sessions per process.
//
// A deployment scenario the single-pipeline API cannot serve: one edge
// gateway ingesting radar streams from a whole vehicle fleet, where each
// driver is an independent BlinkRadarPipeline but the process must
// multiplex them all over a handful of cores. The FleetEngine owns a
// session table (create / feed / pump / evict / rehydrate / close) and
// drains queued frames over the shared deterministic ThreadPool.
//
// Determinism contract (the load-bearing property, enforced by
// tests/test_fleet.cpp): a fleet run is bit-identical to running the
// same sessions sequentially, for ANY shard count and ANY pool size.
// It follows from three rules:
//
//   1. A session is only ever drained whole by one worker at a time —
//      frames are processed in feed order, and everything a frame's
//      processing reads lives inside its session (pipeline state,
//      autosnapshot, recovery counters, metrics registry).
//   2. Recovery state is PER SESSION, never per shard. The escalation
//      ladder (retry -> warm restore from the session's autosnapshot ->
//      cold restart) consults only the session's own counters, so which
//      worker happens to drain a session cannot change its recovery
//      decisions. (This is why a shard does not get a core::Supervisor
//      per session: Supervisor-style jittered backoff would couple
//      recovery to wall time and break replayability; the fleet ladder
//      is the same policy with the nondeterminism removed.)
//   3. Scheduling only chooses WHICH worker drains a session, never
//      WHAT the drain computes. Sessions are sharded by id % n_shards;
//      each shard has an atomic claim cursor, and a worker that empties
//      its own shard steals from the others round-robin — so one
//      stalled session delays only its own shard's tail, not the pump.
//
// Memory: an idle session can be evicted — its full detection state is
// serialised (the ~600 KB snapshot container from state/snapshot.hpp)
// either in memory or to `spill_dir`, and the pipeline is destroyed.
// The next pump() that finds queued frames rehydrates it bit-exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_config.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/aggregator.hpp"
#include "obs/telemetry/span.hpp"
#include "radar/config.hpp"
#include "radar/frame.hpp"

namespace blinkradar::fleet {

/// Stable session handle; never reused within one engine.
using SessionId = std::uint64_t;

/// Engine-enforced residency budget. The evict/rehydrate *mechanism*
/// has existed since the engine landed; this is the *policy* on top:
/// after every pump the engine itself evicts sessions, least recently
/// active first, until the resident count fits the budget, plus any
/// session idle past the idle timer. "Activity" is measured in pump
/// counts, not wall time, so the policy's decisions replay exactly
/// (bit-identity at any shard/thread count is preserved — eviction is
/// bit-exact, and who gets evicted depends only on the feed/pump
/// sequence). Sessions with queued frames are never policy-evicted:
/// they would rehydrate on the very next pump, pure churn.
struct ResidencyPolicy {
    /// Max resident (pipeline-alive) sessions after a pump; 0 = no cap.
    std::size_t max_resident = 0;
    /// Evict a session whose last processed frame is at least this many
    /// pumps in the past; 0 = no idle timer.
    std::uint64_t evict_idle_after_pumps = 0;
};

struct FleetConfig {
    /// Shards the session table is partitioned into (id % n_shards).
    /// Purely a scheduling knob: results are bit-identical for any
    /// value >= 1. More shards means finer steal granularity.
    std::size_t n_shards = 4;

    /// Base pipeline configuration for every session (create_session
    /// overloads can override per session). The metrics_prefix field is
    /// managed by the engine — see metrics_prefix below.
    core::PipelineConfig pipeline{};

    /// Per-session autosnapshot cadence, in processed frames. The most
    /// recent autosnapshot is the warm-restore point of the recovery
    /// ladder and the eviction fast path. 0 disables autosnapshots
    /// (recovery then escalates straight to cold restart).
    std::size_t snapshot_interval_frames = 250;

    /// Recovery ladder bounds, per session (counters reset on a
    /// successful frame): how often a throwing frame is retried before
    /// escalating, and how many warm restores are spent before a cold
    /// restart.
    std::size_t max_frame_retries = 1;
    std::size_t max_warm_restores = 2;

    /// When non-empty, evicted session state is written here (one
    /// `session-<id>.snap` per session, crash-safe via
    /// state::write_snapshot_file) instead of being kept in memory.
    /// The engine sweeps orphaned temp files from the directory at
    /// construction.
    std::string spill_dir;

    /// Keep every per-frame core::FrameResult per session (the
    /// bit-identity tests compare these). Off for scale benches —
    /// blink events and SessionStats are always kept.
    bool record_results = true;

    /// Attach a private obs::MetricsRegistry to every session. Merged
    /// in ascending session-id order by merge_metrics().
    bool collect_metrics = false;

    /// Metric name prefix. With per_session_metric_ids every session
    /// gets "<metrics_prefix>s<id>." (artifacts never collide); without
    /// it all sessions share "<metrics_prefix>" and merge_metrics()
    /// aggregates same-named series across the fleet.
    std::string metrics_prefix = "fleet.";
    bool per_session_metric_ids = true;

    /// Engine-enforced eviction policy (see ResidencyPolicy). Adjustable
    /// at runtime via set_residency_policy — the ingest front-end's shed
    /// ladder tightens it under overload.
    ResidencyPolicy residency{};

    /// End-to-end trace span collector (not owned, must outlive the
    /// engine). Every session pipeline completes spans into it, and the
    /// pump stamps the kPump hop on frames carrying a span id. Null
    /// disables tracing; results are bit-identical either way.
    obs::telemetry::SpanCollector* span_collector = nullptr;
};

/// Per-session lifecycle/recovery counters (deterministic — part of the
/// bit-identity surface).
struct SessionStats {
    std::uint64_t frames_processed = 0;  ///< frames fed through process()
    std::uint64_t frames_dropped = 0;    ///< consumed by a cold restart
    std::uint64_t blinks = 0;
    std::uint64_t retries = 0;
    std::uint64_t warm_restores = 0;
    std::uint64_t cold_restarts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rehydrations = 0;
};

/// Per-worker scheduling counters for one pump() (NOT deterministic —
/// which worker drains which session depends on timing; only the union
/// of drained sessions is fixed). Slot w is written exclusively by
/// parallel_for worker w, so reads after pump() are race-free.
struct ShardStats {
    std::uint64_t sessions_drained = 0;
    std::uint64_t frames_processed = 0;
    std::uint64_t sessions_stolen = 0;  ///< drained from a foreign shard
};

/// Engine-wide lifecycle counters (deterministic except where noted).
struct EngineStats {
    std::uint64_t pumps = 0;
    std::uint64_t budget_evictions = 0;  ///< max_resident LRU evictions
    std::uint64_t idle_evictions = 0;    ///< idle-timer evictions
    std::uint64_t frames_processed = 0;  ///< cumulative over all pumps
    /// Cumulative cross-shard steals. NOT deterministic: which worker
    /// steals depends on timing (only the union of drained sessions is
    /// fixed) — excluded from bit-identity comparisons.
    std::uint64_t sessions_stolen = 0;
};

/// Multiplexes N independent BlinkRadarPipeline sessions over the
/// shared ThreadPool. Control operations (create/feed/evict/close/
/// accessors) and pump() are mutually serialised by an internal lock,
/// so the engine may be driven from several control threads; pump()
/// itself fans out over the pool.
class FleetEngine {
public:
    /// `pool` defaults to ThreadPool::shared(); it must outlive the
    /// engine. Construction sweeps orphaned snapshot temps from
    /// spill_dir (crashed-predecessor cleanup).
    explicit FleetEngine(FleetConfig config, ThreadPool* pool = nullptr);
    ~FleetEngine();

    FleetEngine(const FleetEngine&) = delete;
    FleetEngine& operator=(const FleetEngine&) = delete;

    /// Create a session (pipeline constructed immediately). The second
    /// overload overrides the base pipeline config for this session —
    /// its metrics_prefix is still engine-managed.
    SessionId create_session(const radar::RadarConfig& radar);
    SessionId create_session(const radar::RadarConfig& radar,
                             core::PipelineConfig overrides);

    /// Queue frames for a session; processed in feed order by the next
    /// pump(). Unknown id -> ContractViolation. The rvalue overload
    /// moves the frame in (the ingest front-end's zero-copy hand-off).
    void feed(SessionId id, const radar::RadarFrame& frame);
    void feed(SessionId id, radar::RadarFrame&& frame);
    void feed(SessionId id, const radar::FrameSeries& frames);

    /// Drain every queued frame of every session over the pool.
    /// Evicted sessions with queued frames are rehydrated first (on the
    /// draining worker). Returns the number of frames processed.
    std::size_t pump();

    /// Serialise a session's state (to spill_dir or memory) and destroy
    /// its pipeline. Queued frames, results, blinks, and stats survive;
    /// the next pump() with queued frames rehydrates it. No-op when
    /// already evicted.
    void evict(SessionId id);

    /// Destroy a session: drain-then-release. Frames still queued (fed
    /// after the last pump) are processed first — closing a session must
    /// never silently discard accepted work — then the session's state,
    /// results and spill file are released. Returns the final lifecycle
    /// stats (the last observable trace of the session). Its id is never
    /// reused.
    SessionStats close(SessionId id);

    bool is_resident(SessionId id) const;
    std::size_t session_count() const;
    std::size_t resident_count() const;

    /// Per-frame results (requires record_results; frames consumed by a
    /// cold restart contribute no entry — see SessionStats::frames_dropped).
    const std::vector<core::FrameResult>& results(SessionId id) const;

    /// All blinks the session has emitted (survives evict/rehydrate).
    const std::vector<core::DetectedBlink>& blinks(SessionId id) const;

    const SessionStats& stats(SessionId id) const;

    /// Scheduling counters of the most recent pump(), one slot per
    /// parallel_for worker.
    const std::vector<ShardStats>& last_pump_stats() const;

    /// Merge every session's registry into `out`, ascending id order
    /// (deterministic). No-op unless collect_metrics.
    void merge_metrics(obs::MetricsRegistry& out) const;

    /// Run one full aggregation cycle into `agg` under the engine lock:
    /// every session's registry rolls up (bounded cardinality, top-K
    /// laggard detail — see obs/telemetry/aggregator.hpp), then the
    /// engine's own lifecycle stats and per-shard roll-ups are written
    /// as "<metrics_prefix>engine.*" / "<metrics_prefix>shard<k>.*".
    /// Deterministic except engine.sessions_stolen.
    void aggregate_into(obs::telemetry::Aggregator& agg) const;

    /// Replace the residency policy (takes effect at the next pump).
    void set_residency_policy(ResidencyPolicy policy);
    ResidencyPolicy residency_policy() const;

    const EngineStats& engine_stats() const;

    const FleetConfig& config() const noexcept { return config_; }

private:
    struct Session;

    Session& session_ref(SessionId id);
    const Session& session_ref(SessionId id) const;
    std::string spill_path(SessionId id) const;
    void build_pipeline(Session& s) const;
    void serialize_session(Session& s) const;
    void evict_locked(Session& s);
    void enforce_residency_locked();
    void rehydrate(Session& s) const;
    void drain(Session& s, ShardStats& worker) const;
    bool process_with_recovery(Session& s,
                               const radar::RadarFrame& frame) const;

    FleetConfig config_;
    ThreadPool* pool_;
    mutable std::mutex mutex_;  ///< serialises control ops and pump()
    std::map<SessionId, std::unique_ptr<Session>> sessions_;
    SessionId next_id_ = 0;
    std::vector<ShardStats> last_pump_stats_;
    EngineStats engine_stats_;
};

}  // namespace blinkradar::fleet
