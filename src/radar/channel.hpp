// Waveform-level multipath channel (paper Eq. 4-6).
//
// The channel is a sum of discrete paths, each with a gain alpha_p, a
// delay tau_p = 2 R_p / c and a Doppler-induced per-frame delay drift
// tau_D_p(k Ts) = 2 v_p k Ts / c. This model is used by the
// waveform-level receiver (tests and the Fig. 5/6 benches); the
// frame-stream simulator in simulator.hpp uses the equivalent analytic
// baseband form.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "dsp/dsp_types.hpp"
#include "radar/pulse.hpp"

namespace blinkradar::radar {

/// One propagation path.
struct Path {
    std::string name;        ///< label for diagnostics ("eye", "seat", ...)
    double gain = 0.0;       ///< alpha_p: two-way amplitude gain
    Meters range_m = 0.0;    ///< R_p: one-way distance to the reflector
    double velocity_mps = 0.0; ///< v_p: radial velocity (positive = receding)
};

/// Static description of the multipath environment.
class MultipathChannel {
public:
    explicit MultipathChannel(std::vector<Path> paths);

    /// Path delay at frame k: tau_p + tau_D_p(k Ts) (Eq. 4).
    Seconds delay_at_frame(const Path& path, std::size_t frame_index,
                           Seconds frame_period_s) const;

    /// Propagate the transmitted waveform through the channel for frame k:
    /// y_k(t) = sum_p alpha_p x(t - tau_p - tau_D_p(k Ts))  (Eq. 5).
    /// `tx` is sampled at `sample_rate_hz`; the output spans
    /// [0, observation_window_s).
    dsp::RealSignal propagate(const dsp::RealSignal& tx, Hertz sample_rate_hz,
                              std::size_t frame_index, Seconds frame_period_s,
                              Seconds observation_window_s) const;

    const std::vector<Path>& paths() const noexcept { return paths_; }

private:
    std::vector<Path> paths_;
};

}  // namespace blinkradar::radar
