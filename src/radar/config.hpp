// IR-UWB radar configuration.
//
// Defaults mirror the paper's platform: a system-on-chip impulse radio
// with a 7.3 GHz carrier, 1.4 GHz (-10 dB) bandwidth and a 40 ms frame
// (chirp) period, i.e. 25 complex range-bin frames per second.
#pragma once

#include <cstddef>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace blinkradar::radar {

/// Static radar parameters shared by the waveform-level model and the
/// analytic frame simulator.
struct RadarConfig {
    Hertz carrier_hz = 7.3e9;       ///< fc: carrier frequency
    Hertz bandwidth_hz = 1.4e9;     ///< B: -10 dB bandwidth
    Seconds frame_period_s = 0.040; ///< Ts: time between chirps (frames)
    double tx_amplitude = 1.0;      ///< Vtx: transmitted pulse amplitude

    Meters max_range_m = 1.5;       ///< extent of the recorded range window
    Meters bin_spacing_m = 0.01;    ///< fast-time sample spacing in range

    /// Reference range for the radar-equation amplitude normalisation: a
    /// reflector with reflectivity rho at this range produces a baseband
    /// amplitude of rho.
    Meters reference_range_m = 0.4;

    /// Near-field cap for the 1/R^2 roll-off: inside this range the far-
    /// field radar equation no longer applies and the received amplitude
    /// stops growing (physically: the reflector is inside the antenna's
    /// near field / finite beam footprint).
    Meters min_rolloff_range_m = 0.15;

    /// Per-bin complex thermal-noise standard deviation (per I and Q
    /// component) at the receiver output.
    double noise_sigma = 0.004;

    /// RMS of the receiver's residual phase noise per frame [rad].
    double phase_noise_rad = 0.005;

    /// Range resolution Δr = c / (2B).
    Meters range_resolution_m() const {
        BR_EXPECTS(bandwidth_hz > 0.0);
        return constants::kSpeedOfLight / (2.0 * bandwidth_hz);
    }

    /// Number of range bins in a frame.
    std::size_t n_bins() const {
        BR_EXPECTS(bin_spacing_m > 0.0 && max_range_m > 0.0);
        return static_cast<std::size_t>(max_range_m / bin_spacing_m) + 1;
    }

    /// Frame rate in frames per second (1/Ts).
    double frame_rate_hz() const {
        BR_EXPECTS(frame_period_s > 0.0);
        return 1.0 / frame_period_s;
    }

    /// Carrier wavelength lambda = c / fc.
    Meters wavelength_m() const {
        BR_EXPECTS(carrier_hz > 0.0);
        return constants::kSpeedOfLight / carrier_hz;
    }

    /// Validate invariants; throws ContractViolation on nonsense configs.
    void validate() const {
        BR_EXPECTS(carrier_hz > 0.0);
        BR_EXPECTS(bandwidth_hz > 0.0 && bandwidth_hz < 2.0 * carrier_hz);
        BR_EXPECTS(frame_period_s > 0.0);
        BR_EXPECTS(max_range_m > 0.0);
        BR_EXPECTS(bin_spacing_m > 0.0 && bin_spacing_m < max_range_m);
        BR_EXPECTS(reference_range_m > 0.0);
        BR_EXPECTS(noise_sigma >= 0.0);
        BR_EXPECTS(phase_noise_rad >= 0.0);
    }
};

}  // namespace blinkradar::radar
