// Antenna beam pattern.
//
// The paper reports that detection degrades sharply past ~30 degrees of
// azimuth and holds to ~30 degrees of elevation (Fig. 15c/d, Section
// VIII: "the limited angular range of the antenna"). We model the
// combined TX/RX pattern as a separable Gaussian beam; the azimuth beam is
// narrower than the elevation beam to match the reported asymmetry.
#pragma once

#include "common/units.hpp"

namespace blinkradar::radar {

/// Separable Gaussian beam pattern; gains are one-way voltage gains
/// normalised to 1 at boresight.
class AntennaPattern {
public:
    /// \param azimuth_bw_deg  -3 dB full beamwidth in azimuth (one-way).
    /// \param elevation_bw_deg -3 dB full beamwidth in elevation (one-way).
    AntennaPattern(Degrees azimuth_bw_deg, Degrees elevation_bw_deg);

    /// Default beam matched to the paper's observed angular behaviour.
    static AntennaPattern paper_default();

    /// One-way voltage gain at the given off-boresight angles.
    double gain(Degrees azimuth_deg, Degrees elevation_deg) const;

    /// Two-way (TX * RX) voltage gain — what a monostatic reflection sees.
    double two_way_gain(Degrees azimuth_deg, Degrees elevation_deg) const;

    Degrees azimuth_beamwidth_deg() const noexcept { return az_bw_; }
    Degrees elevation_beamwidth_deg() const noexcept { return el_bw_; }

private:
    Degrees az_bw_;
    Degrees el_bw_;
};

}  // namespace blinkradar::radar
