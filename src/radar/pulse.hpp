// Gaussian IR-UWB pulse model (paper Eq. 1-3).
//
// The transmitted chirp is s(t) = Vtx * exp(-(t - Tp/2)^2 / (2 sigma_p^2)),
// upconverted by cos(2 pi fc t). sigma_p is derived from the -10 dB
// bandwidth: |S(f)|^2 is Gaussian, down 10 dB at +-B/2, giving
// sigma_p = sqrt(ln 10) / (pi B).
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "dsp/dsp_types.hpp"

namespace blinkradar::radar {

/// The baseband Gaussian pulse and its upconverted form.
class GaussianPulse {
public:
    /// \param amplitude   Vtx.
    /// \param bandwidth_hz -10 dB bandwidth B (> 0).
    /// \param carrier_hz  fc for upconversion (> 0).
    GaussianPulse(double amplitude, Hertz bandwidth_hz, Hertz carrier_hz);

    /// sigma_p implied by the -10 dB bandwidth.
    Seconds sigma_s() const noexcept { return sigma_; }

    /// Pulse duration Tp chosen as 6 sigma (+-3 sigma about the centre),
    /// which captures > 99.7 % of the pulse energy.
    Seconds duration_s() const noexcept { return 6.0 * sigma_; }

    /// Baseband envelope s(t), centred at t = Tp/2 (Eq. 1).
    double baseband(Seconds t) const;

    /// Upconverted transmitted waveform x(t) = s(t) cos(2 pi fc t) (Eq. 3).
    double transmitted(Seconds t) const;

    /// Sample the transmitted waveform at `sample_rate_hz` over one pulse
    /// duration.
    dsp::RealSignal sample_transmitted(Hertz sample_rate_hz) const;

    /// Sample the baseband envelope over one pulse duration.
    dsp::RealSignal sample_baseband(Hertz sample_rate_hz) const;

    /// Normalised matched-filter range point-spread function: the magnitude
    /// response, as a function of range mismatch, of correlating the
    /// received pulse against the template. For a Gaussian pulse this is a
    /// Gaussian of sigma_r = c * sigma_p * sqrt(2) / 2 in range.
    double range_psf(Meters range_offset_m) const;

    /// sigma of the range PSF in metres.
    Meters range_psf_sigma_m() const;

    double amplitude() const noexcept { return amplitude_; }
    Hertz bandwidth_hz() const noexcept { return bandwidth_; }
    Hertz carrier_hz() const noexcept { return carrier_; }

private:
    double amplitude_;
    Hertz bandwidth_;
    Hertz carrier_;
    Seconds sigma_;
};

}  // namespace blinkradar::radar
