#include "radar/simulator.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::radar {

FrameSimulator::FrameSimulator(RadarConfig config,
                               std::vector<DynamicPath> paths, Rng rng)
    : config_(config),
      paths_(std::move(paths)),
      rng_(rng),
      pulse_(config.tx_amplitude, config.bandwidth_hz, config.carrier_hz) {
    config_.validate();
    BR_EXPECTS(!paths_.empty());
    for (const DynamicPath& p : paths_) {
        BR_EXPECTS(static_cast<bool>(p.range_m));
        BR_EXPECTS(static_cast<bool>(p.amplitude));
    }
}

RadarFrame FrameSimulator::next() {
    const Seconds t = current_time_s();
    const std::size_t n_bins = config_.n_bins();

    RadarFrame frame;
    frame.timestamp_s = t;
    frame.bins.assign(n_bins, dsp::Complex(0.0, 0.0));

    const double psf_sigma = pulse_.range_psf_sigma_m();
    // Beyond 4 sigma the PSF contribution is < 3e-4 of the peak; skip.
    const double psf_reach = 4.0 * psf_sigma;

    for (const DynamicPath& p : paths_) {
        const Meters range = p.range_m(t);
        if (range <= 0.0) continue;  // path momentarily invalid
        const double intrinsic = p.amplitude(t);
        if (intrinsic == 0.0) continue;

        // Radar-equation roll-off: received power ~ 1/R^4, amplitude
        // ~ 1/R^2, normalised to the reference range and capped in the
        // near field.
        const double r_eff = std::max(range, config_.min_rolloff_range_m);
        const double rolloff =
            p.apply_rolloff
                ? (config_.reference_range_m * config_.reference_range_m) /
                      (r_eff * r_eff)
                : 1.0;
        const double amp = intrinsic * rolloff;

        const double phase = -2.0 * constants::kTwoPi * config_.carrier_hz *
                             range / constants::kSpeedOfLight;
        const dsp::Complex rotor(amp * std::cos(phase), amp * std::sin(phase));

        const std::ptrdiff_t b_lo = static_cast<std::ptrdiff_t>(
            std::floor((range - psf_reach) / config_.bin_spacing_m));
        const std::ptrdiff_t b_hi = static_cast<std::ptrdiff_t>(
            std::ceil((range + psf_reach) / config_.bin_spacing_m));
        for (std::ptrdiff_t b = std::max<std::ptrdiff_t>(b_lo, 0);
             b <= b_hi && b < static_cast<std::ptrdiff_t>(n_bins); ++b) {
            const Meters r_bin =
                static_cast<double>(b) * config_.bin_spacing_m;
            frame.bins[static_cast<std::size_t>(b)] +=
                rotor * pulse_.range_psf(r_bin - range);
        }
    }

    // Residual receiver phase noise: a small common rotation per frame.
    if (config_.phase_noise_rad > 0.0) {
        const double theta = rng_.normal(0.0, config_.phase_noise_rad);
        const dsp::Complex jitter(std::cos(theta), std::sin(theta));
        for (auto& bin : frame.bins) bin *= jitter;
    }

    // Thermal noise: independent circular Gaussian per bin.
    if (config_.noise_sigma > 0.0) {
        for (auto& bin : frame.bins) {
            bin += dsp::Complex(rng_.normal(0.0, config_.noise_sigma),
                                rng_.normal(0.0, config_.noise_sigma));
        }
    }

    ++frame_index_;
    return frame;
}

FrameSeries FrameSimulator::generate(Seconds duration_s) {
    BR_EXPECTS(duration_s > 0.0);
    const std::size_t n_frames = static_cast<std::size_t>(
        std::round(duration_s / config_.frame_period_s));
    FrameSeries series;
    series.reserve(n_frames);
    for (std::size_t i = 0; i < n_frames; ++i) series.push_back(next());
    return series;
}

}  // namespace blinkradar::radar
