#include "radar/channel.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::radar {

MultipathChannel::MultipathChannel(std::vector<Path> paths)
    : paths_(std::move(paths)) {
    BR_EXPECTS(!paths_.empty());
    for (const Path& p : paths_) BR_EXPECTS(p.range_m >= 0.0);
}

Seconds MultipathChannel::delay_at_frame(const Path& path,
                                         std::size_t frame_index,
                                         Seconds frame_period_s) const {
    BR_EXPECTS(frame_period_s > 0.0);
    const Seconds tau = 2.0 * path.range_m / constants::kSpeedOfLight;
    const Seconds tau_doppler = 2.0 * path.velocity_mps *
                                static_cast<double>(frame_index) *
                                frame_period_s / constants::kSpeedOfLight;
    return tau + tau_doppler;
}

dsp::RealSignal MultipathChannel::propagate(const dsp::RealSignal& tx,
                                            Hertz sample_rate_hz,
                                            std::size_t frame_index,
                                            Seconds frame_period_s,
                                            Seconds observation_window_s) const {
    BR_EXPECTS(sample_rate_hz > 0.0);
    BR_EXPECTS(observation_window_s > 0.0);
    BR_EXPECTS(!tx.empty());

    const std::size_t n_out =
        static_cast<std::size_t>(observation_window_s * sample_rate_hz) + 1;
    dsp::RealSignal rx(n_out, 0.0);

    for (const Path& p : paths_) {
        const Seconds delay = delay_at_frame(p, frame_index, frame_period_s);
        // Fractional-sample delay by linear interpolation of the TX
        // waveform — adequate at the >4x carrier oversampling the
        // waveform-level tests use.
        const double delay_samples = delay * sample_rate_hz;
        for (std::size_t n = 0; n < n_out; ++n) {
            const double src = static_cast<double>(n) - delay_samples;
            if (src < 0.0 || src >= static_cast<double>(tx.size() - 1)) continue;
            const std::size_t lo = static_cast<std::size_t>(src);
            const double frac = src - static_cast<double>(lo);
            const double v = tx[lo] * (1.0 - frac) + tx[lo + 1] * frac;
            rx[n] += p.gain * v;
        }
    }
    return rx;
}

}  // namespace blinkradar::radar
