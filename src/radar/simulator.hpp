// Analytic complex-baseband frame simulator.
//
// The waveform-level chain (pulse -> channel -> receiver) is exact but far
// too slow to generate the minutes of 25 fps data the evaluation needs.
// This simulator produces the *equivalent receiver output* directly: for
// each dynamic path p at slow time t with one-way range R_p(t) and
// intrinsic amplitude a_p(t), the contribution to range bin b is
//
//   a_p(t) * (R_ref / R_p)^2 * psf(r_b - R_p) * exp(-j 4 pi fc R_p / c)
//
// i.e. the radar-equation amplitude roll-off, the matched-filter range
// point-spread function, and the paper's Eq. 6/9 phase law. Per-bin
// thermal noise and per-frame residual phase noise are added on top.
// Tests cross-check this model against the waveform-level receiver.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "radar/config.hpp"
#include "radar/frame.hpp"
#include "radar/pulse.hpp"

namespace blinkradar::radar {

/// A time-varying propagation path. `range_m(t)` is the instantaneous
/// one-way distance; `amplitude(t)` is the intrinsic reflection amplitude
/// (reflectivity x antenna gain), before range roll-off.
struct DynamicPath {
    std::string name;
    std::function<Meters(Seconds)> range_m;
    std::function<double(Seconds)> amplitude;
    /// Apply the 1/R^2 radar-equation roll-off. True for real reflections;
    /// false for the TX->RX antenna leakage, whose level is set by the
    /// hardware isolation, not by propagation.
    bool apply_rolloff = true;
};

/// Streaming frame generator over a set of dynamic paths.
class FrameSimulator {
public:
    /// \param config radar parameters; validated on construction.
    /// \param paths  the scene; at least one path.
    /// \param rng    noise source (forked per simulator; deterministic).
    FrameSimulator(RadarConfig config, std::vector<DynamicPath> paths,
                   Rng rng);

    /// Generate the next frame (advances slow time by one frame period).
    RadarFrame next();

    /// Generate `duration_s` worth of frames from the current position.
    FrameSeries generate(Seconds duration_s);

    /// Slow-time of the *next* frame to be produced.
    Seconds current_time_s() const noexcept {
        return static_cast<double>(frame_index_) * config_.frame_period_s;
    }

    std::size_t frames_produced() const noexcept { return frame_index_; }
    const RadarConfig& config() const noexcept { return config_; }

private:
    RadarConfig config_;
    std::vector<DynamicPath> paths_;
    Rng rng_;
    GaussianPulse pulse_;
    std::size_t frame_index_ = 0;
};

}  // namespace blinkradar::radar
