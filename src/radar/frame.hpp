// Radar frame types: the unit of data exchanged between the radar layer
// and the detection pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dsp/dsp_types.hpp"

namespace blinkradar::radar {

/// One complex range profile ("chirp"), captured at `timestamp_s`.
/// `bins[b]` is the I/Q sample for range b * bin_spacing_m.
struct RadarFrame {
    Seconds timestamp_s = 0.0;
    dsp::ComplexSignal bins;
    /// End-to-end trace span (obs::telemetry::SpanCollector); 0 = the
    /// frame is not sampled for tracing. In-process metadata only: the
    /// wire and snapshot formats do not carry it, so serialised
    /// artifacts stay bit-identical with or without tracing.
    std::uint64_t span_id = 0;
};

/// A slow-time sequence of frames with a common bin layout.
using FrameSeries = std::vector<RadarFrame>;

}  // namespace blinkradar::radar
