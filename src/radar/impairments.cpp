#include "radar/impairments.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "radar/simulator.hpp"

namespace blinkradar::radar {

bool FaultInjectorConfig::any_active() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 ||
           timestamp_jitter_std_s > 0.0 || saturation_rate > 0.0 ||
           dead_bin_count > 0 || stuck_bin_count > 0 ||
           gain_drift_amplitude > 0.0 || interference_rate > 0.0 ||
           nan_rate > 0.0 || truncate_rate > 0.0;
}

void FaultInjectorConfig::validate() const {
    const auto is_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
    BR_EXPECTS(is_rate(drop_rate));
    BR_EXPECTS(is_rate(duplicate_rate));
    BR_EXPECTS(is_rate(saturation_rate));
    BR_EXPECTS(is_rate(interference_rate));
    BR_EXPECTS(is_rate(nan_rate));
    BR_EXPECTS(is_rate(truncate_rate));
    BR_EXPECTS(timestamp_jitter_std_s >= 0.0);
    BR_EXPECTS(saturation_level > 0.0);
    BR_EXPECTS(gain_drift_amplitude >= 0.0 && gain_drift_amplitude < 1.0);
    BR_EXPECTS(gain_drift_period_s > 0.0);
    BR_EXPECTS(interference_sigma >= 0.0);
    BR_EXPECTS(interference_duration_s > 0.0);
}

FaultInjector::FaultInjector(FaultInjectorConfig config, std::uint64_t seed)
    : config_(config),
      // The fork order is part of the determinism contract: never reorder.
      drop_rng_(Rng(seed).fork()),
      dup_rng_(Rng(seed + 1).fork()),
      jitter_rng_(Rng(seed + 2).fork()),
      sat_rng_(Rng(seed + 3).fork()),
      bins_rng_(Rng(seed + 4).fork()),
      drift_rng_(Rng(seed + 5).fork()),
      interference_rng_(Rng(seed + 6).fork()),
      nan_rng_(Rng(seed + 7).fork()),
      trunc_rng_(Rng(seed + 8).fork()) {
    config_.validate();
    drift_phase_ = drift_rng_.uniform(0.0, constants::kTwoPi);
}

void FaultInjector::choose_bins(const RadarFrame& first) {
    bins_chosen_ = true;
    const std::size_t n = first.bins.size();
    if (n == 0) return;
    const std::size_t want =
        std::min(config_.dead_bin_count + config_.stuck_bin_count, n);
    std::vector<std::size_t> picked;
    picked.reserve(want);
    while (picked.size() < want) {
        const auto bin = static_cast<std::size_t>(
            bins_rng_.uniform_int(0, static_cast<int>(n) - 1));
        if (std::find(picked.begin(), picked.end(), bin) == picked.end())
            picked.push_back(bin);
    }
    const std::size_t n_dead = std::min(config_.dead_bin_count, picked.size());
    dead_bins_.assign(picked.begin(), picked.begin() + n_dead);
    stuck_bins_.assign(picked.begin() + n_dead, picked.end());
    stuck_values_.reserve(stuck_bins_.size());
    for (const std::size_t bin : stuck_bins_)
        stuck_values_.push_back(first.bins[bin]);
}

void FaultInjector::apply(const RadarFrame& clean, FrameSeries& out) {
    ++stats_.frames_in;
    if (!bins_chosen_) choose_bins(clean);

    // Draw every per-frame decision up front, one fixed draw per active
    // fault stream, so each schedule depends only on its own config and
    // the input frame index (the header's independence guarantee).
    const bool drop =
        config_.drop_rate > 0.0 && drop_rng_.bernoulli(config_.drop_rate);
    const bool duplicate = config_.duplicate_rate > 0.0 &&
                           dup_rng_.bernoulli(config_.duplicate_rate);
    const double jitter_s =
        config_.timestamp_jitter_std_s > 0.0
            ? jitter_rng_.normal(0.0, config_.timestamp_jitter_std_s)
            : 0.0;
    const bool saturate = config_.saturation_rate > 0.0 &&
                          sat_rng_.bernoulli(config_.saturation_rate);
    const bool burst_start = config_.interference_rate > 0.0 &&
                             interference_rng_.bernoulli(
                                 config_.interference_rate);
    const bool nan_hit =
        config_.nan_rate > 0.0 && nan_rng_.bernoulli(config_.nan_rate);
    const bool trunc_hit = config_.truncate_rate > 0.0 &&
                           trunc_rng_.bernoulli(config_.truncate_rate);

    if (drop) {
        ++stats_.dropped;
        return;
    }
    RadarFrame& frame = out.emplace_back(clean);
    impair_in_place(frame, jitter_s, saturate, nan_hit, trunc_hit,
                    burst_start);
    ++stats_.frames_out;
    if (duplicate) {
        out.push_back(frame);  // same timestamp: a true sensor duplicate
        ++stats_.duplicated;
        ++stats_.frames_out;
    }
}

void FaultInjector::impair_in_place(RadarFrame& frame, double jitter_s,
                                    bool saturate, bool nan_hit,
                                    bool trunc_hit, bool burst_start) {
    const Seconds t = frame.timestamp_s;

    if (config_.gain_drift_amplitude > 0.0) {
        const double gain =
            1.0 + config_.gain_drift_amplitude *
                      std::sin(constants::kTwoPi * t /
                                   config_.gain_drift_period_s +
                               drift_phase_);
        for (dsp::Complex& s : frame.bins) s *= gain;
    }

    for (const std::size_t bin : dead_bins_)
        if (bin < frame.bins.size()) frame.bins[bin] = dsp::Complex(0.0, 0.0);
    for (std::size_t k = 0; k < stuck_bins_.size(); ++k)
        if (stuck_bins_[k] < frame.bins.size())
            frame.bins[stuck_bins_[k]] = stuck_values_[k];

    if (burst_start) {
        if (t >= interference_until_) ++stats_.interference_bursts;
        interference_until_ =
            std::max(interference_until_, t + config_.interference_duration_s);
    }
    if (config_.interference_rate > 0.0 && t < interference_until_) {
        for (dsp::Complex& s : frame.bins)
            s += dsp::Complex(
                interference_rng_.normal(0.0, config_.interference_sigma),
                interference_rng_.normal(0.0, config_.interference_sigma));
        ++stats_.interference_frames;
    }

    if (saturate) {
        const double rail = config_.saturation_level;
        for (dsp::Complex& s : frame.bins)
            s = dsp::Complex(std::clamp(s.real(), -rail, rail),
                             std::clamp(s.imag(), -rail, rail));
        ++stats_.saturated;
    }

    if (nan_hit && !frame.bins.empty()) {
        const int corrupt = nan_rng_.uniform_int(1, 3);
        for (int k = 0; k < corrupt; ++k) {
            const auto bin = static_cast<std::size_t>(nan_rng_.uniform_int(
                0, static_cast<int>(frame.bins.size()) - 1));
            const double garbage =
                nan_rng_.bernoulli(0.5)
                    ? std::numeric_limits<double>::quiet_NaN()
                    : std::numeric_limits<double>::infinity();
            frame.bins[bin] = nan_rng_.bernoulli(0.5)
                                  ? dsp::Complex(garbage, frame.bins[bin].imag())
                                  : dsp::Complex(frame.bins[bin].real(), garbage);
        }
        ++stats_.nan_corrupted;
    }

    if (trunc_hit && frame.bins.size() > 1) {
        const double keep = trunc_rng_.uniform(0.1, 0.9);
        const auto n = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   keep * static_cast<double>(frame.bins.size())));
        frame.bins.resize(n);
        ++stats_.truncated;
    }

    frame.timestamp_s = t + jitter_s;
}

FrameSeries FaultInjector::apply(const FrameSeries& clean) {
    FrameSeries out;
    out.reserve(clean.size());
    for (const RadarFrame& frame : clean) apply(frame, out);
    return out;
}

FrameSeries FaultInjector::generate(FrameSimulator& source,
                                    Seconds duration_s) {
    BR_EXPECTS(duration_s >= 0.0);
    const auto n = static_cast<std::size_t>(
        duration_s / source.config().frame_period_s);
    FrameSeries out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) apply(source.next(), out);
    return out;
}

}  // namespace blinkradar::radar
