// Deterministic sensor-fault injection (impairment modeling).
//
// Real windshield deployments never deliver the simulator's perfect
// 40 ms cadence: frames drop on the host bus, timestamps jitter, the ADC
// saturates under sun glare, range bins die, the front-end gain drifts
// with temperature, and co-channel radios raise wideband bursts. The
// FaultInjector wraps any frame source (a FrameSimulator or a recorded
// FrameSeries) and applies each of these impairments at an independently
// configurable rate.
//
// Determinism contract: every fault type owns a forked RNG stream, and
// each stream draws a fixed number of values per *input* frame regardless
// of what the other faults decided. Consequently (a) the same config and
// seed reproduce the exact same fault schedule, and (b) changing one
// fault's rate never perturbs when any *other* fault fires — e.g. the
// jittered timestamps of the frames that survive a frame-drop schedule
// are the same values those frames carry with dropping disabled.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "radar/frame.hpp"

namespace blinkradar::radar {

class FrameSimulator;

/// Per-fault rates; everything defaults to off (bitwise pass-through).
struct FaultInjectorConfig {
    /// Probability a frame is lost entirely (host bus / DMA overrun).
    double drop_rate = 0.0;
    /// Probability a frame is delivered twice with the same timestamp.
    double duplicate_rate = 0.0;
    /// Gaussian std of the timestamp error added per frame [s].
    Seconds timestamp_jitter_std_s = 0.0;
    /// Probability a frame's I/Q components clip at the ADC rail.
    double saturation_rate = 0.0;
    /// The rail: components are clamped to +-saturation_level.
    double saturation_level = 0.02;
    /// Range bins that permanently read (0, 0) (dead LNA taps). The bins
    /// are chosen once, uniformly, from the bins stream.
    std::size_t dead_bin_count = 0;
    /// Range bins frozen at their first-frame value (stuck ADC words).
    std::size_t stuck_bin_count = 0;
    /// Peak fractional excursion of a slow sinusoidal gain drift
    /// (thermal); 0.1 means the gain wanders between 0.9x and 1.1x.
    double gain_drift_amplitude = 0.0;
    Seconds gain_drift_period_s = 60.0;
    /// Probability per frame that a wideband interference burst starts.
    double interference_rate = 0.0;
    /// Extra per-bin complex-noise std during a burst.
    double interference_sigma = 0.05;
    Seconds interference_duration_s = 0.5;
    /// Probability a frame has a few samples corrupted to NaN/Inf
    /// (bit flips on the transport).
    double nan_rate = 0.0;
    /// Probability a frame arrives short (partial DMA transfer).
    double truncate_rate = 0.0;

    /// True when any impairment can fire.
    bool any_active() const noexcept;
    /// Throws ContractViolation on rates outside [0, 1] etc.
    void validate() const;
};

/// What the injector actually did (per-fault event counters).
struct FaultStats {
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t saturated = 0;
    std::uint64_t nan_corrupted = 0;
    std::uint64_t truncated = 0;
    std::uint64_t interference_frames = 0;
    std::uint64_t interference_bursts = 0;
};

/// Streaming, seed-deterministic fault injector over radar frames.
class FaultInjector {
public:
    FaultInjector(FaultInjectorConfig config, std::uint64_t seed);

    /// Impair one clean frame: appends 0 (dropped), 1, or 2 (duplicated)
    /// frames to `out`.
    void apply(const RadarFrame& clean, FrameSeries& out);

    /// Impair a whole recorded series.
    FrameSeries apply(const FrameSeries& clean);

    /// Pull `duration_s` worth of frames from a live simulator through
    /// the injector.
    FrameSeries generate(FrameSimulator& source, Seconds duration_s);

    const FaultStats& stats() const noexcept { return stats_; }
    const FaultInjectorConfig& config() const noexcept { return config_; }

    /// The bins chosen as dead/stuck (fixed after the first frame).
    const std::vector<std::size_t>& dead_bins() const noexcept {
        return dead_bins_;
    }
    const std::vector<std::size_t>& stuck_bins() const noexcept {
        return stuck_bins_;
    }

private:
    void choose_bins(const RadarFrame& first);
    void impair_in_place(RadarFrame& frame, double jitter_s, bool saturate,
                         bool nan_hit, bool trunc_hit, bool burst_start);

    FaultInjectorConfig config_;
    // One stream per fault type, forked from the master seed in a fixed
    // order (see the determinism contract in the header comment).
    Rng drop_rng_;
    Rng dup_rng_;
    Rng jitter_rng_;
    Rng sat_rng_;
    Rng bins_rng_;
    Rng drift_rng_;
    Rng interference_rng_;
    Rng nan_rng_;
    Rng trunc_rng_;

    double drift_phase_ = 0.0;
    bool bins_chosen_ = false;
    std::vector<std::size_t> dead_bins_;
    std::vector<std::size_t> stuck_bins_;
    dsp::ComplexSignal stuck_values_;  ///< first-frame values of stuck bins
    Seconds interference_until_ = -1.0;
    FaultStats stats_;
};

}  // namespace blinkradar::radar
