#include "radar/antenna.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::radar {

AntennaPattern::AntennaPattern(Degrees azimuth_bw_deg,
                               Degrees elevation_bw_deg)
    : az_bw_(azimuth_bw_deg), el_bw_(elevation_bw_deg) {
    BR_EXPECTS(azimuth_bw_deg > 0.0 && azimuth_bw_deg <= 180.0);
    BR_EXPECTS(elevation_bw_deg > 0.0 && elevation_bw_deg <= 180.0);
}

AntennaPattern AntennaPattern::paper_default() {
    // Azimuth narrower than elevation: the paper loses accuracy beyond
    // ~30 deg azimuth but tolerates up to ~30-45 deg elevation.
    return AntennaPattern(/*azimuth_bw_deg=*/90.0, /*elevation_bw_deg=*/130.0);
}

namespace {

// Gaussian beam: one-way power gain is -3 dB at half the beamwidth.
double axis_gain(Degrees angle, Degrees beamwidth) {
    const double half_bw = beamwidth / 2.0;
    // power(theta) = exp(-ln2 * (theta / half_bw)^2); voltage is sqrt.
    const double power =
        std::exp(-std::log(2.0) * (angle / half_bw) * (angle / half_bw));
    return std::sqrt(power);
}

}  // namespace

double AntennaPattern::gain(Degrees azimuth_deg, Degrees elevation_deg) const {
    return axis_gain(azimuth_deg, az_bw_) * axis_gain(elevation_deg, el_bw_);
}

double AntennaPattern::two_way_gain(Degrees azimuth_deg,
                                    Degrees elevation_deg) const {
    const double g = gain(azimuth_deg, elevation_deg);
    return g * g;
}

}  // namespace blinkradar::radar
