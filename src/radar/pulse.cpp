#include "radar/pulse.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::radar {

GaussianPulse::GaussianPulse(double amplitude, Hertz bandwidth_hz,
                             Hertz carrier_hz)
    : amplitude_(amplitude), bandwidth_(bandwidth_hz), carrier_(carrier_hz) {
    BR_EXPECTS(amplitude > 0.0);
    BR_EXPECTS(bandwidth_hz > 0.0);
    BR_EXPECTS(carrier_hz > 0.0);
    // -10 dB power points of the Gaussian spectrum sit at +-B/2:
    //   exp(-(B/2)^2 / sigma_f^2) = 10^-1  =>  sigma_f = B / (2 sqrt(ln 10))
    // and sigma_p = 1 / (2 pi sigma_f).
    sigma_ = std::sqrt(std::log(10.0)) / (constants::kPi * bandwidth_hz);
}

double GaussianPulse::baseband(Seconds t) const {
    const double centred = t - duration_s() / 2.0;
    return amplitude_ * std::exp(-centred * centred / (2.0 * sigma_ * sigma_));
}

double GaussianPulse::transmitted(Seconds t) const {
    return baseband(t) * std::cos(constants::kTwoPi * carrier_ * t);
}

dsp::RealSignal GaussianPulse::sample_transmitted(Hertz sample_rate_hz) const {
    BR_EXPECTS(sample_rate_hz > 2.0 * carrier_);
    const std::size_t n =
        static_cast<std::size_t>(duration_s() * sample_rate_hz) + 1;
    dsp::RealSignal out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = transmitted(static_cast<double>(i) / sample_rate_hz);
    return out;
}

dsp::RealSignal GaussianPulse::sample_baseband(Hertz sample_rate_hz) const {
    BR_EXPECTS(sample_rate_hz > 2.0 * bandwidth_);
    const std::size_t n =
        static_cast<std::size_t>(duration_s() * sample_rate_hz) + 1;
    dsp::RealSignal out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = baseband(static_cast<double>(i) / sample_rate_hz);
    return out;
}

double GaussianPulse::range_psf(Meters range_offset_m) const {
    const double s = range_psf_sigma_m();
    return std::exp(-range_offset_m * range_offset_m / (2.0 * s * s));
}

Meters GaussianPulse::range_psf_sigma_m() const {
    // Correlating two Gaussians of sigma_p yields a Gaussian of
    // sigma_p * sqrt(2) in delay; two-way propagation halves the range
    // scale (delay tau = 2 r / c).
    return constants::kSpeedOfLight * sigma_ * std::sqrt(2.0) / 2.0;
}

}  // namespace blinkradar::radar
