// Waveform-level I/Q receiver (paper Eq. 6).
//
// Downconverts the received RF waveform with the in-phase/quadrature pair
// cos(2 pi fc t) / -sin(2 pi fc t), low-pass filters, matched-filters
// against the baseband pulse and samples the result onto range bins,
// producing the complex range profile that the detection pipeline
// consumes. A delayed path at range R produces amplitude ~ alpha_p / 2 at
// its bin with phase -4 pi fc R / c — the phase law the whole BlinkRadar
// method rests on.
#pragma once

#include "common/units.hpp"
#include "dsp/dsp_types.hpp"
#include "radar/config.hpp"
#include "radar/pulse.hpp"

namespace blinkradar::radar {

/// Waveform-level receiver front end.
class Receiver {
public:
    /// \param config radar parameters (carrier, bandwidth, bin layout).
    /// \param sample_rate_hz RF sampling rate; must exceed 2(fc + B/2).
    Receiver(const RadarConfig& config, Hertz sample_rate_hz);

    /// Downconvert an RF waveform to complex baseband (I + jQ), including
    /// the image-rejecting low-pass.
    dsp::ComplexSignal downconvert(const dsp::RealSignal& rf) const;

    /// Full front end: downconvert, matched-filter against the baseband
    /// pulse, and sample onto the configured range bins.
    dsp::ComplexSignal range_profile(const dsp::RealSignal& rf) const;

    Hertz sample_rate_hz() const noexcept { return sample_rate_; }
    const GaussianPulse& pulse() const noexcept { return pulse_; }

private:
    RadarConfig config_;
    Hertz sample_rate_;
    GaussianPulse pulse_;
};

}  // namespace blinkradar::radar
