#include "radar/receiver.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/fir.hpp"

namespace blinkradar::radar {

Receiver::Receiver(const RadarConfig& config, Hertz sample_rate_hz)
    : config_(config),
      sample_rate_(sample_rate_hz),
      pulse_(config.tx_amplitude, config.bandwidth_hz, config.carrier_hz) {
    config_.validate();
    BR_EXPECTS(sample_rate_hz >
               2.0 * (config.carrier_hz + config.bandwidth_hz / 2.0));
}

dsp::ComplexSignal Receiver::downconvert(const dsp::RealSignal& rf) const {
    BR_EXPECTS(!rf.empty());
    dsp::ComplexSignal baseband(rf.size());
    for (std::size_t n = 0; n < rf.size(); ++n) {
        const double t = static_cast<double>(n) / sample_rate_;
        const double lo_phase = constants::kTwoPi * config_.carrier_hz * t;
        baseband[n] = dsp::Complex(rf[n] * std::cos(lo_phase),
                                   -rf[n] * std::sin(lo_phase));
    }
    // Image-rejecting low-pass: keep the baseband (|f| < ~B), reject the
    // 2 fc image produced by the mixing.
    const auto lpf = dsp::FirFilter::low_pass(
        /*order=*/64, /*cutoff_hz=*/config_.bandwidth_hz, sample_rate_,
        dsp::WindowType::kHamming);
    dsp::ComplexSignal filtered = lpf.filter(baseband);
    // Compensate the FIR group delay so path delays stay calibrated.
    const std::size_t gd =
        static_cast<std::size_t>(lpf.group_delay_samples());
    dsp::ComplexSignal out(filtered.size(), dsp::Complex(0.0, 0.0));
    for (std::size_t n = 0; n + gd < filtered.size(); ++n)
        out[n] = filtered[n + gd];
    return out;
}

dsp::ComplexSignal Receiver::range_profile(const dsp::RealSignal& rf) const {
    const dsp::ComplexSignal baseband = downconvert(rf);

    // Matched filter: correlate with the (real) baseband pulse template.
    const dsp::RealSignal tmpl = pulse_.sample_baseband(sample_rate_);
    double tmpl_energy = 0.0;
    for (const double v : tmpl) tmpl_energy += v * v;
    BR_ASSERT(tmpl_energy > 0.0);

    const std::size_t n_bins = config_.n_bins();
    dsp::ComplexSignal profile(n_bins, dsp::Complex(0.0, 0.0));
    // A path of delay tau shifts the baseband pulse to start at sample
    // tau * fs; correlating the template from that origin aligns the two
    // pulse centres and peaks exactly at the path's bin.
    for (std::size_t b = 0; b < n_bins; ++b) {
        const Meters r = static_cast<double>(b) * config_.bin_spacing_m;
        const Seconds tau = 2.0 * r / constants::kSpeedOfLight;
        const double start = tau * sample_rate_;
        dsp::Complex acc(0.0, 0.0);
        for (std::size_t k = 0; k < tmpl.size(); ++k) {
            const double idx = start + static_cast<double>(k);
            if (idx < 0.0 ||
                idx >= static_cast<double>(baseband.size() - 1))
                continue;
            const std::size_t lo = static_cast<std::size_t>(idx);
            const double frac = idx - static_cast<double>(lo);
            const dsp::Complex v =
                baseband[lo] * (1.0 - frac) + baseband[lo + 1] * frac;
            acc += v * tmpl[k];
        }
        // Normalise so a unit-gain path yields amplitude ~0.5 (the mixing
        // loss), independent of sample rate.
        profile[b] = acc / tmpl_energy;
    }
    return profile;
}

}  // namespace blinkradar::radar
