// Deterministic transport-fault injection over encoded "BRWF" bytes.
//
// radar::FaultInjector damages *frames* (what a flaky sensor does); the
// WireFaultInjector damages *bytes* (what a flaky transport does): it
// splits an encoded stream into fixed-size chunks — the unit a DMA
// engine or socket write actually moves — and per chunk may truncate the
// tail, flip bits, deliver the chunk twice, swap it with its successor,
// drop it entirely, or prepend garbage bytes. A final-chunk truncation
// is exactly the mid-frame-EOF case of a producer dying mid-write.
//
// Determinism contract (the FaultInjector mold): every fault type owns a
// forked RNG stream and draws a fixed number of values per *input*
// chunk regardless of what the other faults decided, so the same config
// and seed reproduce the same damage, and changing one fault's rate
// never moves where any other fault lands.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"

namespace blinkradar::ingest {

/// Per-fault rates; everything defaults to off (bytewise pass-through).
struct WireFaultConfig {
    /// Transport chunk size the faults operate on [bytes].
    std::size_t chunk_bytes = 512;
    /// Probability a chunk loses a uniform fraction of its tail
    /// (partial write / mid-frame EOF when it is the last chunk).
    double truncate_rate = 0.0;
    /// Probability a chunk has 1..max_bitflips random bits flipped.
    double bitflip_rate = 0.0;
    std::size_t max_bitflips = 3;
    /// Probability a chunk is delivered twice back to back.
    double duplicate_rate = 0.0;
    /// Probability a chunk is held back and emitted after its successor
    /// (transport reordering).
    double reorder_rate = 0.0;
    /// Probability a chunk vanishes entirely.
    double drop_rate = 0.0;
    /// Probability 1..garbage_max_bytes of noise precede a chunk
    /// (garbage preambles / line noise between reconnects).
    double garbage_rate = 0.0;
    std::size_t garbage_max_bytes = 64;

    bool any_active() const noexcept;
    /// Throws ContractViolation on rates outside [0, 1] or a zero chunk.
    void validate() const;
};

/// What the injector actually did (per-fault event counters).
struct WireFaultStats {
    std::uint64_t chunks_in = 0;
    std::uint64_t chunks_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t truncated = 0;
    std::uint64_t bits_flipped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t garbage_bytes = 0;
};

/// Seed-deterministic byte-stream corruptor.
class WireFaultInjector {
public:
    WireFaultInjector(WireFaultConfig config, std::uint64_t seed);

    /// Damage one transport chunk, appending 0+ output bytes to `out`.
    /// Chunks must be fed in transport order; reordering is implemented
    /// by holding a chunk back until the next apply() call.
    void apply(std::span<const std::uint8_t> chunk,
               std::vector<std::uint8_t>& out);

    /// Split `stream` into config.chunk_bytes chunks and damage each;
    /// flushes any held-back chunk at the end.
    std::vector<std::uint8_t> corrupt(std::span<const std::uint8_t> stream);

    /// Emit a chunk held back by a pending reorder (end of stream).
    void flush(std::vector<std::uint8_t>& out);

    const WireFaultStats& stats() const noexcept { return stats_; }
    const WireFaultConfig& config() const noexcept { return config_; }

private:
    void emit(std::span<const std::uint8_t> chunk,
              std::vector<std::uint8_t>& out, bool truncate_hit,
              double truncate_frac, bool flip_hit,
              std::span<const std::size_t> flip_bits, bool garbage_hit,
              std::span<const std::uint8_t> garbage);

    WireFaultConfig config_;
    // One stream per fault type, forked from the master seed in a fixed
    // order (see the determinism contract in the header comment).
    Rng truncate_rng_;
    Rng bitflip_rng_;
    Rng dup_rng_;
    Rng reorder_rng_;
    Rng drop_rng_;
    Rng garbage_rng_;

    std::vector<std::uint8_t> held_;  ///< chunk awaiting a reorder swap
    bool holding_ = false;
    WireFaultStats stats_;
};

}  // namespace blinkradar::ingest
