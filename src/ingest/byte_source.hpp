// Byte sources the ingest front-end pulls from.
//
// The front-end is pull-based: once per pump tick it reads up to a
// per-stream byte budget from each stream's source, so a slow consumer
// (full frame queue under the `block` policy) simply stops pulling and
// the bytes stay where they are — in the file, or in the pipe where the
// producer sees the pipe fill up and its writes shorten. That is the
// whole backpressure story: no source-side buffering policy to tune.
//
//   MemoryByteSource  - replays a byte vector (tests, fault sweeps).
//   FileReplaySource  - streams a .brwf file from disk (br_ingest replay).
//   BytePipe          - in-process socket-like stream: any producer
//                       thread write()s, the front-end reads the other
//                       end. Bounded; write() accepts a prefix when the
//                       pipe is nearly full (socket short-write
//                       semantics) and 0 bytes when full.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace blinkradar::ingest {

/// Pull interface the front-end drives. read() returning 0 means
/// "nothing available right now" — only exhausted() distinguishes a
/// stalled source from a finished one.
class ByteSource {
public:
    virtual ~ByteSource() = default;

    /// Pull up to `max` bytes into `out`; returns the count delivered.
    virtual std::size_t read(std::uint8_t* out, std::size_t max) = 0;

    /// True when no byte will ever come again (EOF / closed pipe with an
    /// empty buffer). A false return with read() == 0 is a stall.
    virtual bool exhausted() const = 0;

    /// Watchdog hook: the front-end calls this when the stall watchdog
    /// fires and the backoff expires. Sources that can recover (a replay
    /// source re-opening its file, a transport re-dialling) do so here;
    /// the default is a no-op.
    virtual void reconnect() {}
};

/// Replays an in-memory byte vector, optionally capped to `max_per_read`
/// bytes per call to emulate a trickling transport.
class MemoryByteSource : public ByteSource {
public:
    explicit MemoryByteSource(std::vector<std::uint8_t> bytes,
                              std::size_t max_per_read = SIZE_MAX);

    std::size_t read(std::uint8_t* out, std::size_t max) override;
    bool exhausted() const override { return offset_ >= bytes_.size(); }

private:
    std::vector<std::uint8_t> bytes_;
    std::size_t offset_ = 0;
    std::size_t max_per_read_;
};

/// Streams a file from disk in read()-sized slices. reconnect() reopens
/// the file and resumes from the last delivered offset (a replay of the
/// watchdog's recover-in-place semantics).
class FileReplaySource : public ByteSource {
public:
    /// Throws std::runtime_error when the file cannot be opened.
    explicit FileReplaySource(std::string path);
    ~FileReplaySource() override;

    std::size_t read(std::uint8_t* out, std::size_t max) override;
    bool exhausted() const override;
    void reconnect() override;

private:
    std::string path_;
    std::FILE* file_ = nullptr;
    std::size_t offset_ = 0;
    bool eof_ = false;
};

/// Bounded in-process byte pipe: the socket-like stream for producers
/// living in the same process (simulator threads, tests, the TSan
/// drill). Thread-safe; any number of writers, one reader (the
/// front-end). Reader-side pressure surfaces to writers as short or
/// zero-length writes.
class BytePipe {
public:
    explicit BytePipe(std::size_t capacity_bytes = 1u << 20);

    /// Append up to capacity; returns the bytes accepted (0 when full —
    /// the producer's cue to back off or drop at its own layer).
    std::size_t write(std::span<const std::uint8_t> bytes);

    /// Producer is done; the reader sees EOF once the buffer drains.
    void close();

    std::size_t buffered() const;
    bool closed() const;

    /// The reader end (a ByteSource view sharing this pipe's buffer).
    /// The pipe must outlive the source.
    std::unique_ptr<ByteSource> make_source();

private:
    class Source;

    mutable std::mutex mutex_;
    std::deque<std::uint8_t> buf_;
    std::size_t capacity_;
    bool closed_ = false;
};

}  // namespace blinkradar::ingest
