#include "ingest/wire_format.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/contracts.hpp"

namespace blinkradar::ingest {

namespace {

constexpr std::size_t kStreamHeaderBytes = 8;   // magic + version + flags
constexpr std::size_t kRecordHeaderBytes = 20;  // sync..seq
constexpr std::size_t kRecordTrailerBytes = 4;  // crc32
constexpr std::uint16_t kHelloVersion = 1;
constexpr std::uint16_t kFrameVersion = 1;
constexpr std::uint16_t kByeVersion = 1;
constexpr std::size_t kHelloPayloadBytes = 10 * 8 + 8;
// A frame payload is timestamp + bin count + interleaved I/Q doubles.
constexpr std::size_t frame_payload_bytes(std::size_t n_bins) {
    return 8 + 4 + 16 * n_bins;
}

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& buf, double v) {
    put_u64(buf, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(p[0] |
                                      static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

double get_f64(const std::uint8_t* p) {
    return std::bit_cast<double>(get_u64(p));
}

}  // namespace

const char* to_string(RecordType type) noexcept {
    switch (type) {
        case RecordType::kHello: return "hello";
        case RecordType::kFrame: return "frame";
        case RecordType::kBye: return "bye";
    }
    return "?";
}

const char* to_string(DecodeError error) noexcept {
    switch (error) {
        case DecodeError::kBadStreamMagic: return "bad_stream_magic";
        case DecodeError::kBadStreamVersion: return "bad_stream_version";
        case DecodeError::kBadSync: return "bad_sync";
        case DecodeError::kBadRecordVersion: return "bad_record_version";
        case DecodeError::kBadRecordType: return "bad_record_type";
        case DecodeError::kOversizedRecord: return "oversized_record";
        case DecodeError::kCrcMismatch: return "crc_mismatch";
        case DecodeError::kBadPayload: return "bad_payload";
        case DecodeError::kFrameBeforeHello: return "frame_before_hello";
        case DecodeError::kDuplicateHello: return "duplicate_hello";
        case DecodeError::kCount_: break;
    }
    return "?";
}

std::uint64_t DecodeStats::total_errors() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t e : errors) n += e;
    return n;
}

// ---------------------------------------------------------------- encoder

WireEncoder::WireEncoder(const WireHello& hello) {
    hello.radar.validate();
    buf_.reserve(8 + kRecordHeaderBytes + kHelloPayloadBytes +
                 kRecordTrailerBytes);
    buf_.insert(buf_.end(), kStreamMagic.begin(), kStreamMagic.end());
    put_u16(buf_, kWireVersion);
    put_u16(buf_, 0);  // flags (reserved)

    begin_record(RecordType::kHello, kHelloVersion, kHelloPayloadBytes);
    const std::size_t crc_from = buf_.size() - kRecordHeaderBytes + 4;
    put_f64(buf_, hello.radar.carrier_hz);
    put_f64(buf_, hello.radar.bandwidth_hz);
    put_f64(buf_, hello.radar.frame_period_s);
    put_f64(buf_, hello.radar.tx_amplitude);
    put_f64(buf_, hello.radar.max_range_m);
    put_f64(buf_, hello.radar.bin_spacing_m);
    put_f64(buf_, hello.radar.reference_range_m);
    put_f64(buf_, hello.radar.min_rolloff_range_m);
    put_f64(buf_, hello.radar.noise_sigma);
    put_f64(buf_, hello.radar.phase_noise_rad);
    put_u64(buf_, hello.stream_tag);
    end_record(crc_from);
}

void WireEncoder::begin_record(RecordType type, std::uint16_t version,
                               std::uint32_t payload_len) {
    put_u32(buf_, kRecordSync);
    put_u16(buf_, static_cast<std::uint16_t>(type));
    put_u16(buf_, version);
    put_u32(buf_, payload_len);
    put_u64(buf_, next_seq_++);
}

void WireEncoder::end_record(std::size_t crc_from) {
    const std::uint32_t crc = state::crc32(
        std::span<const std::uint8_t>(buf_.data() + crc_from,
                                      buf_.size() - crc_from));
    put_u32(buf_, crc);
}

void WireEncoder::encode_frame(const radar::RadarFrame& frame) {
    BR_EXPECTS(!frame.bins.empty());
    const std::size_t payload = frame_payload_bytes(frame.bins.size());
    BR_EXPECTS(payload <= UINT32_MAX);
    begin_record(RecordType::kFrame, kFrameVersion,
                 static_cast<std::uint32_t>(payload));
    const std::size_t crc_from =
        buf_.size() - kRecordHeaderBytes + 4;
    put_f64(buf_, frame.timestamp_s);
    put_u32(buf_, static_cast<std::uint32_t>(frame.bins.size()));
    for (const dsp::Complex& c : frame.bins) {
        put_f64(buf_, c.real());
        put_f64(buf_, c.imag());
    }
    end_record(crc_from);
    ++frames_;
}

void WireEncoder::encode_bye() {
    begin_record(RecordType::kBye, kByeVersion, 8);
    const std::size_t crc_from = buf_.size() - kRecordHeaderBytes + 4;
    put_u64(buf_, frames_);
    end_record(crc_from);
}

std::vector<std::uint8_t> WireEncoder::encode_session(
    const WireHello& hello, const radar::FrameSeries& frames) {
    WireEncoder enc(hello);
    for (const radar::RadarFrame& f : frames) enc.encode_frame(f);
    enc.encode_bye();
    return enc.take();
}

// ---------------------------------------------------------------- decoder

WireDecoder::WireDecoder(std::size_t max_payload_bytes)
    : max_payload_(max_payload_bytes) {
    BR_EXPECTS(max_payload_ >= kHelloPayloadBytes);
}

const WireHello& WireDecoder::hello() const {
    BR_EXPECTS(hello_.has_value());
    return *hello_;
}

void WireDecoder::push(std::span<const std::uint8_t> bytes) {
    stats_.bytes_in += bytes.size();
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void WireDecoder::note_error(DecodeError e) noexcept {
    ++stats_.errors[static_cast<std::size_t>(e)];
}

void WireDecoder::compact() {
    // Reclaim consumed prefix once it dominates the buffer, so a
    // long-lived stream does not grow its buffer without bound while
    // keeping the amortized cost of erase() constant per byte.
    if (cursor_ > 4096 && cursor_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(cursor_));
        cursor_ = 0;
    }
}

void WireDecoder::resync(std::size_t skip_at_least) {
    // Quarantine at least `skip_at_least` bytes, then scan for the next
    // plausible record start. While the stream header has not been seen
    // yet, the stream magic is also a valid landing point (garbage
    // preambles before "BRWF"). Bytes that cannot begin a sync word are
    // quarantined; a partial match at the buffer tail is kept for the
    // next push.
    ++stats_.resyncs;
    std::size_t pos = cursor_ + skip_at_least;
    const std::uint8_t sync0 = static_cast<std::uint8_t>(kRecordSync);
    while (pos < buf_.size()) {
        // memchr for the first byte of either marker keeps the scan
        // linear even through megabytes of garbage.
        const void* hit_sync = std::memchr(buf_.data() + pos, sync0,
                                           buf_.size() - pos);
        std::size_t cand_sync =
            hit_sync ? static_cast<std::size_t>(
                           static_cast<const std::uint8_t*>(hit_sync) -
                           buf_.data())
                     : buf_.size();
        std::size_t cand = cand_sync;
        if (phase_ == Phase::kStreamHeader) {
            const void* hit_magic = std::memchr(
                buf_.data() + pos, kStreamMagic[0], buf_.size() - pos);
            if (hit_magic != nullptr)
                cand = std::min(cand,
                                static_cast<std::size_t>(
                                    static_cast<const std::uint8_t*>(
                                        hit_magic) -
                                    buf_.data()));
        }
        if (cand >= buf_.size()) {
            pos = buf_.size();
            break;
        }
        // Verify the full marker; an incomplete tail match is kept
        // buffered (it may complete with the next push).
        const std::size_t remaining = buf_.size() - cand;
        bool full_match = false;
        bool partial_match = false;
        auto check = [&](const std::uint8_t* marker, std::size_t len) {
            const std::size_t n = std::min(len, remaining);
            if (std::memcmp(buf_.data() + cand, marker, n) != 0) return;
            if (n == len)
                full_match = true;
            else
                partial_match = true;
        };
        const std::uint8_t sync_bytes[4] = {
            static_cast<std::uint8_t>(kRecordSync),
            static_cast<std::uint8_t>(kRecordSync >> 8),
            static_cast<std::uint8_t>(kRecordSync >> 16),
            static_cast<std::uint8_t>(kRecordSync >> 24)};
        if (cand == cand_sync) check(sync_bytes, 4);
        if (!full_match && phase_ == Phase::kStreamHeader)
            check(kStreamMagic.data(), 4);
        if (full_match || partial_match) {
            pos = cand;
            break;
        }
        pos = cand + 1;
    }
    stats_.quarantined_bytes += pos - cursor_;
    cursor_ = pos;
    compact();
}

std::optional<DecodedRecord> WireDecoder::next() {
    for (;;) {
        if (phase_ == Phase::kStreamHeader) {
            if (available() < kStreamHeaderBytes) return std::nullopt;
            const std::uint8_t* p = buf_.data() + cursor_;
            if (std::memcmp(p, kStreamMagic.data(), 4) != 0) {
                note_error(DecodeError::kBadStreamMagic);
                resync(1);
                continue;
            }
            const std::uint16_t version = get_u16(p + 4);
            if (version > kWireVersion) {
                note_error(DecodeError::kBadStreamVersion);
                resync(1);
                continue;
            }
            cursor_ += kStreamHeaderBytes;
            phase_ = Phase::kRecords;
            continue;
        }
        std::optional<DecodedRecord> rec = parse_record();
        if (!rec.has_value()) return std::nullopt;
        if (rec->type == RecordType::kHello && hello_.has_value()) {
            // A duplicate hello is how a reconnecting producer restarts
            // its stream; counted, config re-adopted only if identical
            // is not checked here — the front-end owns that policy.
            note_error(DecodeError::kDuplicateHello);
            continue;
        }
        if (rec->type == RecordType::kFrame && !hello_.has_value()) {
            note_error(DecodeError::kFrameBeforeHello);
            continue;
        }
        if (rec->type == RecordType::kHello) hello_ = rec->hello;
        if (rec->type == RecordType::kBye) saw_bye_ = true;
        return rec;
    }
}

std::optional<DecodedRecord> WireDecoder::parse_record() {
    for (;;) {
        if (available() < kRecordHeaderBytes) return std::nullopt;
        const std::uint8_t* p = buf_.data() + cursor_;
        if (get_u32(p) != kRecordSync) {
            note_error(DecodeError::kBadSync);
            resync(1);
            if (phase_ == Phase::kStreamHeader) return std::nullopt;
            continue;
        }
        const auto type_raw = get_u16(p + 4);
        const std::uint16_t version = get_u16(p + 6);
        const std::uint32_t payload_len = get_u32(p + 8);
        const std::uint64_t seq = get_u64(p + 12);

        if (payload_len > max_payload_) {
            // The length field is untrustworthy; skip only the sync word
            // and rescan rather than jumping a bogus distance.
            note_error(DecodeError::kOversizedRecord);
            resync(4);
            continue;
        }
        const std::size_t total =
            kRecordHeaderBytes + payload_len + kRecordTrailerBytes;
        if (available() < total) return std::nullopt;  // need more bytes

        const std::uint32_t want_crc =
            get_u32(p + kRecordHeaderBytes + payload_len);
        const std::uint32_t got_crc = state::crc32(
            std::span<const std::uint8_t>(p + 4,
                                          kRecordHeaderBytes - 4 +
                                              payload_len));
        if (want_crc != got_crc) {
            note_error(DecodeError::kCrcMismatch);
            resync(4);
            continue;
        }

        // The record frame is intact from here on: whatever happens to
        // the payload, consume the whole record.
        const std::span<const std::uint8_t> payload(p + kRecordHeaderBytes,
                                                    payload_len);
        DecodedRecord rec;
        rec.seq = seq;
        bool ok = true;
        switch (static_cast<RecordType>(type_raw)) {
            case RecordType::kHello:
                rec.type = RecordType::kHello;
                if (version > kHelloVersion) {
                    note_error(DecodeError::kBadRecordVersion);
                    ok = false;
                } else {
                    ok = parse_hello(payload, rec.hello);
                }
                break;
            case RecordType::kFrame:
                rec.type = RecordType::kFrame;
                if (version > kFrameVersion) {
                    note_error(DecodeError::kBadRecordVersion);
                    ok = false;
                } else {
                    ok = parse_frame(payload, rec.frame);
                }
                break;
            case RecordType::kBye:
                rec.type = RecordType::kBye;
                if (version > kByeVersion) {
                    note_error(DecodeError::kBadRecordVersion);
                    ok = false;
                } else if (payload.size() != 8) {
                    note_error(DecodeError::kBadPayload);
                    ok = false;
                } else {
                    rec.producer_frames = get_u64(payload.data());
                }
                break;
            default:
                note_error(DecodeError::kBadRecordType);
                ok = false;
                break;
        }
        cursor_ += total;
        compact();
        if (!ok) {
            stats_.quarantined_bytes += total;
            continue;
        }
        ++stats_.records_decoded;
        if (rec.type == RecordType::kFrame) ++stats_.frames_decoded;
        if (rec.type == RecordType::kBye) ++stats_.byes_decoded;
        // Transport-order accounting: a regression means a duplicated or
        // reordered chunk re-delivered an old record (FrameGuard will
        // quarantine its stale timestamp); a gap means records vanished.
        if (have_seq_) {
            if (seq <= last_seq_)
                ++stats_.seq_regressions;
            else if (seq != last_seq_ + 1)
                ++stats_.seq_gaps;
        }
        if (!have_seq_ || seq > last_seq_) last_seq_ = seq;
        have_seq_ = true;
        return rec;
    }
}

bool WireDecoder::parse_hello(std::span<const std::uint8_t> payload,
                              WireHello& out) {
    if (payload.size() != kHelloPayloadBytes) {
        note_error(DecodeError::kBadPayload);
        return false;
    }
    const std::uint8_t* p = payload.data();
    out.radar.carrier_hz = get_f64(p + 0);
    out.radar.bandwidth_hz = get_f64(p + 8);
    out.radar.frame_period_s = get_f64(p + 16);
    out.radar.tx_amplitude = get_f64(p + 24);
    out.radar.max_range_m = get_f64(p + 32);
    out.radar.bin_spacing_m = get_f64(p + 40);
    out.radar.reference_range_m = get_f64(p + 48);
    out.radar.min_rolloff_range_m = get_f64(p + 56);
    out.radar.noise_sigma = get_f64(p + 64);
    out.radar.phase_noise_rad = get_f64(p + 72);
    out.stream_tag = get_u64(p + 80);
    // A CRC-valid hello can still carry nonsense (a buggy producer, or a
    // collision-surviving corruption): validate() throws ContractViolation
    // on the trusted path, here it is a counted decode error instead.
    try {
        out.radar.validate();
    } catch (const std::exception&) {
        note_error(DecodeError::kBadPayload);
        return false;
    }
    for (const double v :
         {out.radar.carrier_hz, out.radar.bandwidth_hz,
          out.radar.frame_period_s, out.radar.max_range_m,
          out.radar.bin_spacing_m}) {
        if (!std::isfinite(v)) {
            note_error(DecodeError::kBadPayload);
            return false;
        }
    }
    return true;
}

bool WireDecoder::parse_frame(std::span<const std::uint8_t> payload,
                              radar::RadarFrame& out) {
    if (payload.size() < 12) {
        note_error(DecodeError::kBadPayload);
        return false;
    }
    const std::uint8_t* p = payload.data();
    const double timestamp = get_f64(p);
    const std::uint32_t n_bins = get_u32(p + 8);
    if (payload.size() != frame_payload_bytes(n_bins)) {
        note_error(DecodeError::kBadPayload);
        return false;
    }
    out.timestamp_s = timestamp;
    out.bins.resize(n_bins);
    for (std::uint32_t b = 0; b < n_bins; ++b)
        out.bins[b] = dsp::Complex(get_f64(p + 12 + 16 * b),
                                   get_f64(p + 12 + 16 * b + 8));
    // Non-finite timestamps or samples are deliberately passed through:
    // structurally the frame is sound, and semantic repair/quarantine is
    // the FrameGuard's job (it has the stream history to decide).
    return true;
}

}  // namespace blinkradar::ingest
