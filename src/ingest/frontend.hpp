// Streaming ingest front-end: N concurrent byte streams in, one
// fleet::FleetEngine out, with every overload behaviour made explicit.
//
// The engine multiplexes sessions it is *given*; this module decides
// what the engine is given when producers outrun it. The pieces, bottom
// to top:
//
//   ByteSource / BytePipe   - where bytes come from (file replay, or an
//                             in-process socket-like pipe).
//   WireDecoder             - corruption-tolerant "BRWF" framing; bad
//                             input is quarantined, never thrown.
//   BoundedFrameQueue       - per-stream backpressure policy
//                             (block | drop_oldest | drop_newest).
//   Admission token bucket  - caps the *rate* of new streams.
//   Load governor           - watches the backlog against the tick
//                             budget and walks the shed ladder.
//
// One call to pump() is one tick, in a fixed phase order:
//
//   poll       - per stream: retry the block-policy holding slot, read
//                up to the byte budget (skipped while blocked — that is
//                how pressure reaches the pipe), decode records, queue
//                frames; hello records create fleet sessions.
//   deliver    - pop frames oldest-first (ascending stream id) into the
//                engine, up to the governor's per-tick frame budget.
//   engine     - FleetEngine::pump(), wall latency recorded to metrics.
//   watchdogs  - stalled sources get reconnect() with deterministic
//                per-stream jittered exponential backoff.
//   governor   - recompute load, walk the shed ladder one step with
//                hysteresis, apply the step's side effects.
//   admission  - refill the token bucket.
//
// Shed ladder (ordered, one step per transition, hysteresis on both
// edges):
//
//   0 normal
//   1 widen latency sampling  - the front-end's own pump-latency
//                               metrics sampling stride widens
//                               (observability pays first).
//   2 force drop_oldest       - streams with queues more than half full
//                               are switched to drop_oldest (stale
//                               frames die before fresh ones wait).
//   3 evict idle              - the engine's residency policy tightens
//                               (overload_residency) so idle sessions
//                               spill and working memory shrinks.
//   4 refuse admissions       - open_stream() refuses new streams.
//
// Determinism: every load-shedding decision — queue drops, ladder
// transitions, forced policies, residency tightening, admission refusal
// — derives from deterministic accounting (queue occupancy, tick
// counts, the forked per-stream RNGs), never from wall-clock time. Runs
// are bit-identical at any shard/thread count. Wall time is only
// *recorded* (metrics). The one exception is opt-in: governor
// wall_clock_shedding drives the load signal from measured pump latency
// instead, which reacts to the real machine but is explicitly not
// reproducible.
//
// No silent loss: per stream,
//   frames_decoded == delivered + queue drops + still queued + holding
// — an identity the ingest tests assert. Dropped frames leave timestamp
// gaps the pipeline's FrameGuard sees and bridges/quarantines like any
// other sensor gap.
//
// Threading: the front-end is driven by ONE thread (pump/open/close/
// accessors). Producers on other threads talk to it only through
// BytePipe, which is internally synchronised; the engine takes its own
// lock. The TSan suite drives exactly this arrangement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "fleet/fleet_engine.hpp"
#include "ingest/byte_source.hpp"
#include "ingest/frame_queue.hpp"
#include "ingest/wire_format.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/aggregator.hpp"
#include "obs/telemetry/export.hpp"
#include "obs/telemetry/slo.hpp"
#include "obs/telemetry/span.hpp"
#include "obs/trace.hpp"

namespace blinkradar::ingest {

using StreamId = std::uint64_t;

/// Overload response ladder, walked one step at a time.
enum class ShedLevel : std::uint8_t {
    kNormal = 0,
    kWidenSampling = 1,
    kForceDropOldest = 2,
    kEvictIdle = 3,
    kRefuseAdmissions = 4,
};
const char* to_string(ShedLevel level) noexcept;

/// One ladder transition (deterministic; the overload drill asserts the
/// engagement order against this history).
struct ShedEvent {
    std::uint64_t tick = 0;
    ShedLevel from = ShedLevel::kNormal;
    ShedLevel to = ShedLevel::kNormal;
    double load = 0.0;
};

/// Per-stream knobs; IngestConfig::stream supplies the defaults and an
/// open_stream overload can override per stream.
struct StreamConfig {
    std::size_t queue_capacity = 64;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /// Max bytes pulled from the source per tick.
    std::size_t read_budget_bytes = 64 * 1024;
    /// Max frames this stream hands the engine per tick (fairness cap
    /// under the governor's global budget).
    std::size_t max_deliver_per_tick = 32;
    /// Decoder ceiling for a single record payload.
    std::size_t max_payload_bytes = 1u << 20;
    /// Consecutive silent ticks (source not exhausted, zero bytes, zero
    /// records) before the stall watchdog fires.
    std::uint64_t stall_ticks = 50;
    /// Reconnect backoff: base << attempts, capped, plus a jitter drawn
    /// from the stream's forked RNG (deterministic per seed).
    std::uint64_t backoff_base_ticks = 4;
    std::uint64_t backoff_max_ticks = 256;
};

/// Token-bucket admission gate for open_stream().
struct AdmissionConfig {
    double capacity = 8.0;         ///< burst allowance, in streams
    double refill_per_tick = 0.25; ///< sustained streams per tick
};

/// Load governor: the shed ladder's thresholds and side-effect knobs.
struct GovernorConfig {
    /// Frames per tick the deployment is provisioned to sustain — the
    /// denominator of the load signal AND the global deliver budget.
    std::size_t budget_frames_per_tick = 256;

    /// Ladder engage thresholds on load = backlog / budget. Must be
    /// ascending. A level engages after `engage_ticks` consecutive
    /// ticks above its threshold and releases after `release_ticks`
    /// consecutive ticks below it (hysteresis, one step per change).
    double widen_at = 0.5;
    double force_drop_at = 1.0;
    double evict_at = 2.0;
    double refuse_at = 3.0;
    std::size_t engage_ticks = 3;
    std::size_t release_ticks = 6;

    /// Pump-latency metrics sampling stride, normal vs shed (>= level 1).
    std::size_t latency_stride_normal = 1;
    std::size_t latency_stride_shed = 8;

    /// Residency policy pushed onto the engine at level >= 3 (the
    /// previous policy is saved and restored on release).
    fleet::ResidencyPolicy overload_residency{
        .max_resident = 0, .evict_idle_after_pumps = 1};

    /// Opt-in: drive the load signal from measured engine-pump wall
    /// latency against slo_ns instead of backlog accounting. Reactive to
    /// the actual machine — and therefore NOT reproducible run to run.
    bool wall_clock_shedding = false;
    std::uint64_t slo_ns = 40'000'000;  ///< the fleet 40 ms pump SLO
};

/// The live telemetry plane (see src/obs/telemetry and DESIGN.md §16):
/// hierarchical aggregation + snapshot export cadence, SLO burn-rate
/// tracking, and end-to-end span sampling. Every piece is optional and
/// observation-only — results are bit-identical with it on or off.
struct TelemetryConfig {
    /// Run one aggregation + publish cycle every N ticks; 0 disables
    /// the automatic cadence (publish_telemetry() still works).
    std::size_t export_every_ticks = 0;
    /// Snapshot files, replaced atomically each cycle; empty = keep the
    /// rendering in memory only (SnapshotPublisher::last_*).
    std::string json_path;
    std::string prom_path;
    /// Sessions whose per-session metric detail survives aggregation.
    std::size_t top_k_laggards = 4;
    /// Track the enqueue->result SLO (requires a metrics registry; the
    /// tracker's metric prefix is forced to "<metrics_prefix>slo.").
    bool track_slo = true;
    obs::telemetry::SloConfig slo{};
    /// Span sampling: one span per span_stride x latency-stride decoded
    /// frames, so the effective stride widens with the shed ladder
    /// exactly as pump-latency sampling does (observability pays
    /// first). 0 disables minting. Default shares the pipeline's 1-in-16
    /// stage-timing duty cycle.
    std::size_t span_stride = 16;
};

struct IngestConfig {
    StreamConfig stream{};
    AdmissionConfig admission{};
    GovernorConfig governor{};
    TelemetryConfig telemetry{};
    /// Master seed; each stream's watchdog-jitter RNG is forked from it
    /// in open order.
    std::uint64_t seed = 0xB11Fu;
    std::string metrics_prefix = "ingest.";
};

enum class AdmissionOutcome : std::uint8_t {
    kAdmitted = 0,
    kRefusedTokens = 1,  ///< bucket empty — arrival rate too high
    kRefusedShed = 2,    ///< ladder at kRefuseAdmissions
};

struct Admission {
    AdmissionOutcome outcome = AdmissionOutcome::kRefusedTokens;
    StreamId id = 0;  ///< valid only when admitted

    bool admitted() const noexcept {
        return outcome == AdmissionOutcome::kAdmitted;
    }
};

/// Everything one pump() tick did (deterministic except pump_ns).
struct PumpReport {
    std::uint64_t tick = 0;
    std::size_t frames_delivered = 0;  ///< handed to the engine this tick
    std::size_t frames_processed = 0;  ///< FleetEngine::pump() return
    std::size_t backlog = 0;           ///< queued + holding, after deliver
    double load = 0.0;
    ShedLevel level = ShedLevel::kNormal;
    std::uint64_t pump_ns = 0;  ///< engine pump wall latency (NOT determ.)
};

/// Point-in-time view of one stream (deterministic).
struct StreamStats {
    std::uint64_t frames_decoded = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_dropped = 0;  ///< by the queue policy
    std::uint64_t queued = 0;
    bool holding = false;  ///< block-policy holding slot occupied
    std::uint64_t bytes_read = 0;
    std::uint64_t stall_run = 0;  ///< current consecutive silent ticks
    std::uint64_t reconnects = 0;
    bool saw_bye = false;
    bool exhausted = false;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    bool policy_forced = false;  ///< shed ladder overrode the policy
};

class IngestFrontend {
public:
    /// `engine` must outlive the front-end. `metrics` / `trace` /
    /// `spans` are optional and not owned; pass nullptr to disable.
    /// `spans` should be the same collector installed as the engine's
    /// FleetConfig::span_collector, so the spans this layer mints at
    /// decode are completed by the session pipelines.
    IngestFrontend(IngestConfig config, fleet::FleetEngine& engine,
                   obs::MetricsRegistry* metrics = nullptr,
                   obs::TraceSink* trace = nullptr,
                   obs::telemetry::SpanCollector* spans = nullptr);
    ~IngestFrontend();

    IngestFrontend(const IngestFrontend&) = delete;
    IngestFrontend& operator=(const IngestFrontend&) = delete;

    /// Admit a stream through the token bucket (and the shed ladder's
    /// refusal step). The fleet session is created later, when the
    /// stream's hello record decodes.
    Admission open_stream(std::unique_ptr<ByteSource> source);
    Admission open_stream(std::unique_ptr<ByteSource> source,
                          StreamConfig config);

    /// One tick: poll -> deliver -> engine.pump -> watchdogs ->
    /// governor -> token refill.
    PumpReport pump();

    /// Drain-then-release: remaining queued/held frames are fed to the
    /// session and processed (FleetEngine::close drains), then the
    /// stream is released. Returns the session's final stats (all zeros
    /// when the stream never produced a hello).
    fleet::SessionStats close_stream(StreamId id);

    std::size_t stream_count() const noexcept;
    std::vector<StreamId> stream_ids() const;

    /// The stream's fleet session, once its hello has decoded.
    std::optional<fleet::SessionId> session_of(StreamId id) const;

    StreamStats stream_stats(StreamId id) const;
    const DecodeStats& decode_stats(StreamId id) const;
    FrameQueueStats queue_stats(StreamId id) const;

    /// True when the stream can produce nothing more: a bye decoded or
    /// the source exhausted, and nothing queued or held. (A mid-frame
    /// EOF leaves its amputated tail counted in quarantined_bytes.)
    bool stream_done(StreamId id) const;
    /// All streams done.
    bool drained() const;

    ShedLevel shed_level() const noexcept { return level_; }
    const std::vector<ShedEvent>& shed_events() const noexcept {
        return shed_events_;
    }
    std::uint64_t tick() const noexcept { return tick_; }
    double tokens() const noexcept { return tokens_; }

    fleet::FleetEngine& engine() noexcept { return engine_; }
    const IngestConfig& config() const noexcept { return config_; }

    /// Run one aggregation + publish cycle now: the engine rolls up
    /// (FleetEngine::aggregate_into), the front-end's own registry and
    /// bounded per-stream roll-ups ("<metrics_prefix>s<id>.*") fold in,
    /// and the combined registry is rendered/written by the publisher.
    /// Also runs automatically every telemetry.export_every_ticks ticks.
    const obs::telemetry::SnapshotPublisher& publish_telemetry();

    /// The roll-up of the most recent publish_telemetry() cycle.
    const obs::telemetry::Aggregator& aggregator() const noexcept {
        return *aggregator_;
    }
    /// Null unless telemetry.track_slo and a metrics registry attached.
    const obs::telemetry::SloTracker* slo() const noexcept {
        return slo_.get();
    }

private:
    struct Stream;
    struct Metrics;

    Stream& stream_ref(StreamId id);
    const Stream& stream_ref(StreamId id) const;
    void poll_stream(Stream& s);
    std::size_t deliver();
    void run_watchdogs();
    void run_governor(std::size_t backlog, std::uint64_t pump_ns,
                      PumpReport& report);
    void set_level(ShedLevel to, double load);
    void trace_line(const std::string& line);

    IngestConfig config_;
    fleet::FleetEngine& engine_;
    obs::MetricsRegistry* metrics_;
    obs::TraceSink* trace_;
    obs::telemetry::SpanCollector* spans_;
    std::unique_ptr<Metrics> m_;  ///< registered metric handles
    std::unique_ptr<obs::telemetry::SloTracker> slo_;
    std::unique_ptr<obs::telemetry::Aggregator> aggregator_;
    std::unique_ptr<obs::telemetry::SnapshotPublisher> publisher_;
    std::uint64_t decode_count_ = 0;  ///< span-sampling clock
    /// Streams whose per-stream roll-up was written last cycle (their
    /// exact "<metrics_prefix>s<id>." keys are retired next cycle).
    std::vector<StreamId> telemetry_streams_;

    std::map<StreamId, std::unique_ptr<Stream>> streams_;
    StreamId next_stream_id_ = 0;
    Rng master_rng_;

    std::uint64_t tick_ = 0;
    double tokens_;
    ShedLevel level_ = ShedLevel::kNormal;
    std::size_t above_ticks_ = 0;
    std::size_t below_ticks_ = 0;
    std::size_t latency_stride_;
    fleet::ResidencyPolicy saved_residency_{};
    std::vector<ShedEvent> shed_events_;

    std::vector<radar::RadarFrame> deliver_frames_;  ///< scratch
    std::vector<std::uint64_t> deliver_ages_;        ///< scratch
};

}  // namespace blinkradar::ingest
