#include "ingest/byte_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace blinkradar::ingest {

// ------------------------------------------------------- MemoryByteSource

MemoryByteSource::MemoryByteSource(std::vector<std::uint8_t> bytes,
                                   std::size_t max_per_read)
    : bytes_(std::move(bytes)), max_per_read_(max_per_read) {}

std::size_t MemoryByteSource::read(std::uint8_t* out, std::size_t max) {
    const std::size_t n = std::min({max, max_per_read_,
                                    bytes_.size() - offset_});
    std::copy_n(bytes_.data() + offset_, n, out);
    offset_ += n;
    return n;
}

// ------------------------------------------------------- FileReplaySource

FileReplaySource::FileReplaySource(std::string path)
    : path_(std::move(path)) {
    file_ = std::fopen(path_.c_str(), "rb");
    if (file_ == nullptr)
        throw std::runtime_error("FileReplaySource: cannot open " + path_);
}

FileReplaySource::~FileReplaySource() {
    if (file_ != nullptr) std::fclose(file_);
}

std::size_t FileReplaySource::read(std::uint8_t* out, std::size_t max) {
    if (file_ == nullptr || eof_) return 0;
    const std::size_t n = std::fread(out, 1, max, file_);
    offset_ += n;
    if (n < max && std::feof(file_)) eof_ = true;
    return n;
}

bool FileReplaySource::exhausted() const { return eof_; }

void FileReplaySource::reconnect() {
    // Re-open and seek back to the last byte actually delivered — the
    // decoder's resynchronisation handles anything the transport mangled,
    // so the source only has to avoid silently skipping bytes.
    if (file_ != nullptr) std::fclose(file_);
    eof_ = false;
    file_ = std::fopen(path_.c_str(), "rb");
    if (file_ == nullptr) return;  // still gone; next watchdog retries
    if (std::fseek(file_, static_cast<long>(offset_), SEEK_SET) != 0) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

// --------------------------------------------------------------- BytePipe

class BytePipe::Source : public ByteSource {
public:
    explicit Source(BytePipe* pipe) : pipe_(pipe) {}

    std::size_t read(std::uint8_t* out, std::size_t max) override {
        const std::lock_guard<std::mutex> lock(pipe_->mutex_);
        const std::size_t n = std::min(max, pipe_->buf_.size());
        std::copy_n(pipe_->buf_.begin(), n, out);
        pipe_->buf_.erase(pipe_->buf_.begin(),
                          pipe_->buf_.begin() +
                              static_cast<std::ptrdiff_t>(n));
        return n;
    }

    bool exhausted() const override {
        const std::lock_guard<std::mutex> lock(pipe_->mutex_);
        return pipe_->closed_ && pipe_->buf_.empty();
    }

private:
    BytePipe* pipe_;
};

BytePipe::BytePipe(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::size_t BytePipe::write(std::span<const std::uint8_t> bytes) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    const std::size_t room = capacity_ - std::min(capacity_, buf_.size());
    const std::size_t n = std::min(room, bytes.size());
    buf_.insert(buf_.end(), bytes.begin(),
                bytes.begin() + static_cast<std::ptrdiff_t>(n));
    return n;
}

void BytePipe::close() {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
}

std::size_t BytePipe::buffered() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return buf_.size();
}

bool BytePipe::closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::unique_ptr<ByteSource> BytePipe::make_source() {
    return std::make_unique<Source>(this);
}

}  // namespace blinkradar::ingest
