// Streaming wire format "BRWF": the byte-level protocol radar frame
// producers speak to the ingest front-end.
//
// The snapshot container (src/state) frames *state* for storage; this
// module frames *traffic* for transport, and therefore has to survive a
// hostile channel: truncated writes, bit flips, duplicated or reordered
// transport chunks, garbage preambles, and mid-frame EOF. The decoder is
// incremental (push bytes, pull records), never throws on malformed
// input past its own boundary, classifies every rejection as a typed
// DecodeError, and resynchronises on the record sync marker so one
// corrupted record costs exactly the bytes up to the next intact sync.
//
// Format (all integers little-endian, like the "BRSN" container):
//
//   Stream := StreamHeader Record*
//   StreamHeader := magic "BRWF" (4 bytes) | version u16 | flags u16
//   Record := sync "WREC" u32 | type u16 | version u16 |
//             payload_len u32 | seq u64 | payload bytes | crc32 u32
//
// The record CRC-32 (state::crc32, IEEE 802.3 reflected) covers the 16
// header bytes after the sync word plus the payload, so a corrupted
// length field cannot silently misframe the stream. `seq` is the
// producer's record counter; the decoder uses it to tell re-delivered /
// reordered records (which FrameGuard then quarantines by timestamp)
// from fresh ones, and to count transport gaps.
//
// Record types:
//   kHello  - opens a stream: the radar configuration the session needs
//             plus a producer-chosen stream tag. Must precede frames.
//   kFrame  - one radar frame: timestamp f64 | n_bins u32 | interleaved
//             I/Q f64 pairs. Bit-exact round-trip of radar::RadarFrame.
//   kBye    - clean end of stream, carrying the producer's frame count
//             so the consumer can distinguish EOF from amputation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "radar/config.hpp"
#include "radar/frame.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::ingest {

inline constexpr std::array<std::uint8_t, 4> kStreamMagic = {'B', 'R', 'W',
                                                             'F'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint32_t kRecordSync = state::make_tag("WREC");

enum class RecordType : std::uint16_t {
    kHello = 1,
    kFrame = 2,
    kBye = 3,
};
const char* to_string(RecordType type) noexcept;

/// Stream-opening handshake payload.
struct WireHello {
    radar::RadarConfig radar{};
    /// Producer-chosen identifier (vehicle id, replay file ordinal, ...);
    /// carried through to diagnostics, never interpreted.
    std::uint64_t stream_tag = 0;
};

/// Why a chunk of input was rejected. Every enumerator is a *counted*
/// outcome, not an exception: the decoder's contract is that arbitrary
/// bytes can never throw past next().
enum class DecodeError : std::uint8_t {
    kBadStreamMagic = 0,   ///< leading bytes are not "BRWF"
    kBadStreamVersion,     ///< stream header from a newer writer
    kBadSync,              ///< expected record sync, found other bytes
    kBadRecordVersion,     ///< record version above this reader's ceiling
    kBadRecordType,        ///< unknown record type id
    kOversizedRecord,      ///< payload_len above the configured ceiling
    kCrcMismatch,          ///< record failed its checksum
    kBadPayload,           ///< structurally invalid payload (lengths,
                           ///< non-finite config, bin-count mismatch)
    kFrameBeforeHello,     ///< frame record on an unopened stream
    kDuplicateHello,       ///< second hello on an open stream
    kCount_,               ///< sentinel (array sizing)
};
const char* to_string(DecodeError error) noexcept;

/// Decoder accounting. The "no frame is silently lost" invariant starts
/// here: frames_decoded counts every frame that survived decoding, and
/// every rejected byte lands in quarantined_bytes with its reason in
/// errors[] — the ingest metrics expose all of it.
struct DecodeStats {
    std::uint64_t bytes_in = 0;
    std::uint64_t records_decoded = 0;
    std::uint64_t frames_decoded = 0;
    std::uint64_t byes_decoded = 0;
    std::uint64_t resyncs = 0;             ///< scans forced by bad input
    std::uint64_t quarantined_bytes = 0;   ///< bytes skipped, never parsed
    std::uint64_t seq_regressions = 0;     ///< duplicated/reordered records
    std::uint64_t seq_gaps = 0;            ///< records lost in transport
    std::array<std::uint64_t,
               static_cast<std::size_t>(DecodeError::kCount_)>
        errors{};

    std::uint64_t total_errors() const noexcept;
};

/// Serialises a frame stream into "BRWF" bytes. The encoder is the
/// trusted side: it validates its inputs with contracts (a producer
/// encoding nonsense is a bug, not a runtime condition).
class WireEncoder {
public:
    /// Writes the stream header and the hello record.
    explicit WireEncoder(const WireHello& hello);

    void encode_frame(const radar::RadarFrame& frame);
    void encode_bye();

    /// All bytes encoded so far (header + records, in order).
    const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    std::uint64_t frames_encoded() const noexcept { return frames_; }

    /// Convenience: one whole session as a single byte vector
    /// (header, hello, every frame, bye).
    static std::vector<std::uint8_t> encode_session(
        const WireHello& hello, const radar::FrameSeries& frames);

private:
    void begin_record(RecordType type, std::uint16_t version,
                      std::uint32_t payload_len);
    void end_record(std::size_t crc_from);

    std::vector<std::uint8_t> buf_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t frames_ = 0;
};

/// One successfully decoded record.
struct DecodedRecord {
    RecordType type = RecordType::kFrame;
    std::uint64_t seq = 0;
    /// Valid when type == kFrame.
    radar::RadarFrame frame;
    /// Valid when type == kHello.
    WireHello hello;
    /// Valid when type == kBye: the producer's total frame count.
    std::uint64_t producer_frames = 0;
};

/// Incremental, corruption-tolerant "BRWF" decoder.
///
/// push() appends transport bytes; next() yields the next decodable
/// record or std::nullopt when the buffer holds no complete record
/// (more bytes needed). Malformed input is counted, quarantined, and
/// skipped via sync-marker resynchronisation — next() never throws for
/// any byte sequence (fuzzed in tests/test_ingest.cpp; ASan/UBSan run
/// the same sweep).
class WireDecoder {
public:
    /// `max_payload_bytes` bounds a single record so a corrupted length
    /// field cannot make the decoder buffer unbounded garbage.
    explicit WireDecoder(std::size_t max_payload_bytes = 1u << 20);

    void push(std::span<const std::uint8_t> bytes);

    std::optional<DecodedRecord> next();

    bool has_hello() const noexcept { return hello_.has_value(); }
    const WireHello& hello() const;

    bool saw_bye() const noexcept { return saw_bye_; }

    const DecodeStats& stats() const noexcept { return stats_; }

    /// Bytes buffered but not yet consumed (backpressure diagnostics).
    std::size_t buffered_bytes() const noexcept {
        return buf_.size() - cursor_;
    }

private:
    enum class Phase : std::uint8_t { kStreamHeader, kRecords };

    std::size_t available() const noexcept { return buf_.size() - cursor_; }
    void note_error(DecodeError e) noexcept;
    /// Skip `n` bytes as quarantined and rescan for the next plausible
    /// start (sync word, or stream magic while still unopened).
    void resync(std::size_t skip_at_least);
    void compact();
    std::optional<DecodedRecord> parse_record();
    bool parse_hello(std::span<const std::uint8_t> payload, WireHello& out);
    bool parse_frame(std::span<const std::uint8_t> payload,
                     radar::RadarFrame& out);

    std::size_t max_payload_;
    std::vector<std::uint8_t> buf_;
    std::size_t cursor_ = 0;  ///< parse position within buf_
    Phase phase_ = Phase::kStreamHeader;
    std::optional<WireHello> hello_;
    bool saw_bye_ = false;
    bool have_seq_ = false;
    std::uint64_t last_seq_ = 0;
    DecodeStats stats_;
};

}  // namespace blinkradar::ingest
