// Bounded per-stream frame queue with an explicit backpressure policy.
//
// One queue sits between each stream's wire decoder and the fleet
// engine. It is the place where "producer faster than consumer" becomes
// a *decision* instead of an accident:
//
//   kBlock      - push() refuses (kWouldBlock); the front-end stops
//                 consuming the stream's bytes, so pressure propagates
//                 back through the decoder buffer into the pipe/file.
//   kDropOldest - the oldest queued frame is evicted to admit the new
//                 one (live streams: stale frames are worthless).
//   kDropNewest - the incoming frame is discarded (replay integrity:
//                 what is queued stays intact).
//
// Every drop is counted here and — because a dropped frame leaves a
// timestamp gap in what the consumer eventually sees — surfaces
// downstream as a FrameGuard bridged/lost gap. Nothing is ever lost
// silently: decoded == delivered + dropped + still queued, an identity
// the ingest tests assert per stream.
//
// Locking: a single producer (the front-end's poll phase) and a single
// consumer (its delivery phase) touch the queue, today from the same
// thread. Operations still take the per-queue mutex so alternative
// drivers (a producer thread pushing decoded frames directly) stay
// correct; the lock is uncontended in the single-driver arrangement and
// costs nanoseconds. Drop decisions depend only on occupancy — i.e. on
// the push/pop *sequence*, never on wall-clock timing — which is what
// keeps overload runs bit-identical across shard/thread sweeps.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "radar/frame.hpp"

namespace blinkradar::ingest {

enum class BackpressurePolicy : std::uint8_t {
    kBlock = 0,
    kDropOldest = 1,
    kDropNewest = 2,
};
inline const char* to_string(BackpressurePolicy policy) noexcept {
    switch (policy) {
        case BackpressurePolicy::kBlock: return "block";
        case BackpressurePolicy::kDropOldest: return "drop_oldest";
        case BackpressurePolicy::kDropNewest: return "drop_newest";
    }
    return "?";
}

enum class PushOutcome : std::uint8_t {
    kAccepted = 0,      ///< enqueued, nothing displaced
    kWouldBlock = 1,    ///< refused (kBlock policy, queue full)
    kDroppedOldest = 2, ///< enqueued, oldest queued frame evicted
    kDroppedNewest = 3, ///< discarded (kDropNewest policy, queue full)
};

/// Deterministic queue counters (part of the no-silent-loss identity).
struct FrameQueueStats {
    std::uint64_t accepted = 0;
    std::uint64_t dropped_oldest = 0;
    std::uint64_t dropped_newest = 0;
    std::uint64_t would_block = 0;

    std::uint64_t dropped() const noexcept {
        return dropped_oldest + dropped_newest;
    }
};

class BoundedFrameQueue {
public:
    explicit BoundedFrameQueue(std::size_t capacity,
                               BackpressurePolicy policy)
        : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

    /// Admit one frame under the current policy. `enqueue_tick` is the
    /// front-end tick stamping the frame's queue age (latency metrics).
    PushOutcome push(radar::RadarFrame&& frame, std::uint64_t enqueue_tick) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (q_.size() >= capacity_) {
            switch (policy_) {
                case BackpressurePolicy::kBlock:
                    ++stats_.would_block;
                    return PushOutcome::kWouldBlock;
                case BackpressurePolicy::kDropNewest:
                    ++stats_.dropped_newest;
                    return PushOutcome::kDroppedNewest;
                case BackpressurePolicy::kDropOldest:
                    q_.pop_front();
                    ++stats_.dropped_oldest;
                    q_.push_back({std::move(frame), enqueue_tick});
                    ++stats_.accepted;
                    return PushOutcome::kDroppedOldest;
            }
        }
        q_.push_back({std::move(frame), enqueue_tick});
        ++stats_.accepted;
        return PushOutcome::kAccepted;
    }

    /// Pop up to `max` oldest frames into `frames`; appends each frame's
    /// queue age in ticks (now - enqueue) to `ages`. Returns the count.
    std::size_t pop_into(std::size_t max, std::uint64_t now_tick,
                         std::vector<radar::RadarFrame>& frames,
                         std::vector<std::uint64_t>& ages) {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::size_t n = 0;
        while (n < max && !q_.empty()) {
            frames.push_back(std::move(q_.front().frame));
            ages.push_back(now_tick - q_.front().enqueue_tick);
            q_.pop_front();
            ++n;
        }
        return n;
    }

    std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return q_.size();
    }
    std::size_t capacity() const noexcept { return capacity_; }

    BackpressurePolicy policy() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return policy_;
    }
    /// The shed ladder's "force drop_oldest on laggards" hook.
    void set_policy(BackpressurePolicy policy) {
        const std::lock_guard<std::mutex> lock(mutex_);
        policy_ = policy;
    }

    FrameQueueStats stats() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

private:
    struct Entry {
        radar::RadarFrame frame;
        std::uint64_t enqueue_tick = 0;
    };

    mutable std::mutex mutex_;
    std::deque<Entry> q_;
    std::size_t capacity_;
    BackpressurePolicy policy_;
    FrameQueueStats stats_;
};

}  // namespace blinkradar::ingest
