#include "ingest/wire_fault.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace blinkradar::ingest {

bool WireFaultConfig::any_active() const noexcept {
    return truncate_rate > 0.0 || bitflip_rate > 0.0 ||
           duplicate_rate > 0.0 || reorder_rate > 0.0 || drop_rate > 0.0 ||
           garbage_rate > 0.0;
}

void WireFaultConfig::validate() const {
    BR_EXPECTS(chunk_bytes >= 1);
    for (const double r : {truncate_rate, bitflip_rate, duplicate_rate,
                           reorder_rate, drop_rate, garbage_rate})
        BR_EXPECTS(r >= 0.0 && r <= 1.0);
    BR_EXPECTS(max_bitflips >= 1);
    BR_EXPECTS(garbage_max_bytes >= 1);
}

WireFaultInjector::WireFaultInjector(WireFaultConfig config,
                                     std::uint64_t seed)
    : config_(config),
      truncate_rng_(0),
      bitflip_rng_(0),
      dup_rng_(0),
      reorder_rng_(0),
      drop_rng_(0),
      garbage_rng_(0) {
    config_.validate();
    // Fork every fault stream from one master in a fixed order, so each
    // fault's schedule is a pure function of (seed, its own rate).
    Rng master(seed);
    truncate_rng_ = master.fork();
    bitflip_rng_ = master.fork();
    dup_rng_ = master.fork();
    reorder_rng_ = master.fork();
    drop_rng_ = master.fork();
    garbage_rng_ = master.fork();
}

void WireFaultInjector::apply(std::span<const std::uint8_t> chunk,
                              std::vector<std::uint8_t>& out) {
    ++stats_.chunks_in;
    stats_.bytes_in += chunk.size();

    // Fixed per-chunk decision draws, one independent stream per fault.
    // Streams that fire draw their fault-local parameters afterwards —
    // still independent of every other fault's decisions.
    const bool drop_hit = drop_rng_.bernoulli(config_.drop_rate);
    const bool trunc_hit = truncate_rng_.bernoulli(config_.truncate_rate);
    const double trunc_frac = truncate_rng_.uniform(0.0, 1.0);
    const bool flip_hit = bitflip_rng_.bernoulli(config_.bitflip_rate);
    const bool dup_hit = dup_rng_.bernoulli(config_.duplicate_rate);
    const bool reorder_hit = reorder_rng_.bernoulli(config_.reorder_rate);
    const bool garbage_hit = garbage_rng_.bernoulli(config_.garbage_rate);

    std::vector<std::uint8_t> damaged;
    if (!drop_hit) {
        if (garbage_hit) {
            const int n = garbage_rng_.uniform_int(
                1, static_cast<int>(config_.garbage_max_bytes));
            for (int i = 0; i < n; ++i)
                damaged.push_back(static_cast<std::uint8_t>(
                    garbage_rng_.uniform_int(0, 255)));
            stats_.garbage_bytes += static_cast<std::uint64_t>(n);
        }
        std::size_t keep = chunk.size();
        if (trunc_hit && !chunk.empty()) {
            const std::size_t lose = std::max<std::size_t>(
                1, static_cast<std::size_t>(trunc_frac *
                                            static_cast<double>(
                                                chunk.size())));
            keep = chunk.size() - std::min(lose, chunk.size());
            ++stats_.truncated;
        }
        const std::size_t body = damaged.size();
        damaged.insert(damaged.end(), chunk.begin(),
                       chunk.begin() + static_cast<std::ptrdiff_t>(keep));
        if (flip_hit && keep > 0) {
            const int flips = bitflip_rng_.uniform_int(
                1, static_cast<int>(config_.max_bitflips));
            for (int i = 0; i < flips; ++i) {
                const std::size_t bit = static_cast<std::size_t>(
                    bitflip_rng_.uniform_int(
                        0, static_cast<int>(keep * 8 - 1)));
                damaged[body + bit / 8] ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
                ++stats_.bits_flipped;
            }
        }
        if (dup_hit && keep > 0) {
            damaged.insert(damaged.end(), damaged.begin() + body,
                           damaged.end());
            ++stats_.duplicated;
            ++stats_.chunks_out;
        }
    } else {
        ++stats_.dropped;
    }

    // Reordering: hold this chunk's bytes back and release them after
    // the next chunk (or at flush()). Nested holds collapse to emission.
    if (reorder_hit && !holding_ && !damaged.empty()) {
        held_ = std::move(damaged);
        holding_ = true;
        ++stats_.reordered;
        return;
    }
    if (!damaged.empty()) {
        out.insert(out.end(), damaged.begin(), damaged.end());
        stats_.bytes_out += damaged.size();
        ++stats_.chunks_out;
    }
    if (holding_) {
        out.insert(out.end(), held_.begin(), held_.end());
        stats_.bytes_out += held_.size();
        ++stats_.chunks_out;
        held_.clear();
        holding_ = false;
    }
}

void WireFaultInjector::flush(std::vector<std::uint8_t>& out) {
    if (!holding_) return;
    out.insert(out.end(), held_.begin(), held_.end());
    stats_.bytes_out += held_.size();
    ++stats_.chunks_out;
    held_.clear();
    holding_ = false;
}

std::vector<std::uint8_t> WireFaultInjector::corrupt(
    std::span<const std::uint8_t> stream) {
    std::vector<std::uint8_t> out;
    out.reserve(stream.size());
    for (std::size_t off = 0; off < stream.size();
         off += config_.chunk_bytes) {
        const std::size_t n =
            std::min(config_.chunk_bytes, stream.size() - off);
        apply(stream.subspan(off, n), out);
    }
    flush(out);
    return out;
}

}  // namespace blinkradar::ingest
