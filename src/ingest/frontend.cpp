#include "ingest/frontend.hpp"

#include <algorithm>
#include <chrono>

#include "common/contracts.hpp"

namespace blinkradar::ingest {

const char* to_string(ShedLevel level) noexcept {
    switch (level) {
        case ShedLevel::kNormal: return "normal";
        case ShedLevel::kWidenSampling: return "widen_sampling";
        case ShedLevel::kForceDropOldest: return "force_drop_oldest";
        case ShedLevel::kEvictIdle: return "evict_idle";
        case ShedLevel::kRefuseAdmissions: return "refuse_admissions";
    }
    return "?";
}

/// Everything one stream owns. Touched only by the driving thread; the
/// source is the boundary to producer threads (BytePipe locks inside).
struct IngestFrontend::Stream {
    Stream(StreamId id_, StreamConfig config_,
           std::unique_ptr<ByteSource> source_, Rng rng_)
        : id(id_),
          config(config_),
          source(std::move(source_)),
          decoder(config_.max_payload_bytes),
          queue(config_.queue_capacity, config_.policy),
          configured_policy(config_.policy),
          rng(rng_) {}

    StreamId id;
    StreamConfig config;
    std::unique_ptr<ByteSource> source;
    WireDecoder decoder;
    BoundedFrameQueue queue;
    BackpressurePolicy configured_policy;
    bool policy_forced = false;  ///< shed ladder overrode the policy
    Rng rng;                     ///< watchdog jitter (forked, per stream)

    std::optional<fleet::SessionId> session;
    /// Block-policy holding slot: the one decoded frame the full queue
    /// refused. While occupied the stream reads no further bytes, so
    /// pressure backs up into the decoder buffer and then the source.
    std::optional<radar::RadarFrame> holding;

    std::uint64_t stall_run = 0;  ///< consecutive silent ticks
    std::uint64_t reconnects = 0;
    std::uint64_t backoff_attempts = 0;
    std::uint64_t next_reconnect_tick = 0;

    std::uint64_t bytes_read = 0;
    std::uint64_t delivered = 0;

    std::vector<std::uint8_t> read_buf;  ///< recycled read scratch
};

/// Metric handles registered once at construction (hot paths only
/// touch integers — the registry contract).
struct IngestFrontend::Metrics {
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* opened = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* refused_tokens = nullptr;
    obs::Counter* refused_shed = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* shed_transitions = nullptr;
    obs::Gauge* load = nullptr;
    obs::Gauge* shed_level = nullptr;
    obs::Gauge* backlog = nullptr;
    obs::Gauge* tokens = nullptr;
    obs::Gauge* bytes_in = nullptr;
    obs::Gauge* frames_decoded = nullptr;
    obs::Gauge* decode_errors = nullptr;
    obs::Gauge* quarantined_bytes = nullptr;
    obs::LatencyHistogram* pump_ns = nullptr;
    obs::LatencyHistogram* queue_age_ticks = nullptr;
};

IngestFrontend::IngestFrontend(IngestConfig config,
                               fleet::FleetEngine& engine,
                               obs::MetricsRegistry* metrics,
                               obs::TraceSink* trace,
                               obs::telemetry::SpanCollector* spans)
    : config_(std::move(config)),
      engine_(engine),
      metrics_(metrics),
      trace_(trace),
      spans_(spans),
      master_rng_(config_.seed),
      tokens_(config_.admission.capacity),
      latency_stride_(config_.governor.latency_stride_normal) {
    const GovernorConfig& g = config_.governor;
    BR_EXPECTS(g.budget_frames_per_tick >= 1);
    BR_EXPECTS(g.widen_at < g.force_drop_at &&
               g.force_drop_at < g.evict_at && g.evict_at < g.refuse_at);
    BR_EXPECTS(g.engage_ticks >= 1 && g.release_ticks >= 1);
    BR_EXPECTS(g.latency_stride_normal >= 1 && g.latency_stride_shed >= 1);
    BR_EXPECTS(config_.admission.capacity >= 1.0);
    if (metrics_ != nullptr) {
        const std::string& p = config_.metrics_prefix;
        m_ = std::make_unique<Metrics>();
        m_->delivered = &metrics_->counter(p + "frames.delivered");
        m_->dropped = &metrics_->counter(p + "frames.dropped");
        m_->opened = &metrics_->counter(p + "streams.opened");
        m_->closed = &metrics_->counter(p + "streams.closed");
        m_->refused_tokens = &metrics_->counter(p + "streams.refused_tokens");
        m_->refused_shed = &metrics_->counter(p + "streams.refused_shed");
        m_->reconnects = &metrics_->counter(p + "watchdog.reconnects");
        m_->shed_transitions = &metrics_->counter(p + "shed.transitions");
        m_->load = &metrics_->gauge(p + "load");
        m_->shed_level = &metrics_->gauge(p + "shed.level");
        m_->backlog = &metrics_->gauge(p + "backlog");
        m_->tokens = &metrics_->gauge(p + "admission.tokens");
        m_->bytes_in = &metrics_->gauge(p + "bytes_in");
        m_->frames_decoded = &metrics_->gauge(p + "frames.decoded");
        m_->decode_errors = &metrics_->gauge(p + "decode.errors");
        m_->quarantined_bytes = &metrics_->gauge(p + "decode.quarantined_bytes");
        m_->pump_ns = &metrics_->histogram(p + "pump_ns");
        m_->queue_age_ticks = &metrics_->histogram(p + "queue_age_ticks");
    }
    if (metrics_ != nullptr && config_.telemetry.track_slo) {
        obs::telemetry::SloConfig sc = config_.telemetry.slo;
        sc.metric_prefix = config_.metrics_prefix + "slo.";
        slo_ = std::make_unique<obs::telemetry::SloTracker>(sc, metrics_);
    }
    obs::telemetry::AggregatorConfig ac;
    ac.fleet_prefix = engine_.config().metrics_prefix;
    ac.top_k_laggards = config_.telemetry.top_k_laggards;
    aggregator_ = std::make_unique<obs::telemetry::Aggregator>(ac);
    obs::telemetry::SnapshotPublisherConfig pc;
    pc.json_path = config_.telemetry.json_path;
    pc.prom_path = config_.telemetry.prom_path;
    publisher_ = std::make_unique<obs::telemetry::SnapshotPublisher>(pc);
}

IngestFrontend::~IngestFrontend() = default;

void IngestFrontend::trace_line(const std::string& line) {
    if (trace_ != nullptr) trace_->write_line(line);
}

IngestFrontend::Stream& IngestFrontend::stream_ref(StreamId id) {
    const auto it = streams_.find(id);
    BR_EXPECTS(it != streams_.end());
    return *it->second;
}

const IngestFrontend::Stream& IngestFrontend::stream_ref(
    StreamId id) const {
    const auto it = streams_.find(id);
    BR_EXPECTS(it != streams_.end());
    return *it->second;
}

Admission IngestFrontend::open_stream(std::unique_ptr<ByteSource> source) {
    return open_stream(std::move(source), config_.stream);
}

Admission IngestFrontend::open_stream(std::unique_ptr<ByteSource> source,
                                      StreamConfig config) {
    BR_EXPECTS(source != nullptr);
    BR_EXPECTS(config.queue_capacity >= 1);
    BR_EXPECTS(config.read_budget_bytes >= 1);
    BR_EXPECTS(config.max_deliver_per_tick >= 1);
    if (level_ >= ShedLevel::kRefuseAdmissions) {
        if (m_) m_->refused_shed->inc();
        trace_line("{\"ev\":\"ingest.refuse\",\"why\":\"shed\",\"tick\":" +
                   std::to_string(tick_) + "}");
        return {AdmissionOutcome::kRefusedShed, 0};
    }
    if (tokens_ < 1.0) {
        if (m_) m_->refused_tokens->inc();
        trace_line("{\"ev\":\"ingest.refuse\",\"why\":\"tokens\",\"tick\":" +
                   std::to_string(tick_) + "}");
        return {AdmissionOutcome::kRefusedTokens, 0};
    }
    tokens_ -= 1.0;
    const StreamId id = next_stream_id_++;
    streams_.emplace(id, std::make_unique<Stream>(id, config,
                                                  std::move(source),
                                                  master_rng_.fork()));
    if (m_) m_->opened->inc();
    trace_line("{\"ev\":\"ingest.open\",\"stream\":" + std::to_string(id) +
               ",\"tick\":" + std::to_string(tick_) + "}");
    return {AdmissionOutcome::kAdmitted, id};
}

void IngestFrontend::poll_stream(Stream& s) {
    bool progress = false;

    // Retry the holding slot first — it is the oldest undecoded frame.
    if (s.holding) {
        const std::uint64_t held_span = s.holding->span_id;
        const PushOutcome out = s.queue.push(std::move(*s.holding), tick_);
        if (out != PushOutcome::kWouldBlock) {
            // (push only moves from its argument when it enqueues, so
            // the held frame is intact on kWouldBlock.)
            s.holding.reset();
            progress = true;
            if (spans_ != nullptr && held_span != 0 &&
                out != PushOutcome::kDroppedNewest)
                spans_->hop(held_span, obs::telemetry::SpanHop::kEnqueue);
        }
    }

    // Backpressure: while the stream is blocked we do not consume source
    // bytes. A BytePipe then fills and its writers see short writes; a
    // file simply waits.
    const bool blocked =
        s.holding.has_value() ||
        (s.queue.policy() == BackpressurePolicy::kBlock &&
         s.queue.size() >= s.queue.capacity());

    std::size_t bytes = 0;
    if (!blocked) {
        s.read_buf.resize(s.config.read_budget_bytes);
        bytes = s.source->read(s.read_buf.data(), s.read_buf.size());
        if (bytes > 0) {
            s.bytes_read += bytes;
            s.decoder.push({s.read_buf.data(), bytes});
            progress = true;
        }
    }

    // Decode until the buffer runs dry or the queue refuses a frame.
    while (!s.holding) {
        std::optional<DecodedRecord> rec = s.decoder.next();
        if (!rec) break;
        progress = true;
        switch (rec->type) {
            case RecordType::kHello:
                s.session = engine_.create_session(rec->hello.radar);
                trace_line("{\"ev\":\"ingest.hello\",\"stream\":" +
                           std::to_string(s.id) + ",\"session\":" +
                           std::to_string(*s.session) + ",\"tag\":" +
                           std::to_string(rec->hello.stream_tag) + "}");
                break;
            case RecordType::kFrame: {
                // Span sampling: one span per span_stride x latency-
                // stride decoded frames. latency_stride_ is the shed
                // ladder's widening knob, so tracing sheds in lockstep
                // with latency sampling. The counter advances on every
                // decoded frame, sampled or not, so which frames carry
                // spans replays exactly.
                const std::size_t stride =
                    config_.telemetry.span_stride * latency_stride_;
                if (spans_ != nullptr && stride != 0 &&
                    decode_count_ % stride == 0)
                    rec->frame.span_id = spans_->mint(s.id, rec->seq);
                ++decode_count_;
                const std::uint64_t span = rec->frame.span_id;
                const PushOutcome out =
                    s.queue.push(std::move(rec->frame), tick_);
                if (out == PushOutcome::kWouldBlock)
                    s.holding = std::move(rec->frame);
                else if (out == PushOutcome::kDroppedOldest ||
                         out == PushOutcome::kDroppedNewest)
                    if (m_) m_->dropped->inc();
                if (spans_ != nullptr && span != 0 &&
                    out != PushOutcome::kWouldBlock &&
                    out != PushOutcome::kDroppedNewest)
                    spans_->hop(span, obs::telemetry::SpanHop::kEnqueue);
                break;
            }
            case RecordType::kBye:
                break;  // decoder latches saw_bye; stream_done() reads it
        }
    }

    if (progress) {
        s.stall_run = 0;
        s.backoff_attempts = 0;
    } else if (!blocked && bytes == 0 && !s.source->exhausted()) {
        ++s.stall_run;  // genuinely silent upstream, not our refusal
    }
}

std::size_t IngestFrontend::deliver() {
    // Global budget, ascending stream id, per-stream fairness cap. The
    // order is fixed, so which frames ship on which tick — and therefore
    // every downstream result — replays exactly. When the budget runs
    // out, later streams keep their frames queued; that is the duty
    // cycle the queues (and the governor watching them) are for.
    std::size_t budget = config_.governor.budget_frames_per_tick;
    std::size_t total = 0;
    for (auto& [id, sp] : streams_) {
        if (budget == 0) break;
        Stream& s = *sp;
        if (!s.session) continue;
        deliver_frames_.clear();
        deliver_ages_.clear();
        const std::size_t want =
            std::min(budget, s.config.max_deliver_per_tick);
        const std::size_t n =
            s.queue.pop_into(want, tick_, deliver_frames_, deliver_ages_);
        for (std::size_t i = 0; i < n; ++i) {
            if (spans_ != nullptr && deliver_frames_[i].span_id != 0)
                spans_->hop(deliver_frames_[i].span_id,
                            obs::telemetry::SpanHop::kAdmit);
            engine_.feed(*s.session, std::move(deliver_frames_[i]));
        }
        if (m_ != nullptr)
            for (std::size_t i = 0; i < n; ++i)
                m_->queue_age_ticks->record(deliver_ages_[i]);
        if (slo_ != nullptr)
            for (std::size_t i = 0; i < n; ++i)
                slo_->record_frame(deliver_ages_[i]);
        s.delivered += n;
        budget -= n;
        total += n;
    }
    if (m_) m_->delivered->inc(total);
    return total;
}

void IngestFrontend::run_watchdogs() {
    for (auto& [id, sp] : streams_) {
        Stream& s = *sp;
        if (s.stall_run < s.config.stall_ticks) continue;
        if (tick_ < s.next_reconnect_tick) continue;  // backing off
        s.source->reconnect();
        ++s.reconnects;
        if (m_) m_->reconnects->inc();
        // Exponential backoff with per-stream deterministic jitter, so a
        // thundering herd of stalled streams de-synchronises the same
        // way on every replay.
        const std::uint64_t shift =
            std::min<std::uint64_t>(s.backoff_attempts, 6);
        const std::uint64_t base = std::min(
            s.config.backoff_base_ticks << shift, s.config.backoff_max_ticks);
        const std::uint64_t jitter = static_cast<std::uint64_t>(
            s.rng.uniform_int(0, static_cast<int>(std::min<std::uint64_t>(
                                     base, 1u << 16))));
        s.next_reconnect_tick = tick_ + base + jitter;
        ++s.backoff_attempts;
        trace_line("{\"ev\":\"ingest.reconnect\",\"stream\":" +
                   std::to_string(s.id) + ",\"tick\":" +
                   std::to_string(tick_) + ",\"backoff\":" +
                   std::to_string(base + jitter) + "}");
    }
}

void IngestFrontend::set_level(ShedLevel to, double load) {
    const ShedLevel from = level_;
    level_ = to;
    shed_events_.push_back({tick_, from, to, load});
    if (m_) {
        m_->shed_transitions->inc();
        m_->shed_level->set(static_cast<double>(to));
    }
    trace_line("{\"ev\":\"ingest.shed\",\"tick\":" + std::to_string(tick_) +
               ",\"from\":" + std::to_string(static_cast<int>(from)) +
               ",\"to\":" + std::to_string(static_cast<int>(to)) + "}");

    // Step side effects. The ladder moves one level at a time, so each
    // transition crosses exactly one boundary.
    latency_stride_ = to >= ShedLevel::kWidenSampling
                          ? config_.governor.latency_stride_shed
                          : config_.governor.latency_stride_normal;
    if (to == ShedLevel::kEvictIdle && from < ShedLevel::kEvictIdle) {
        saved_residency_ = engine_.residency_policy();
        engine_.set_residency_policy(config_.governor.overload_residency);
    }
    if (from == ShedLevel::kEvictIdle && to < ShedLevel::kEvictIdle) {
        engine_.set_residency_policy(saved_residency_);
    }
    if (from == ShedLevel::kForceDropOldest &&
        to < ShedLevel::kForceDropOldest) {
        for (auto& [id, sp] : streams_)
            if (sp->policy_forced) {
                sp->queue.set_policy(sp->configured_policy);
                sp->policy_forced = false;
            }
    }
}

void IngestFrontend::run_governor(std::size_t backlog,
                                  std::uint64_t pump_ns,
                                  PumpReport& report) {
    const GovernorConfig& g = config_.governor;
    const double load =
        g.wall_clock_shedding
            ? static_cast<double>(pump_ns) / static_cast<double>(g.slo_ns)
            : static_cast<double>(backlog) /
                  static_cast<double>(g.budget_frames_per_tick);

    ShedLevel target = ShedLevel::kNormal;
    if (load >= g.refuse_at) target = ShedLevel::kRefuseAdmissions;
    else if (load >= g.evict_at) target = ShedLevel::kEvictIdle;
    else if (load >= g.force_drop_at) target = ShedLevel::kForceDropOldest;
    else if (load >= g.widen_at) target = ShedLevel::kWidenSampling;

    // Hysteresis, one rung per decision: engage after engage_ticks
    // consecutive ticks wanting a higher level, release after
    // release_ticks wanting a lower one.
    if (target > level_) {
        below_ticks_ = 0;
        if (++above_ticks_ >= g.engage_ticks) {
            above_ticks_ = 0;
            set_level(static_cast<ShedLevel>(
                          static_cast<std::uint8_t>(level_) + 1),
                      load);
        }
    } else if (target < level_) {
        above_ticks_ = 0;
        if (++below_ticks_ >= g.release_ticks) {
            below_ticks_ = 0;
            set_level(static_cast<ShedLevel>(
                          static_cast<std::uint8_t>(level_) - 1),
                      load);
        }
    } else {
        above_ticks_ = 0;
        below_ticks_ = 0;
    }

    // While at (or above) the force-drop rung, laggards — streams whose
    // queue is more than half full — are switched to drop_oldest. New
    // laggards are caught on every tick the rung stays engaged.
    if (level_ >= ShedLevel::kForceDropOldest) {
        for (auto& [id, sp] : streams_) {
            Stream& s = *sp;
            if (!s.policy_forced &&
                s.queue.policy() != BackpressurePolicy::kDropOldest &&
                s.queue.size() > s.queue.capacity() / 2) {
                s.queue.set_policy(BackpressurePolicy::kDropOldest);
                s.policy_forced = true;
                trace_line(
                    "{\"ev\":\"ingest.force_drop\",\"stream\":" +
                    std::to_string(s.id) + ",\"tick\":" +
                    std::to_string(tick_) + "}");
            }
        }
    }

    report.load = load;
    report.level = level_;
}

PumpReport IngestFrontend::pump() {
    ++tick_;
    PumpReport report;
    report.tick = tick_;

    for (auto& [id, sp] : streams_) poll_stream(*sp);

    report.frames_delivered = deliver();

    const auto t0 = std::chrono::steady_clock::now();
    report.frames_processed = engine_.pump();
    const auto t1 = std::chrono::steady_clock::now();
    report.pump_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());

    run_watchdogs();

    std::size_t backlog = 0;
    for (const auto& [id, sp] : streams_)
        backlog += sp->queue.size() + (sp->holding ? 1 : 0);
    report.backlog = backlog;

    run_governor(backlog, report.pump_ns, report);

    tokens_ = std::min(config_.admission.capacity,
                       tokens_ + config_.admission.refill_per_tick);

    if (m_ != nullptr) {
        if (tick_ % latency_stride_ == 0)
            m_->pump_ns->record(report.pump_ns);
        m_->load->set(report.load);
        m_->backlog->set(static_cast<double>(backlog));
        m_->tokens->set(tokens_);
        // Aggregate decoder accounting, refreshed once per tick (the
        // decoders keep the authoritative counters).
        std::uint64_t bytes_in = 0, frames = 0, errors = 0, quarantined = 0;
        for (const auto& [id, sp] : streams_) {
            const DecodeStats& d = sp->decoder.stats();
            bytes_in += d.bytes_in;
            frames += d.frames_decoded;
            errors += d.total_errors();
            quarantined += d.quarantined_bytes;
        }
        m_->bytes_in->set(static_cast<double>(bytes_in));
        m_->frames_decoded->set(static_cast<double>(frames));
        m_->decode_errors->set(static_cast<double>(errors));
        m_->quarantined_bytes->set(static_cast<double>(quarantined));
    }

    if (slo_ != nullptr) slo_->tick();
    if (config_.telemetry.export_every_ticks != 0 &&
        tick_ % config_.telemetry.export_every_ticks == 0)
        publish_telemetry();
    return report;
}

const obs::telemetry::SnapshotPublisher& IngestFrontend::publish_telemetry() {
    // Engine roll-up first (begin_cycle + both aggregation passes run
    // under the engine lock), then the front-end's own flat registry.
    engine_.aggregate_into(*aggregator_);
    obs::MetricsRegistry& out = aggregator_->output();
    if (metrics_ != nullptr) aggregator_->add_flat(*metrics_);

    // Per-stream roll-ups, cardinality bounded by admission control.
    // Gauge nodes of streams closed since the previous cycle are retired
    // by their exact per-id prefix (a shared-prefix erase would take
    // sibling names — "ingest.s" covers "ingest.shed.*").
    std::string key;
    for (const StreamId id : telemetry_streams_) {
        if (streams_.find(id) != streams_.end()) continue;
        key.assign(config_.metrics_prefix);
        key += 's';
        key += std::to_string(id);
        key += '.';
        out.erase_prefix(key);
    }
    telemetry_streams_.clear();
    for (const auto& [id, sp] : streams_) {
        telemetry_streams_.push_back(id);
        const Stream& s = *sp;
        key.assign(config_.metrics_prefix);
        key += 's';
        key += std::to_string(id);
        key += '.';
        const std::size_t base = key.size();
        const auto set = [&](const char* leaf, double v) {
            key.resize(base);
            key += leaf;
            out.gauge(key).set(v);
        };
        set("decoded",
            static_cast<double>(s.decoder.stats().frames_decoded));
        set("delivered", static_cast<double>(s.delivered));
        set("dropped", static_cast<double>(s.queue.stats().dropped()));
        set("queued",
            static_cast<double>(s.queue.size() + (s.holding ? 1 : 0)));
    }

    publisher_->publish(out);
    return *publisher_;
}

fleet::SessionStats IngestFrontend::close_stream(StreamId id) {
    Stream& s = stream_ref(id);
    fleet::SessionStats final_stats{};
    if (s.session) {
        // Drain-then-release, end to end: everything this stream still
        // holds goes to the session, and FleetEngine::close processes
        // the session's whole inbox before destroying it.
        if (s.holding) {
            engine_.feed(*s.session, std::move(*s.holding));
            s.holding.reset();
        }
        deliver_frames_.clear();
        deliver_ages_.clear();
        s.queue.pop_into(SIZE_MAX, tick_, deliver_frames_, deliver_ages_);
        for (auto& frame : deliver_frames_)
            engine_.feed(*s.session, std::move(frame));
        s.delivered += deliver_frames_.size();
        final_stats = engine_.close(*s.session);
    }
    trace_line("{\"ev\":\"ingest.close\",\"stream\":" + std::to_string(id) +
               ",\"tick\":" + std::to_string(tick_) + "}");
    streams_.erase(id);
    if (m_) m_->closed->inc();
    return final_stats;
}

std::size_t IngestFrontend::stream_count() const noexcept {
    return streams_.size();
}

std::vector<StreamId> IngestFrontend::stream_ids() const {
    std::vector<StreamId> ids;
    ids.reserve(streams_.size());
    for (const auto& [id, sp] : streams_) ids.push_back(id);
    return ids;
}

std::optional<fleet::SessionId> IngestFrontend::session_of(
    StreamId id) const {
    return stream_ref(id).session;
}

StreamStats IngestFrontend::stream_stats(StreamId id) const {
    const Stream& s = stream_ref(id);
    const FrameQueueStats q = s.queue.stats();
    StreamStats out;
    out.frames_decoded = s.decoder.stats().frames_decoded;
    out.frames_delivered = s.delivered;
    out.frames_dropped = q.dropped();
    out.queued = s.queue.size();
    out.holding = s.holding.has_value();
    out.bytes_read = s.bytes_read;
    out.stall_run = s.stall_run;
    out.reconnects = s.reconnects;
    out.saw_bye = s.decoder.saw_bye();
    out.exhausted = s.source->exhausted();
    out.policy = s.queue.policy();
    out.policy_forced = s.policy_forced;
    return out;
}

const DecodeStats& IngestFrontend::decode_stats(StreamId id) const {
    return stream_ref(id).decoder.stats();
}

FrameQueueStats IngestFrontend::queue_stats(StreamId id) const {
    return stream_ref(id).queue.stats();
}

bool IngestFrontend::stream_done(StreamId id) const {
    const Stream& s = stream_ref(id);
    return (s.decoder.saw_bye() || s.source->exhausted()) &&
           s.queue.size() == 0 && !s.holding.has_value();
}

bool IngestFrontend::drained() const {
    for (const auto& [id, sp] : streams_)
        if (!stream_done(id)) return false;
    return true;
}

}  // namespace blinkradar::ingest
