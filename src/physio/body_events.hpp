// Sparse large body-movement events: yawns, steering-wheel operation,
// mirror checks. These are the "self-interference" sources of the paper's
// Section IV-D — signals reflected from body parts other than the eye that
// momentarily swamp the blink signal and (when big enough) force the
// pipeline to restart.
#pragma once

#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"

namespace blinkradar::physio {

/// Kinds of self-interference event.
enum class BodyEventKind {
    kYawn,          ///< head/jaw motion near the face bins
    kSteering,      ///< hand/arm motion at the steering-wheel range
    kMirrorCheck,   ///< brief large head rotation
};

/// One body-movement event.
struct BodyEvent {
    BodyEventKind kind = BodyEventKind::kYawn;
    Seconds start_s = 0.0;
    Seconds duration_s = 1.5;
    Meters range_offset_m = 0.0;   ///< where (relative to face) it reflects
    double amplitude = 0.0;        ///< intrinsic reflection amplitude
    Meters displacement_m = 0.0;   ///< peak radial motion during the event
};

/// Parameters of the event process.
struct BodyEventParams {
    double yawn_rate_per_min = 0.10;
    double steering_rate_per_min = 1.0;
    double mirror_rate_per_min = 0.2;
};

/// Generate a session's body events (Poisson per kind, merged and sorted).
std::vector<BodyEvent> generate_body_events(const BodyEventParams& params,
                                            Seconds duration_s, Rng& rng);

/// Smooth activation envelope of an event at absolute time t: 0 outside,
/// raised-cosine bump peaking at 1 mid-event.
double body_event_envelope(const BodyEvent& event, Seconds t);

/// Human-readable name of an event kind.
std::string to_string(BodyEventKind kind);

}  // namespace blinkradar::physio
