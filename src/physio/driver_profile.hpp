// Per-participant driver profiles.
//
// Bundles the physiological parameters that vary across the paper's 12
// recruited participants (8 male, 4 female, ages 19-27): blink rates when
// awake/drowsy, eye size (which sets the eye's radar cross-section;
// Fig. 16c sweeps this), glasses, breathing and heart parameters.
#pragma once

#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "physio/blink.hpp"
#include "physio/heartbeat.hpp"
#include "physio/respiration.hpp"

namespace blinkradar::physio {

/// Eyewear worn by the driver (Fig. 16a).
enum class Glasses { kNone, kMyopia, kSunglasses };

/// Eye dimensions; the product width x height scales the eye's effective
/// reflection area. The paper's smallest tested eye is 3.5 x 0.8 cm.
struct EyeSize {
    Meters width_m = 0.045;
    Meters height_m = 0.012;

    double area_m2() const noexcept { return width_m * height_m; }
};

/// Everything participant-specific the simulator needs.
struct DriverProfile {
    std::string id = "P0";
    double awake_blink_rate_per_min = 20.0;
    double drowsy_blink_rate_per_min = 26.0;
    EyeSize eye_size;
    Glasses glasses = Glasses::kNone;
    RespirationParams respiration;
    HeartbeatParams heartbeat;

    /// Reference eye size against which reflection amplitudes are
    /// normalised (an "average" adult eye opening).
    static EyeSize reference_eye_size() { return EyeSize{0.045, 0.012}; }

    /// Eye reflection area relative to the reference eye.
    double eye_area_factor() const {
        const EyeSize ref = reference_eye_size();
        return eye_size.area_m2() / ref.area_m2();
    }

    /// Two-way amplitude attenuation from the worn glasses. Myopia
    /// (clear) lenses attenuate slightly and add a weak static reflection;
    /// tinted/coated sunglasses attenuate a little more (the paper
    /// measures 94 % / 93 % accuracy vs ~95.5 % bare-eyed).
    double glasses_attenuation() const {
        switch (glasses) {
            case Glasses::kNone: return 1.0;
            case Glasses::kMyopia: return 0.80;
            case Glasses::kSunglasses: return 0.72;
        }
        return 1.0;
    }

    /// Extra static reflection amplitude contributed by the lens surface
    /// (sits a couple of cm in front of the eye; static, so background
    /// subtraction removes most of it).
    double glasses_static_reflection() const {
        switch (glasses) {
            case Glasses::kNone: return 0.0;
            case Glasses::kMyopia: return 0.5;
            case Glasses::kSunglasses: return 0.7;
        }
        return 0.0;
    }
};

/// The 8 participants of the paper's Table I feasibility study, with
/// awake/drowsy blink rates matching the published counts.
std::vector<DriverProfile> table1_participants();

/// Sample `n` random but physiologically plausible participants
/// (deterministic given the rng state); used by the Fig. 13/15/16
/// experiments which recruited 12 participants.
std::vector<DriverProfile> sample_participants(std::size_t n, Rng& rng);

}  // namespace blinkradar::physio
