#include "physio/driver_profile.hpp"

#include "common/contracts.hpp"

namespace blinkradar::physio {

std::vector<DriverProfile> table1_participants() {
    // Table I of the paper lists per-minute blink counts for participants
    // (columns labelled 1, 2, 4, 5, 6, 7, 8) at 10:00 am (alert) and
    // 10:00 pm (drowsy).
    struct Row {
        const char* id;
        double awake;
        double drowsy;
    };
    constexpr Row rows[] = {
        {"P1", 20.0, 25.0}, {"P2", 21.0, 26.0}, {"P4", 19.0, 30.0},
        {"P5", 20.0, 25.0}, {"P6", 18.0, 26.0}, {"P7", 22.0, 24.0},
        {"P8", 21.0, 26.0},
    };
    std::vector<DriverProfile> out;
    for (const Row& r : rows) {
        DriverProfile p;
        p.id = r.id;
        p.awake_blink_rate_per_min = r.awake;
        p.drowsy_blink_rate_per_min = r.drowsy;
        out.push_back(p);
    }
    return out;
}

std::vector<DriverProfile> sample_participants(std::size_t n, Rng& rng) {
    BR_EXPECTS(n >= 1);
    std::vector<DriverProfile> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DriverProfile p;
        p.id = "P" + std::to_string(i + 1);
        // Alert rates cluster around 18-22/min, drowsy around 24-30/min
        // (Table I); keep a guaranteed gap so the states are separable,
        // as the paper's own data shows.
        p.awake_blink_rate_per_min = rng.uniform(17.0, 23.0);
        p.drowsy_blink_rate_per_min =
            p.awake_blink_rate_per_min + rng.uniform(4.0, 9.0);
        // Eye sizes spanning the paper's range down to 3.5 x 0.8 cm.
        p.eye_size.width_m = rng.uniform(0.035, 0.055);
        p.eye_size.height_m = rng.uniform(0.008, 0.014);
        p.respiration.rate_hz = rng.uniform(0.2, 0.32);
        p.respiration.chest_amplitude_m = rng.uniform(0.03, 0.05);
        p.respiration.head_amplitude_m = rng.uniform(0.001, 0.002);
        p.heartbeat.rate_hz = rng.uniform(0.95, 1.4);
        p.heartbeat.head_amplitude_m = rng.uniform(0.0008, 0.0013);
        out.push_back(p);
    }
    return out;
}

}  // namespace blinkradar::physio
