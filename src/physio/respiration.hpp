// Respiration displacement model.
//
// Breathing displaces the chest by 3-5 cm (paper Section IV-D) and couples
// a millimetre-scale motion into the head. The waveform is quasi-periodic:
// the instantaneous rate wanders around the base rate, and the shape has a
// mild second harmonic (inhale faster than exhale).
#pragma once

#include "common/random.hpp"
#include "common/units.hpp"

namespace blinkradar::physio {

/// Parameters of a breathing pattern.
struct RespirationParams {
    double rate_hz = 0.25;            ///< base rate (~15 breaths/min)
    Meters chest_amplitude_m = 0.04;  ///< chest displacement amplitude
    Meters head_amplitude_m = 0.0015; ///< respiration-coupled head motion
    double rate_jitter = 0.05;        ///< relative random-walk rate drift
    double second_harmonic = 0.2;     ///< waveform asymmetry
};

/// Precomputed respiration trajectory over a session, sampled at the
/// radar frame rate. Displacements are radial (towards the radar positive).
class RespirationModel {
public:
    /// Build the phase trajectory for `duration_s` at `sample_rate_hz`.
    RespirationModel(RespirationParams params, Seconds duration_s,
                     double sample_rate_hz, Rng rng);

    /// Chest radial displacement at time t (linear interpolation between
    /// the precomputed samples; clamped at the ends).
    Meters chest_displacement(Seconds t) const;

    /// Head radial displacement at time t (same phase, smaller amplitude).
    Meters head_displacement(Seconds t) const;

    const RespirationParams& params() const noexcept { return params_; }

private:
    double waveform_at(Seconds t) const;  // normalised [-1, 1] waveform

    RespirationParams params_;
    double sample_rate_hz_;
    std::vector<double> phase_;  ///< accumulated phase per sample
};

}  // namespace blinkradar::physio
