#include "physio/body_events.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::physio {

namespace {

void append_poisson_events(std::vector<BodyEvent>& out, BodyEventKind kind,
                           double rate_per_min, Seconds duration_s,
                           Rng& rng) {
    if (rate_per_min <= 0.0) return;
    const double mean_gap_s = 60.0 / rate_per_min;
    Seconds t = rng.exponential(mean_gap_s);
    while (t < duration_s) {
        BodyEvent e;
        e.kind = kind;
        e.start_s = t;
        switch (kind) {
            case BodyEventKind::kYawn:
                e.duration_s = rng.uniform(2.0, 4.0);
                e.range_offset_m = rng.uniform(0.00, 0.05);  // jaw near face
                e.amplitude = rng.uniform(0.5, 1.0);
                e.displacement_m = rng.uniform(0.01, 0.03);
                break;
            case BodyEventKind::kSteering:
                e.duration_s = rng.uniform(0.5, 2.0);
                // Hands on the wheel sit well inside the face range; the
                // pulse's range point-spread still leaks a little of this
                // motion into the face bins, as it would on real hardware.
                e.range_offset_m = rng.uniform(-0.26, -0.16);
                e.amplitude = rng.uniform(0.3, 0.8);
                e.displacement_m = rng.uniform(0.02, 0.08);
                break;
            case BodyEventKind::kMirrorCheck:
                e.duration_s = rng.uniform(0.8, 1.5);
                e.range_offset_m = 0.0;
                e.amplitude = rng.uniform(0.4, 0.9);
                e.displacement_m = rng.uniform(0.03, 0.06);
                break;
        }
        out.push_back(e);
        t = e.start_s + e.duration_s + rng.exponential(mean_gap_s);
    }
}

}  // namespace

std::vector<BodyEvent> generate_body_events(const BodyEventParams& params,
                                            Seconds duration_s, Rng& rng) {
    BR_EXPECTS(duration_s > 0.0);
    std::vector<BodyEvent> events;
    append_poisson_events(events, BodyEventKind::kYawn,
                          params.yawn_rate_per_min, duration_s, rng);
    append_poisson_events(events, BodyEventKind::kSteering,
                          params.steering_rate_per_min, duration_s, rng);
    append_poisson_events(events, BodyEventKind::kMirrorCheck,
                          params.mirror_rate_per_min, duration_s, rng);
    std::sort(events.begin(), events.end(),
              [](const BodyEvent& a, const BodyEvent& b) {
                  return a.start_s < b.start_s;
              });
    return events;
}

double body_event_envelope(const BodyEvent& event, Seconds t) {
    const double u = (t - event.start_s) / event.duration_s;
    if (u <= 0.0 || u >= 1.0) return 0.0;
    return 0.5 * (1.0 - std::cos(constants::kTwoPi * u));
}

std::string to_string(BodyEventKind kind) {
    switch (kind) {
        case BodyEventKind::kYawn: return "yawn";
        case BodyEventKind::kSteering: return "steering";
        case BodyEventKind::kMirrorCheck: return "mirror-check";
    }
    return "unknown";
}

}  // namespace blinkradar::physio
