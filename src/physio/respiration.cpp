#include "physio/respiration.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/resample.hpp"

namespace blinkradar::physio {

RespirationModel::RespirationModel(RespirationParams params,
                                   Seconds duration_s, double sample_rate_hz,
                                   Rng rng)
    : params_(params), sample_rate_hz_(sample_rate_hz) {
    BR_EXPECTS(params.rate_hz > 0.0);
    BR_EXPECTS(params.chest_amplitude_m >= 0.0);
    BR_EXPECTS(params.head_amplitude_m >= 0.0);
    BR_EXPECTS(duration_s > 0.0);
    BR_EXPECTS(sample_rate_hz > 4.0 * params.rate_hz);

    const std::size_t n =
        static_cast<std::size_t>(duration_s * sample_rate_hz) + 2;
    phase_.resize(n, 0.0);

    // Random-walk instantaneous rate: rate(t) = base * (1 + jitter state),
    // where the state is a slowly mean-reverting AR(1) process.
    double jitter_state = 0.0;
    const double reversion = 0.02;  // per sample at the frame rate
    const double step_sigma =
        params.rate_jitter * std::sqrt(2.0 * reversion);
    double phase = rng.uniform(0.0, constants::kTwoPi);
    for (std::size_t i = 0; i < n; ++i) {
        phase_[i] = phase;
        jitter_state += -reversion * jitter_state +
                        rng.normal(0.0, step_sigma);
        const double inst_rate = params.rate_hz * (1.0 + jitter_state);
        phase += constants::kTwoPi * std::max(inst_rate, 0.05 * params.rate_hz) /
                 sample_rate_hz;
    }
}

double RespirationModel::waveform_at(Seconds t) const {
    const double idx = t * sample_rate_hz_;
    const double ph = dsp::interp_at(phase_, idx);
    // Fundamental plus a small second harmonic for inhale/exhale asymmetry;
    // normalised to stay within [-1, 1].
    const double raw = std::sin(ph) + params_.second_harmonic * std::sin(2.0 * ph);
    return raw / (1.0 + params_.second_harmonic);
}

Meters RespirationModel::chest_displacement(Seconds t) const {
    // Amplitude is the peak-to-peak excursion / 2.
    return params_.chest_amplitude_m / 2.0 * waveform_at(t);
}

Meters RespirationModel::head_displacement(Seconds t) const {
    return params_.head_amplitude_m / 2.0 * waveform_at(t);
}

}  // namespace blinkradar::physio
