#include "physio/blink.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace blinkradar::physio {

BlinkStatistics BlinkStatistics::for_state(Alertness state,
                                           double rate_per_min) {
    BR_EXPECTS(rate_per_min > 0.0);
    BlinkStatistics s;
    s.rate_per_min = rate_per_min;
    // Interval shapes reflect the moderate regularity of spontaneous
    // blinking (inter-blink interval CV ~ 0.45, i.e. gamma shape ~ 5);
    // drowsy blinking is somewhat more erratic.
    if (state == Alertness::kAwake) {
        s.mean_duration_s = 0.20;
        s.min_duration_s = 0.075;
        s.max_duration_s = 0.40;
        s.interval_shape = 5.0;
    } else {
        // Drowsy: longer closures (> 400 ms per the paper).
        s.mean_duration_s = 0.55;
        s.min_duration_s = 0.40;
        s.max_duration_s = 1.20;
        s.interval_shape = 4.0;
    }
    return s;
}

BlinkProcess::BlinkProcess(BlinkStatistics stats, Rng rng)
    : stats_(stats), rng_(rng) {
    BR_EXPECTS(stats.rate_per_min > 0.0);
    BR_EXPECTS(stats.min_duration_s > 0.0);
    BR_EXPECTS(stats.min_duration_s <= stats.mean_duration_s);
    BR_EXPECTS(stats.mean_duration_s <= stats.max_duration_s);
    BR_EXPECTS(stats.interval_shape > 0.0);
}

std::vector<BlinkEvent> BlinkProcess::generate(Seconds duration_s) {
    BR_EXPECTS(duration_s > 0.0);
    std::vector<BlinkEvent> events;

    const Seconds mean_cycle = 60.0 / stats_.rate_per_min;
    constexpr Seconds kRefractory = 0.100;

    // Gamma-distributed inter-blink gaps reproduce the aperiodic, sparse
    // spacing (intervals from hundreds of ms to tens of seconds). The gap
    // mean is the cycle length minus the blink itself and the refractory,
    // so the *realised* rate matches rate_per_min — drowsy blinks are
    // long, and ignoring their duration would silently compress the
    // awake/drowsy rate gap the classifier depends on.
    const Seconds mean_gap = std::max(
        0.2, mean_cycle - stats_.mean_duration_s - kRefractory);
    const double scale = mean_gap / stats_.interval_shape;

    Seconds t = rng_.uniform(0.0, mean_cycle);  // random initial phase
    while (t < duration_s) {
        BlinkEvent e;
        e.start_s = t;
        // Log-normal-ish duration between the state's physiological bounds.
        const double mu = std::log(stats_.mean_duration_s);
        const double dur = rng_.lognormal(mu, 0.25);
        e.duration_s =
            std::clamp(dur, stats_.min_duration_s, stats_.max_duration_s);
        if (e.end_s() > duration_s) break;
        events.push_back(e);

        const Seconds gap = rng_.gamma(stats_.interval_shape, scale);
        t = e.end_s() + kRefractory + gap;
    }
    return events;
}

double eyelid_closure(Seconds t_in_blink, Seconds duration) {
    BR_EXPECTS(duration > 0.0);
    if (t_in_blink <= 0.0 || t_in_blink >= duration) return 0.0;
    const double x = t_in_blink / duration;  // normalised position in blink

    constexpr double kCloseEnd = 1.0 / 3.0;   // closing phase
    constexpr double kPlateauEnd = 0.5;       // closed plateau
    if (x < kCloseEnd) {
        // Raised cosine 0 -> 1.
        const double u = x / kCloseEnd;
        return 0.5 * (1.0 - std::cos(constants::kPi * u));
    }
    if (x < kPlateauEnd) return 1.0;
    // Reopening, slower (1/2 of the blink): raised cosine 1 -> 0.
    const double u = (x - kPlateauEnd) / (1.0 - kPlateauEnd);
    return 0.5 * (1.0 + std::cos(constants::kPi * u));
}

double eyelid_closure_at(const std::vector<BlinkEvent>& blinks, Seconds t_s) {
    // Binary search for the last blink starting at or before t_s.
    auto it = std::upper_bound(
        blinks.begin(), blinks.end(), t_s,
        [](Seconds t, const BlinkEvent& e) { return t < e.start_s; });
    if (it == blinks.begin()) return 0.0;
    --it;
    if (t_s >= it->end_s()) return 0.0;
    return eyelid_closure(t_s - it->start_s, it->duration_s);
}

}  // namespace blinkradar::physio
