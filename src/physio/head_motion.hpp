// Involuntary head drift and posture shifts.
//
// A seated driver's head is never static: it drifts by millimetres over
// seconds (muscle tone, micro-corrections) and occasionally jumps by
// centimetres when the driver adjusts posture. The drift changes the
// optimal viewing position slowly (handled by BlinkRadar's adaptive
// update); the posture shifts are the "significant body movement" events
// that force a full pipeline restart.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"

namespace blinkradar::physio {

/// Parameters of the head-motion model.
struct HeadMotionParams {
    Meters drift_sigma_m = 0.002;      ///< RMS of the slow drift
    Seconds drift_timescale_s = 8.0;   ///< mean-reversion timescale
    double shift_rate_per_min = 0.2;   ///< posture shifts per minute
    Meters shift_amplitude_m = 0.03;   ///< typical posture-shift size
    Seconds shift_duration_s = 1.0;    ///< how long a shift takes
};

/// One posture-shift (large body movement) event.
struct PostureShift {
    Seconds start_s = 0.0;
    Seconds duration_s = 1.0;
    Meters delta_m = 0.0;  ///< net radial displacement after the shift
};

/// Precomputed head trajectory: slow Ornstein-Uhlenbeck drift plus
/// smooth-step posture shifts.
class HeadMotionModel {
public:
    HeadMotionModel(HeadMotionParams params, Seconds duration_s,
                    double sample_rate_hz, Rng rng);

    /// Radial head displacement (drift + accumulated shifts) at time t.
    Meters displacement(Seconds t) const;

    /// Ground-truth posture shifts (for validating restart behaviour).
    const std::vector<PostureShift>& shifts() const noexcept {
        return shifts_;
    }

private:
    HeadMotionParams params_;
    double sample_rate_hz_;
    std::vector<double> drift_;
    std::vector<PostureShift> shifts_;
};

}  // namespace blinkradar::physio
