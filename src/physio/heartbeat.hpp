// Ballistocardiographic (BCG) head motion.
//
// Blood ejection at each heartbeat moves the head by roughly 1 mm in a
// periodic pattern synchronised with the heart rate (paper Section IV-D).
// The paper's bin-selection and arc-fitting stages *rely* on this embedded
// interference: it keeps the eye bin's I/Q trajectory moving even between
// blinks.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"

namespace blinkradar::physio {

/// Parameters of the BCG model.
struct HeartbeatParams {
    double rate_hz = 1.15;            ///< ~69 bpm
    Meters head_amplitude_m = 0.001;  ///< ~1 mm head displacement
    double rate_jitter = 0.03;        ///< beat-to-beat variability
    double harmonic2 = 0.35;          ///< BCG waveform harmonic content
    double harmonic3 = 0.15;
};

/// Quasi-periodic BCG head displacement over a session.
class HeartbeatModel {
public:
    HeartbeatModel(HeartbeatParams params, Seconds duration_s,
                   double sample_rate_hz, Rng rng);

    /// Radial head displacement at time t.
    Meters head_displacement(Seconds t) const;

    const HeartbeatParams& params() const noexcept { return params_; }

private:
    HeartbeatParams params_;
    double sample_rate_hz_;
    std::vector<double> phase_;
};

}  // namespace blinkradar::physio
