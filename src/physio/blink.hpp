// Eye-blink event process and eyelid kinematics.
//
// Blink statistics follow the paper's Section II (after Caffier et al.):
// typical blink duration < 400 ms (75 ms minimum) when alert, exceeding
// 400 ms when drowsy; blink intervals are aperiodic and sparse (hundreds
// of ms to tens of seconds); blink *rate* rises with drowsiness (Table I:
// ~18-22/min alert vs ~24-30/min drowsy).
#pragma once

#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"

namespace blinkradar::physio {

/// Alertness state of the driver.
enum class Alertness { kAwake, kDrowsy };

/// One ground-truth blink event.
struct BlinkEvent {
    Seconds start_s = 0.0;     ///< eyelid starts closing
    Seconds duration_s = 0.0;  ///< total closing + closed + reopening time

    Seconds end_s() const noexcept { return start_s + duration_s; }
    Seconds mid_s() const noexcept { return start_s + duration_s / 2.0; }
};

/// Statistical parameters of a blink process.
struct BlinkStatistics {
    double rate_per_min = 20.0;       ///< mean blink rate
    Seconds mean_duration_s = 0.20;   ///< mean blink duration
    Seconds min_duration_s = 0.075;   ///< physiological minimum (75 ms)
    Seconds max_duration_s = 0.40;    ///< clipped maximum for this state
    double interval_shape = 2.5;      ///< gamma shape of inter-blink gaps
                                      ///< (higher = more regular)

    /// Canonical parameters for each alertness state, scaled so that the
    /// rate matches `rate_per_min`.
    static BlinkStatistics for_state(Alertness state, double rate_per_min);
};

/// Generates a reproducible sequence of blink events over a session.
class BlinkProcess {
public:
    BlinkProcess(BlinkStatistics stats, Rng rng);

    /// Generate all blinks in [0, duration_s). Events never overlap: the
    /// next blink starts no earlier than the previous one ends plus a
    /// 100 ms refractory gap.
    std::vector<BlinkEvent> generate(Seconds duration_s);

    const BlinkStatistics& statistics() const noexcept { return stats_; }

private:
    BlinkStatistics stats_;
    Rng rng_;
};

/// Eyelid closure fraction during a blink: 0 = fully open, 1 = fully
/// closed. The profile is the physiologically asymmetric raised-cosine:
/// closing takes ~1/3 of the blink, a closed plateau ~1/6, reopening ~1/2
/// (lid reopening is measurably slower than closing).
/// \param t_in_blink time since blink start, in [0, duration].
/// \param duration   total blink duration.
double eyelid_closure(Seconds t_in_blink, Seconds duration);

/// Evaluate the closure fraction at absolute time `t_s` against a list of
/// (non-overlapping, time-sorted) blink events; 0 outside all blinks.
double eyelid_closure_at(const std::vector<BlinkEvent>& blinks, Seconds t_s);

}  // namespace blinkradar::physio
