#include "physio/head_motion.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/resample.hpp"

namespace blinkradar::physio {

HeadMotionModel::HeadMotionModel(HeadMotionParams params, Seconds duration_s,
                                 double sample_rate_hz, Rng rng)
    : params_(params), sample_rate_hz_(sample_rate_hz) {
    BR_EXPECTS(params.drift_sigma_m >= 0.0);
    BR_EXPECTS(params.drift_timescale_s > 0.0);
    BR_EXPECTS(params.shift_rate_per_min >= 0.0);
    BR_EXPECTS(duration_s > 0.0);
    BR_EXPECTS(sample_rate_hz > 0.0);

    const std::size_t n =
        static_cast<std::size_t>(duration_s * sample_rate_hz) + 2;
    drift_.resize(n, 0.0);

    // Ornstein-Uhlenbeck drift: mean-reverting random walk whose
    // stationary standard deviation equals drift_sigma_m.
    const double dt = 1.0 / sample_rate_hz;
    const double theta = 1.0 / params.drift_timescale_s;
    const double step_sigma =
        params.drift_sigma_m * std::sqrt(2.0 * theta * dt);
    double x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        drift_[i] = x;
        x += -theta * x * dt + rng.normal(0.0, step_sigma);
    }

    // Poisson posture shifts.
    if (params.shift_rate_per_min > 0.0) {
        const double mean_gap_s = 60.0 / params.shift_rate_per_min;
        Seconds t = rng.exponential(mean_gap_s);
        while (t < duration_s) {
            PostureShift s;
            s.start_s = t;
            s.duration_s = params.shift_duration_s;
            const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
            s.delta_m = sign * params.shift_amplitude_m *
                        rng.uniform(0.6, 1.4);
            shifts_.push_back(s);
            t += s.duration_s + rng.exponential(mean_gap_s);
        }
    }
}

Meters HeadMotionModel::displacement(Seconds t) const {
    double d = dsp::interp_at(drift_, t * sample_rate_hz_);
    // Smooth-step each posture shift (C1-continuous so the radar sees a
    // fast but not discontinuous range change).
    for (const PostureShift& s : shifts_) {
        if (t <= s.start_s) break;  // shifts_ is time-ordered
        const double u = (t - s.start_s) / s.duration_s;
        if (u >= 1.0) {
            d += s.delta_m;
        } else {
            d += s.delta_m * u * u * (3.0 - 2.0 * u);
        }
    }
    return d;
}

}  // namespace blinkradar::physio
