#include "physio/heartbeat.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "dsp/resample.hpp"

namespace blinkradar::physio {

HeartbeatModel::HeartbeatModel(HeartbeatParams params, Seconds duration_s,
                               double sample_rate_hz, Rng rng)
    : params_(params), sample_rate_hz_(sample_rate_hz) {
    BR_EXPECTS(params.rate_hz > 0.0);
    BR_EXPECTS(params.head_amplitude_m >= 0.0);
    BR_EXPECTS(duration_s > 0.0);
    BR_EXPECTS(sample_rate_hz > 4.0 * params.rate_hz);

    const std::size_t n =
        static_cast<std::size_t>(duration_s * sample_rate_hz) + 2;
    phase_.resize(n, 0.0);

    double jitter_state = 0.0;
    const double reversion = 0.05;
    const double step_sigma = params.rate_jitter * std::sqrt(2.0 * reversion);
    double phase = rng.uniform(0.0, constants::kTwoPi);
    for (std::size_t i = 0; i < n; ++i) {
        phase_[i] = phase;
        jitter_state += -reversion * jitter_state + rng.normal(0.0, step_sigma);
        const double inst_rate =
            params.rate_hz * (1.0 + jitter_state);
        phase += constants::kTwoPi *
                 std::max(inst_rate, 0.3 * params.rate_hz) / sample_rate_hz;
    }
}

Meters HeartbeatModel::head_displacement(Seconds t) const {
    const double ph = dsp::interp_at(phase_, t * sample_rate_hz_);
    // Harmonics carry fixed phase offsets so the waveform is asymmetric,
    // like a real ballistocardiogram (sharp ejection, slow recovery) —
    // phase-aligned odd sines would be point-symmetric.
    const double raw = std::sin(ph) +
                       params_.harmonic2 * std::sin(2.0 * ph + 0.9) +
                       params_.harmonic3 * std::sin(3.0 * ph + 2.1);
    const double norm = 1.0 + params_.harmonic2 + params_.harmonic3;
    return params_.head_amplitude_m / 2.0 * raw / norm;
}

}  // namespace blinkradar::physio
