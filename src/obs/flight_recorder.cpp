#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace blinkradar::obs {

namespace {

// Dump sections. "BRFR" is the directory entry (reason + cursor); the
// "FR**" sections hold one ring each so a reader can skip what it does
// not need and a future writer can add rings without a format break.
constexpr std::uint32_t kTagHeader = state::make_tag("BRFR");
constexpr std::uint32_t kTagRaw = state::make_tag("FRRW");
constexpr std::uint32_t kTagTaps = state::make_tag("FRTP");
constexpr std::uint32_t kTagEvents = state::make_tag("FREV");
constexpr std::uint32_t kTagMetrics = state::make_tag("FRMS");
constexpr std::uint32_t kTagProfiles = state::make_tag("FRPF");
constexpr std::uint32_t kTagCheckpoints = state::make_tag("FRCK");
constexpr std::uint16_t kSectionVersion = 1;

void check_version(const char* section, std::uint16_t version) {
    if (version > kSectionVersion)
        throw state::SnapshotError(
            std::string("flight dump: section ") + section + " version " +
            std::to_string(version) + " is newer than this reader (max " +
            std::to_string(kSectionVersion) + ")");
}

void write_tap(state::StateWriter& w, const FrameTap& tap) {
    w.write_u64(tap.seq);
    w.write_f64(tap.t);
    w.write_u8(tap.verdict);
    w.write_u8(tap.health);
    w.write_bool(tap.cold_start);
    w.write_bool(tap.restarted);
    w.write_bool(tap.has_blink);
    w.write_i64(tap.selected_bin);
    w.write_complex(tap.bin_iq);
    w.write_f64(tap.fit_cx);
    w.write_f64(tap.fit_cy);
    w.write_f64(tap.fit_radius);
    w.write_f64(tap.fit_residual);
    w.write_f64(tap.waveform);
    w.write_f64(tap.levd_threshold);
    w.write_f64(tap.levd_sigma);
    w.write_f64(tap.blink_peak_s);
    w.write_f64(tap.blink_duration_s);
    w.write_f64(tap.blink_magnitude);
    w.write_f64(tap.blink_strength);
    w.write_u32(tap.repaired_samples);
    w.write_u32(tap.bridged_frames);
}

FrameTap read_tap(state::StateReader& r) {
    FrameTap tap;
    tap.seq = r.read_u64();
    tap.t = r.read_f64();
    tap.verdict = r.read_u8();
    tap.health = r.read_u8();
    tap.cold_start = r.read_bool();
    tap.restarted = r.read_bool();
    tap.has_blink = r.read_bool();
    tap.selected_bin = r.read_i64();
    tap.bin_iq = r.read_complex();
    tap.fit_cx = r.read_f64();
    tap.fit_cy = r.read_f64();
    tap.fit_radius = r.read_f64();
    tap.fit_residual = r.read_f64();
    tap.waveform = r.read_f64();
    tap.levd_threshold = r.read_f64();
    tap.levd_sigma = r.read_f64();
    tap.blink_peak_s = r.read_f64();
    tap.blink_duration_s = r.read_f64();
    tap.blink_magnitude = r.read_f64();
    tap.blink_strength = r.read_f64();
    tap.repaired_samples = r.read_u32();
    tap.bridged_frames = r.read_u32();
    return tap;
}

void write_metrics_snap(state::StateWriter& w, const MetricsSnap& m) {
    w.write_u64(m.seq);
    w.write_f64(m.t);
    w.write_u64(m.frames);
    w.write_u64(m.blinks);
    w.write_u64(m.restarts);
    w.write_u64(m.quarantined);
    w.write_u64(m.repaired);
    w.write_u64(m.bridged);
    w.write_u64(m.gaps);
    w.write_u64(m.signal_losses);
    w.write_u64(m.warm_restarts);
    w.write_f64(m.fault_rate);
    w.write_f64(m.levd_threshold);
    w.write_f64(m.levd_sigma);
}

MetricsSnap read_metrics_snap(state::StateReader& r) {
    MetricsSnap m;
    m.seq = r.read_u64();
    m.t = r.read_f64();
    m.frames = r.read_u64();
    m.blinks = r.read_u64();
    m.restarts = r.read_u64();
    m.quarantined = r.read_u64();
    m.repaired = r.read_u64();
    m.bridged = r.read_u64();
    m.gaps = r.read_u64();
    m.signal_losses = r.read_u64();
    m.warm_restarts = r.read_u64();
    m.fault_rate = r.read_f64();
    m.levd_threshold = r.read_f64();
    m.levd_sigma = r.read_f64();
    return m;
}

}  // namespace

const char* to_string(RecorderEvent type) noexcept {
    switch (type) {
        case RecorderEvent::kHealthTransition: return "health_transition";
        case RecorderEvent::kMovementRestart: return "movement_restart";
        case RecorderEvent::kBinSwitch: return "bin_switch";
        case RecorderEvent::kBlink: return "blink";
        case RecorderEvent::kCheckpoint: return "checkpoint";
        case RecorderEvent::kSupervisorFault: return "supervisor_fault";
        case RecorderEvent::kSupervisorRetry: return "supervisor_retry";
        case RecorderEvent::kSupervisorWarmRestore:
            return "supervisor_warm_restore";
        case RecorderEvent::kSupervisorColdRestart:
            return "supervisor_cold_restart";
        case RecorderEvent::kSupervisorBackoff: return "supervisor_backoff";
        case RecorderEvent::kSupervisorStall: return "supervisor_stall";
        case RecorderEvent::kDump: return "dump";
    }
    return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
    BR_EXPECTS(config_.raw_ring_frames >= 1);
    BR_EXPECTS(config_.tap_ring_frames >= 1);
    BR_EXPECTS(config_.event_ring >= 1);
    BR_EXPECTS(config_.profile_ring >= 1);
    BR_EXPECTS(config_.profile_interval_frames >= 1);
    BR_EXPECTS(config_.metrics_ring >= 1);
    BR_EXPECTS(config_.metrics_interval_frames >= 1);
    // Replay invariant: with self-checkpoints every K frames and the two
    // newest kept, the older one is at most 2K-1 frames behind the head,
    // so 2K <= raw ring depth guarantees a base at or before the oldest
    // raw frame still in the ring (dumps stay fully replayable).
    BR_EXPECTS(config_.checkpoint_interval_frames == 0 ||
               config_.checkpoint_interval_frames * 2 <=
                   config_.raw_ring_frames);
    raw_.reset_capacity(config_.raw_ring_frames);
    taps_.reset_capacity(config_.tap_ring_frames);
    events_.reset_capacity(config_.event_ring);
    profiles_.reset_capacity(config_.profile_ring);
    metrics_.reset_capacity(config_.metrics_ring);
}

std::uint64_t FlightRecorder::begin_frame(const radar::RadarFrame& frame) {
    ++seq_;
    RawSlot& slot = raw_.emplace_slot();
    slot.seq = seq_;
    slot.t = frame.timestamp_s;
    slot.bins.assign(frame.bins.begin(), frame.bins.end());
    profile_pending_ = (seq_ - 1) % config_.profile_interval_frames == 0;
    return seq_;
}

void FlightRecorder::tap_profiles(std::span<const dsp::Complex> pre,
                                  std::span<const dsp::Complex> sub) {
    if (!profile_pending_) return;
    profile_pending_ = false;
    ProfileSlot& slot = profiles_.emplace_slot();
    slot.seq = seq_;
    slot.pre.assign(pre.begin(), pre.end());
    slot.sub.assign(sub.begin(), sub.end());
}

void FlightRecorder::end_frame(const FrameTap& tap) {
    BR_EXPECTS(tap.seq == seq_);
    taps_.emplace_slot() = tap;
    profile_pending_ = false;
    metrics_pending_ = seq_ % config_.metrics_interval_frames == 0;
}

bool FlightRecorder::metrics_due() const noexcept {
    return metrics_pending_;
}

void FlightRecorder::record_metrics(const MetricsSnap& snap) {
    metrics_pending_ = false;
    metrics_.emplace_slot() = snap;
}

void FlightRecorder::record_event(RecorderEvent type, double t, double a,
                                  double b) {
    TapEvent& ev = events_.emplace_slot();
    ev.seq = seq_;
    ev.t = t;
    ev.type = static_cast<std::uint8_t>(type);
    ev.a = a;
    ev.b = b;
}

bool FlightRecorder::checkpoint_due() const noexcept {
    return config_.checkpoint_interval_frames != 0 && seq_ != 0 &&
           seq_ % config_.checkpoint_interval_frames == 0;
}

std::vector<std::uint8_t> FlightRecorder::take_checkpoint_buffer() noexcept {
    return std::move(spare_checkpoint_buf_);
}

void FlightRecorder::store_checkpoint(std::vector<std::uint8_t>&& bytes) {
    CheckpointSlot& slot = checkpoints_[next_checkpoint_];
    next_checkpoint_ = (next_checkpoint_ + 1) % 2;
    // The evicted slot's buffer becomes the next spare: the three
    // buffers (two slots + spare) round-robin, so once each has grown to
    // the serialized-state size, checkpointing stops allocating.
    spare_checkpoint_buf_ = std::move(slot.bytes);
    slot.bytes = std::move(bytes);
    slot.seq = seq_;
    slot.valid = true;
    slot.sealed = false;  // CRCs deferred; dump() seals on the way out
    record_event(RecorderEvent::kCheckpoint, raw_.empty() ? 0.0 : raw_.back().t,
                 static_cast<double>(slot.bytes.size()));
}

void FlightRecorder::note_checkpoint(std::span<const std::uint8_t> bytes) {
    external_checkpoints_ = true;
    CheckpointSlot& slot = checkpoints_[next_checkpoint_];
    next_checkpoint_ = (next_checkpoint_ + 1) % 2;
    slot.bytes.assign(bytes.begin(), bytes.end());
    slot.seq = seq_;
    slot.valid = true;
    slot.sealed = true;  // external snapshots carry their CRCs already
    record_event(RecorderEvent::kCheckpoint, raw_.empty() ? 0.0 : raw_.back().t,
                 static_cast<double>(slot.bytes.size()));
}

void FlightRecorder::clear() {
    seq_ = 0;
    profile_pending_ = false;
    metrics_pending_ = false;
    raw_.clear();
    taps_.clear();
    events_.clear();
    profiles_.clear();
    metrics_.clear();
    for (CheckpointSlot& slot : checkpoints_) slot.valid = false;
    next_checkpoint_ = 0;
    external_checkpoints_ = false;
}

void FlightRecorder::dump(state::StateWriter& writer,
                          std::string_view reason) const {
    writer.begin_section(kTagHeader, kSectionVersion);
    writer.write_u8_span({reinterpret_cast<const std::uint8_t*>(reason.data()),
                          reason.size()});
    writer.write_u64(seq_);
    writer.write_bool(external_checkpoints_);
    writer.end_section();

    writer.begin_section(kTagRaw, kSectionVersion);
    writer.write_u64(raw_.size());
    for (std::size_t i = 0; i < raw_.size(); ++i) {
        const RawSlot& slot = raw_[i];
        writer.write_u64(slot.seq);
        writer.write_f64(slot.t);
        writer.write_complex_span(slot.bins);
    }
    writer.end_section();

    writer.begin_section(kTagTaps, kSectionVersion);
    writer.write_u64(taps_.size());
    for (std::size_t i = 0; i < taps_.size(); ++i) write_tap(writer, taps_[i]);
    writer.end_section();

    writer.begin_section(kTagEvents, kSectionVersion);
    writer.write_u64(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TapEvent& ev = events_[i];
        writer.write_u64(ev.seq);
        writer.write_f64(ev.t);
        writer.write_u8(ev.type);
        writer.write_f64(ev.a);
        writer.write_f64(ev.b);
    }
    writer.end_section();

    writer.begin_section(kTagMetrics, kSectionVersion);
    writer.write_u64(metrics_.size());
    for (std::size_t i = 0; i < metrics_.size(); ++i)
        write_metrics_snap(writer, metrics_[i]);
    writer.end_section();

    writer.begin_section(kTagProfiles, kSectionVersion);
    writer.write_u64(profiles_.size());
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
        const ProfileSlot& slot = profiles_[i];
        writer.write_u64(slot.seq);
        writer.write_complex_span(slot.pre);
        writer.write_complex_span(slot.sub);
    }
    writer.end_section();

    // Oldest checkpoint first, matching every other ring's ordering.
    writer.begin_section(kTagCheckpoints, kSectionVersion);
    const CheckpointSlot* ordered[2] = {nullptr, nullptr};
    std::size_t n_ckpt = 0;
    for (const CheckpointSlot& slot : checkpoints_)
        if (slot.valid) ordered[n_ckpt++] = &slot;
    if (n_ckpt == 2 && ordered[0]->seq > ordered[1]->seq)
        std::swap(ordered[0], ordered[1]);
    writer.write_u64(n_ckpt);
    std::vector<std::uint8_t> sealed_copy;
    for (std::size_t i = 0; i < n_ckpt; ++i) {
        writer.write_u64(ordered[i]->seq);
        if (ordered[i]->sealed) {
            writer.write_u8_span(ordered[i]->bytes);
        } else {
            // Self-checkpoints defer their section CRCs at capture time
            // (the checksum dominates serialisation cost); pay for them
            // here, on the rare dump, against a scratch copy so dump()
            // stays const and the live slot is untouched.
            sealed_copy = ordered[i]->bytes;
            state::seal_section_crcs(sealed_copy);
            writer.write_u8_span(sealed_copy);
        }
    }
    writer.end_section();
}

FlightDump decode_flight_dump(state::StateReader& reader) {
    FlightDump dump;

    dump.version = reader.open_section(kTagHeader);
    check_version("BRFR", dump.version);
    std::vector<std::uint8_t> reason_bytes;
    reader.read_u8_into(reason_bytes);
    dump.reason.assign(reason_bytes.begin(), reason_bytes.end());
    dump.seq_at_dump = reader.read_u64();
    dump.external_checkpoints = reader.read_bool();
    reader.close_section();

    check_version("FRRW", reader.open_section(kTagRaw));
    const std::size_t n_raw = reader.read_size();
    dump.raw.reserve(n_raw);
    for (std::size_t i = 0; i < n_raw; ++i) {
        FlightDump::RawFrame raw;
        raw.seq = reader.read_u64();
        raw.frame.timestamp_s = reader.read_f64();
        reader.read_complex_into(raw.frame.bins);
        if (i > 0 && raw.seq != dump.raw.back().seq + 1)
            throw state::SnapshotError(
                "flight dump: raw frame sequence not contiguous (" +
                std::to_string(dump.raw.back().seq) + " followed by " +
                std::to_string(raw.seq) + ")");
        dump.raw.push_back(std::move(raw));
    }
    reader.close_section();

    check_version("FRTP", reader.open_section(kTagTaps));
    const std::size_t n_taps = reader.read_size();
    dump.taps.reserve(n_taps);
    for (std::size_t i = 0; i < n_taps; ++i) {
        FrameTap tap = read_tap(reader);
        if (i > 0 && tap.seq <= dump.taps.back().seq)
            throw state::SnapshotError(
                "flight dump: tap sequence not increasing at index " +
                std::to_string(i));
        dump.taps.push_back(tap);
    }
    reader.close_section();

    check_version("FREV", reader.open_section(kTagEvents));
    const std::size_t n_events = reader.read_size();
    dump.events.reserve(n_events);
    for (std::size_t i = 0; i < n_events; ++i) {
        TapEvent ev;
        ev.seq = reader.read_u64();
        ev.t = reader.read_f64();
        ev.type = reader.read_u8();
        ev.a = reader.read_f64();
        ev.b = reader.read_f64();
        dump.events.push_back(ev);
    }
    reader.close_section();

    check_version("FRMS", reader.open_section(kTagMetrics));
    const std::size_t n_metrics = reader.read_size();
    dump.metrics.reserve(n_metrics);
    for (std::size_t i = 0; i < n_metrics; ++i)
        dump.metrics.push_back(read_metrics_snap(reader));
    reader.close_section();

    check_version("FRPF", reader.open_section(kTagProfiles));
    const std::size_t n_profiles = reader.read_size();
    dump.profiles.reserve(n_profiles);
    for (std::size_t i = 0; i < n_profiles; ++i) {
        FlightDump::ProfileTap profile;
        profile.seq = reader.read_u64();
        reader.read_complex_into(profile.pre);
        reader.read_complex_into(profile.sub);
        dump.profiles.push_back(std::move(profile));
    }
    reader.close_section();

    check_version("FRCK", reader.open_section(kTagCheckpoints));
    const std::size_t n_ckpt = reader.read_size();
    if (n_ckpt > 2)
        throw state::SnapshotError(
            "flight dump: checkpoint count " + std::to_string(n_ckpt) +
            " exceeds the two retained slots");
    for (std::size_t i = 0; i < n_ckpt; ++i) {
        FlightDump::Checkpoint ckpt;
        ckpt.seq = reader.read_u64();
        reader.read_u8_into(ckpt.bytes);
        if (i > 0 && ckpt.seq < dump.checkpoints.back().seq)
            throw state::SnapshotError(
                "flight dump: checkpoints out of order");
        dump.checkpoints.push_back(std::move(ckpt));
    }
    reader.close_section();

    return dump;
}

}  // namespace blinkradar::obs
