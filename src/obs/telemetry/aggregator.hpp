// Hierarchical metric aggregation: per-session registries roll up into
// one bounded-cardinality fleet registry.
//
// The fleet engine gives every session a private MetricsRegistry whose
// names carry a per-session prefix ("fleet.s<id>."). At 2.8k sessions
// that is thousands of artifacts per snapshot — unreadable and
// unexportable. The Aggregator strips the per-session prefix and folds
// every session's series into one fleet-level set ("fleet.stage.guard"
// etc.): counters and histograms accumulate (the fixed power-of-two
// buckets make histogram merge exact, so the roll-up is commutative and
// bit-identical to a single shared registry), gauges take the last
// writer in ascending-id order.
//
// Per-session detail survives only for the top-K "laggard" sessions —
// ranked by total frame_total time — so the snapshot answers "which
// sessions are slow" without carrying every session. Output cardinality
// is bounded: base roll-up names + K x per-session names, regardless of
// fleet size.
//
// Cycle protocol (the caller holds whatever lock protects the session
// table; this layer knows nothing about fleets):
//
//   agg.begin_cycle();
//   for each session:          agg.add_session(id, registry);   // pass 1
//   for id : agg.select_laggards():
//                              agg.add_laggard_detail(id, registry);
//   agg.add_flat(frontend_registry);                            // etc.
//   publish(agg.output());
//
// Alloc-free steady state: the output registry is reset in place
// (reset_values), roll-up keys are built in reused scratch strings, and
// map nodes persist across cycles — only a *change* in the laggard set
// erases/inserts nodes, off the per-frame hot path by construction.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace blinkradar::obs::telemetry {

struct AggregatorConfig {
    /// Roll-up prefix; per-session names are "<fleet_prefix>s<id>.".
    std::string fleet_prefix = "fleet.";
    /// Sessions whose full per-session detail is kept each cycle.
    std::size_t top_k_laggards = 4;
};

class Aggregator {
public:
    explicit Aggregator(AggregatorConfig config = {});

    /// Start a cycle: retire last cycle's laggard detail, zero the
    /// output in place.
    void begin_cycle();

    /// Pass 1: fold one session's registry into the roll-up and score
    /// it for laggard ranking (sum of frame_total nanoseconds).
    void add_session(std::uint64_t id, const MetricsRegistry& session);

    /// Rank sessions seen this cycle; returns the top-K ids in
    /// ascending order (ties break toward the lower id).
    const std::vector<std::uint64_t>& select_laggards();

    /// Pass 2: copy one laggard's per-session series ("fleet.s<id>.*")
    /// into the output unmodified. Series without the per-session
    /// prefix are skipped (they were already rolled up in pass 1).
    void add_laggard_detail(std::uint64_t id, const MetricsRegistry& session);

    /// Fold an already-flat registry (e.g. the ingest front-end's) into
    /// the output verbatim.
    void add_flat(const MetricsRegistry& registry);

    MetricsRegistry& output() noexcept { return out_; }
    const MetricsRegistry& output() const noexcept { return out_; }
    const std::vector<std::uint64_t>& laggards() const noexcept {
        return laggards_;
    }
    std::uint64_t cycles() const noexcept { return cycles_; }

private:
    void session_prefix_into(std::uint64_t id, std::string& out) const;

    AggregatorConfig config_;
    MetricsRegistry out_;
    /// (id, score) per session seen this cycle.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> scores_;
    std::vector<std::uint64_t> laggards_;
    std::string spfx_;  ///< scratch: "<fleet_prefix>s<id>."
    std::string key_;   ///< scratch: rolled-up output name
    std::uint64_t cycles_ = 0;
};

}  // namespace blinkradar::obs::telemetry
