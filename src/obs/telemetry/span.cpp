#include "obs/telemetry/span.hpp"

#include <algorithm>
#include <charconv>

#include "common/contracts.hpp"
#include "obs/stage_timer.hpp"

namespace blinkradar::obs::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    BR_ASSERT(ec == std::errc());
    out.append(buf, end);
}

}  // namespace

SpanCollector::SpanCollector(TraceSink* sink) : sink_(sink) {
    line_.reserve(256);
}

std::uint64_t SpanCollector::mint(std::uint64_t stream, std::uint64_t seq) {
    const std::uint64_t now = detail::steady_ns();
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = next_id_++;
    Slot& s = slots_[id % kSlots];
    if (s.id != 0) ++abandoned_;
    s.id = id;
    s.stream = stream;
    s.seq = seq;
    s.hop_ns.fill(0);
    s.hop_ns[static_cast<std::size_t>(SpanHop::kDecode)] = now;
    ++minted_;
    return id;
}

void SpanCollector::hop(std::uint64_t span_id, SpanHop h) {
    if (span_id == 0) return;
    const std::uint64_t now = detail::steady_ns();
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& s = slots_[span_id % kSlots];
    if (s.id != span_id) return;
    s.hop_ns[static_cast<std::size_t>(h)] = now;
}

void SpanCollector::complete(std::uint64_t span_id,
                             const std::uint64_t* stage_dur_ns,
                             std::size_t n_stages) {
    if (span_id == 0) return;
    const std::uint64_t now = detail::steady_ns();
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& s = slots_[span_id % kSlots];
    if (s.id != span_id) return;
    n_stages = std::min(n_stages, kMaxStages);

    // Clamp the hop chain monotone; a hop that was never stamped (its
    // leg was skipped) inherits its predecessor's time.
    std::array<std::uint64_t, kSpanHops> hops = s.hop_ns;
    for (std::size_t i = 1; i < kSpanHops; ++i)
        hops[i] = std::max(hops[i], hops[i - 1]);

    // Stage-end timestamps: pump start plus cumulative measured stage
    // durations (monotone by construction, durations being unsigned).
    std::uint64_t t = hops[static_cast<std::size_t>(SpanHop::kPump)];
    line_.clear();
    line_ += "{\"span\":";
    append_u64(line_, span_id);
    line_ += ",\"stream\":";
    append_u64(line_, s.stream);
    line_ += ",\"seq\":";
    append_u64(line_, s.seq);
    line_ += ",\"decode_ns\":";
    append_u64(line_, hops[0]);
    line_ += ",\"enqueue_ns\":";
    append_u64(line_, hops[1]);
    line_ += ",\"admit_ns\":";
    append_u64(line_, hops[2]);
    line_ += ",\"pump_ns\":";
    append_u64(line_, hops[3]);
    line_ += ",\"stage_ns\":[";
    for (std::size_t i = 0; i < n_stages; ++i) {
        if (i != 0) line_ += ',';
        t += stage_dur_ns == nullptr ? 0 : stage_dur_ns[i];
        append_u64(line_, t);
    }
    line_ += "],\"result_ns\":";
    append_u64(line_, std::max(t, now));
    line_ += '}';

    if (sink_ != nullptr) sink_->write_line(line_);
    last_record_ = line_;
    s.id = 0;
    ++completed_;
}

std::uint64_t SpanCollector::minted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return minted_;
}

std::uint64_t SpanCollector::completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::uint64_t SpanCollector::abandoned() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return abandoned_;
}

std::string SpanCollector::last_record() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_record_;
}

}  // namespace blinkradar::obs::telemetry
