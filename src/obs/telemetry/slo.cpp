#include "obs/telemetry/slo.hpp"

#include <algorithm>

namespace blinkradar::obs::telemetry {

SloTracker::SloTracker(SloConfig config, MetricsRegistry* registry)
    : config_(std::move(config)),
      short_w_(std::max<std::size_t>(config_.short_window_ticks, 1)),
      long_w_(std::max<std::size_t>(config_.long_window_ticks, 1)) {
    if (config_.error_budget <= 0.0) config_.error_budget = 0.01;
    if (config_.tick_ns == 0) config_.tick_ns = 1;
    if (registry != nullptr) {
        const std::string& p = config_.metric_prefix;
        good_c_ = &registry->counter(p + "good");
        bad_c_ = &registry->counter(p + "bad");
        short_g_ = &registry->gauge(p + "burn_short");
        long_g_ = &registry->gauge(p + "burn_long");
        burning_g_ = &registry->gauge(p + "burning");
        latency_h_ = &registry->histogram(p + "enqueue_to_result_ns");
    }
}

void SloTracker::record_frame(std::uint64_t age_ticks) {
    const std::uint64_t latency_ns = age_ticks * config_.tick_ns;
    if (latency_ns > config_.slo_ns) {
        ++cur_bad_;
        ++bad_total_;
        if (bad_c_ != nullptr) bad_c_->inc();
    } else {
        ++cur_good_;
        ++good_total_;
        if (good_c_ != nullptr) good_c_->inc();
    }
    if (latency_h_ != nullptr) latency_h_->record(latency_ns);
}

void SloTracker::tick() {
    short_w_.push(cur_good_, cur_bad_);
    long_w_.push(cur_good_, cur_bad_);
    cur_good_ = 0;
    cur_bad_ = 0;
    short_burn_ = short_w_.bad_fraction() / config_.error_budget;
    long_burn_ = long_w_.bad_fraction() / config_.error_budget;
    if (short_g_ != nullptr) short_g_->set(short_burn_);
    if (long_g_ != nullptr) long_g_->set(long_burn_);
    if (burning_g_ != nullptr) burning_g_->set(burning() ? 1.0 : 0.0);
}

}  // namespace blinkradar::obs::telemetry
