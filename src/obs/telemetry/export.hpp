// Live telemetry export: Prometheus text exposition and atomic
// double-buffered snapshot publication.
//
// The fleet/ingest layers publish their aggregated registry on a tick
// cadence; consumers (tools/br_top, scrapers, tests) read the published
// files. No sockets — a snapshot is a plain file replaced atomically
// (write temp + rename), so a reader never observes a torn snapshot and
// the whole plane stays deterministic and test-friendly.
//
// Rendering appends into caller-owned buffers so the steady-state
// publish cycle reuses capacity and does not allocate. Both renderings
// are byte-deterministic: map-sorted metric names, fixed field order,
// locale-independent numbers (std::to_chars).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace blinkradar::obs::telemetry {

/// Append Prometheus text exposition (one `# TYPE` line per metric;
/// histograms expand to cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count`). Metric names are sanitised to [a-zA-Z0-9_:].
void append_prometheus(const MetricsRegistry& registry, std::string& out);

/// Convenience wrapper around append_prometheus.
std::string snapshot_to_prometheus(const MetricsRegistry& registry);

struct SnapshotPublisherConfig {
    std::string json_path;  ///< `blinkradar-obs-v1` JSON; empty = skip
    std::string prom_path;  ///< Prometheus exposition; empty = skip
};

/// Renders a registry into alternating front/back buffers and publishes
/// the result atomically (temp file + rename). The front buffer always
/// holds the last published rendering, so in-process consumers can read
/// it without touching the filesystem. One publisher = one writer; the
/// temp path is derived from the target path, so two publishers must
/// not share a target.
class SnapshotPublisher {
public:
    explicit SnapshotPublisher(SnapshotPublisherConfig config = {});

    /// Render + write. Returns false if any configured file write
    /// failed (the in-memory buffers still advance).
    bool publish(const MetricsRegistry& registry);

    const std::string& last_json() const noexcept {
        return json_buf_[front_];
    }
    const std::string& last_prometheus() const noexcept {
        return prom_buf_[front_];
    }
    std::uint64_t publishes() const noexcept { return publishes_; }
    std::uint64_t failures() const noexcept { return failures_; }
    const SnapshotPublisherConfig& config() const noexcept {
        return config_;
    }

private:
    bool write_atomic(const std::string& path, const std::string& body);

    SnapshotPublisherConfig config_;
    std::array<std::string, 2> json_buf_;
    std::array<std::string, 2> prom_buf_;
    std::size_t front_ = 0;
    std::uint64_t publishes_ = 0;
    std::uint64_t failures_ = 0;
    std::string tmp_path_;  ///< scratch
};

}  // namespace blinkradar::obs::telemetry
