#include "obs/telemetry/export.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/contracts.hpp"

namespace blinkradar::obs::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    BR_ASSERT(ec == std::errc());
    out.append(buf, end);
}

void append_f64(std::string& out, double v) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    BR_ASSERT(ec == std::errc());
    out.append(buf, end);
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; dotted
/// registry names map the obvious way (fleet.stage.guard ->
/// fleet_stage_guard).
void append_sanitized(std::string& out, const std::string& name) {
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9' && i != 0) || c == '_' ||
                        c == ':';
        out += ok ? c : '_';
    }
}

}  // namespace

void append_prometheus(const MetricsRegistry& registry, std::string& out) {
    // std::map iteration is name-sorted and every number is formatted
    // with to_chars, so equal registries render byte-identically.
    for (const auto& [name, c] : registry.counters()) {
        out += "# TYPE ";
        append_sanitized(out, name);
        out += " counter\n";
        append_sanitized(out, name);
        out += ' ';
        append_u64(out, c.value());
        out += '\n';
    }
    for (const auto& [name, g] : registry.gauges()) {
        out += "# TYPE ";
        append_sanitized(out, name);
        out += " gauge\n";
        append_sanitized(out, name);
        out += ' ';
        append_f64(out, g.value());
        out += '\n';
    }
    for (const auto& [name, h] : registry.histograms()) {
        out += "# TYPE ";
        append_sanitized(out, name);
        out += " histogram\n";
        std::uint64_t cumulative = 0;
        const auto& counts = h.counts();
        for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
            cumulative += counts[b];
            append_sanitized(out, name);
            out += "_bucket{le=\"";
            append_u64(out, LatencyHistogram::kBucketBoundsNs[b]);
            out += "\"} ";
            append_u64(out, cumulative);
            out += '\n';
        }
        append_sanitized(out, name);
        out += "_bucket{le=\"+Inf\"} ";
        append_u64(out, h.count());
        out += '\n';
        append_sanitized(out, name);
        out += "_sum ";
        append_u64(out, h.sum_ns());
        out += '\n';
        append_sanitized(out, name);
        out += "_count ";
        append_u64(out, h.count());
        out += '\n';
    }
}

std::string snapshot_to_prometheus(const MetricsRegistry& registry) {
    std::string out;
    out.reserve(1024);
    append_prometheus(registry, out);
    return out;
}

SnapshotPublisher::SnapshotPublisher(SnapshotPublisherConfig config)
    : config_(std::move(config)) {}

bool SnapshotPublisher::write_atomic(const std::string& path,
                                     const std::string& body) {
    tmp_path_.assign(path);
    tmp_path_ += ".tmp";
    std::FILE* f = std::fopen(tmp_path_.c_str(), "wb");
    if (f == nullptr) return false;
    const bool wrote =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::remove(tmp_path_.c_str());
        return false;
    }
    if (std::rename(tmp_path_.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path_.c_str());
        return false;
    }
    return true;
}

bool SnapshotPublisher::publish(const MetricsRegistry& registry) {
    const std::size_t back = 1 - front_;
    json_buf_[back].clear();
    append_snapshot_json(registry, json_buf_[back]);
    prom_buf_[back].clear();
    append_prometheus(registry, prom_buf_[back]);
    bool ok = true;
    if (!config_.json_path.empty())
        ok = write_atomic(config_.json_path, json_buf_[back]) && ok;
    if (!config_.prom_path.empty())
        ok = write_atomic(config_.prom_path, prom_buf_[back]) && ok;
    front_ = back;
    ++publishes_;
    if (!ok) ++failures_;
    return ok;
}

}  // namespace blinkradar::obs::telemetry
