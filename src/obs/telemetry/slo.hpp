// SLO burn-rate tracking for the 40 ms enqueue->result objective.
//
// Wall-clock latency cannot carry an SLO verdict in this codebase —
// every load-shedding decision must replay bit-identically. So the
// tracker consumes the ingest layer's *deterministic* latency proxy:
// the number of ticks a frame waited in its bounded queue before
// delivery. One tick is one pump of the 25 fps cadence (40 ms nominal),
// so latency_ns = age_ticks * tick_ns, and a frame breaches the 40 ms
// SLO exactly when it waited more than one full tick. Good/bad tallies,
// the latency histogram, and both burn rates are therefore identical at
// any shard/thread count — the overload drill asserts it.
//
// Burn rate follows the standard multi-window formulation: over a
// short window (fast detection) and a long window (sustained breach),
// burn = bad_fraction / error_budget. burn > 1 means the error budget
// is being spent faster than provisioned; the short window flips
// during an overload shed and recovers once the backlog drains.
//
// Hot path: record_frame is integer arithmetic plus counter bumps (no
// allocation, no locking — the tracker belongs to the one thread
// driving the front-end). tick() slides the windows and refreshes the
// exported gauges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace blinkradar::obs::telemetry {

struct SloConfig {
    std::uint64_t slo_ns = 40'000'000;   ///< the 40 ms objective
    std::uint64_t tick_ns = 40'000'000;  ///< nominal duration of one tick
    std::size_t short_window_ticks = 8;
    std::size_t long_window_ticks = 64;
    double error_budget = 0.01;  ///< tolerated bad-frame fraction
    std::string metric_prefix = "ingest.slo.";
};

class SloTracker {
public:
    /// `registry` is optional and not owned; pass nullptr to track
    /// without exporting. Metric names under config.metric_prefix:
    /// good / bad (counters), burn_short / burn_long / burning
    /// (gauges), enqueue_to_result_ns (histogram).
    explicit SloTracker(SloConfig config = {},
                        MetricsRegistry* registry = nullptr);

    /// One delivered frame that waited `age_ticks` ticks.
    void record_frame(std::uint64_t age_ticks);

    /// End of tick: slide both windows, refresh burn rates and gauges.
    void tick();

    std::uint64_t good() const noexcept { return good_total_; }
    std::uint64_t bad() const noexcept { return bad_total_; }
    double short_burn() const noexcept { return short_burn_; }
    double long_burn() const noexcept { return long_burn_; }
    /// Error budget burning faster than provisioned (short window).
    bool burning() const noexcept { return short_burn_ > 1.0; }
    const SloConfig& config() const noexcept { return config_; }

private:
    struct Window {
        explicit Window(std::size_t n) : good(n, 0), bad(n, 0) {}
        void push(std::uint64_t g, std::uint64_t b) {
            good_sum = good_sum - good[head] + g;
            bad_sum = bad_sum - bad[head] + b;
            good[head] = g;
            bad[head] = b;
            head = (head + 1) % good.size();
        }
        double bad_fraction() const noexcept {
            const std::uint64_t total = good_sum + bad_sum;
            return total == 0 ? 0.0
                              : static_cast<double>(bad_sum) /
                                    static_cast<double>(total);
        }
        std::vector<std::uint64_t> good, bad;
        std::uint64_t good_sum = 0, bad_sum = 0;
        std::size_t head = 0;
    };

    SloConfig config_;
    Window short_w_;
    Window long_w_;
    std::uint64_t cur_good_ = 0, cur_bad_ = 0;
    std::uint64_t good_total_ = 0, bad_total_ = 0;
    double short_burn_ = 0.0, long_burn_ = 0.0;
    Counter* good_c_ = nullptr;
    Counter* bad_c_ = nullptr;
    Gauge* short_g_ = nullptr;
    Gauge* long_g_ = nullptr;
    Gauge* burning_g_ = nullptr;
    LatencyHistogram* latency_h_ = nullptr;
};

}  // namespace blinkradar::obs::telemetry
