#include "obs/telemetry/aggregator.hpp"

#include <algorithm>
#include <charconv>

#include "common/contracts.hpp"

namespace blinkradar::obs::telemetry {

Aggregator::Aggregator(AggregatorConfig config) : config_(std::move(config)) {
    spfx_.reserve(32);
    key_.reserve(64);
}

void Aggregator::session_prefix_into(std::uint64_t id,
                                     std::string& out) const {
    out.assign(config_.fleet_prefix);
    out += 's';
    char buf[24];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), id);
    BR_ASSERT(ec == std::errc());
    out.append(buf, end);
    out += '.';
}

void Aggregator::begin_cycle() {
    ++cycles_;
    scores_.clear();
    // Retire last cycle's laggard detail by exact per-id prefix —
    // erase_prefix("fleet.s") would take "fleet.stage.*" with it.
    for (const std::uint64_t id : laggards_) {
        session_prefix_into(id, spfx_);
        out_.erase_prefix(spfx_);
    }
    laggards_.clear();
    out_.reset_values();
}

void Aggregator::add_session(std::uint64_t id,
                             const MetricsRegistry& session) {
    session_prefix_into(id, spfx_);
    // Per-session names lose their "fleet.s<id>." prefix; names without
    // it (shared-prefix fleets, per_session_metric_ids=false) fold
    // through unchanged — the roll-up then just mirrors merge_from.
    const auto rolled = [&](const std::string& name) -> const std::string& {
        if (name.size() > spfx_.size() &&
            name.compare(0, spfx_.size(), spfx_) == 0) {
            key_.assign(config_.fleet_prefix);
            key_.append(name, spfx_.size(), std::string::npos);
            return key_;
        }
        return name;
    };
    std::uint64_t score = 0;
    for (const auto& [name, c] : session.counters())
        out_.counter(rolled(name)).inc(c.value());
    for (const auto& [name, g] : session.gauges())
        out_.gauge(rolled(name)).set(g.value());
    for (const auto& [name, h] : session.histograms()) {
        const std::string& out_name = rolled(name);
        out_.histogram(out_name).merge_from(h);
        if (out_name.ends_with("stage.frame_total")) score = h.sum_ns();
    }
    scores_.emplace_back(id, score);
}

const std::vector<std::uint64_t>& Aggregator::select_laggards() {
    laggards_.clear();
    const std::size_t k = std::min(config_.top_k_laggards, scores_.size());
    if (k > 0) {
        std::partial_sort(scores_.begin(),
                          scores_.begin() + static_cast<std::ptrdiff_t>(k),
                          scores_.end(), [](const auto& a, const auto& b) {
                              if (a.second != b.second)
                                  return a.second > b.second;
                              return a.first < b.first;
                          });
        for (std::size_t i = 0; i < k; ++i)
            laggards_.push_back(scores_[i].first);
        std::sort(laggards_.begin(), laggards_.end());
    }
    out_.gauge("telemetry.sessions")
        .set(static_cast<double>(scores_.size()));
    out_.gauge("telemetry.laggards").set(static_cast<double>(k));
    out_.gauge("telemetry.cycles").set(static_cast<double>(cycles_));
    return laggards_;
}

void Aggregator::add_laggard_detail(std::uint64_t id,
                                    const MetricsRegistry& session) {
    session_prefix_into(id, spfx_);
    const auto mine = [&](const std::string& name) {
        return name.size() > spfx_.size() &&
               name.compare(0, spfx_.size(), spfx_) == 0;
    };
    for (const auto& [name, c] : session.counters())
        if (mine(name)) out_.counter(name).inc(c.value());
    for (const auto& [name, g] : session.gauges())
        if (mine(name)) out_.gauge(name).set(g.value());
    for (const auto& [name, h] : session.histograms())
        if (mine(name)) out_.histogram(name).merge_from(h);
}

void Aggregator::add_flat(const MetricsRegistry& registry) {
    out_.merge_from(registry);
}

}  // namespace blinkradar::obs::telemetry
