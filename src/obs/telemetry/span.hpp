// End-to-end frame tracing: one span per sampled frame, from wire
// decode to pipeline result.
//
// A span ID is minted at ingest decode (sampling stride shared with the
// metrics duty cycle and widened by the shed ladder), rides inside the
// RadarFrame through the bounded queue, admission, and the fleet pump,
// and is completed by the pipeline after the frame's stages ran. The
// completed span is emitted as one JSONL record of absolute per-hop
// timestamps:
//
//   {"span":N,"stream":S,"seq":Q,"decode_ns":..,"enqueue_ns":..,
//    "admit_ns":..,"pump_ns":..,"stage_ns":[8 stage-end times],
//    "result_ns":..}
//
// Hops decode..pump are stamped with the steady clock at the moment
// they happen (possibly on different threads; the queue's mutex orders
// them). Stage times are synthesised at completion from the pump stamp
// plus the pipeline's measured per-stage durations, and the whole chain
// is clamped monotonically non-decreasing at emission — the overload
// drill asserts exactly that, so it holds by construction even across
// TSC/steady clock disagreement.
//
// Storage is a fixed ring of 64 slots keyed by span_id % 64: no
// allocation, no unbounded growth. A span overtaken by 64 newer mints
// before completing is abandoned (counted); a hop or completion for an
// overwritten span is ignored. All operations take one internal mutex —
// they only run for sampled frames (1-in-16 or sparser), so the hot
// path's entire cost is the `span_id == 0` branch.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/trace.hpp"

namespace blinkradar::obs::telemetry {

enum class SpanHop : std::uint8_t {
    kDecode = 0,   ///< frame decoded off the wire
    kEnqueue = 1,  ///< accepted by the per-stream bounded queue
    kAdmit = 2,    ///< popped under the governor's budget, handed on
    kPump = 3,     ///< fleet worker starts processing the frame
};
inline constexpr std::size_t kSpanHops = 4;

class SpanCollector {
public:
    static constexpr std::size_t kSlots = 64;
    static constexpr std::size_t kMaxStages = 16;

    /// `sink` is optional and not owned; records are kept inspectable
    /// via last_record() either way.
    explicit SpanCollector(TraceSink* sink = nullptr);

    /// Open a span: returns its non-zero id with the decode hop
    /// stamped. Overwrites the slot of any span 64 mints older.
    std::uint64_t mint(std::uint64_t stream, std::uint64_t seq);

    /// Stamp one hop. id 0 (unsampled frame) and stale ids are ignored.
    void hop(std::uint64_t span_id, SpanHop h);

    /// Close a span: synthesise stage timestamps from the pump hop plus
    /// `stage_dur_ns[0..n_stages)`, clamp the chain monotone, emit the
    /// JSONL record, free the slot.
    void complete(std::uint64_t span_id, const std::uint64_t* stage_dur_ns,
                  std::size_t n_stages);

    std::uint64_t minted() const;
    std::uint64_t completed() const;
    std::uint64_t abandoned() const;
    /// Copy of the most recent record (for tests and drills).
    std::string last_record() const;

private:
    struct Slot {
        std::uint64_t id = 0;  ///< 0 = free
        std::uint64_t stream = 0;
        std::uint64_t seq = 0;
        std::array<std::uint64_t, kSpanHops> hop_ns{};
    };

    mutable std::mutex mutex_;
    TraceSink* sink_;
    std::array<Slot, kSlots> slots_{};
    std::uint64_t next_id_ = 1;
    std::uint64_t minted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t abandoned_ = 0;
    std::string line_;         ///< reused emission scratch
    std::string last_record_;  ///< copy of the last emitted line
};

}  // namespace blinkradar::obs::telemetry
