// Per-kernel latency histograms for the SoA frame path.
//
// The stage histograms (stage.preprocess, stage.background, ...) time
// whole pipeline stages; after the SIMD refactor fused several stages
// into single kernels, regressions inside one kernel would hide in the
// stage aggregate. These timers give each hot kernel its own histogram
// (kernel.preprocess_fir, kernel.background_fused, ...), duty-cycled with
// the same detailed-frame sampling as the stage timers so the steady-state
// cost stays at one branch per kernel.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace blinkradar::obs {

struct KernelTimers {
    LatencyHistogram* preprocess_fir = nullptr;
    LatencyHistogram* preprocess_smooth = nullptr;
    LatencyHistogram* movement_energy = nullptr;
    LatencyHistogram* background_fused = nullptr;
    LatencyHistogram* variance_scan = nullptr;

    void register_in(MetricsRegistry& registry, const std::string& prefix) {
        preprocess_fir = &registry.histogram(prefix + "kernel.preprocess_fir");
        preprocess_smooth =
            &registry.histogram(prefix + "kernel.preprocess_smooth");
        movement_energy =
            &registry.histogram(prefix + "kernel.movement_energy");
        background_fused =
            &registry.histogram(prefix + "kernel.background_fused");
        variance_scan = &registry.histogram(prefix + "kernel.variance_scan");
    }
};

}  // namespace blinkradar::obs
