// Per-frame trace stream (JSONL), gated by the BLINKRADAR_TRACE
// environment variable.
//
// Tracing is the expensive, opt-in tier of the observability layer: one
// JSON line per processed frame (stage durations, guard verdict, health,
// waveform value). The pipeline reuses one line buffer so steady-state
// tracing does not allocate, but the formatting + I/O cost is real —
// never enable it while benchmarking the hot path.
//
// A sink belongs to one pipeline / one thread (same ownership rule as
// MetricsRegistry).
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <string_view>

namespace blinkradar::obs {

class TraceSink {
public:
    /// Open `path` for writing (truncating). Throws std::runtime_error
    /// if the file cannot be opened.
    explicit TraceSink(const std::string& path);

    /// Returns a sink writing to $BLINKRADAR_TRACE when that variable is
    /// set and non-empty, nullptr otherwise.
    static std::unique_ptr<TraceSink> from_env();

    ~TraceSink();

    /// Append one JSONL record (the newline is added here).
    void write_line(std::string_view line);

    /// Push buffered lines to the OS. The stream buffers for throughput,
    /// so a crash can swallow the most interesting tail of the trace;
    /// the Supervisor flushes on every escalation step, and the
    /// destructor flushes so a clean shutdown never loses lines either.
    void flush();

    const std::string& path() const noexcept { return path_; }
    std::size_t lines_written() const noexcept { return lines_; }

private:
    std::string path_;
    std::ofstream out_;
    std::size_t lines_ = 0;
};

}  // namespace blinkradar::obs
