// Always-on flight recorder: the pipeline's black box.
//
// Aggregate metrics (metrics.hpp) say *that* a detection went wrong;
// the post-crash slot files (core::Supervisor) say where the state ended
// up. Neither shows the frames and intermediate signals that *caused* an
// incident. The FlightRecorder closes that gap: bounded rings of
//
//   (a) recent raw I/Q frames, exactly as the sensor delivered them
//       (pre-guard, so a dump replays the original input);
//   (b) per-stage signal taps — one compact scalar record per frame
//       (guard verdict/health, selected-bin I/Q, arc-fit centre/radius/
//       residual, waveform sample, LEVD threshold/sigma and decisions)
//       plus decimated full range profiles (post-preprocess and
//       background-subtracted);
//   (c) pipeline events (health transitions, movement restarts, blink
//       emissions, bin switches, supervisor escalations);
//   (d) periodic metrics snapshots; and
//   (e) replay-base checkpoints: serialized pipeline state captured so
//       that every raw frame still in ring (a) is reachable from some
//       checkpoint — a dump is therefore a self-contained, self-
//       verifying reproduction of the incident (see core/postmortem.hpp
//       for the replay contract and tools/br_inspect for the CLI).
//
// Recording follows the frame path's zero-allocation rule: every ring
// slot is recycled (vectors keep their capacity across evictions), the
// checkpoint byte buffers round-robin through StateWriter's recycling
// constructor, and the steady-state record path performs no allocation
// once warm. Dumping — the incident path — may allocate freely.
//
// A recorder belongs to one pipeline at a time but deliberately lives
// *outside* it (same ownership rule as MetricsRegistry): the Supervisor
// replaces crashed pipelines, and the black box must survive the swap.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ring_buffer.hpp"
#include "dsp/dsp_types.hpp"
#include "radar/frame.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::obs {

/// Ring depths and capture cadences. The default channels are tiered
/// like an aircraft black box — fidelity drops as the horizon grows:
/// full-rate raw I/Q frames for the last ~20 s (512 at 25 Hz, the
/// bit-replayable incident window), decimated range profiles spanning
/// ~41 s (spatial context either side of it), and per-frame scalar
/// taps for ~82 s (a whole escalation ladder run plus the healthy
/// lead-up). The raw ring is also sized to stay cache-resident: at the
/// default 151-bin geometry 512 slots are ~1.2 MB, and the per-frame
/// frame copy is what keeps the steady-state recording cost inside the
/// observability layer's <2 % budget (doubling the ring measurably
/// pushes the copy out of L2 on small automotive-class parts).
struct FlightRecorderConfig {
    std::size_t raw_ring_frames = 512;    ///< raw I/Q frames kept
    std::size_t tap_ring_frames = 2048;   ///< per-frame scalar taps kept
    std::size_t event_ring = 512;         ///< pipeline events kept
    std::size_t profile_ring = 64;        ///< full-profile taps kept
    /// Full range profiles (post-preprocess + background-subtracted) are
    /// captured on 1 frame in this many — copying two whole profiles
    /// every frame would eat the overhead budget on its own. At 1-in-16
    /// the 64-slot ring spans 1024 frames, twice the raw ring.
    std::size_t profile_interval_frames = 16;
    std::size_t metrics_ring = 32;        ///< metrics snapshots kept
    std::size_t metrics_interval_frames = 256;
    /// Self-checkpoint cadence (frames): the owning pipeline serializes
    /// its state into the recorder so replay has a base. When non-zero
    /// it must not exceed raw_ring_frames / 2, so at least one retained
    /// checkpoint always predates the oldest raw frame in the ring.
    ///
    /// 0 (the default) disables self-checkpointing. Serializing the
    /// pipeline's ~600 KB detection window is memory-bandwidth-bound
    /// (~120 us per checkpoint even with CRCs deferred), which no
    /// cadence the invariant above allows can amortize into the
    /// recorder's <2 % per-frame budget. The supervised topology does
    /// not need it anyway: core::Supervisor already serializes the
    /// pipeline for crash recovery and feeds every autosnapshot to the
    /// recorder via note_checkpoint(), so replay bases arrive at zero
    /// marginal cost. Standalone pipelines either stay within the raw
    /// ring (replay starts from a cold pipeline at frame 1) or opt in
    /// here, accepting the serialization cost.
    std::size_t checkpoint_interval_frames = 0;
};

/// One compact per-frame record of every stage's scalar output.
struct FrameTap {
    std::uint64_t seq = 0;       ///< recorder sequence number
    double t = 0.0;              ///< frame timestamp
    std::uint8_t verdict = 0;    ///< core::FrameVerdict
    std::uint8_t health = 0;     ///< core::HealthState after the frame
    bool cold_start = false;
    bool restarted = false;
    bool has_blink = false;
    std::int64_t selected_bin = -1;  ///< -1 during cold start
    dsp::Complex bin_iq{0.0, 0.0};   ///< selected-bin subtracted I/Q
    double fit_cx = 0.0, fit_cy = 0.0;  ///< viewing-position centre
    double fit_radius = 0.0;
    double fit_residual = 0.0;
    double waveform = 0.0;           ///< d(t) fed to LEVD
    double levd_threshold = 0.0;
    double levd_sigma = 0.0;
    double blink_peak_s = 0.0, blink_duration_s = 0.0;
    double blink_magnitude = 0.0, blink_strength = 0.0;
    std::uint32_t repaired_samples = 0;
    std::uint32_t bridged_frames = 0;
};

/// Things worth a timeline entry. `a`/`b` carry event-specific payloads
/// (documented per enumerator in to_string()'s table in the .cpp).
enum class RecorderEvent : std::uint8_t {
    kHealthTransition,    ///< a = from, b = to (core::HealthState)
    kMovementRestart,     ///< large body movement reset the pipeline
    kBinSwitch,           ///< a = old bin (-1 none), b = new bin
    kBlink,               ///< a = peak_s, b = strength
    kCheckpoint,          ///< replay-base checkpoint stored, a = bytes
    kSupervisorFault,     ///< exception caught in process()
    kSupervisorRetry,     ///< same-frame retry
    kSupervisorWarmRestore,  ///< pipeline restored from a snapshot
    kSupervisorColdRestart,  ///< pipeline rebuilt from scratch
    kSupervisorBackoff,   ///< a = frames to skip
    kSupervisorStall,     ///< stall watchdog fired, a = gap seconds
    kDump,                ///< a dump was written (appears in later dumps)
};
const char* to_string(RecorderEvent type) noexcept;

struct TapEvent {
    std::uint64_t seq = 0;
    double t = 0.0;
    std::uint8_t type = 0;  ///< RecorderEvent
    double a = 0.0, b = 0.0;
};

/// Periodic numeric roll-up (plain values, no registry machinery, so
/// recording one is a struct copy).
struct MetricsSnap {
    std::uint64_t seq = 0;
    double t = 0.0;
    std::uint64_t frames = 0, blinks = 0, restarts = 0;
    std::uint64_t quarantined = 0, repaired = 0, bridged = 0, gaps = 0;
    std::uint64_t signal_losses = 0, warm_restarts = 0;
    double fault_rate = 0.0, levd_threshold = 0.0, levd_sigma = 0.0;
};

/// Decoded contents of a flight dump (see decode_flight_dump).
struct FlightDump {
    std::uint16_t version = 0;
    std::string reason;
    std::uint64_t seq_at_dump = 0;
    /// True when any checkpoint was ever fed via note_checkpoint() — the
    /// owner replaced pipeline state at least once (Supervisor restores),
    /// so a replay may only base on a *retained* checkpoint: an evicted
    /// external checkpoint could mark a state replacement a cold replay
    /// would silently miss. Self-checkpoints serialize the live state of
    /// an uninterrupted run, so without external ones a cold replay from
    /// frame 1 is always faithful.
    bool external_checkpoints = false;

    struct RawFrame {
        std::uint64_t seq = 0;
        radar::RadarFrame frame;
    };
    std::vector<RawFrame> raw;  ///< oldest first, contiguous seq

    std::vector<FrameTap> taps;      ///< oldest first
    std::vector<TapEvent> events;    ///< oldest first
    std::vector<MetricsSnap> metrics;

    struct ProfileTap {
        std::uint64_t seq = 0;
        dsp::ComplexSignal pre;  ///< range profile after preprocess
        dsp::ComplexSignal sub;  ///< after background subtraction
    };
    std::vector<ProfileTap> profiles;

    struct Checkpoint {
        std::uint64_t seq = 0;  ///< state after processing frame `seq`
        std::vector<std::uint8_t> bytes;  ///< nested BRSN container
    };
    std::vector<Checkpoint> checkpoints;  ///< oldest first
};

/// The black box. See the file comment for the recording contract; the
/// call protocol per frame is:
///
///   seq = begin_frame(frame);          // raw ring, pre-guard
///   if (profiles_due()) tap_profiles(pre, sub);   // inside the stages
///   end_frame(tap);                    // scalar tap + events + metrics
///
/// plus note_checkpoint()/store_checkpoint() whenever a replay base is
/// captured (every checkpoint_interval_frames, or externally by the
/// Supervisor on its own snapshot cadence and after every restore).
class FlightRecorder {
public:
    explicit FlightRecorder(FlightRecorderConfig config = {});

    const FlightRecorderConfig& config() const noexcept { return config_; }

    /// Record the raw sensor frame and open a new sequence number.
    std::uint64_t begin_frame(const radar::RadarFrame& frame);

    /// True when the current frame should capture full range profiles.
    bool profiles_due() const noexcept { return profile_pending_; }

    /// Capture the decimated full-profile tap (first call per frame
    /// wins; bridged replays within one admit() share the slot).
    void tap_profiles(std::span<const dsp::Complex> pre,
                      std::span<const dsp::Complex> sub);

    /// Close the frame: store the scalar tap (tap.seq must be the value
    /// begin_frame returned).
    void end_frame(const FrameTap& tap);

    /// True when end_frame() just crossed the metrics cadence; the owner
    /// then records a MetricsSnap.
    bool metrics_due() const noexcept;
    void record_metrics(const MetricsSnap& snap);

    void record_event(RecorderEvent type, double t, double a = 0.0,
                      double b = 0.0);

    /// Self-checkpoint protocol (alloc-free once warm): the owner asks
    /// checkpoint_due() at the end of each frame, serializes into the
    /// recycled buffer from take_checkpoint_buffer() via
    /// state::StateWriter's recycling constructor, and hands the sealed
    /// bytes back through store_checkpoint().
    bool checkpoint_due() const noexcept;
    std::vector<std::uint8_t> take_checkpoint_buffer() noexcept;
    void store_checkpoint(std::vector<std::uint8_t>&& bytes);

    /// Externally fed replay base (the Supervisor's autosnapshot, and
    /// the restored bytes after every warm restore / cold restart —
    /// restores re-base the replay timeline on the state that is
    /// actually live). Copies into a recycled slot.
    void note_checkpoint(std::span<const std::uint8_t> bytes);

    /// Frames recorded so far (sequence numbers are 1-based).
    std::uint64_t seq() const noexcept { return seq_; }

    /// Serialize every ring as "BRFR"/"FR**" sections into an open
    /// container. `reason` is free-form ("frame_fault", "stall", ...).
    void dump(state::StateWriter& writer, std::string_view reason) const;

    /// Forget everything (rings and checkpoints; capacities are kept).
    void clear();

private:
    struct RawSlot {
        std::uint64_t seq = 0;
        double t = 0.0;
        dsp::ComplexSignal bins;
    };
    struct ProfileSlot {
        std::uint64_t seq = 0;
        dsp::ComplexSignal pre;
        dsp::ComplexSignal sub;
    };
    struct CheckpointSlot {
        std::uint64_t seq = 0;
        bool valid = false;
        /// Self-checkpoints are captured with deferred section CRCs
        /// (StateWriter::defer_crcs) so the steady-state cost is the
        /// bulk copy alone; dump() seals them on the way out. External
        /// checkpoints arrive already sealed and are passed through
        /// verbatim.
        bool sealed = true;
        std::vector<std::uint8_t> bytes;
    };

    void store_checkpoint_slot(std::uint64_t at_seq);

    FlightRecorderConfig config_;
    std::uint64_t seq_ = 0;
    bool profile_pending_ = false;
    bool metrics_pending_ = false;

    RingBuffer<RawSlot> raw_;
    RingBuffer<FrameTap> taps_;
    RingBuffer<TapEvent> events_;
    RingBuffer<ProfileSlot> profiles_;
    RingBuffer<MetricsSnap> metrics_;

    /// Two alternating replay-base checkpoints plus one spare buffer
    /// that round-robins through StateWriter: with a cadence of at most
    /// raw_ring_frames / 2, the older of the two always predates the
    /// oldest raw frame still in the ring.
    CheckpointSlot checkpoints_[2];
    std::size_t next_checkpoint_ = 0;
    std::vector<std::uint8_t> spare_checkpoint_buf_;
    bool external_checkpoints_ = false;  ///< see FlightDump
};

/// Decode the "BRFR"/"FR**" sections of a dump container. Throws
/// state::SnapshotError on any structural damage the container CRCs did
/// not already catch (missing sections, inconsistent counts, unsupported
/// versions).
FlightDump decode_flight_dump(state::StateReader& reader);

}  // namespace blinkradar::obs
