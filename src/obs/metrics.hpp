// Lightweight pipeline observability: named counters, gauges, and
// fixed-bucket latency histograms behind a MetricsRegistry.
//
// Design contract (mirrors the frame path's zero-allocation rule):
//   - registration happens at construction time (MetricsRegistry::counter
//     / gauge / histogram allocate once and return stable references);
//   - the hot path only increments plain integers / stores doubles — no
//     allocation, no locking, no string handling;
//   - a registry belongs to one pipeline / one thread. Parallel batch
//     engines give every session its own registry and merge_from() the
//     results afterwards (deterministic in merge order).
//
// snapshot_to_json / snapshot_to_csv serialise a registry with sorted
// metric names and a fixed field order, so two registries holding the
// same values produce byte-identical snapshots.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace blinkradar::obs {

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_ += n; }
    std::uint64_t value() const noexcept { return value_; }
    void reset() noexcept { value_ = 0; }

private:
    std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (threshold, fault rate, ...).
class Gauge {
public:
    void set(double v) noexcept { value_ = v; }
    double value() const noexcept { return value_; }
    void reset() noexcept { value_ = 0.0; }

private:
    double value_ = 0.0;
};

/// Fixed-bucket latency histogram over nanosecond durations.
///
/// Bucket upper bounds are powers of two from 128 ns to 4 ms plus an
/// overflow bucket — wide enough for a sub-microsecond DSP stage and a
/// multi-millisecond cold-start fit alike. record() is a bounds scan
/// plus three integer updates; no allocation ever.
class LatencyHistogram {
public:
    static constexpr std::size_t kBuckets = 16;

    /// Upper bound (inclusive) of bucket i in nanoseconds.
    static constexpr std::array<std::uint64_t, kBuckets> kBucketBoundsNs = {
        128,       256,       512,        1'024,     2'048,    4'096,
        8'192,     16'384,    32'768,     65'536,    131'072,  262'144,
        524'288,   1'048'576, 2'097'152,  4'194'304,
    };

    void record(std::uint64_t ns) noexcept {
        // Power-of-two bounds make the bucket a bit-scan, not a linear
        // search: bucket b covers (2^(6+b), 2^(7+b)] for b >= 1.
        std::size_t b =
            ns <= kBucketBoundsNs[0]
                ? 0
                : static_cast<std::size_t>(std::bit_width(ns - 1)) - 7;
        if (b > kBuckets) b = kBuckets;  // overflow bucket
        ++counts_[b];
        ++count_;
        sum_ns_ += ns;
        if (ns < min_ns_) min_ns_ = ns;
        if (ns > max_ns_) max_ns_ = ns;
    }

    std::uint64_t count() const noexcept { return count_; }
    std::uint64_t sum_ns() const noexcept { return sum_ns_; }
    std::uint64_t min_ns() const noexcept { return count_ ? min_ns_ : 0; }
    std::uint64_t max_ns() const noexcept { return max_ns_; }
    double mean_ns() const noexcept {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_ns_) /
                                 static_cast<double>(count_);
    }

    /// Bucket occupancy; index kBuckets is the overflow bucket.
    const std::array<std::uint64_t, kBuckets + 1>& counts() const noexcept {
        return counts_;
    }

    /// Approximate quantile (q in [0,1]) by linear interpolation inside
    /// the containing bucket. Exact enough for p50/p99 dashboards.
    double quantile_ns(double q) const noexcept;

    void merge_from(const LatencyHistogram& other) noexcept;

    void reset() noexcept {
        counts_.fill(0);
        count_ = 0;
        sum_ns_ = 0;
        min_ns_ = UINT64_MAX;
        max_ns_ = 0;
    }

private:
    std::array<std::uint64_t, kBuckets + 1> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ns_ = 0;
    std::uint64_t min_ns_ = UINT64_MAX;
    std::uint64_t max_ns_ = 0;
};

/// Owns named metrics. Registration is idempotent: asking for an
/// existing name returns the same metric, so merge targets and repeated
/// construction paths need no bookkeeping. References stay valid for the
/// registry's lifetime (node-based storage).
class MetricsRegistry {
public:
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    LatencyHistogram& histogram(const std::string& name) {
        return histograms_[name];
    }

    /// Fold another registry into this one: counters and histograms
    /// accumulate, gauges take the source's value (last writer wins).
    /// Missing metrics are created. Merge in a fixed order (e.g. session
    /// index) for deterministic gauge results.
    void merge_from(const MetricsRegistry& other);

    /// Zero every metric in place without touching the name set. Node
    /// storage is untouched, so outstanding references stay valid and no
    /// allocation happens — this is how a reused aggregation target stays
    /// alloc-free across cycles.
    void reset_values() noexcept;

    /// Drop every metric whose name starts with `prefix`. Used by the
    /// aggregator between cycles to retire last cycle's per-laggard
    /// detail keys, keeping instantaneous cardinality bounded.
    void erase_prefix(const std::string& prefix);

    const std::map<std::string, Counter>& counters() const noexcept {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const noexcept {
        return gauges_;
    }
    const std::map<std::string, LatencyHistogram>& histograms()
        const noexcept {
        return histograms_;
    }

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, LatencyHistogram> histograms_;
};

/// Deterministic JSON snapshot: metric names sorted, fixed field order,
/// schema "blinkradar-obs-v1".
std::string snapshot_to_json(const MetricsRegistry& registry);

/// Same rendering appended into a caller-owned buffer, so a cyclic
/// publisher can reuse capacity instead of allocating per snapshot.
void append_snapshot_json(const MetricsRegistry& registry, std::string& out);

/// Deterministic CSV snapshot: one row per metric
/// (kind,name,count,sum_ns,min_ns,max_ns,p50_ns,p99_ns,value).
void snapshot_to_csv(const MetricsRegistry& registry,
                     const std::string& path);

}  // namespace blinkradar::obs
