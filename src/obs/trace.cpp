#include "obs/trace.hpp"

#include <stdexcept>

#include "common/env_config.hpp"

namespace blinkradar::obs {

TraceSink::TraceSink(const std::string& path) : path_(path), out_(path) {
    if (!out_)
        throw std::runtime_error("TraceSink: cannot open " + path);
}

std::unique_ptr<TraceSink> TraceSink::from_env() {
    // One-time process snapshot (see common/env_config.hpp): a runtime
    // setenv cannot race concurrent session construction here.
    const std::string& path = process_config().trace_path;
    if (path.empty()) return nullptr;
    return std::make_unique<TraceSink>(path);
}

TraceSink::~TraceSink() {
    flush();
}

void TraceSink::flush() {
    out_.flush();
}

void TraceSink::write_line(std::string_view line) {
    out_.write(line.data(), static_cast<std::streamsize>(line.size()));
    out_.put('\n');
    ++lines_;
}

}  // namespace blinkradar::obs
