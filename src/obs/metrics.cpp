#include "obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <limits>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "obs/stage_timer.hpp"

namespace blinkradar::obs {

namespace detail {

#if defined(BLINKRADAR_OBS_TSC)
namespace {
double measure_ns_per_tick() noexcept {
    // Spin for ~200 us against steady_clock; long enough that the two
    // clock reads bracketing the spin contribute <0.1 % error.
    const std::uint64_t ns0 = steady_ns();
    const std::uint64_t t0 = now_ticks();
    std::uint64_t ns1 = ns0;
    while (ns1 - ns0 < 200'000) ns1 = steady_ns();
    const std::uint64_t t1 = now_ticks();
    if (t1 <= t0) return 1.0;  // non-monotonic TSC: degrade gracefully
    return static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0);
}
}  // namespace

void calibrate_clock() noexcept {
    // Magic static: concurrent first-time constructions serialize on the
    // one-time measurement (C++11 initialization guard), so every
    // session observes the *same* tick ratio — the old check-then-store
    // let two racing constructors each measure and publish different
    // ratios, skewing whichever histograms recorded between the stores.
    // The store itself is idempotent (always the same value), so the
    // relaxed atomic stays a plain load on the hot path.
    static const double ratio = measure_ns_per_tick();
    g_ns_per_tick.store(ratio, std::memory_order_relaxed);
}
#else
void calibrate_clock() noexcept {}
#endif

}  // namespace detail

double LatencyHistogram::quantile_ns(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= kBuckets; ++b) {
        if (counts_[b] == 0) continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts_[b];
        if (static_cast<double>(cumulative) < target) continue;
        const double lo =
            b == 0 ? 0.0 : static_cast<double>(kBucketBoundsNs[b - 1]);
        const double hi = b < kBuckets
                              ? static_cast<double>(kBucketBoundsNs[b])
                              : static_cast<double>(max_ns_);
        const double frac =
            (target - before) / static_cast<double>(counts_[b]);
        return lo + std::clamp(frac, 0.0, 1.0) * (std::max(hi, lo) - lo);
    }
    return static_cast<double>(max_ns_);
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) noexcept {
    for (std::size_t b = 0; b <= kBuckets; ++b)
        counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.count_ > 0) {
        min_ns_ = std::min(min_ns_, other.min_ns_);
        max_ns_ = std::max(max_ns_, other.max_ns_);
    }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_)
        counters_[name].inc(c.value());
    for (const auto& [name, g] : other.gauges_)
        gauges_[name].set(g.value());
    for (const auto& [name, h] : other.histograms_)
        histograms_[name].merge_from(h);
}

void MetricsRegistry::reset_values() noexcept {
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, g] : gauges_) g.reset();
    for (auto& [name, h] : histograms_) h.reset();
}

namespace {

template <typename Map>
void erase_prefix_from(Map& map, const std::string& prefix) {
    auto it = map.lower_bound(prefix);
    while (it != map.end() && it->first.compare(0, prefix.size(), prefix) == 0)
        it = map.erase(it);
}

}  // namespace

void MetricsRegistry::erase_prefix(const std::string& prefix) {
    if (prefix.empty()) return;
    erase_prefix_from(counters_, prefix);
    erase_prefix_from(gauges_, prefix);
    erase_prefix_from(histograms_, prefix);
}

namespace {

/// Shortest round-trip decimal for a double (locale-independent).
std::string format_double(double v) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    BR_ASSERT(ec == std::errc());
    return std::string(buf, end);
}

}  // namespace

std::string snapshot_to_json(const MetricsRegistry& registry) {
    std::string out;
    out.reserve(1024);
    append_snapshot_json(registry, out);
    return out;
}

void append_snapshot_json(const MetricsRegistry& registry, std::string& out) {
    // std::map iteration is name-sorted, and every numeric field is
    // formatted locale-independently, so equal registries serialise to
    // byte-identical snapshots.
    out += "{\n  \"schema\": \"blinkradar-obs-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : registry.counters()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(c.value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : registry.gauges()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + format_double(g.value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : registry.histograms()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " +
               std::to_string(h.count()) +
               ", \"sum_ns\": " + std::to_string(h.sum_ns()) +
               ", \"min_ns\": " + std::to_string(h.min_ns()) +
               ", \"max_ns\": " + std::to_string(h.max_ns()) +
               ", \"mean_ns\": " + format_double(h.mean_ns()) +
               ", \"p50_ns\": " + format_double(h.quantile_ns(0.5)) +
               ", \"p99_ns\": " + format_double(h.quantile_ns(0.99)) +
               ", \"buckets\": [";
        const auto& counts = h.counts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
            if (b != 0) out += ", ";
            out += std::to_string(counts[b]);
        }
        out += "]}";
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
}

void snapshot_to_csv(const MetricsRegistry& registry,
                     const std::string& path) {
    CsvWriter csv(path, {"kind", "name", "count", "sum_ns", "min_ns",
                         "max_ns", "p50_ns", "p99_ns", "value"});
    for (const auto& [name, c] : registry.counters())
        csv.row(std::vector<std::string>{"counter", name, "", "", "", "", "",
                                         "", std::to_string(c.value())});
    for (const auto& [name, g] : registry.gauges())
        csv.row(std::vector<std::string>{"gauge", name, "", "", "", "", "",
                                         "", format_double(g.value())});
    for (const auto& [name, h] : registry.histograms())
        csv.row(std::vector<std::string>{
            "histogram", name, std::to_string(h.count()),
            std::to_string(h.sum_ns()), std::to_string(h.min_ns()),
            std::to_string(h.max_ns()), format_double(h.quantile_ns(0.5)),
            format_double(h.quantile_ns(0.99)), ""});
}

}  // namespace blinkradar::obs
