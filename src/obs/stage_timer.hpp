// RAII stage-latency span feeding a LatencyHistogram.
//
// The frame path budget is ~8.5 us; clock_gettime costs ~20 ns per call,
// which across eight stage spans would already eat >3 % of the frame. On
// x86-64 the timer therefore reads the TSC directly (~6 ns bare metal,
// ~17 ns under a hypervisor) and converts ticks to nanoseconds with a
// ratio calibrated once, at first use — never on the hot path. Elsewhere
// it falls back to steady_clock. Callers that still cannot afford two
// reads per span every frame duty-cycle the span by passing a null
// histogram on skipped frames (see BlinkRadarPipeline::stage_hist).
//
// A StageTimer constructed with a null histogram is inert: no clock
// read, no store — the disabled-instrumentation cost is one branch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define BLINKRADAR_OBS_TSC 1
#endif

namespace blinkradar::obs {

namespace detail {

inline std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

#if defined(BLINKRADAR_OBS_TSC)
inline std::uint64_t now_ticks() noexcept { return __rdtsc(); }

/// ns per TSC tick, measured once over a short spin (~200 us) by
/// calibrate_clock(); 0 until then (durations read as 0, never garbage).
/// Relaxed atomic: hot-path loads compile to a plain move while
/// concurrent pipeline constructions stay race-free.
inline std::atomic<double> g_ns_per_tick{0.0};

inline double ns_per_tick() noexcept {
    return g_ns_per_tick.load(std::memory_order_relaxed);
}
#else
inline std::uint64_t now_ticks() noexcept { return steady_ns(); }
inline double ns_per_tick() noexcept { return 1.0; }
#endif

inline std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                      ns_per_tick());
}

/// Force tick-rate calibration (construction-time hook).
void calibrate_clock() noexcept;

}  // namespace detail

/// Times the enclosing scope into `hist` (and optionally mirrors the
/// duration into `*last_ns` for per-frame tracing). Null `hist` disables
/// the span entirely.
class StageTimer {
public:
    explicit StageTimer(LatencyHistogram* hist,
                        std::uint64_t* last_ns = nullptr) noexcept
        : hist_(hist), last_ns_(last_ns) {
        if (hist_ != nullptr) start_ = detail::now_ticks();
    }

    ~StageTimer() {
        if (hist_ == nullptr) return;
        const std::uint64_t ns =
            detail::ticks_to_ns(detail::now_ticks() - start_);
        hist_->record(ns);
        if (last_ns_ != nullptr) *last_ns_ = ns;
    }

    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

private:
    LatencyHistogram* hist_;
    std::uint64_t* last_ns_;
    std::uint64_t start_ = 0;
};

}  // namespace blinkradar::obs
