// Crash-safe state snapshots: a versioned, little-endian, CRC-checked
// binary container for pipeline state.
//
// BlinkRadar runs unattended on in-vehicle hardware where process
// crashes and watchdog resets are routine. Losing the accumulated
// detector state (background model, selected bin, LEVD noise statistics)
// on every restart blinds the detector for its whole reconvergence
// window; snapshotting that state periodically bounds the loss to one
// snapshot interval. This module owns the wire format only — each
// pipeline stage implements save_state()/restore_state() against the
// StateWriter/StateReader below, and core::Supervisor owns the policy
// (when to snapshot, which slot, how to escalate when restore fails).
//
// Format (all integers little-endian, regardless of host):
//
//   File    := Header Section*
//   Header  := magic "BRSN" (4 bytes) | format_version u16 | flags u16
//   Section := tag u32 | version u16 | reserved u16 (0) |
//              payload_len u32 | payload bytes | crc32 u32
//
// The section CRC-32 (IEEE 802.3, reflected) covers the 12 header bytes
// plus the payload, so a corrupted length field can never send the
// parser off into the weeds unnoticed. Compatibility rules:
//   - unknown section tags are skipped (forward compatible);
//   - a section version above the reader's ceiling is an error the
//     *component* raises (it knows its own ceiling);
//   - components may append fields to a section in later versions and
//     must default them when restoring an older version; close_section()
//     therefore tolerates unread payload tails;
//   - any truncation, length overrun, duplicated tag, or CRC mismatch
//     is rejected at parse time with a descriptive SnapshotError —
//     never undefined behaviour (the reader is fuzzed with mutated
//     snapshots in test_state).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsp/dsp_types.hpp"

namespace blinkradar::state {

/// Thrown for every malformed-snapshot condition (truncation, CRC
/// mismatch, bad magic, missing/duplicate sections, type mismatches,
/// unsupported versions, file-system failures). Unlike
/// ContractViolation this is a *runtime* condition: snapshots come from
/// disk and may be arbitrarily damaged; callers (the Supervisor) are
/// expected to catch it and fall back.
class SnapshotError : public std::runtime_error {
public:
    explicit SnapshotError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/// Four-character section tag, e.g. make_tag("LEVD").
constexpr std::uint32_t make_tag(const char (&s)[5]) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/// Printable form of a tag for error messages ("LEVD" or "0x1A2B3C4D"
/// when not printable).
std::string tag_name(std::uint32_t tag);

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Serialises state into the container format. Usage: begin_section,
/// write_* calls, end_section — repeated per component — then finish().
class StateWriter {
public:
    StateWriter();

    /// Construct reusing `recycle`'s storage (contents are discarded,
    /// capacity is kept). Steady-state writers — the flight recorder's
    /// periodic replay-base checkpoints — round-robin a spare buffer
    /// through this constructor so serialisation stops allocating once
    /// the buffer has grown to the working-set size.
    explicit StateWriter(std::vector<std::uint8_t>&& recycle);

    void begin_section(std::uint32_t tag, std::uint16_t version);
    void end_section();

    /// Switch end_section() to writing a zero CRC placeholder instead of
    /// computing the real checksum. Checksumming is by far the dominant
    /// cost of serialising large states (the table-driven CRC runs at a
    /// few ns/byte, ~30x the bulk-copy cost), so hot-path writers — the
    /// flight recorder's periodic in-memory replay-base checkpoints —
    /// defer it and call seal_section_crcs() once, at dump time, on the
    /// rare buffers that actually leave the process. A deferred
    /// container MUST be sealed before it is handed to StateReader.
    void defer_crcs() noexcept { defer_crc_ = true; }

    void write_u8(std::uint8_t v);
    void write_u16(std::uint16_t v);
    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_i64(std::int64_t v);
    void write_f64(double v);
    void write_bool(bool v);
    void write_size(std::size_t v) { write_u64(v); }
    void write_complex(const dsp::Complex& v);
    void write_f64_span(std::span<const double> v);
    void write_complex_span(std::span<const dsp::Complex> v);
    void write_u8_span(std::span<const std::uint8_t> v);

    /// Write a structure-of-arrays complex signal (`re`/`im` of equal
    /// length) with the exact wire bytes of write_complex_span on the
    /// interleaved equivalent, so AoS and SoA holders of the same signal
    /// produce identical sections.
    void write_complex_planes(std::span<const double> re,
                              std::span<const double> im);

    /// Seal the container and hand back the bytes. The writer is spent
    /// afterwards; begin a new one for the next snapshot.
    std::vector<std::uint8_t> finish();

private:
    void append_raw_u16(std::uint16_t v);
    void append_raw_u32(std::uint32_t v);
    void append_raw_u64(std::uint64_t v);

    std::vector<std::uint8_t> buf_;
    std::size_t section_header_ = 0;  ///< offset of the open section
    bool in_section_ = false;
    bool finished_ = false;
    bool defer_crc_ = false;
};

/// Recompute and fill in every section CRC of a finished container in
/// place. Idempotent on an already-sealed container; the complement of
/// StateWriter::defer_crcs(). Throws SnapshotError when the container's
/// structure (header, section lengths) does not parse — a deferred
/// buffer can only legitimately come from a StateWriter, so structural
/// damage means the caller handed over the wrong bytes.
void seal_section_crcs(std::span<std::uint8_t> container);

/// Parses and validates a snapshot container. Construction walks every
/// section frame and checks structure and CRCs up front, so a reader
/// that constructs successfully can be navigated without surprises;
/// every read is still bounds-checked against its section payload.
class StateReader {
public:
    explicit StateReader(std::span<const std::uint8_t> bytes);

    bool has_section(std::uint32_t tag) const noexcept;

    /// Position the cursor at the start of `tag`'s payload and return
    /// the section's version. Missing section -> SnapshotError.
    std::uint16_t open_section(std::uint32_t tag);

    /// Finish with the current section. Unread payload is allowed (a
    /// newer writer appended fields this reader does not know).
    void close_section();

    /// Bytes left in the open section's payload.
    std::size_t section_remaining() const;

    std::uint8_t read_u8();
    std::uint16_t read_u16();
    std::uint32_t read_u32();
    std::uint64_t read_u64();
    std::int64_t read_i64();
    double read_f64();
    bool read_bool();
    std::size_t read_size();
    dsp::Complex read_complex();
    void read_f64_into(std::vector<double>& out);
    void read_complex_into(dsp::ComplexSignal& out);
    void read_u8_into(std::vector<std::uint8_t>& out);

    /// Read a complex-span field into structure-of-arrays planes
    /// (deinterleaving); accepts exactly the bytes write_complex_span /
    /// write_complex_planes produce.
    void read_complex_planes_into(std::vector<double>& re,
                                  std::vector<double>& im);

private:
    struct SectionEntry {
        std::uint32_t tag = 0;
        std::uint16_t version = 0;
        std::size_t payload_offset = 0;
        std::size_t payload_len = 0;
    };

    const SectionEntry* find(std::uint32_t tag) const noexcept;
    void need(std::size_t n) const;  ///< throws past the section end

    std::span<const std::uint8_t> bytes_;
    std::vector<SectionEntry> sections_;
    const SectionEntry* open_ = nullptr;
    std::size_t cursor_ = 0;  ///< absolute offset into bytes_
};

/// Crash-safe file write: the bytes land in a writer-unique temp file
/// (`path + ".tmp.<pid>.<counter>"`), are flushed, and are renamed over
/// `path` — a crash mid-write leaves the previous snapshot intact, and
/// concurrent writers to the same path (two fleet sessions, a Supervisor
/// slot racing a flight-recorder dump) can never corrupt each other's
/// in-flight bytes. Throws SnapshotError on any I/O failure.
void write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> bytes);

/// Remove temp files (`*.tmp.<pid>.<counter>`) left in `dir` by writers
/// that died before their rename. Only files whose embedded pid is no
/// longer alive are touched — in-flight temps of this or any live
/// process are kept. Returns the number of files removed; best-effort
/// (I/O errors skip the file, an unreadable dir returns 0).
std::size_t cleanup_orphan_temps(const std::string& dir);

/// Read a whole snapshot file; SnapshotError when unreadable.
std::vector<std::uint8_t> read_snapshot_file(const std::string& path);

}  // namespace blinkradar::state
