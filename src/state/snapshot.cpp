#include "state/snapshot.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string_view>

#if !defined(_WIN32)
#include <signal.h>
#include <unistd.h>
#endif

#include "common/contracts.hpp"

namespace blinkradar::state {

namespace {

constexpr std::uint32_t kMagic = make_tag("BRSN");
constexpr std::uint16_t kFormatVersion = 1;
constexpr std::size_t kHeaderLen = 8;        // magic + version + flags
constexpr std::size_t kSectionHeaderLen = 12;  // tag + ver + rsv + len
constexpr std::size_t kCrcLen = 4;

/// CRC-32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320),
/// generated once at static-init time.
struct Crc32Table {
    std::array<std::uint32_t, 256> t{};
    Crc32Table() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};
const Crc32Table kCrcTable;

std::uint16_t load_u16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
    return static_cast<std::uint64_t>(load_u32(p)) |
           static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
    std::uint32_t c = 0xFFFFFFFFu;
    for (const std::uint8_t b : data)
        c = kCrcTable.t[(c ^ b) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string tag_name(std::uint32_t tag) {
    char chars[4] = {static_cast<char>(tag & 0xFF),
                     static_cast<char>((tag >> 8) & 0xFF),
                     static_cast<char>((tag >> 16) & 0xFF),
                     static_cast<char>((tag >> 24) & 0xFF)};
    bool printable = true;
    for (const char c : chars)
        printable &= std::isprint(static_cast<unsigned char>(c)) != 0;
    if (printable) return std::string(chars, 4);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08X", tag);
    return buf;
}

void seal_section_crcs(std::span<std::uint8_t> container) {
    if (container.size() < kHeaderLen)
        throw SnapshotError("seal: container shorter than its header");
    if (load_u32(container.data()) != kMagic)
        throw SnapshotError("seal: bad container magic");
    std::size_t off = kHeaderLen;
    while (off < container.size()) {
        if (container.size() - off < kSectionHeaderLen + kCrcLen)
            throw SnapshotError("seal: truncated section header");
        const std::uint32_t len = load_u32(container.data() + off + 8);
        if (container.size() - off - kSectionHeaderLen - kCrcLen < len)
            throw SnapshotError("seal: section length overruns container");
        const std::size_t covered = kSectionHeaderLen + len;
        const std::uint32_t crc =
            crc32(std::span<const std::uint8_t>(container.data() + off,
                                                covered));
        std::uint8_t* out = container.data() + off + covered;
        for (int i = 0; i < 4; ++i)
            out[i] = static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF);
        off += covered + kCrcLen;
    }
}

// ---------------------------------------------------------------- writer

StateWriter::StateWriter() {
    buf_.reserve(4096);
    append_raw_u32(kMagic);
    append_raw_u16(kFormatVersion);
    append_raw_u16(0);  // flags
}

StateWriter::StateWriter(std::vector<std::uint8_t>&& recycle)
    : buf_(std::move(recycle)) {
    buf_.clear();  // keeps capacity: no allocation until past it
    if (buf_.capacity() < 4096) buf_.reserve(4096);
    append_raw_u32(kMagic);
    append_raw_u16(kFormatVersion);
    append_raw_u16(0);  // flags
}

// The scalar appends are hot: a pipeline checkpoint writes a few
// thousand individual integers/doubles besides the bulk spans, and a
// byte-at-a-time push_back loop pays a capacity check per byte. One
// insert per value is a single check plus a fixed-size memcpy. On a
// little-endian host the value's own bytes are already wire order.
void StateWriter::append_raw_u16(std::uint16_t v) {
    if constexpr (std::endian::native == std::endian::little) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(v));
    } else {
        buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
        buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    }
}

void StateWriter::append_raw_u32(std::uint32_t v) {
    if constexpr (std::endian::native == std::endian::little) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(v));
    } else {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
    }
}

void StateWriter::append_raw_u64(std::uint64_t v) {
    if constexpr (std::endian::native == std::endian::little) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(v));
    } else {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
    }
}

void StateWriter::begin_section(std::uint32_t tag, std::uint16_t version) {
    BR_EXPECTS(!finished_);
    BR_EXPECTS(!in_section_);
    section_header_ = buf_.size();
    append_raw_u32(tag);
    append_raw_u16(version);
    append_raw_u16(0);  // reserved
    append_raw_u32(0);  // payload_len backpatched by end_section
    in_section_ = true;
}

void StateWriter::end_section() {
    BR_EXPECTS(in_section_);
    const std::size_t payload_len =
        buf_.size() - section_header_ - kSectionHeaderLen;
    BR_EXPECTS(payload_len <= UINT32_MAX);
    const auto len32 = static_cast<std::uint32_t>(payload_len);
    for (int i = 0; i < 4; ++i)
        buf_[section_header_ + 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((len32 >> (8 * i)) & 0xFF);
    const std::uint32_t crc =
        defer_crc_ ? 0u
                   : crc32(std::span<const std::uint8_t>(
                         buf_.data() + section_header_,
                         kSectionHeaderLen + payload_len));
    append_raw_u32(crc);
    in_section_ = false;
}

void StateWriter::write_u8(std::uint8_t v) {
    BR_EXPECTS(in_section_);
    buf_.push_back(v);
}

void StateWriter::write_u16(std::uint16_t v) {
    BR_EXPECTS(in_section_);
    append_raw_u16(v);
}

void StateWriter::write_u32(std::uint32_t v) {
    BR_EXPECTS(in_section_);
    append_raw_u32(v);
}

void StateWriter::write_u64(std::uint64_t v) {
    BR_EXPECTS(in_section_);
    append_raw_u64(v);
}

void StateWriter::write_i64(std::int64_t v) {
    write_u64(static_cast<std::uint64_t>(v));
}

void StateWriter::write_f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    write_u64(bits);
}

void StateWriter::write_bool(bool v) { write_u8(v ? 1 : 0); }

void StateWriter::write_complex(const dsp::Complex& v) {
    write_f64(v.real());
    write_f64(v.imag());
}

void StateWriter::write_f64_span(std::span<const double> v) {
    write_u64(v.size());
    // The wire format is little-endian IEEE-754; on a little-endian host
    // the in-memory representation is already wire order, so the span
    // lands as one bulk append instead of an 8-byte loop per element.
    // Sections of hundreds of kilobytes (the pipeline's frame window)
    // make this the difference between a ~1 ms and a ~50 us checkpoint.
    if constexpr (std::endian::native == std::endian::little) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
        buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
    } else {
        for (const double x : v) write_f64(x);
    }
}

void StateWriter::write_complex_span(std::span<const dsp::Complex> v) {
    write_u64(v.size());
    static_assert(sizeof(dsp::Complex) == 2 * sizeof(double));
    if constexpr (std::endian::native == std::endian::little) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
        buf_.insert(buf_.end(), p, p + v.size() * sizeof(dsp::Complex));
    } else {
        for (const dsp::Complex& x : v) write_complex(x);
    }
}

void StateWriter::write_complex_planes(std::span<const double> re,
                                       std::span<const double> im) {
    BR_EXPECTS(re.size() == im.size());
    write_u64(re.size());
    // Interleave while appending: same wire bytes as write_complex_span
    // on the equivalent interleaved signal.
    buf_.reserve(buf_.size() + re.size() * 2 * sizeof(double));
    for (std::size_t j = 0; j < re.size(); ++j) {
        if constexpr (std::endian::native == std::endian::little) {
            const auto* pr = reinterpret_cast<const std::uint8_t*>(&re[j]);
            const auto* pi = reinterpret_cast<const std::uint8_t*>(&im[j]);
            buf_.insert(buf_.end(), pr, pr + sizeof(double));
            buf_.insert(buf_.end(), pi, pi + sizeof(double));
        } else {
            write_f64(re[j]);
            write_f64(im[j]);
        }
    }
}

void StateWriter::write_u8_span(std::span<const std::uint8_t> v) {
    write_u64(v.size());
    BR_EXPECTS(in_section_);
    buf_.insert(buf_.end(), v.begin(), v.end());
}

std::vector<std::uint8_t> StateWriter::finish() {
    BR_EXPECTS(!in_section_);
    BR_EXPECTS(!finished_);
    finished_ = true;
    return std::move(buf_);
}

// ---------------------------------------------------------------- reader

StateReader::StateReader(std::span<const std::uint8_t> bytes)
    : bytes_(bytes) {
    if (bytes_.size() < kHeaderLen)
        throw SnapshotError("snapshot: truncated header (" +
                            std::to_string(bytes_.size()) + " of " +
                            std::to_string(kHeaderLen) + " bytes)");
    if (load_u32(bytes_.data()) != kMagic)
        throw SnapshotError("snapshot: bad magic (not a BRSN snapshot)");
    const std::uint16_t version = load_u16(bytes_.data() + 4);
    if (version != kFormatVersion)
        throw SnapshotError(
            "snapshot: unsupported container version " +
            std::to_string(version) + " (reader supports " +
            std::to_string(kFormatVersion) + ")");

    // Walk and validate every section frame up front.
    std::size_t off = kHeaderLen;
    while (off < bytes_.size()) {
        if (bytes_.size() - off < kSectionHeaderLen + kCrcLen)
            throw SnapshotError(
                "snapshot: truncated section header at offset " +
                std::to_string(off));
        const std::uint32_t tag = load_u32(bytes_.data() + off);
        const std::uint16_t sec_version = load_u16(bytes_.data() + off + 4);
        const std::uint32_t payload_len = load_u32(bytes_.data() + off + 8);
        const std::size_t frame_end =
            off + kSectionHeaderLen + static_cast<std::size_t>(payload_len) +
            kCrcLen;
        if (payload_len > bytes_.size() - off - kSectionHeaderLen - kCrcLen)
            throw SnapshotError("snapshot: section " + tag_name(tag) +
                                " at offset " + std::to_string(off) +
                                " claims " + std::to_string(payload_len) +
                                " payload bytes but only " +
                                std::to_string(bytes_.size() - off -
                                               kSectionHeaderLen - kCrcLen) +
                                " remain (truncated or corrupt length)");
        const std::uint32_t stored_crc =
            load_u32(bytes_.data() + frame_end - kCrcLen);
        const std::uint32_t actual_crc = crc32(bytes_.subspan(
            off, kSectionHeaderLen + static_cast<std::size_t>(payload_len)));
        if (stored_crc != actual_crc)
            throw SnapshotError("snapshot: CRC mismatch in section " +
                                tag_name(tag) + " at offset " +
                                std::to_string(off) + " (stored " +
                                std::to_string(stored_crc) + ", computed " +
                                std::to_string(actual_crc) + ")");
        for (const SectionEntry& s : sections_)
            if (s.tag == tag)
                throw SnapshotError("snapshot: duplicate section " +
                                    tag_name(tag));
        sections_.push_back(SectionEntry{
            tag, sec_version, off + kSectionHeaderLen,
            static_cast<std::size_t>(payload_len)});
        off = frame_end;
    }
}

const StateReader::SectionEntry* StateReader::find(
    std::uint32_t tag) const noexcept {
    for (const SectionEntry& s : sections_)
        if (s.tag == tag) return &s;
    return nullptr;
}

bool StateReader::has_section(std::uint32_t tag) const noexcept {
    return find(tag) != nullptr;
}

std::uint16_t StateReader::open_section(std::uint32_t tag) {
    const SectionEntry* s = find(tag);
    if (s == nullptr)
        throw SnapshotError("snapshot: required section " + tag_name(tag) +
                            " is missing");
    open_ = s;
    cursor_ = s->payload_offset;
    return s->version;
}

void StateReader::close_section() {
    BR_EXPECTS(open_ != nullptr);
    open_ = nullptr;
}

std::size_t StateReader::section_remaining() const {
    BR_EXPECTS(open_ != nullptr);
    return open_->payload_offset + open_->payload_len - cursor_;
}

void StateReader::need(std::size_t n) const {
    if (open_ == nullptr)
        throw SnapshotError("snapshot: read outside any section");
    if (section_remaining() < n)
        throw SnapshotError(
            "snapshot: section " + tag_name(open_->tag) +
            " payload exhausted (need " + std::to_string(n) + " bytes, " +
            std::to_string(section_remaining()) + " remain)");
}

std::uint8_t StateReader::read_u8() {
    need(1);
    return bytes_[cursor_++];
}

std::uint16_t StateReader::read_u16() {
    need(2);
    const std::uint16_t v = load_u16(bytes_.data() + cursor_);
    cursor_ += 2;
    return v;
}

std::uint32_t StateReader::read_u32() {
    need(4);
    const std::uint32_t v = load_u32(bytes_.data() + cursor_);
    cursor_ += 4;
    return v;
}

std::uint64_t StateReader::read_u64() {
    need(8);
    const std::uint64_t v = load_u64(bytes_.data() + cursor_);
    cursor_ += 8;
    return v;
}

std::int64_t StateReader::read_i64() {
    return static_cast<std::int64_t>(read_u64());
}

double StateReader::read_f64() {
    const std::uint64_t bits = read_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool StateReader::read_bool() {
    const std::uint8_t v = read_u8();
    if (v > 1)
        throw SnapshotError("snapshot: section " + tag_name(open_->tag) +
                            " holds invalid bool value " +
                            std::to_string(v));
    return v == 1;
}

std::size_t StateReader::read_size() {
    const std::uint64_t v = read_u64();
    if (v > SIZE_MAX)
        throw SnapshotError("snapshot: size value " + std::to_string(v) +
                            " overflows the host size_t");
    return static_cast<std::size_t>(v);
}

dsp::Complex StateReader::read_complex() {
    const double re = read_f64();
    const double im = read_f64();
    return dsp::Complex(re, im);
}

void StateReader::read_f64_into(std::vector<double>& out) {
    const std::size_t n = read_size();
    need(n * 8 < n ? SIZE_MAX : n * 8);  // overflow-safe bound check
    if constexpr (std::endian::native == std::endian::little) {
        out.resize(n);
        if (n != 0)  // empty vector: data() may be null, memcpy UB
            std::memcpy(out.data(), bytes_.data() + cursor_,
                        n * sizeof(double));
        cursor_ += n * sizeof(double);
        return;
    }
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(read_f64());
}

void StateReader::read_complex_into(dsp::ComplexSignal& out) {
    const std::size_t n = read_size();
    need(n * 16 < n ? SIZE_MAX : n * 16);
    if constexpr (std::endian::native == std::endian::little) {
        out.resize(n);
        if (n != 0)  // empty vector: data() may be null, memcpy UB
            std::memcpy(out.data(), bytes_.data() + cursor_,
                        n * sizeof(dsp::Complex));
        cursor_ += n * sizeof(dsp::Complex);
        return;
    }
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(read_complex());
}

void StateReader::read_complex_planes_into(std::vector<double>& re,
                                           std::vector<double>& im) {
    const std::size_t n = read_size();
    need(n * 16 < n ? SIZE_MAX : n * 16);
    re.resize(n);
    im.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        double r = 0.0;
        double i = 0.0;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(&r, bytes_.data() + cursor_ + j * 16, sizeof(double));
            std::memcpy(&i, bytes_.data() + cursor_ + j * 16 + 8,
                        sizeof(double));
        } else {
            std::uint64_t rb = 0;
            std::uint64_t ib = 0;
            for (std::size_t k = 0; k < 8; ++k) {
                rb |= static_cast<std::uint64_t>(
                          bytes_[cursor_ + j * 16 + k])
                      << (8 * k);
                ib |= static_cast<std::uint64_t>(
                          bytes_[cursor_ + j * 16 + 8 + k])
                      << (8 * k);
            }
            std::memcpy(&r, &rb, sizeof(double));
            std::memcpy(&i, &ib, sizeof(double));
        }
        re[j] = r;
        im[j] = i;
    }
    cursor_ += n * 16;
}

void StateReader::read_u8_into(std::vector<std::uint8_t>& out) {
    const std::size_t n = read_size();
    need(n);
    out.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_),
               bytes_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
    cursor_ += n;
}

// --------------------------------------------------------------- file IO

namespace {

std::uint64_t current_pid() noexcept {
#if defined(_WIN32)
    return 0;
#else
    return static_cast<std::uint64_t>(::getpid());
#endif
}

/// True when `pid` names a live process we could be sharing the
/// directory with. Conservative: any error other than "no such
/// process" (e.g. EPERM on a foreign uid's process) counts as alive.
bool pid_alive(std::uint64_t pid) noexcept {
#if defined(_WIN32)
    return true;  // no cheap liveness probe: never reclaim
#else
    if (pid == 0 || pid > static_cast<std::uint64_t>(
                              std::numeric_limits<pid_t>::max()))
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
    return errno != ESRCH;
#endif
}

/// Parse the writer pid out of a temp-file name of the form
/// `<target>.tmp.<pid>.<counter>`; nullopt when the name is not ours.
std::optional<std::uint64_t> temp_file_pid(std::string_view name) {
    const std::size_t mark = name.rfind(".tmp.");
    if (mark == std::string_view::npos) return std::nullopt;
    const std::string_view tail = name.substr(mark + 5);  // "<pid>.<ctr>"
    const std::size_t dot = tail.find('.');
    if (dot == std::string_view::npos || dot == 0 ||
        dot + 1 >= tail.size())
        return std::nullopt;
    std::uint64_t pid = 0;
    const std::string_view pid_text = tail.substr(0, dot);
    auto [p, ec] = std::from_chars(pid_text.data(),
                                   pid_text.data() + pid_text.size(), pid);
    if (ec != std::errc() || p != pid_text.data() + pid_text.size())
        return std::nullopt;
    const std::string_view ctr_text = tail.substr(dot + 1);
    std::uint64_t ctr = 0;
    auto [c, ec2] = std::from_chars(ctr_text.data(),
                                    ctr_text.data() + ctr_text.size(), ctr);
    if (ec2 != std::errc() || c != ctr_text.data() + ctr_text.size())
        return std::nullopt;
    return pid;
}

}  // namespace

void write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> bytes) {
    // The temp name is unique per writer — pid plus a process-wide
    // monotonic counter — never a fixed `path + ".tmp"`: two concurrent
    // writers targeting the same path (two fleet sessions, or a
    // Supervisor slot write racing a flight-recorder dump) would
    // otherwise interleave inside one temp file and publish a corrupt
    // container via the rename.
    static std::atomic<std::uint64_t> g_temp_counter{0};
    const std::uint64_t serial =
        g_temp_counter.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp = path + ".tmp." + std::to_string(current_pid()) +
                            "." + std::to_string(serial);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os.good())
            throw SnapshotError("snapshot: cannot open " + tmp +
                                " for writing");
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os.good()) {
            os.close();
            std::remove(tmp.c_str());
            throw SnapshotError("snapshot: short write to " + tmp);
        }
    }
    // Atomic publish: a crash before the rename leaves the previous
    // snapshot at `path` untouched; after it, the new one is complete.
    // Concurrent writers each rename their own temp — last one wins
    // with a complete file either way.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("snapshot: rename " + tmp + " -> " + path +
                            " failed");
    }
}

std::size_t cleanup_orphan_temps(const std::string& dir) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return 0;
    std::size_t removed = 0;
    const std::uint64_t self = current_pid();
    for (const fs::directory_entry& entry : it) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        const std::optional<std::uint64_t> pid = temp_file_pid(name);
        // Only reclaim another (dead) writer's leavings: our own pid's
        // temps may be in flight on a sibling thread right now, and a
        // live foreign pid is presumed mid-write.
        if (!pid || *pid == self || pid_alive(*pid)) continue;
        if (fs::remove(entry.path(), ec) && !ec) ++removed;
    }
    return removed;
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is.good())
        throw SnapshotError("snapshot: cannot open " + path +
                            " for reading");
    const std::streamsize size = is.tellg();
    is.seekg(0, std::ios::beg);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        !is.read(reinterpret_cast<char*>(bytes.data()), size))
        throw SnapshotError("snapshot: short read from " + path);
    return bytes;
}

}  // namespace blinkradar::state
