// Quickstart: simulate 60 s of driving, run the BlinkRadar pipeline, and
// compare the detected blinks against ground truth.
//
// This is the smallest end-to-end use of the public API:
//   1. describe a driver and a scenario,
//   2. generate the radar frame stream (or plug in real frames),
//   3. feed frames to BlinkRadarPipeline,
//   4. consume blink events.
#include <cstdio>

#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

int main() {
    // 1. A driver on a smooth highway, awake, radar 40 cm from the eyes.
    sim::ScenarioConfig scenario;
    Rng rng(42);
    scenario.driver = physio::sample_participants(1, rng).front();
    scenario.alertness = physio::Alertness::kAwake;
    scenario.road = vehicle::RoadType::kSmoothHighway;
    scenario.duration_s = 60.0;
    scenario.seed = 7;

    // 2. Simulated radar frames plus exact ground truth.
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    std::printf("Simulated %zu frames (%.0f s at %.0f fps), %zu true blinks\n",
                session.frames.size(), scenario.duration_s,
                session.radar.frame_rate_hz(), session.truth.blinks.size());

    // 3. Stream the frames through the pipeline.
    core::BlinkRadarPipeline pipeline(session.radar);
    for (const radar::RadarFrame& frame : session.frames) {
        const core::FrameResult r = pipeline.process(frame);
        if (r.blink) {
            std::printf("  blink @ %6.2f s  (duration %.0f ms, magnitude %.4f)\n",
                        r.blink->peak_s, r.blink->duration_s * 1000.0,
                        r.blink->magnitude);
        }
        if (r.restarted)
            std::printf("  -- large movement at %.2f s: pipeline restarted\n",
                        frame.timestamp_s);
    }

    // 4. Score against the ground truth.
    const eval::MatchResult match =
        eval::match_blinks(session.truth.blinks, pipeline.blinks());
    std::printf("\nDetected %zu blinks; matched %zu/%zu true blinks\n",
                pipeline.blinks().size(), match.matched, match.true_blinks);
    std::printf("accuracy (recall) = %.1f %%, precision = %.1f %%, restarts = %zu\n",
                100.0 * match.accuracy(), 100.0 * match.precision(),
                pipeline.restarts());
    if (pipeline.selected_bin()) {
        std::printf("selected range bin %zu (= %.2f m)\n",
                    *pipeline.selected_bin(),
                    static_cast<double>(*pipeline.selected_bin()) *
                        session.radar.bin_spacing_m);
    }
    return 0;
}
