// Road trip: robustness tour. Runs the same driver through all nine road
// and maneuver types of the paper's Section VI-H and three mounting
// geometries, printing blink-detection accuracy for each — a compact view
// of how conditions affect BlinkRadar.
#include <cstdio>

#include "eval/experiment.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"
#include "vehicle/road.hpp"

using namespace blinkradar;

int main() {
    Rng rng(99);
    const physio::DriverProfile driver =
        physio::sample_participants(1, rng).front();

    std::printf("=== Road types (radar at 0.4 m, boresight) ===\n");
    std::uint64_t seed = 7;
    for (const vehicle::RoadType road : vehicle::all_road_types()) {
        sim::ScenarioConfig sc;
        sc.driver = driver;
        sc.road = road;
        sc.duration_s = 120.0;
        sc.seed = seed++;
        const eval::SessionScore score = eval::run_blink_session(sc);
        std::printf("  %-16s (class %-8s): accuracy %5.1f %%  "
                    "(%zu/%zu blinks, %zu restarts)\n",
                    vehicle::to_string(road).c_str(),
                    vehicle::to_string(vehicle::road_class(road)).c_str(),
                    100.0 * score.accuracy, score.match.matched,
                    score.match.true_blinks, score.restarts);
    }

    std::printf("\n=== Mounting geometries (smooth highway) ===\n");
    const struct {
        const char* name;
        sim::MountingGeometry geometry;
    } mounts[] = {
        {"windshield, head-on, 0.4 m", {0.4, 0.0, 0.0}},
        {"dashboard, 15 deg below eye line", {0.45, 15.0, 0.0}},
        {"A-pillar, 25 deg off to the side", {0.55, 5.0, 25.0}},
    };
    for (const auto& mount : mounts) {
        sim::ScenarioConfig sc;
        sc.driver = driver;
        sc.geometry = mount.geometry;
        sc.duration_s = 120.0;
        sc.seed = 1234;
        const eval::SessionScore score = eval::run_blink_session(sc);
        std::printf("  %-34s: accuracy %5.1f %%\n", mount.name,
                    100.0 * score.accuracy);
    }

    std::printf("\nTakeaway (matches the paper): smooth roads and head-on "
                "mounting work best; bumps, heavy maneuvers and large "
                "azimuth offsets cost accuracy.\n");
    return 0;
}
