// Fault drill: watch the pipeline degrade gracefully and recover.
//
// Simulates one driving session, runs it through a FaultInjector with a
// harsh mid-session fault schedule (frame drops + jitter + NaN bursts),
// and narrates the FrameGuard's health transitions: OK -> DEGRADED ->
// SIGNAL_LOST -> RECOVERING -> OK, with the guard's repair/bridge/
// quarantine counters at the end.
//
// Every knob of the drill is a flag (defaults reproduce the canonical
// drill exactly), so a failure seen in the wild can be replayed:
//
//   fault_drill [--seed N] [--fault-seed N] [--duration S]
//               [--drop-rate R] [--nan-rate R] [--jitter F]
//
//   --seed N        scenario seed (default 21)
//   --fault-seed N  fault-injector seed (default 2024)
//   --duration S    session length in seconds (default 90; the storm
//                   covers the middle third, with a 2 s total outage
//                   starting 5 s into it)
//   --drop-rate R   storm frame-drop probability (default 0.10)
//   --nan-rate R    storm per-frame NaN-burst probability (default 0.05)
//   --jitter F      storm timestamp jitter, as a fraction of the frame
//                   period (default 0.25)
//   --dump PATH     flight-recorder dump written after the drill
//                   (default /tmp/fault_drill.brfr)
//   --metrics-out PATH
//                   write the final metrics registry as an obs-v1 JSON
//                   snapshot on exit (default: metrics off)
//
// The whole drill runs with the flight recorder attached, so the dump is
// a complete black box of the storm: inspect or bit-exactly replay it
// with the printed br_inspect command.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "core/postmortem.hpp"
#include "eval/metrics.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/export.hpp"
#include "physio/driver_profile.hpp"
#include "radar/impairments.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

namespace {

struct DrillOptions {
    std::uint64_t scenario_seed = 21;
    std::uint64_t fault_seed = 2024;
    double duration_s = 90.0;
    double drop_rate = 0.10;
    double nan_rate = 0.05;
    double jitter_periods = 0.25;
    std::string dump_path = "/tmp/fault_drill.brfr";
    std::string metrics_out;  ///< final registry JSON; empty = off
};

[[noreturn]] void usage_and_exit(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--fault-seed N] [--duration S]\n"
                 "          [--drop-rate R] [--nan-rate R] [--jitter F]\n"
                 "          [--dump PATH] [--metrics-out PATH]\n",
                 argv0);
    std::exit(2);
}

DrillOptions parse_options(int argc, char** argv) {
    DrillOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") usage_and_exit(argv[0]);
        if (i + 1 >= argc) usage_and_exit(argv[0]);
        const char* value = argv[++i];
        try {
            if (flag == "--seed")
                opt.scenario_seed = std::stoull(value);
            else if (flag == "--fault-seed")
                opt.fault_seed = std::stoull(value);
            else if (flag == "--duration")
                opt.duration_s = std::stod(value);
            else if (flag == "--drop-rate")
                opt.drop_rate = std::stod(value);
            else if (flag == "--nan-rate")
                opt.nan_rate = std::stod(value);
            else if (flag == "--jitter")
                opt.jitter_periods = std::stod(value);
            else if (flag == "--dump")
                opt.dump_path = value;
            else if (flag == "--metrics-out")
                opt.metrics_out = value;
            else
                usage_and_exit(argv[0]);
        } catch (const std::exception&) {
            std::fprintf(stderr, "%s: bad value '%s' for %s\n", argv[0],
                         value, flag.c_str());
            std::exit(2);
        }
    }
    if (opt.duration_s <= 0.0 || opt.drop_rate < 0.0 || opt.drop_rate > 1.0 ||
        opt.nan_rate < 0.0 || opt.nan_rate > 1.0 || opt.jitter_periods < 0.0)
        usage_and_exit(argv[0]);
    return opt;
}

}  // namespace

int main(int argc, char** argv) {
    const DrillOptions opt = parse_options(argc, argv);

    Rng rng(7);
    sim::ScenarioConfig sc;
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = opt.duration_s;
    sc.seed = opt.scenario_seed;
    const sim::SimulatedSession session = sim::simulate_session(sc);

    // Clean first third, a harsh fault storm in the middle third
    // (including one total outage), clean final third.
    radar::FaultInjectorConfig faults;
    faults.drop_rate = opt.drop_rate;
    faults.timestamp_jitter_std_s =
        opt.jitter_periods * session.radar.frame_period_s;
    faults.nan_rate = opt.nan_rate;
    radar::FaultInjector injector(faults, opt.fault_seed);

    radar::FrameSeries stream;
    stream.reserve(session.frames.size());
    const Seconds storm_begin = sc.duration_s / 3.0;
    const Seconds storm_end = 2.0 * sc.duration_s / 3.0;
    for (const radar::RadarFrame& f : session.frames) {
        const bool in_storm =
            f.timestamp_s >= storm_begin && f.timestamp_s < storm_end;
        const bool in_outage =
            f.timestamp_s >= storm_begin + 5.0 &&
            f.timestamp_s < storm_begin + 7.0;  // 2 s of nothing at all
        if (in_outage) continue;
        if (in_storm)
            injector.apply(f, stream);
        else
            stream.push_back(f);
    }

    std::printf("=== Fault drill: seed %llu, fault seed %llu, "
                "drop %.2f / nan %.2f / jitter %.2f ===\n",
                static_cast<unsigned long long>(opt.scenario_seed),
                static_cast<unsigned long long>(opt.fault_seed),
                opt.drop_rate, opt.nan_rate, opt.jitter_periods);
    std::printf("=== %zu clean frames -> %zu on the wire ===\n",
                session.frames.size(), stream.size());
    // The drill runs a standalone pipeline (no Supervisor feeding
    // autosnapshots), so it widens the raw ring to ~41 s and opts into
    // self-checkpointing to keep the dump replayable even though the
    // 90 s session outruns the ring.
    obs::FlightRecorderConfig rec_cfg;
    rec_cfg.raw_ring_frames = 1024;
    rec_cfg.checkpoint_interval_frames = 512;
    obs::FlightRecorder recorder(rec_cfg);
    obs::MetricsRegistry metrics;
    core::BlinkRadarPipeline pipeline(
        session.radar, {}, opt.metrics_out.empty() ? nullptr : &metrics,
        nullptr, &recorder);
    core::HealthState last = core::HealthState::kOk;
    for (const radar::RadarFrame& f : stream) {
        const core::FrameResult r = pipeline.process(f);
        if (r.health != last) {
            std::printf("  t=%6.2f s  health %s -> %s\n", f.timestamp_s,
                        core::to_string(last), core::to_string(r.health));
            last = r.health;
        }
    }

    const core::GuardStats& g = pipeline.guard_stats();
    const eval::MatchResult match =
        eval::match_blinks(session.truth.blinks, pipeline.blinks());
    std::printf("\nguard: %llu quarantined, %llu samples repaired, "
                "%llu gap frames bridged, %llu signal losses, "
                "%llu warm restarts\n",
                static_cast<unsigned long long>(g.frames_quarantined),
                static_cast<unsigned long long>(g.samples_repaired),
                static_cast<unsigned long long>(g.frames_bridged),
                static_cast<unsigned long long>(g.signal_lost_events),
                static_cast<unsigned long long>(g.warm_restarts));
    std::printf("blinks: %zu/%zu detected through the storm "
                "(final health: %s)\n",
                match.matched, match.true_blinks,
                core::to_string(pipeline.health()));

    if (!opt.metrics_out.empty()) {
        // Reuse the telemetry exporter: atomic replace, obs-v1 schema.
        obs::telemetry::SnapshotPublisherConfig pc;
        pc.json_path = opt.metrics_out;
        obs::telemetry::SnapshotPublisher pub(pc);
        if (pub.publish(metrics))
            std::printf("metrics snapshot: %s\n", opt.metrics_out.c_str());
        else
            std::fprintf(stderr, "fault_drill: failed to write %s\n",
                         opt.metrics_out.c_str());
    }

    core::write_flight_dump_file(opt.dump_path, recorder, session.radar, {},
                                 "fault_drill");
    std::printf("\nflight dump written to %s — inspect or bit-exactly "
                "replay the drill with:\n  br_inspect %s --replay\n",
                opt.dump_path.c_str(), opt.dump_path.c_str());
    return 0;
}
