// Fault drill: watch the pipeline degrade gracefully and recover.
//
// Simulates one driving session, runs it through a FaultInjector with a
// harsh mid-session fault schedule (frame drops + jitter + NaN bursts),
// and narrates the FrameGuard's health transitions: OK -> DEGRADED ->
// SIGNAL_LOST -> RECOVERING -> OK, with the guard's repair/bridge/
// quarantine counters at the end.
#include <cstdio>

#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "physio/driver_profile.hpp"
#include "radar/impairments.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

int main() {
    Rng rng(7);
    sim::ScenarioConfig sc;
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = 90.0;
    sc.seed = 21;
    const sim::SimulatedSession session = sim::simulate_session(sc);

    // Clean first third, a harsh fault storm in the middle third
    // (including one total outage), clean final third.
    radar::FaultInjectorConfig faults;
    faults.drop_rate = 0.10;
    faults.timestamp_jitter_std_s = 0.25 * session.radar.frame_period_s;
    faults.nan_rate = 0.05;
    radar::FaultInjector injector(faults, 2024);

    radar::FrameSeries stream;
    stream.reserve(session.frames.size());
    const Seconds storm_begin = sc.duration_s / 3.0;
    const Seconds storm_end = 2.0 * sc.duration_s / 3.0;
    for (const radar::RadarFrame& f : session.frames) {
        const bool in_storm =
            f.timestamp_s >= storm_begin && f.timestamp_s < storm_end;
        const bool in_outage =
            f.timestamp_s >= storm_begin + 5.0 &&
            f.timestamp_s < storm_begin + 7.0;  // 2 s of nothing at all
        if (in_outage) continue;
        if (in_storm)
            injector.apply(f, stream);
        else
            stream.push_back(f);
    }

    std::printf("=== Fault drill: %zu clean frames -> %zu on the wire ===\n",
                session.frames.size(), stream.size());
    core::BlinkRadarPipeline pipeline(session.radar);
    core::HealthState last = core::HealthState::kOk;
    for (const radar::RadarFrame& f : stream) {
        const core::FrameResult r = pipeline.process(f);
        if (r.health != last) {
            std::printf("  t=%6.2f s  health %s -> %s\n", f.timestamp_s,
                        core::to_string(last), core::to_string(r.health));
            last = r.health;
        }
    }

    const core::GuardStats& g = pipeline.guard_stats();
    const eval::MatchResult match =
        eval::match_blinks(session.truth.blinks, pipeline.blinks());
    std::printf("\nguard: %llu quarantined, %llu samples repaired, "
                "%llu gap frames bridged, %llu signal losses, "
                "%llu warm restarts\n",
                static_cast<unsigned long long>(g.frames_quarantined),
                static_cast<unsigned long long>(g.samples_repaired),
                static_cast<unsigned long long>(g.frames_bridged),
                static_cast<unsigned long long>(g.signal_lost_events),
                static_cast<unsigned long long>(g.warm_restarts));
    std::printf("blinks: %zu/%zu detected through the storm "
                "(final health: %s)\n",
                match.matched, match.true_blinks,
                core::to_string(pipeline.health()));
    return 0;
}
