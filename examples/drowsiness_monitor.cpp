// Drowsiness monitor: the paper's end application. Calibrates a per-user
// model from labelled awake/drowsy recordings, then monitors a drive in
// which the driver fatigues halfway through, raising an alarm whenever a
// one-minute window classifies as drowsy.
#include <cstdio>
#include <vector>

#include "core/drowsy.hpp"
#include "core/pipeline.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

namespace {

/// Run the pipeline over a recorded session and return long-blink window
/// rates (the drowsiness feature; see core/drowsy.hpp).
std::vector<double> recorded_rates(const sim::ScenarioConfig& scenario,
                                   Seconds window_s) {
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    const core::BatchResult result =
        core::detect_blinks(session.frames, session.radar);
    return core::window_blink_rates(result.blinks, scenario.duration_s,
                                    window_s, /*min_duration_s=*/0.75);
}

}  // namespace

int main() {
    Rng rng(7);
    const physio::DriverProfile driver =
        physio::sample_participants(1, rng).front();
    constexpr Seconds kWindow = 60.0;

    sim::ScenarioConfig base;
    base.driver = driver;
    base.road = vehicle::RoadType::kSmoothHighway;

    // --- Calibration: one labelled recording per state -------------------
    std::printf("Calibrating drowsiness model for driver %s...\n",
                driver.id.c_str());
    sim::ScenarioConfig calib = base;
    calib.duration_s = 4 * 60.0;
    calib.alertness = physio::Alertness::kAwake;
    calib.seed = 101;
    const std::vector<double> awake_rates = recorded_rates(calib, kWindow);
    calib.alertness = physio::Alertness::kDrowsy;
    calib.seed = 102;
    const std::vector<double> drowsy_rates = recorded_rates(calib, kWindow);

    core::DrowsinessDetector detector;
    detector.train(awake_rates, drowsy_rates);
    std::printf("  awake mean %.1f, drowsy mean %.1f long-blinks/min "
                "=> threshold %.1f\n\n",
                detector.awake_mean(), detector.drowsy_mean(),
                detector.threshold_rate());

    // --- Monitoring: the driver fatigues halfway through the drive ------
    constexpr Seconds kHalf = 5 * 60.0;
    std::printf("Monitoring a %.0f-minute drive (driver becomes drowsy "
                "after %.0f min)...\n",
                2 * kHalf / 60.0, kHalf / 60.0);

    int alarms_first_half = 0, alarms_second_half = 0;
    auto monitor_half = [&](physio::Alertness state, std::uint64_t seed,
                            Seconds t_offset, int& alarms) {
        sim::ScenarioConfig leg = base;
        leg.alertness = state;
        leg.duration_s = kHalf;
        leg.seed = seed;
        const std::vector<double> rates = recorded_rates(leg, kWindow);
        for (std::size_t w = 0; w < rates.size(); ++w) {
            const core::DrowsinessLabel label = detector.classify(rates[w]);
            const bool drowsy = label == core::DrowsinessLabel::kDrowsy;
            if (drowsy) ++alarms;
            std::printf("  [%4.1f min] long-blink rate %5.1f/min -> %s%s\n",
                        (t_offset + (w + 1) * kWindow) / 60.0, rates[w],
                        drowsy ? "DROWSY" : "awake",
                        drowsy ? "  *** ALARM: pull over! ***" : "");
        }
    };
    monitor_half(physio::Alertness::kAwake, 201, 0.0, alarms_first_half);
    monitor_half(physio::Alertness::kDrowsy, 202, kHalf, alarms_second_half);

    std::printf("\nAlarms: %d in the alert half, %d in the drowsy half.\n",
                alarms_first_half, alarms_second_half);
    return 0;
}
