// Drowsiness monitor: the paper's end application. Calibrates a per-user
// model from labelled awake/drowsy recordings, then monitors a drive in
// which the driver fatigues halfway through, raising an alarm whenever a
// one-minute window classifies as drowsy.
//
// The monitoring legs run through an instrumented pipeline: a metrics
// summary (frames, blinks, stage latencies) prints at the end, and
// setting BLINKRADAR_TRACE=/path/to/trace.jsonl additionally streams one
// JSON record per radar frame to that file.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/drowsy.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

namespace {

/// Run the pipeline over a recorded session and return long-blink window
/// rates (the drowsiness feature; see core/drowsy.hpp). `metrics` /
/// `trace` (optional) instrument the run.
std::vector<double> recorded_rates(const sim::ScenarioConfig& scenario,
                                   Seconds window_s,
                                   obs::MetricsRegistry* metrics = nullptr,
                                   obs::TraceSink* trace = nullptr) {
    const sim::SimulatedSession session = sim::simulate_session(scenario);
    core::BlinkRadarPipeline pipeline(session.radar, core::PipelineConfig{},
                                      metrics, trace);
    for (const radar::RadarFrame& f : session.frames) pipeline.process(f);
    return core::window_blink_rates(pipeline.blinks(), scenario.duration_s,
                                    window_s, /*min_duration_s=*/0.75);
}

/// Print the monitor's observability roll-up.
void print_metrics_summary(const obs::MetricsRegistry& registry) {
    std::printf("\nPipeline metrics (monitoring legs):\n");
    for (const auto& [name, c] : registry.counters())
        if (c.value() > 0)
            std::printf("  %-32s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(c.value()));
    std::printf("  stage latencies (mean / p99 us):\n");
    for (const auto& [name, h] : registry.histograms())
        if (h.count() > 0)
            std::printf("  %-32s %8.2f / %8.2f\n", name.c_str(),
                        h.mean_ns() / 1e3, h.quantile_ns(0.99) / 1e3);
}

}  // namespace

int main() {
    Rng rng(7);
    const physio::DriverProfile driver =
        physio::sample_participants(1, rng).front();
    constexpr Seconds kWindow = 60.0;

    sim::ScenarioConfig base;
    base.driver = driver;
    base.road = vehicle::RoadType::kSmoothHighway;

    // --- Calibration: one labelled recording per state -------------------
    std::printf("Calibrating drowsiness model for driver %s...\n",
                driver.id.c_str());
    sim::ScenarioConfig calib = base;
    calib.duration_s = 4 * 60.0;
    calib.alertness = physio::Alertness::kAwake;
    calib.seed = 101;
    const std::vector<double> awake_rates = recorded_rates(calib, kWindow);
    calib.alertness = physio::Alertness::kDrowsy;
    calib.seed = 102;
    const std::vector<double> drowsy_rates = recorded_rates(calib, kWindow);

    core::DrowsinessDetector detector;
    detector.train(awake_rates, drowsy_rates);
    std::printf("  awake mean %.1f, drowsy mean %.1f long-blinks/min "
                "=> threshold %.1f\n\n",
                detector.awake_mean(), detector.drowsy_mean(),
                detector.threshold_rate());

    // --- Monitoring: the driver fatigues halfway through the drive ------
    constexpr Seconds kHalf = 5 * 60.0;
    std::printf("Monitoring a %.0f-minute drive (driver becomes drowsy "
                "after %.0f min)...\n",
                2 * kHalf / 60.0, kHalf / 60.0);

    // Observability: roll up both monitoring legs into one registry;
    // BLINKRADAR_TRACE (if set) gets the per-frame JSONL stream.
    obs::MetricsRegistry registry;
    const std::unique_ptr<obs::TraceSink> trace = obs::TraceSink::from_env();
    if (trace)
        std::printf("  (tracing frames to %s)\n", trace->path().c_str());

    int alarms_first_half = 0, alarms_second_half = 0;
    auto monitor_half = [&](physio::Alertness state, std::uint64_t seed,
                            Seconds t_offset, int& alarms) {
        sim::ScenarioConfig leg = base;
        leg.alertness = state;
        leg.duration_s = kHalf;
        leg.seed = seed;
        const std::vector<double> rates =
            recorded_rates(leg, kWindow, &registry, trace.get());
        for (std::size_t w = 0; w < rates.size(); ++w) {
            const core::DrowsinessLabel label = detector.classify(rates[w]);
            const bool drowsy = label == core::DrowsinessLabel::kDrowsy;
            if (drowsy) ++alarms;
            std::printf("  [%4.1f min] long-blink rate %5.1f/min -> %s%s\n",
                        (t_offset + (w + 1) * kWindow) / 60.0, rates[w],
                        drowsy ? "DROWSY" : "awake",
                        drowsy ? "  *** ALARM: pull over! ***" : "");
        }
    };
    monitor_half(physio::Alertness::kAwake, 201, 0.0, alarms_first_half);
    monitor_half(physio::Alertness::kDrowsy, 202, kHalf, alarms_second_half);

    std::printf("\nAlarms: %d in the alert half, %d in the drowsy half.\n",
                alarms_first_half, alarms_second_half);
    print_metrics_summary(registry);
    if (trace)
        std::printf("Trace: %zu frames written to %s\n",
                    trace->lines_written(), trace->path().c_str());
    return 0;
}
