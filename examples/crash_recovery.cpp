// Crash recovery: the supervised pipeline surviving mid-session crashes.
//
// Runs one simulated driving session through core::Supervisor with
// checkpoints every 10 s and a crash injected every 20 s (each crash
// faults twice in a row, so the in-place retry fails and the supervisor
// warm-restores from the last snapshot). Then demonstrates cross-process
// recovery: a second supervisor restores the on-disk slot file and picks
// the session up where the checkpoint left it.
//
// Each recovery also leaves a flight-recorder dump next to the snapshot
// slots — the black box for the crash — and the demo ends by printing
// the br_inspect command that replays it bit-for-bit.
//
//   crash_recovery [snapshot-dir]     (default /tmp)
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/supervisor.hpp"
#include "eval/metrics.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

int main(int argc, char** argv) {
    const std::string snapshot_dir = argc > 1 ? argv[1] : "/tmp";

    Rng rng(7);
    sim::ScenarioConfig sc;
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = 90.0;
    sc.seed = 33;
    const sim::SimulatedSession session = sim::simulate_session(sc);

    core::SupervisorConfig config;
    config.snapshot_interval_frames = 250;  // every 10 s at 25 Hz
    config.snapshot_dir = snapshot_dir;
    config.snapshot_basename = "crash_recovery_demo";
    core::Supervisor supervisor(session.radar, {}, config);

    // A crash every 20 s, each faulting the attempt AND its retry, so
    // the ladder's warm-restore rung does the actual recovery.
    const std::uint64_t crash_every =
        static_cast<std::uint64_t>(20.0 * session.radar.frame_rate_hz());
    std::uint64_t next_crash = crash_every;
    std::size_t throws_remaining = 0;
    supervisor.set_fault_hook([&](std::uint64_t frame_index) {
        if (throws_remaining == 0 && frame_index == next_crash) {
            next_crash += crash_every;
            throws_remaining = 2;
        }
        if (throws_remaining > 0) {
            --throws_remaining;
            throw std::runtime_error("demo: injected crash");
        }
    });

    std::printf("=== Supervised session: crash every 20 s, "
                "checkpoint every 10 s ===\n");
    for (const radar::RadarFrame& f : session.frames)
        supervisor.process(f);

    const core::SupervisorStats& st = supervisor.stats();
    std::printf("frames %llu | faults %llu | retries %llu | "
                "warm restores %llu | cold restarts %llu | "
                "snapshots %llu\n",
                static_cast<unsigned long long>(st.frames),
                static_cast<unsigned long long>(st.frame_faults),
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.warm_restores),
                static_cast<unsigned long long>(st.cold_restarts),
                static_cast<unsigned long long>(st.snapshots));
    const eval::MatchResult match =
        eval::match_blinks(session.truth.blinks,
                           supervisor.pipeline().blinks());
    std::printf("blinks through the crashes: %zu/%zu detected\n",
                match.matched, match.true_blinks);
    if (!supervisor.last_dump_path().empty())
        std::printf("each crash left a black box (%llu dumps); replay the "
                    "newest bit-for-bit with:\n  br_inspect %s --replay\n",
                    static_cast<unsigned long long>(st.dumps),
                    supervisor.last_dump_path().c_str());
    std::printf("\n");

    // Cross-process recovery: a brand-new supervisor (think: the process
    // was killed and restarted) resumes from the newest slot file.
    const std::string slot =
        snapshot_dir + "/crash_recovery_demo.slot" +
        std::to_string(st.snapshots % 2 == 1 ? 0 : 1) + ".snap";
    core::Supervisor resumed(session.radar, {}, config);
    resumed.restore_from_file(slot);
    std::printf("=== Restored %s: %zu blinks already on record ===\n",
                slot.c_str(), resumed.pipeline().blinks().size());
    return 0;
}
