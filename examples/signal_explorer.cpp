// Signal explorer: dumps the library's key signals to CSV files so they
// can be plotted externally (gnuplot, matplotlib, ...). Produces the raw
// material behind the paper's Figs. 5-11:
//   tx_pulse.csv        - transmitted waveform (time domain)
//   tx_spectrum.csv     - transmitted magnitude spectrum
//   range_profile.csv   - one frame's power vs range
//   iq_trajectory.csv   - eye-bin I/Q samples with ground-truth closure
//   distance_wave.csv   - relative-distance waveform + LEVD threshold
//                         + detections
#include <cmath>
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "core/pipeline.hpp"
#include "dsp/fft.hpp"
#include "physio/blink.hpp"
#include "physio/driver_profile.hpp"
#include "radar/pulse.hpp"
#include "sim/scenario.hpp"

using namespace blinkradar;

int main(int argc, char** argv) {
    const std::string dir = argc > 1 ? argv[1] : ".";
    std::printf("writing CSVs into %s/\n", dir.c_str());

    // --- Transmitted pulse (Fig. 5) -------------------------------------
    const radar::RadarConfig cfg;
    const radar::GaussianPulse pulse(cfg.tx_amplitude, cfg.bandwidth_hz,
                                     cfg.carrier_hz);
    {
        const double fs = 32e9;
        const dsp::RealSignal tx = pulse.sample_transmitted(fs);
        CsvWriter csv(dir + "/tx_pulse.csv", {"t_ns", "amplitude"});
        for (std::size_t i = 0; i < tx.size(); ++i)
            csv.row(std::vector<double>{static_cast<double>(i) / fs * 1e9,
                                        tx[i]});
        std::printf("  tx_pulse.csv       (%zu rows)\n", csv.rows_written());

        dsp::RealSignal padded = tx;
        padded.resize(4096, 0.0);
        const dsp::RealSignal mag = dsp::magnitude_spectrum_real(padded);
        CsvWriter spec(dir + "/tx_spectrum.csv", {"f_ghz", "magnitude"});
        const double bin_hz = fs / static_cast<double>(2 * (mag.size() - 1));
        for (std::size_t k = 0; k < mag.size(); ++k)
            spec.row(std::vector<double>{static_cast<double>(k) * bin_hz / 1e9,
                                         mag[k]});
        std::printf("  tx_spectrum.csv    (%zu rows)\n", spec.rows_written());
    }

    // --- A simulated session (Figs. 6, 9, 11) ---------------------------
    sim::ScenarioConfig sc;
    Rng rng(42);
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = 30.0;
    sc.seed = 7;
    const sim::SimulatedSession session = sim::simulate_session(sc);

    {
        CsvWriter csv(dir + "/range_profile.csv", {"range_m", "power"});
        const radar::RadarFrame& f = session.frames[100];
        for (std::size_t b = 0; b < f.bins.size(); ++b)
            csv.row(std::vector<double>{
                static_cast<double>(b) * session.radar.bin_spacing_m,
                std::norm(f.bins[b])});
        std::printf("  range_profile.csv  (%zu rows)\n", csv.rows_written());
    }

    {
        const std::size_t eye_bin = static_cast<std::size_t>(
            0.40 / session.radar.bin_spacing_m);
        CsvWriter csv(dir + "/iq_trajectory.csv",
                      {"t_s", "i", "q", "closure"});
        for (const radar::RadarFrame& f : session.frames) {
            csv.row(std::vector<double>{
                f.timestamp_s, f.bins[eye_bin].real(), f.bins[eye_bin].imag(),
                physio::eyelid_closure_at(session.truth.blinks,
                                          f.timestamp_s)});
        }
        std::printf("  iq_trajectory.csv  (%zu rows)\n", csv.rows_written());
    }

    {
        core::BlinkRadarPipeline pipeline(session.radar);
        CsvWriter csv(dir + "/distance_wave.csv",
                      {"t_s", "d", "threshold", "blink"});
        for (const radar::RadarFrame& f : session.frames) {
            const core::FrameResult r = pipeline.process(f);
            csv.row(std::vector<double>{f.timestamp_s, r.waveform_value,
                                        pipeline.levd_threshold(),
                                        r.blink ? 1.0 : 0.0});
        }
        std::printf("  distance_wave.csv  (%zu rows, %zu blinks detected)\n",
                    csv.rows_written(), pipeline.blinks().size());
    }
    return 0;
}
