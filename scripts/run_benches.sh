#!/usr/bin/env bash
# Build the Release configuration and run the benchmark suites that feed
# the repo's tracked result files, all written into the repo root:
#
#   BENCH_perf.json        google-benchmark microbenches (latency/alloc)
#   BENCH_robustness.json  detection accuracy vs sensor-fault severity
#   BENCH_recovery.json    crash-drill accuracy/downtime vs checkpoint
#                          interval (the supervisor's snapshot cadence)
#   BENCH_fleet.json       fleet-engine capacity (sessions/core at
#                          25 fps) and the p99 frame-latency SLO
#   BENCH_ingest.json      streaming-ingest capacity (streams/core at
#                          25 fps), p99 enqueue->result latency, and
#                          the shed-ladder activation point
#   BENCH_telemetry.json   telemetry-plane cost (aggregation cycle and
#                          snapshot serialisation vs fleet size, with
#                          the bounded-cardinality check)
#
# Figure-reproduction harnesses are not run here — they print paper
# tables and take minutes; run them from build/bench/ directly.
#
# Usage: scripts/run_benches.sh [extra google-benchmark args...]
#   BLINKRADAR_THREADS=N  pin the shared pool size for BM_BatchSessions.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-release"

cmake --preset release -S "${repo_root}"
cmake --build "${build_dir}" \
    --target bench_perf_pipeline bench_robustness_faults bench_recovery \
    bench_fleet bench_ingest bench_telemetry \
    -j "$(nproc)"

# A user-supplied --benchmark_out in "$@" comes later and wins.
out="${repo_root}/BENCH_perf.json"
for arg in "$@"; do
    case "${arg}" in --benchmark_out=*) out="${arg#--benchmark_out=}" ;; esac
done

cd "${repo_root}"
"${build_dir}/bench/bench_perf_pipeline" \
    --benchmark_out="${repo_root}/BENCH_perf.json" \
    --benchmark_out_format=json \
    "$@"
echo "wrote ${out}"

"${build_dir}/bench/bench_robustness_faults" \
    "${repo_root}/BENCH_robustness.json"
echo "wrote ${repo_root}/BENCH_robustness.json"

"${build_dir}/bench/bench_recovery" "${repo_root}/BENCH_recovery.json"
echo "wrote ${repo_root}/BENCH_recovery.json"

"${build_dir}/bench/bench_fleet" "${repo_root}/BENCH_fleet.json"
echo "wrote ${repo_root}/BENCH_fleet.json"

"${build_dir}/bench/bench_ingest" "${repo_root}/BENCH_ingest.json"
echo "wrote ${repo_root}/BENCH_ingest.json"

"${build_dir}/bench/bench_telemetry" "${repo_root}/BENCH_telemetry.json"
echo "wrote ${repo_root}/BENCH_telemetry.json"
