#!/usr/bin/env python3
"""Gate benchmark results against a committed baseline.

Compares a fresh benchmark report against the baseline JSON checked into
the repo and exits non-zero when any benchmark regressed beyond the
tolerance. Two report schemas are understood, auto-detected per file:

  - google-benchmark JSON (BENCH_perf.json): per benchmark, the median
    of iteration cpu_times is compared;
  - the blinkradar-obs-v1 metrics snapshot (BENCH_perf_stages.json):
    per stage/kernel histogram, mean_ns, p50_ns and p99_ns are each
    compared as separate entries ("stage.frame_total/p99"), so a
    kernel-level regression fails CI with the stage and the percentile
    that moved named in the verdict;
  - the blinkradar-fleet-v1 capacity report (BENCH_fleet.json): the
    "gated" block carries lower-is-better core-ns costs (per-frame
    fleet cost and the p99 frame-latency tail at the largest fleet),
    so a fleet-capacity regression fails the same slower-than-baseline
    gate as everything else;
  - the blinkradar-ingest-v1 capacity report (BENCH_ingest.json): same
    "gated"-block shape, carrying the ingest path's per-frame core-ns
    cost at the largest stream sweep and the p99 enqueue-to-result
    latency at the paced 25 fps operating point;
  - the blinkradar-telemetry-v1 report (BENCH_telemetry.json): same
    "gated"-block shape, carrying the hierarchical-aggregation cycle
    and snapshot-serialisation costs at the largest fleet sweep.

Only slowdowns fail the gate; speedups are reported but pass (refresh
the baseline to bank them). Benchmarks present on one side only are
reported and skipped — renames should come with a baseline refresh.

Usage:
  scripts/compare_bench.py BASELINE CURRENT [--tolerance-pct P]
  scripts/compare_bench.py BENCH_perf.json /tmp/new_perf.json
  scripts/compare_bench.py BENCH_perf_stages.json /tmp/new_stages.json \
      --tolerance-pct 25

Tolerance default is 10%. Microbench medians on shared CI hosts wobble
by a few percent; stage p50s (duty-cycled, smaller samples) wobble
more, so CI passes a looser tolerance for the stages file.
"""
import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def gbench_medians(report):
    """name -> median iteration cpu_time from a google-benchmark report."""
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times.setdefault(bench["run_name"], []).append(bench["cpu_time"])
    return {name: statistics.median(ts) for name, ts in times.items()}


def stage_stats(report):
    """"name/stat" -> ns for each histogram's mean, p50 and p99.

    Mean catches broad kernel regressions, p50 the typical frame, p99
    the spike behaviour (e.g. the bin-selection scan) — a regression in
    any one fails with that stat named.
    """
    stats = {}
    for name, hist in report.get("histograms", {}).items():
        if hist.get("count", 0) <= 0:
            continue
        for stat in ("mean_ns", "p50_ns", "p99_ns"):
            if stat in hist:
                stats[f"{name}/{stat[:-3]}"] = hist[stat]
    return stats


def fleet_stats(report):
    """A pre-flattened "gated" block (fleet/ingest): name -> core-ns.

    Only "gated" entries participate — the rest of the report (the
    per-fleet-size points, sessions/core capacity) is informational and
    includes higher-is-better numbers the slowdown gate must not read.
    """
    return {name: float(v) for name, v in report.get("gated", {}).items()}


def extract(report, path):
    if "benchmarks" in report:
        return gbench_medians(report)
    if report.get("schema") == "blinkradar-obs-v1":
        return stage_stats(report)
    if report.get("schema") in ("blinkradar-fleet-v1",
                                "blinkradar-ingest-v1",
                                "blinkradar-telemetry-v1"):
        return fleet_stats(report)
    sys.exit(f"{path}: unrecognized report schema")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--tolerance-pct", type=float, default=10.0,
                        help="max allowed slowdown (default 10%%)")
    args = parser.parse_args()

    base = extract(load(args.baseline), args.baseline)
    curr = extract(load(args.current), args.current)

    missing = sorted(set(base) - set(curr))
    added = sorted(set(curr) - set(base))
    for name in missing:
        print(f"  [gone]  {name}: in baseline only (baseline refresh due?)")
    for name in added:
        print(f"  [new]   {name}: {curr[name]:12.1f} ns (no baseline yet)")

    regressions = []
    for name in sorted(set(base) & set(curr)):
        if base[name] <= 0.0:
            continue
        pct = 100.0 * (curr[name] - base[name]) / base[name]
        status = "ok"
        if pct > args.tolerance_pct:
            status = "REGRESSION"
            regressions.append((name, pct))
        elif pct < -args.tolerance_pct:
            status = "faster"
        print(f"  [{status:>10}] {name}: {base[name]:12.1f} -> "
              f"{curr[name]:12.1f} ns ({pct:+.1f} %)")

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        sys.exit(f"FAIL: {len(regressions)} benchmark(s) slower than "
                 f"baseline by more than {args.tolerance_pct:.0f}% "
                 f"(worst: {worst[0]} {worst[1]:+.1f}%)")
    print(f"OK: no regressions beyond {args.tolerance_pct:.0f}% "
          f"({len(set(base) & set(curr))} compared)")


if __name__ == "__main__":
    main()
