#!/usr/bin/env bash
# Build the asan preset (-fsanitize=address,undefined) and run the whole
# test suite under it. Memory errors and UB abort the run
# (-fno-sanitize-recover=all), so a green exit means the fault-injection
# and frame-guard paths survived the adversarial tests clean.
#
# Usage: scripts/run_sanitizers.sh [ctest args...]
#   e.g. scripts/run_sanitizers.sh -R FrameGuard
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake --preset asan -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

ctest --test-dir "${build_dir}" -j "$(nproc)" --output-on-failure "$@"
echo "sanitizer suite clean"
