#!/usr/bin/env bash
# Build the sanitizer presets and run the whole test suite under each.
# Memory errors and UB abort the run (-fno-sanitize-recover=all), so a
# green exit means the fault-injection and frame-guard paths survived the
# adversarial tests clean.
#
# Two passes: the combined asan build (address+undefined) first, then the
# standalone ubsan build, whose lighter instrumentation catches UB that
# ASan's shadow memory can mask and keeps timing-sensitive code realistic.
#
# Usage: scripts/run_sanitizers.sh [ctest args...]
#   e.g. scripts/run_sanitizers.sh -R FrameGuard
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

for preset in asan ubsan; do
  build_dir="${repo_root}/build-${preset}"
  echo "=== ${preset} ==="
  cmake --preset "${preset}" -S "${repo_root}"
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" -j "$(nproc)" --output-on-failure "$@"
done

echo "sanitizer suites clean"
