#!/usr/bin/env bash
# Enforce the observability overhead budget: the instrumented per-frame
# pipeline (BM_PipelinePerFrameMetrics) and the black-box pipeline
# (BM_PipelinePerFrameRecorder, flight recorder at default ring depths)
# must each run within MAX_OVERHEAD_PCT (default 2%) of the
# uninstrumented baseline (BM_PipelinePerFrameSimd — all three run the
# production SIMD frame path, so the deltas isolate the instrumentation).
# The fleet path is gated the same way, in two layers on the same
# 256-session fleet-tick workload (process CPU time, because the frames
# burn on pool workers): BM_FleetPerFrameMetrics (per-session
# registries) pairs against BM_FleetPerFrameBase for the collection
# cost, and BM_FleetPerFrameTelemetry (aggregation cycle + both
# snapshot serialisations at the ~1 Hz export cadence) pairs against
# BM_FleetPerFrameMetrics for what the telemetry plane adds on top.
#
# Builds the Release preset and measures the overhead with two layers of
# noise rejection, one per noise source:
#   - within a run, repetition i of each bench executes in the same
#     interleaving round (back-to-back, near-identical host state), so
#     the median of *paired* per-repetition differences cancels slow
#     frequency/thermal/scheduler drift and discards preempted rounds;
#   - across runs, the gate pins the memory layout (setarch -R, when the
#     host allows it) so every process is bit-comparable, repeats the
#     whole benchmark RUNS times, and takes the *minimum* run estimate:
#     with layout pinned, what cross-run noise remains (scheduler steal,
#     frequency ramps) only ever slows a run down, so the fastest run's
#     paired median is the cleanest estimate of the true overhead.
# Comparing whole-run aggregates from one process (median or even
# minimum per side) is several times noisier on shared hosts.
#
# Usage: scripts/check_metrics_overhead.sh
#   MAX_OVERHEAD_PCT=5   loosen the budget (noisy CI hosts)
#   REPETITIONS=31       more pairs per run
#   RUNS=5               more runs for a stabler cross-run minimum
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-release"
max_pct="${MAX_OVERHEAD_PCT:-2}"
reps="${REPETITIONS:-21}"
runs="${RUNS:-3}"
outdir="$(mktemp -d /tmp/br_metrics_overhead.XXXXXX)"
trap 'rm -rf "${outdir}"' EXIT

cmake --preset release -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" --target bench_perf_pipeline -j "$(nproc)"

cd "${repo_root}"
# Address-space randomisation gives every process a different memory
# layout, which biases a whole run by up to ~2% either way — the largest
# noise source left once repetitions are paired. Pin the layout when the
# host allows it.
launcher=()
if setarch "$(uname -m)" -R true 2>/dev/null; then
    launcher=(setarch "$(uname -m)" -R)
fi
for ((run = 0; run < runs; ++run)); do
    "${launcher[@]}" "${build_dir}/bench/bench_perf_pipeline" \
        --benchmark_filter='^BM_(PipelinePerFrame(Simd|Metrics|Recorder)|FleetPerFrame(Base|Metrics|Telemetry)/iterations:200/process_time)$' \
        --benchmark_repetitions="${reps}" \
        --benchmark_min_time=0.1 \
        --benchmark_enable_random_interleaving=true \
        --benchmark_out="${outdir}/run${run}.json" \
        --benchmark_out_format=json
done

python3 - "${outdir}" "${max_pct}" <<'EOF'
import glob
import json
import statistics
import sys

max_pct = float(sys.argv[2])
runs = []
for path in sorted(glob.glob(sys.argv[1] + "/run*.json")):
    with open(path) as f:
        report = json.load(f)
    times = {}
    for bench in report["benchmarks"]:
        if bench.get("run_type") == "iteration":
            times.setdefault(bench["run_name"], {})[
                bench["repetition_index"]] = bench["cpu_time"]
    runs.append(times)

failed = False
# (label, instrumented run_name, uninstrumented baseline run_name);
# the fleet pair carries google-benchmark's /process_time and pinned
# /iterations suffixes.
gates = (
    ("metrics", "BM_PipelinePerFrameMetrics", "BM_PipelinePerFrameSimd"),
    ("recorder", "BM_PipelinePerFrameRecorder", "BM_PipelinePerFrameSimd"),
    ("fleet-metrics",
     "BM_FleetPerFrameMetrics/iterations:200/process_time",
     "BM_FleetPerFrameBase/iterations:200/process_time"),
    ("fleet-telemetry",
     "BM_FleetPerFrameTelemetry/iterations:200/process_time",
     "BM_FleetPerFrameMetrics/iterations:200/process_time"),
)
for label, name, base_name in gates:
    run_deltas = []
    run_scales = []
    for path_index, times in enumerate(runs):
        base = times.get(base_name, {})
        instrumented = times.get(name, {})
        pairs = sorted(set(base) & set(instrumented))
        if not pairs:
            sys.exit(f"missing {name} repetitions in run {path_index}")
        run_deltas.append(statistics.median(
            instrumented[i] - base[i] for i in pairs))
        run_scales.append(statistics.median(base[i] for i in pairs))

    delta = min(run_deltas)
    scale = run_scales[run_deltas.index(delta)]
    overhead_pct = 100.0 * delta / scale

    print(f"[{label}] per-run overhead deltas: "
          + ", ".join(f"{d:+.1f}" for d in run_deltas) + " ns")
    print(f"[{label}] per-iteration: {scale:10.1f} ns, overhead "
          f"{delta:+8.1f} ns = {overhead_pct:+6.2f} % "
          f"(budget {max_pct:.1f} %)")
    if overhead_pct > max_pct:
        print(f"FAIL: {label} overhead {overhead_pct:.2f}% "
              f"exceeds {max_pct:.1f}% budget")
        failed = True

if failed:
    sys.exit(1)
print("OK: metrics, flight-recorder and fleet-telemetry overhead "
      "within budget")
EOF
