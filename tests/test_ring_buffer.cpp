#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/ring_buffer.hpp"

namespace blinkradar {
namespace {

TEST(RingBuffer, PushesAndIndexesOldestFirst) {
    RingBuffer<int> ring;
    ring.reset_capacity(3);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 3u);
    ring.push_back(1);
    ring.push_back(2);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0], 1);
    EXPECT_EQ(ring[1], 2);
    EXPECT_EQ(ring.front(), 1);
    EXPECT_EQ(ring.back(), 2);
}

TEST(RingBuffer, EvictsOldestWhenFull) {
    RingBuffer<int> ring;
    ring.reset_capacity(3);
    for (int v = 1; v <= 5; ++v) ring.push_back(v);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring[0], 3);
    EXPECT_EQ(ring[1], 4);
    EXPECT_EQ(ring[2], 5);
}

TEST(RingBuffer, PopFrontShrinksFromTheOldest) {
    RingBuffer<int> ring;
    ring.reset_capacity(4);
    for (int v = 0; v < 4; ++v) ring.push_back(v);
    ring.pop_front();
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 1);
    ring.push_back(9);  // wraps into the recycled slot
    EXPECT_EQ(ring.back(), 9);
    EXPECT_EQ(ring.front(), 1);
}

TEST(RingBuffer, EmplaceSlotRecyclesPayloadCapacity) {
    RingBuffer<std::vector<double>> ring;
    ring.reset_capacity(2);
    ring.emplace_slot().assign(100, 1.0);
    ring.emplace_slot().assign(100, 2.0);
    // Overwrites the oldest slot; its vector keeps its 100-element buffer.
    std::vector<double>& slot = ring.emplace_slot();
    EXPECT_GE(slot.capacity(), 100u);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0][0], 2.0);  // oldest is now the second push
}

TEST(RingBuffer, ClearKeepsCapacityAndPayloads) {
    RingBuffer<std::vector<int>> ring;
    ring.reset_capacity(2);
    ring.emplace_slot().assign(50, 7);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 2u);
    // The slot's heap buffer survives a clear (allocation-free refill).
    EXPECT_GE(ring.emplace_slot().capacity(), 50u);
}

TEST(RingBuffer, ResetCapacityShrinksBelowCurrentSize) {
    RingBuffer<int> ring;
    ring.reset_capacity(5);
    for (int v = 0; v < 5; ++v) ring.push_back(v);
    ASSERT_TRUE(ring.full());
    ring.reset_capacity(2);  // smaller than the 5 live elements
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 2u);
    ring.push_back(10);
    ring.push_back(11);
    ring.push_back(12);  // evicts 10
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0], 11);
    EXPECT_EQ(ring[1], 12);
}

TEST(RingBuffer, EmplaceSlotRecyclesPayloadsAfterClearAtWrappedHead) {
    RingBuffer<std::vector<int>> ring;
    ring.reset_capacity(3);
    for (int v = 0; v < 5; ++v) ring.emplace_slot().assign(64, v);
    ASSERT_TRUE(ring.full());  // head has wrapped past slot 0
    ring.clear();
    EXPECT_TRUE(ring.empty());
    // clear() rewinds to slot 0; every refill must find its old heap
    // buffer still in place (the steady-state no-allocation guarantee
    // spans restarts, which clear the pipeline's windows).
    for (int v = 0; v < 3; ++v) {
        std::vector<int>& slot = ring.emplace_slot();
        EXPECT_GE(slot.capacity(), 64u) << "slot " << v;
        slot.assign(64, 100 + v);
    }
    EXPECT_EQ(ring[0][0], 100);
    EXPECT_EQ(ring[2][0], 102);
}

TEST(RingBuffer, IndexingWrapsExactlyAtCapacityBoundary) {
    RingBuffer<int> ring;
    ring.reset_capacity(4);
    for (int v = 0; v < 4; ++v) ring.push_back(v);
    ring.push_back(4);  // head moves to 1; (head + 3) hits index 0 again
    EXPECT_EQ(ring[3], 4);
    EXPECT_EQ(ring.back(), 4);
    EXPECT_EQ(ring.front(), 1);
    ring.pop_front();
    ring.pop_front();
    ring.pop_front();
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.front(), 4);  // the element stored in the wrapped slot
    EXPECT_EQ(ring.back(), 4);
}

TEST(RingBuffer, WrapsIndexingAcrossManyEvictions) {
    RingBuffer<int> ring;
    ring.reset_capacity(7);
    for (int v = 0; v < 1000; ++v) ring.push_back(v);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring[i], 993 + static_cast<int>(i));
}

}  // namespace
}  // namespace blinkradar
