#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "dsp/stats.hpp"

namespace blinkradar::dsp {
namespace {

TEST(Stats, MeanVarianceStddev) {
    const RealSignal v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_DOUBLE_EQ(variance(v), 4.0);
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, SingleElement) {
    const RealSignal v = {3.0};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(variance(v), 0.0);
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 99.0), 3.0);
}

TEST(Stats, MedianOddAndEven) {
    EXPECT_DOUBLE_EQ(median(RealSignal{3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median(RealSignal{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileInterpolatesLinearly) {
    const RealSignal v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
}

TEST(Stats, PercentileRejectsOutOfRange) {
    const RealSignal v = {1.0};
    EXPECT_THROW(percentile(v, -1.0), blinkradar::ContractViolation);
    EXPECT_THROW(percentile(v, 101.0), blinkradar::ContractViolation);
}

TEST(Stats, ScatterVarianceIsSumOfComponentVariances) {
    Rng rng(1);
    ComplexSignal z(5000);
    RealSignal re(5000), im(5000);
    for (std::size_t i = 0; i < z.size(); ++i) {
        re[i] = rng.normal(1, 2);
        im[i] = rng.normal(-3, 0.5);
        z[i] = Complex(re[i], im[i]);
    }
    EXPECT_NEAR(scatter_variance(z), variance(re) + variance(im), 1e-9);
}

TEST(Stats, ScatterVarianceZeroForConstantCloud) {
    const ComplexSignal z(10, Complex(2, -7));
    EXPECT_DOUBLE_EQ(scatter_variance(z), 0.0);
}

TEST(Stats, ComplexMean) {
    const ComplexSignal z = {Complex(1, 2), Complex(3, 4)};
    const Complex m = complex_mean(z);
    EXPECT_DOUBLE_EQ(m.real(), 2.0);
    EXPECT_DOUBLE_EQ(m.imag(), 3.0);
}

TEST(RunningStats, MatchesBatchComputation) {
    Rng rng(2);
    RealSignal v(1000);
    RunningStats rs;
    for (auto& x : v) {
        x = rng.normal(5, 3);
        rs.push(x);
    }
    EXPECT_EQ(rs.count(), 1000u);
    EXPECT_NEAR(rs.mean(), mean(v), 1e-10);
    EXPECT_NEAR(rs.variance(), variance(v), 1e-8);
    EXPECT_NEAR(rs.stddev(), stddev(v), 1e-8);
}

TEST(RunningStats, EmptyAndSingle) {
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    rs.push(7.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
    RunningStats rs;
    rs.push(1.0);
    rs.push(2.0);
    rs.reset();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableAtLargeOffset) {
    // Welford should not lose precision when mean >> stddev.
    RunningStats rs;
    for (int i = 0; i < 1000; ++i)
        rs.push(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(rs.variance(), 1.0, 1e-6);
}

TEST(EmpiricalCdf, EvaluatesStepFunction) {
    const RealSignal samples = {1.0, 2.0, 3.0, 4.0};
    const EmpiricalCdf cdf(samples);
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(EmpiricalCdf, QuantilesPickSortedSamples) {
    const RealSignal samples = {5.0, 1.0, 3.0, 2.0, 4.0};
    const EmpiricalCdf cdf(samples);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(EmpiricalCdf, CdfAndQuantileAreConsistent) {
    Rng rng(4);
    RealSignal samples(500);
    for (auto& s : samples) s = rng.normal(0, 1);
    const EmpiricalCdf cdf(samples);
    for (const double q : {0.1, 0.25, 0.5, 0.9}) {
        EXPECT_GE(cdf.at(cdf.quantile(q)), q - 1e-12);
    }
}

TEST(EmpiricalCdf, RejectsBadQuantile) {
    const EmpiricalCdf cdf(RealSignal{1.0});
    EXPECT_THROW(cdf.quantile(0.0), blinkradar::ContractViolation);
    EXPECT_THROW(cdf.quantile(1.1), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::dsp
