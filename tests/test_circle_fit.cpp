#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "common/units.hpp"
#include "dsp/circle_fit.hpp"

namespace blinkradar::dsp {
namespace {

ComplexSignal arc_points(double cx, double cy, double r, double start_rad,
                         double extent_rad, std::size_t n, double noise,
                         Rng& rng) {
    ComplexSignal pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = start_rad + extent_rad * static_cast<double>(i) /
                                         static_cast<double>(n - 1);
        pts.emplace_back(cx + r * std::cos(a) + rng.normal(0, noise),
                         cy + r * std::sin(a) + rng.normal(0, noise));
    }
    return pts;
}

struct FitCase {
    const char* name;
    CircleFit (*fit)(std::span<const Complex>);
};

class AllFitters : public ::testing::TestWithParam<FitCase> {};

TEST_P(AllFitters, ExactFullCircleIsRecovered) {
    Rng rng(1);
    const auto pts = arc_points(2.0, -1.0, 3.0, 0.0, constants::kTwoPi, 60,
                                0.0, rng);
    const CircleFit f = GetParam().fit(pts);
    ASSERT_TRUE(f.ok);
    EXPECT_NEAR(f.center_x, 2.0, 1e-9);
    EXPECT_NEAR(f.center_y, -1.0, 1e-9);
    EXPECT_NEAR(f.radius, 3.0, 1e-9);
    EXPECT_NEAR(f.rms_residual, 0.0, 1e-9);
}

TEST_P(AllFitters, NoisyFullCircleIsRecovered) {
    Rng rng(2);
    const auto pts = arc_points(-1.0, 0.5, 1.5, 0.0, constants::kTwoPi, 200,
                                0.01, rng);
    const CircleFit f = GetParam().fit(pts);
    ASSERT_TRUE(f.ok);
    EXPECT_NEAR(f.center_x, -1.0, 0.01);
    EXPECT_NEAR(f.center_y, 0.5, 0.01);
    EXPECT_NEAR(f.radius, 1.5, 0.01);
}

TEST_P(AllFitters, DegenerateInputsAreRejected) {
    // Too few points.
    EXPECT_FALSE(GetParam().fit(ComplexSignal{Complex(0, 0), Complex(1, 1)}).ok);
    // Coincident points.
    EXPECT_FALSE(GetParam().fit(ComplexSignal(10, Complex(2, 2))).ok);
    // Collinear points.
    ComplexSignal line;
    for (int i = 0; i < 10; ++i) line.emplace_back(i, 2.0 * i);
    EXPECT_FALSE(GetParam().fit(line).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllFitters,
    ::testing::Values(FitCase{"kasa", fit_circle_kasa},
                      FitCase{"pratt", fit_circle_pratt},
                      FitCase{"taubin", fit_circle_taubin}),
    [](const ::testing::TestParamInfo<FitCase>& info) {
        return info.param.name;
    });

class ArcExtents : public ::testing::TestWithParam<double> {};

TEST_P(ArcExtents, PrattRecoversPartialArcs) {
    const double extent_deg = GetParam();
    Rng rng(3);
    const auto pts = arc_points(0.3, 0.8, 1.0, 0.7, deg_to_rad(extent_deg),
                                150, 0.005, rng);
    const CircleFit f = fit_circle_pratt(pts);
    ASSERT_TRUE(f.ok);
    EXPECT_NEAR(f.radius, 1.0, 0.12) << "extent " << extent_deg << " deg";
    EXPECT_NEAR(f.center_x, 0.3, 0.12);
    EXPECT_NEAR(f.center_y, 0.8, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Extents, ArcExtents,
                         ::testing::Values(60.0, 90.0, 150.0, 270.0));

TEST(CircleFitComparison, TaubinMatchesPrattOnShortArcs) {
    // Regression test: an early version had a wrong A1 coefficient in the
    // Taubin characteristic polynomial, halving its radius on ~60-degree
    // arcs. Taubin and Pratt should agree closely on partial arcs.
    Rng rng(8);
    for (int t = 0; t < 50; ++t) {
        const auto pts = arc_points(rng.uniform(-1, 1), rng.uniform(-1, 1),
                                    rng.uniform(0.5, 2.0),
                                    rng.uniform(0, 6.0), deg_to_rad(60.0),
                                    100, 0.01, rng);
        const CircleFit pratt = fit_circle_pratt(pts);
        const CircleFit taubin = fit_circle_taubin(pts);
        ASSERT_TRUE(pratt.ok);
        ASSERT_TRUE(taubin.ok);
        EXPECT_NEAR(taubin.radius, pratt.radius, 0.05 * pratt.radius);
    }
}

TEST(CircleFitComparison, PrattBeatsKasaOnShortArcs) {
    // Kasa's algebraic fit is biased towards small radii on short arcs —
    // the reason the paper chooses Pratt. Average over many trials.
    Rng rng(4);
    double kasa_err = 0.0, pratt_err = 0.0;
    constexpr int kTrials = 100;
    for (int t = 0; t < kTrials; ++t) {
        const auto pts = arc_points(0.0, 0.0, 1.0, rng.uniform(0, 6.0),
                                    deg_to_rad(50.0), 100, 0.01, rng);
        kasa_err += std::abs(fit_circle_kasa(pts).radius - 1.0);
        pratt_err += std::abs(fit_circle_pratt(pts).radius - 1.0);
    }
    EXPECT_LT(pratt_err, kasa_err);
}

TEST(CircleFit, ResidualMeasuresScatter) {
    Rng rng(5);
    const auto pts = arc_points(0, 0, 2.0, 0, constants::kTwoPi, 400, 0.05,
                                rng);
    const CircleFit f = fit_circle_pratt(pts);
    ASSERT_TRUE(f.ok);
    // RMS residual should be close to the injected radial noise.
    EXPECT_NEAR(f.rms_residual, 0.05, 0.015);
}

TEST(CircleFit, ResidualHelperMatchesFitResidual) {
    Rng rng(6);
    const auto pts = arc_points(1, 1, 1.0, 0, 3.0, 80, 0.01, rng);
    const CircleFit f = fit_circle_pratt(pts);
    EXPECT_NEAR(circle_rms_residual(pts, f), f.rms_residual, 1e-12);
}

TEST(CircleFit, TranslationInvariance) {
    Rng rng(7);
    const auto base = arc_points(0, 0, 1.0, 0.2, 2.0, 120, 0.01, rng);
    ComplexSignal shifted;
    for (const auto& p : base) shifted.push_back(p + Complex(100.0, -50.0));
    const CircleFit f0 = fit_circle_pratt(base);
    const CircleFit f1 = fit_circle_pratt(shifted);
    EXPECT_NEAR(f1.center_x - f0.center_x, 100.0, 1e-6);
    EXPECT_NEAR(f1.center_y - f0.center_y, -50.0, 1e-6);
    EXPECT_NEAR(f1.radius, f0.radius, 1e-6);
}

}  // namespace
}  // namespace blinkradar::dsp
