#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "physio/body_events.hpp"

namespace blinkradar::physio {
namespace {

TEST(BodyEvents, RatesScaleWithConfig) {
    BodyEventParams params;
    params.yawn_rate_per_min = 0.0;
    params.steering_rate_per_min = 3.0;
    params.mirror_rate_per_min = 0.0;
    Rng rng(1);
    const auto events = generate_body_events(params, 600.0, rng);
    // ~30 steering events expected in 10 minutes.
    EXPECT_GT(events.size(), 15u);
    EXPECT_LT(events.size(), 50u);
    for (const auto& e : events)
        EXPECT_EQ(e.kind, BodyEventKind::kSteering);
}

TEST(BodyEvents, AllKindsAppearAtDefaultRates) {
    BodyEventParams params;
    params.yawn_rate_per_min = 1.0;
    params.steering_rate_per_min = 1.0;
    params.mirror_rate_per_min = 1.0;
    Rng rng(2);
    const auto events = generate_body_events(params, 1200.0, rng);
    bool yawn = false, steer = false, mirror = false;
    for (const auto& e : events) {
        yawn |= e.kind == BodyEventKind::kYawn;
        steer |= e.kind == BodyEventKind::kSteering;
        mirror |= e.kind == BodyEventKind::kMirrorCheck;
    }
    EXPECT_TRUE(yawn);
    EXPECT_TRUE(steer);
    EXPECT_TRUE(mirror);
}

TEST(BodyEvents, EventsAreTimeSorted) {
    BodyEventParams params;
    Rng rng(3);
    const auto events = generate_body_events(params, 1800.0, rng);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].start_s, events[i - 1].start_s);
}

TEST(BodyEvents, ZeroRatesYieldNothing) {
    BodyEventParams params;
    params.yawn_rate_per_min = 0.0;
    params.steering_rate_per_min = 0.0;
    params.mirror_rate_per_min = 0.0;
    Rng rng(4);
    EXPECT_TRUE(generate_body_events(params, 600.0, rng).empty());
}

TEST(BodyEvents, EnvelopeIsZeroOutsideAndPeaksMidEvent) {
    BodyEvent e;
    e.start_s = 10.0;
    e.duration_s = 2.0;
    EXPECT_DOUBLE_EQ(body_event_envelope(e, 9.9), 0.0);
    EXPECT_DOUBLE_EQ(body_event_envelope(e, 12.1), 0.0);
    EXPECT_NEAR(body_event_envelope(e, 11.0), 1.0, 1e-12);
    // Rising and falling halves are symmetric.
    EXPECT_NEAR(body_event_envelope(e, 10.5), body_event_envelope(e, 11.5),
                1e-12);
}

TEST(BodyEvents, EnvelopeIsContinuousAtEdges) {
    BodyEvent e;
    e.start_s = 0.0;
    e.duration_s = 1.0;
    EXPECT_NEAR(body_event_envelope(e, 1e-4), 0.0, 1e-6);
    EXPECT_NEAR(body_event_envelope(e, 1.0 - 1e-4), 0.0, 1e-6);
}

TEST(BodyEvents, KindNames) {
    EXPECT_EQ(to_string(BodyEventKind::kYawn), "yawn");
    EXPECT_EQ(to_string(BodyEventKind::kSteering), "steering");
    EXPECT_EQ(to_string(BodyEventKind::kMirrorCheck), "mirror-check");
}

TEST(BodyEvents, RejectsNonPositiveDuration) {
    BodyEventParams params;
    Rng rng(5);
    EXPECT_THROW(generate_body_events(params, 0.0, rng),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::physio
