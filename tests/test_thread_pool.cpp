#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "eval/experiment.hpp"
#include "physio/driver_profile.hpp"

namespace blinkradar {
namespace {

// Force the process-wide shared pool to several threads before its first
// use, so the eval determinism tests below genuinely exercise
// multi-threaded fan-out even on a single-core CI host. Static
// initialisation runs before main(), i.e. before any test can touch
// ThreadPool::shared().
const bool g_env_forced = [] {
#ifndef _WIN32
    ::setenv("BLINKRADAR_THREADS", "3", /*overwrite=*/0);
#endif
    return true;
}();

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallel_for(n, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingleElementRanges) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.parallel_for(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelMapPreservesSlotOrder) {
    ThreadPool pool(4);
    const auto out =
        pool.parallel_map(257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ResultsAreBitIdenticalAcrossThreadCounts) {
    // The batch-engine contract: fn(i) derives everything from i, so the
    // result vector must be byte-for-byte the same for any pool size.
    auto work = [](std::size_t i) {
        Rng rng(1000 + i);
        double acc = 0.0;
        for (int k = 0; k < 100; ++k) acc += rng.normal(0.0, 1.0);
        return acc;
    };
    std::vector<double> serial(64);
    for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = work(i);

    for (const std::size_t threads : {1u, 2u, 5u}) {
        ThreadPool pool(threads);
        const auto par = pool.parallel_map(serial.size(), work);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            // Bit-identical, not just approximately equal.
            EXPECT_EQ(par[i], serial[i]) << "thread count " << threads
                                         << ", index " << i;
        }
    }
}

TEST(ThreadPool, NestedParallelForCompletes) {
    // Outer tasks issue inner parallel_fors on the same (small) pool; the
    // caller-participates design must not deadlock even with every worker
    // busy in the outer range.
    ThreadPool pool(2);
    std::atomic<int> inner_calls{0};
    pool.parallel_for(8, [&](std::size_t) {
        pool.parallel_for(8,
                          [&](std::size_t) { inner_calls.fetch_add(1); });
    });
    EXPECT_EQ(inner_calls.load(), 64);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t i) {
                                       if (i == 37)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool must survive a failed range.
    std::atomic<int> calls{0};
    pool.parallel_for(10, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, SharedPoolHonoursEnvironmentOverride) {
    ASSERT_TRUE(g_env_forced);
    EXPECT_GE(ThreadPool::shared_size(), 1u);
    EXPECT_EQ(ThreadPool::shared().size(), ThreadPool::shared_size());
}

TEST(ThreadPool, ParseThreadCountAcceptsPlainIntegers) {
    EXPECT_EQ(ThreadPool::parse_thread_count("8", 4), 8u);
    EXPECT_EQ(ThreadPool::parse_thread_count("1", 4), 1u);
    EXPECT_EQ(ThreadPool::parse_thread_count("  16 ", 4), 16u);
    EXPECT_EQ(ThreadPool::parse_thread_count("512", 4), 512u);
}

TEST(ThreadPool, ParseThreadCountFallsBackOnGarbage) {
    // Non-numeric, zero, negative, trailing junk, empty, unset, absurdly
    // large: all fall back to the supplied default instead of crashing or
    // spawning a bogus pool.
    EXPECT_EQ(ThreadPool::parse_thread_count(nullptr, 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("   ", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("abc", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("8abc", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("0", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("-3", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("513", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("99999999999999999999", 4), 4u);
    EXPECT_EQ(ThreadPool::parse_thread_count("3.5", 4), 4u);
}

// --- Determinism of the batch experiment engine (the real contract) ---

sim::ScenarioConfig scenario(std::uint64_t seed) {
    sim::ScenarioConfig sc;
    Rng rng(42);
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = 30.0;
    sc.seed = seed;
    return sc;
}

TEST(ThreadPoolDeterminism, RunSessionsMatchesSerialLoopBitwise) {
    std::vector<sim::ScenarioConfig> scenarios;
    for (std::uint64_t s = 0; s < 6; ++s) scenarios.push_back(scenario(s));

    const auto batch = eval::run_sessions(scenarios);
    ASSERT_EQ(batch.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const eval::SessionScore ref = eval::run_blink_session(scenarios[i]);
        EXPECT_EQ(batch[i].accuracy, ref.accuracy) << "scenario " << i;
        EXPECT_EQ(batch[i].restarts, ref.restarts) << "scenario " << i;
        EXPECT_EQ(batch[i].match.detected, ref.match.detected);
        EXPECT_EQ(batch[i].match.truth_hit, ref.match.truth_hit);
    }
}

TEST(ThreadPoolDeterminism, RepeatedAccuraciesMatchesDerivedSeeds) {
    const sim::ScenarioConfig base = scenario(17);
    const auto batch = eval::repeated_accuracies(base, 4);
    ASSERT_EQ(batch.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
        sim::ScenarioConfig sc = base;
        sc.seed = base.seed + r;
        EXPECT_EQ(batch[r], eval::run_blink_session(sc).accuracy)
            << "repetition " << r;
    }
}

TEST(ThreadPoolDeterminism, DrowsyBatchMatchesPerScenarioCalls) {
    std::vector<sim::ScenarioConfig> scenarios;
    for (std::uint64_t s = 100; s < 103; ++s) {
        sim::ScenarioConfig sc = scenario(s);
        sc.duration_s = 60.0;
        scenarios.push_back(sc);
    }
    eval::DrowsyExperimentOptions opt;
    opt.train_minutes_per_class = 2.0;
    opt.test_minutes_per_class = 2.0;

    const auto batch = eval::run_drowsy_experiments(scenarios, opt);
    ASSERT_EQ(batch.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const eval::DrowsyScore ref =
            eval::run_drowsy_experiment(scenarios[i], opt);
        EXPECT_EQ(batch[i].accuracy, ref.accuracy) << "scenario " << i;
        EXPECT_EQ(batch[i].threshold_rate, ref.threshold_rate);
        EXPECT_EQ(batch[i].windows, ref.windows);
    }
}

TEST(ThreadPoolDeterminism, RunSessionsIsRepeatable) {
    std::vector<sim::ScenarioConfig> scenarios;
    for (std::uint64_t s = 7; s < 11; ++s) scenarios.push_back(scenario(s));
    const auto a = eval::run_sessions(scenarios);
    const auto b = eval::run_sessions(scenarios);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].accuracy, b[i].accuracy);
}

}  // namespace
}  // namespace blinkradar
