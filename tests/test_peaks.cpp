#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/peaks.hpp"

namespace blinkradar::dsp {
namespace {

TEST(Peaks, FindsSimpleMaxima) {
    const RealSignal x = {0, 1, 0, 2, 0, 3, 0};
    const auto maxima = find_local_maxima(x);
    ASSERT_EQ(maxima.size(), 3u);
    EXPECT_EQ(maxima[0], 1u);
    EXPECT_EQ(maxima[1], 3u);
    EXPECT_EQ(maxima[2], 5u);
}

TEST(Peaks, FindsSimpleMinima) {
    const RealSignal x = {3, 1, 3, 0, 3};
    const auto minima = find_local_minima(x);
    ASSERT_EQ(minima.size(), 2u);
    EXPECT_EQ(minima[0], 1u);
    EXPECT_EQ(minima[1], 3u);
}

TEST(Peaks, EndpointsAreNeverExtrema) {
    const RealSignal x = {5, 1, 5};
    EXPECT_TRUE(find_local_maxima(x).empty());
    const RealSignal y = {0, 9, 0};
    EXPECT_TRUE(find_local_minima(y).empty());
}

TEST(Peaks, TooShortSignalsYieldNothing) {
    EXPECT_TRUE(find_local_maxima(RealSignal{1, 2}).empty());
    EXPECT_TRUE(find_local_maxima(RealSignal{}).empty());
}

TEST(Peaks, PlateausReportOnce) {
    const RealSignal x = {0, 2, 2, 2, 0};
    const auto maxima = find_local_maxima(x);
    ASSERT_EQ(maxima.size(), 1u);
    EXPECT_EQ(maxima[0], 1u);
}

TEST(Peaks, MinSeparationKeepsLargest) {
    const RealSignal x = {0, 5, 0, 3, 0, 0, 0, 4, 0};
    const auto maxima = find_local_maxima(x, 4);
    // The 3 at index 3 is within 4 samples of the larger 5 at index 1.
    ASSERT_EQ(maxima.size(), 2u);
    EXPECT_EQ(maxima[0], 1u);
    EXPECT_EQ(maxima[1], 7u);
}

TEST(Peaks, AlternatingExtremaStrictlyAlternate) {
    RealSignal x(100);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::sin(0.3 * static_cast<double>(i)) +
               0.2 * std::sin(1.7 * static_cast<double>(i));
    const auto ext = alternating_extrema(x);
    ASSERT_GT(ext.size(), 4u);
    for (std::size_t i = 1; i < ext.size(); ++i) {
        EXPECT_NE(ext[i].is_maximum, ext[i - 1].is_maximum);
        EXPECT_GT(ext[i].index, ext[i - 1].index);
    }
}

TEST(Peaks, AlternatingExtremaMaxAboveNeighbouringMin) {
    RealSignal x(60);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = std::cos(0.5 * static_cast<double>(i));
    const auto ext = alternating_extrema(x);
    for (std::size_t i = 1; i < ext.size(); ++i) {
        if (ext[i].is_maximum)
            EXPECT_GT(ext[i].value, ext[i - 1].value);
        else
            EXPECT_LT(ext[i].value, ext[i - 1].value);
    }
}

TEST(Peaks, ProminenceOfIsolatedPeakIsItsHeight) {
    RealSignal x(21, 0.0);
    x[10] = 4.0;
    EXPECT_DOUBLE_EQ(prominence(x, 10), 4.0);
}

TEST(Peaks, ProminenceOfShoulderPeakIsLimitedByCol) {
    // Main peak 10 at index 5; shoulder peak 6 at index 15 with a valley
    // of 2 between them: shoulder prominence = 6 - 2 = 4.
    RealSignal x = {0, 2, 6, 8, 9, 10, 9, 7, 4, 2, 2, 3, 4, 5, 5.5,
                    6, 5.5, 4, 2, 1, 0};
    EXPECT_DOUBLE_EQ(prominence(x, 15), 4.0);
}

TEST(Peaks, ProminenceRejectsOutOfRange) {
    const RealSignal x = {1, 2, 1};
    EXPECT_THROW(prominence(x, 3), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::dsp
