// Fleet telemetry plane: schema pins, aggregation, spans, SLO, export.
//
// The schema tests pin the exact bytes of both snapshot renderings —
// "blinkradar-obs-v1" JSON and Prometheus text exposition. Downstream
// consumers (tools/br_top, scrapers, the bench compare gate) parse
// these formats; an accidental field reorder or locale-dependent number
// must fail loudly here, not in a dashboard.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/aggregator.hpp"
#include "obs/telemetry/export.hpp"
#include "obs/telemetry/slo.hpp"
#include "obs/telemetry/span.hpp"

namespace blinkradar {
namespace {

// ---------------------------------------------------------- schema pins

obs::MetricsRegistry make_pinned_registry() {
    obs::MetricsRegistry reg;
    reg.counter("fleet.frames").inc(3);
    reg.gauge("ingest.load").set(0.5);
    obs::LatencyHistogram& h = reg.histogram("fleet.stage.guard");
    h.record(100);
    h.record(1000);
    h.record(5'000'000);  // overflow bucket
    return reg;
}

TEST(TelemetrySchema, JsonSnapshotIsPinnedByteForByte) {
    const obs::MetricsRegistry reg = make_pinned_registry();
    const std::string expected =
        "{\n"
        "  \"schema\": \"blinkradar-obs-v1\",\n"
        "  \"counters\": {\n"
        "    \"fleet.frames\": 3\n"
        "  },\n"
        "  \"gauges\": {\n"
        "    \"ingest.load\": 0.5\n"
        "  },\n"
        "  \"histograms\": {\n"
        "    \"fleet.stage.guard\": {\"count\": 3, \"sum_ns\": 5001100, "
        "\"min_ns\": 100, \"max_ns\": 5000000, \"mean_ns\": "
        "1667033.3333333333, \"p50_ns\": 768, \"p99_ns\": 4975829.12, "
        "\"buckets\": [1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "
        "1]}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(snapshot_to_json(reg), expected);
    // The appending form is the same rendering.
    std::string appended = "prefix";
    obs::append_snapshot_json(reg, appended);
    EXPECT_EQ(appended, "prefix" + expected);
}

TEST(TelemetrySchema, PrometheusExpositionIsPinnedByteForByte) {
    const obs::MetricsRegistry reg = make_pinned_registry();
    const std::string expected =
        "# TYPE fleet_frames counter\n"
        "fleet_frames 3\n"
        "# TYPE ingest_load gauge\n"
        "ingest_load 0.5\n"
        "# TYPE fleet_stage_guard histogram\n"
        "fleet_stage_guard_bucket{le=\"128\"} 1\n"
        "fleet_stage_guard_bucket{le=\"256\"} 1\n"
        "fleet_stage_guard_bucket{le=\"512\"} 1\n"
        "fleet_stage_guard_bucket{le=\"1024\"} 2\n"
        "fleet_stage_guard_bucket{le=\"2048\"} 2\n"
        "fleet_stage_guard_bucket{le=\"4096\"} 2\n"
        "fleet_stage_guard_bucket{le=\"8192\"} 2\n"
        "fleet_stage_guard_bucket{le=\"16384\"} 2\n"
        "fleet_stage_guard_bucket{le=\"32768\"} 2\n"
        "fleet_stage_guard_bucket{le=\"65536\"} 2\n"
        "fleet_stage_guard_bucket{le=\"131072\"} 2\n"
        "fleet_stage_guard_bucket{le=\"262144\"} 2\n"
        "fleet_stage_guard_bucket{le=\"524288\"} 2\n"
        "fleet_stage_guard_bucket{le=\"1048576\"} 2\n"
        "fleet_stage_guard_bucket{le=\"2097152\"} 2\n"
        "fleet_stage_guard_bucket{le=\"4194304\"} 2\n"
        "fleet_stage_guard_bucket{le=\"+Inf\"} 3\n"
        "fleet_stage_guard_sum 5001100\n"
        "fleet_stage_guard_count 3\n";
    EXPECT_EQ(obs::telemetry::snapshot_to_prometheus(reg), expected);
}

// ------------------------------------------------------ histogram merge

TEST(AggregationMerge, MergedHistogramIsBitIdenticalToSequential) {
    // Property: recording a value stream into one histogram equals
    // partitioning the stream, recording the parts separately, and
    // merging — exact, not approximate, because the fixed power-of-two
    // buckets make merge a bucket-wise sum.
    Rng rng(0xA66u);
    constexpr std::size_t kParts = 5;
    constexpr std::size_t kValues = 4000;
    obs::LatencyHistogram sequential;
    std::array<obs::LatencyHistogram, kParts> parts;
    for (std::size_t i = 0; i < kValues; ++i) {
        // Span the full bucket range including overflow.
        const std::uint64_t ns = static_cast<std::uint64_t>(
            rng.uniform_int(0, 1 << 23));
        sequential.record(ns);
        parts[i % kParts].record(ns);
    }
    obs::LatencyHistogram merged;
    for (const auto& p : parts) merged.merge_from(p);

    EXPECT_EQ(merged.count(), sequential.count());
    EXPECT_EQ(merged.sum_ns(), sequential.sum_ns());
    EXPECT_EQ(merged.min_ns(), sequential.min_ns());
    EXPECT_EQ(merged.max_ns(), sequential.max_ns());
    EXPECT_EQ(merged.counts(), sequential.counts());
    // And therefore the serialised artifacts agree byte for byte.
    obs::MetricsRegistry a, b;
    a.histogram("h").merge_from(sequential);
    b.histogram("h").merge_from(merged);
    EXPECT_EQ(snapshot_to_json(a), snapshot_to_json(b));
}

// ----------------------------------------------------------- aggregator

/// A fake session registry: per-session-prefixed names the way the
/// fleet engine lays them out.
obs::MetricsRegistry make_session_registry(std::uint64_t id,
                                           std::uint64_t frames,
                                           std::uint64_t frame_total_ns) {
    obs::MetricsRegistry reg;
    const std::string p = "fleet.s" + std::to_string(id) + ".";
    reg.counter(p + "frames").inc(frames);
    reg.gauge(p + "threshold").set(static_cast<double>(id));
    reg.histogram(p + "stage.guard").record(200 * (id + 1));
    reg.histogram(p + "stage.frame_total").record(frame_total_ns);
    return reg;
}

TEST(Aggregation, RollupMatchesSharedRegistryBitForBit) {
    // Rolling up N per-session registries equals recording everything
    // into one shared registry (the collect_metrics=false layout).
    obs::MetricsRegistry shared;
    obs::telemetry::Aggregator agg;
    agg.begin_cycle();
    for (std::uint64_t id = 0; id < 6; ++id) {
        const obs::MetricsRegistry session =
            make_session_registry(id, 10 + id, 1000 * (id + 1));
        shared.counter("fleet.frames").inc(10 + id);
        shared.gauge("fleet.threshold").set(static_cast<double>(id));
        shared.histogram("fleet.stage.guard").record(200 * (id + 1));
        shared.histogram("fleet.stage.frame_total").record(1000 * (id + 1));
        agg.add_session(id, session);
    }
    // Compare the roll-up slice only (no laggard detail, no telemetry
    // bookkeeping gauges).
    const obs::MetricsRegistry& out = agg.output();
    EXPECT_EQ(out.counters().at("fleet.frames").value(),
              shared.counters().at("fleet.frames").value());
    EXPECT_EQ(out.gauges().at("fleet.threshold").value(),
              shared.gauges().at("fleet.threshold").value());
    EXPECT_EQ(out.histograms().at("fleet.stage.guard").counts(),
              shared.histograms().at("fleet.stage.guard").counts());
    EXPECT_EQ(out.histograms().at("fleet.stage.guard").sum_ns(),
              shared.histograms().at("fleet.stage.guard").sum_ns());
}

TEST(Aggregation, LaggardDetailIsBoundedAndRetiredAcrossCycles) {
    obs::telemetry::AggregatorConfig cfg;
    cfg.top_k_laggards = 2;
    obs::telemetry::Aggregator agg(cfg);

    // Cycle 1: sessions 0..5; 3 and 5 have the largest frame_total.
    agg.begin_cycle();
    std::vector<obs::MetricsRegistry> sessions;
    for (std::uint64_t id = 0; id < 6; ++id)
        sessions.push_back(make_session_registry(
            id, 10, id == 3 ? 9'000'000 : id == 5 ? 8'000'000 : 1000));
    for (std::uint64_t id = 0; id < 6; ++id)
        agg.add_session(id, sessions[id]);
    const std::vector<std::uint64_t> laggards = agg.select_laggards();
    ASSERT_EQ(laggards, (std::vector<std::uint64_t>{3, 5}));
    for (const std::uint64_t id : laggards)
        agg.add_laggard_detail(id, sessions[id]);

    const obs::MetricsRegistry& out = agg.output();
    EXPECT_NE(out.counters().find("fleet.s3.frames"), out.counters().end());
    EXPECT_NE(out.counters().find("fleet.s5.frames"), out.counters().end());
    EXPECT_EQ(out.counters().find("fleet.s0.frames"), out.counters().end());
    // The shared-name roll-up is not polluted by per-id names: bounded
    // base cardinality + K detail sets, independent of session count.
    EXPECT_EQ(out.counters().size(), 1u + 2u);  // fleet.frames + 2 laggards

    // Cycle 2: session 1 becomes the only laggard; 3/5 detail retires.
    agg.begin_cycle();
    sessions[1] = make_session_registry(1, 10, 99'000'000);
    sessions[3] = make_session_registry(3, 10, 1000);
    sessions[5] = make_session_registry(5, 10, 1000);
    for (std::uint64_t id = 0; id < 6; ++id)
        agg.add_session(id, sessions[id]);
    // Session 1 leads; the second slot falls to the tie on 1000 ns,
    // broken toward the lowest id (0). Ascending-order output.
    const std::vector<std::uint64_t> laggards2 = agg.select_laggards();
    ASSERT_EQ(laggards2, (std::vector<std::uint64_t>{0, 1}));
    for (const std::uint64_t id : laggards2)
        agg.add_laggard_detail(id, sessions[id]);
    EXPECT_EQ(out.counters().find("fleet.s3.frames"), out.counters().end());
    EXPECT_EQ(out.counters().find("fleet.s5.frames"), out.counters().end());
    EXPECT_NE(out.counters().find("fleet.s1.frames"), out.counters().end());
}

TEST(Aggregation, SteadyStateCyclesKeepNodeCountStable) {
    // Same sessions, same laggards -> the output registry's node sets
    // must not churn between cycles (the alloc-free steady state).
    obs::telemetry::Aggregator agg;
    std::vector<obs::MetricsRegistry> sessions;
    for (std::uint64_t id = 0; id < 4; ++id)
        sessions.push_back(make_session_registry(id, 5, 1000 * (id + 1)));
    const auto cycle = [&] {
        agg.begin_cycle();
        for (std::uint64_t id = 0; id < 4; ++id)
            agg.add_session(id, sessions[id]);
        for (const std::uint64_t id : agg.select_laggards())
            agg.add_laggard_detail(id, sessions[id]);
    };
    cycle();
    const std::size_t counters = agg.output().counters().size();
    const std::size_t gauges = agg.output().gauges().size();
    const std::size_t histograms = agg.output().histograms().size();
    const std::string first = snapshot_to_json(agg.output());
    cycle();
    EXPECT_EQ(agg.output().counters().size(), counters);
    EXPECT_EQ(agg.output().gauges().size(), gauges);
    EXPECT_EQ(agg.output().histograms().size(), histograms);
    // Identical inputs -> identical snapshot, except the cycle gauge.
    std::string second = snapshot_to_json(agg.output());
    EXPECT_EQ(agg.cycles(), 2u);
    EXPECT_NE(first, second);  // telemetry.cycles advanced
    const std::size_t pos = second.find("\"telemetry.cycles\": 2");
    ASSERT_NE(pos, std::string::npos);
    second.replace(pos, std::strlen("\"telemetry.cycles\": 2"),
                   "\"telemetry.cycles\": 1");
    EXPECT_EQ(first, second);
}

TEST(Aggregation, RegistryResetAndErasePrefix) {
    obs::MetricsRegistry reg;
    reg.counter("a.one").inc(7);
    reg.counter("ab.two").inc(9);
    reg.gauge("a.g").set(3.0);
    reg.histogram("a.h").record(100);
    obs::Counter& kept = reg.counter("b.kept");
    kept.inc(2);

    reg.reset_values();
    EXPECT_EQ(reg.counters().at("a.one").value(), 0u);
    EXPECT_EQ(reg.gauges().at("a.g").value(), 0.0);
    EXPECT_EQ(reg.histograms().at("a.h").count(), 0u);
    EXPECT_EQ(kept.value(), 0u);  // same node, value zeroed in place

    reg.counter("a.one").inc(1);
    reg.erase_prefix("a.");  // exact prefix: must not take "ab.two"
    EXPECT_EQ(reg.counters().find("a.one"), reg.counters().end());
    EXPECT_EQ(reg.gauges().find("a.g"), reg.gauges().end());
    EXPECT_EQ(reg.histograms().find("a.h"), reg.histograms().end());
    EXPECT_NE(reg.counters().find("ab.two"), reg.counters().end());
    EXPECT_NE(reg.counters().find("b.kept"), reg.counters().end());
}

// ----------------------------------------------------------------- spans

TEST(TelemetrySpan, LifecycleEmitsMonotoneRecordWithAllHops) {
    obs::telemetry::SpanCollector spans;
    const std::uint64_t id = spans.mint(7, 42);
    ASSERT_NE(id, 0u);
    spans.hop(id, obs::telemetry::SpanHop::kEnqueue);
    spans.hop(id, obs::telemetry::SpanHop::kAdmit);
    spans.hop(id, obs::telemetry::SpanHop::kPump);
    const std::uint64_t stage_ns[8] = {100, 0, 50, 25, 0, 10, 5, 1};
    spans.complete(id, stage_ns, 8);
    EXPECT_EQ(spans.minted(), 1u);
    EXPECT_EQ(spans.completed(), 1u);
    EXPECT_EQ(spans.abandoned(), 0u);

    const std::string rec = spans.last_record();
    EXPECT_NE(rec.find("\"span\":" + std::to_string(id)), std::string::npos);
    EXPECT_NE(rec.find("\"stream\":7"), std::string::npos);
    EXPECT_NE(rec.find("\"seq\":42"), std::string::npos);
    // Timestamp chain is monotone by construction.
    std::uint64_t prev = 0;
    for (const char* key : {"\"decode_ns\":", "\"enqueue_ns\":",
                            "\"admit_ns\":", "\"pump_ns\":",
                            "\"result_ns\":"}) {
        const std::size_t pos = rec.find(key);
        ASSERT_NE(pos, std::string::npos) << key << " in " << rec;
        const std::uint64_t v = std::strtoull(
            rec.c_str() + pos + std::strlen(key), nullptr, 10);
        EXPECT_GE(v, prev) << key;
        prev = pos == rec.find("\"decode_ns\":") ? v : std::max(prev, v);
    }
}

TEST(TelemetrySpan, UnsampledStaleAndOverwrittenSpansAreIgnored) {
    obs::telemetry::SpanCollector spans;
    spans.hop(0, obs::telemetry::SpanHop::kAdmit);      // unsampled
    spans.complete(0, nullptr, 0);                      // unsampled
    EXPECT_EQ(spans.completed(), 0u);

    const std::uint64_t first = spans.mint(1, 1);
    // Overrun the ring: the first span's slot is reclaimed.
    for (std::size_t i = 0; i < obs::telemetry::SpanCollector::kSlots; ++i)
        spans.mint(1, 2 + i);
    EXPECT_GE(spans.abandoned(), 1u);
    spans.hop(first, obs::telemetry::SpanHop::kPump);  // stale: ignored
    spans.complete(first, nullptr, 0);                 // stale: ignored
    EXPECT_EQ(spans.completed(), 0u);
}

TEST(TelemetryConcurrency, SpanOpsRaceFreeAcrossThreads) {
    // TSan drill: minting, hopping and completing from several threads
    // must serialise on the collector's internal mutex.
    obs::telemetry::SpanCollector spans;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&spans, t] {
            for (int i = 0; i < 500; ++i) {
                const std::uint64_t id = spans.mint(
                    static_cast<std::uint64_t>(t),
                    static_cast<std::uint64_t>(i));
                spans.hop(id, obs::telemetry::SpanHop::kEnqueue);
                spans.hop(id, obs::telemetry::SpanHop::kPump);
                const std::uint64_t stage_ns[2] = {10, 20};
                spans.complete(id, stage_ns, 2);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(spans.minted(), 2000u);
    EXPECT_EQ(spans.completed() + spans.abandoned() +
                  (spans.minted() - spans.completed() - spans.abandoned()),
              2000u);
    EXPECT_GT(spans.completed(), 0u);
}

// ------------------------------------------------------------------- SLO

TEST(TelemetrySlo, BurnRateFlipsUnderBreachAndRecovers) {
    obs::MetricsRegistry reg;
    obs::telemetry::SloConfig cfg;
    cfg.short_window_ticks = 4;
    cfg.long_window_ticks = 16;
    cfg.error_budget = 0.1;
    obs::telemetry::SloTracker slo(cfg, &reg);

    // Healthy: frames delivered within one tick (age 0/1 -> <= 40 ms).
    for (int t = 0; t < 4; ++t) {
        for (int i = 0; i < 10; ++i) slo.record_frame(t % 2);
        slo.tick();
    }
    EXPECT_FALSE(slo.burning());
    EXPECT_EQ(slo.bad(), 0u);

    // Overload: frames aged 5 ticks (200 ms) breach the objective.
    for (int t = 0; t < 3; ++t) {
        for (int i = 0; i < 10; ++i) slo.record_frame(5);
        slo.tick();
    }
    EXPECT_TRUE(slo.burning());
    EXPECT_GT(slo.short_burn(), 1.0);
    EXPECT_GT(slo.bad(), 0u);
    EXPECT_GT(reg.gauges().at("ingest.slo.burn_short").value(), 1.0);
    EXPECT_EQ(reg.gauges().at("ingest.slo.burning").value(), 1.0);

    // Recovery: the short window slides clean after 4 healthy ticks.
    for (int t = 0; t < 4; ++t) {
        for (int i = 0; i < 10; ++i) slo.record_frame(0);
        slo.tick();
    }
    EXPECT_FALSE(slo.burning());
    EXPECT_EQ(reg.gauges().at("ingest.slo.burning").value(), 0.0);
    // The long window still remembers the incident.
    EXPECT_GT(slo.long_burn(), 0.0);
    // Counters are cumulative and exported.
    EXPECT_EQ(reg.counters().at("ingest.slo.good").value(), slo.good());
    EXPECT_EQ(reg.counters().at("ingest.slo.bad").value(), slo.bad());
}

TEST(TelemetrySlo, LatencyMappingIsDeterministicAtTheBoundary) {
    obs::telemetry::SloTracker slo;  // 40 ms SLO, 40 ms ticks
    slo.record_frame(0);  // 0 ms: good
    slo.record_frame(1);  // exactly 40 ms: still within the objective
    EXPECT_EQ(slo.good(), 2u);
    EXPECT_EQ(slo.bad(), 0u);
    slo.record_frame(2);  // 80 ms: breach
    EXPECT_EQ(slo.bad(), 1u);
}

// ---------------------------------------------------------------- export

TEST(TelemetryExport, PublisherWritesAtomicallyAndDoubleBuffers) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "br_telemetry_export_test";
    fs::create_directories(dir);
    obs::telemetry::SnapshotPublisherConfig cfg;
    cfg.json_path = (dir / "snapshot.json").string();
    cfg.prom_path = (dir / "snapshot.prom").string();
    obs::telemetry::SnapshotPublisher pub(cfg);

    obs::MetricsRegistry reg;
    reg.counter("c").inc(1);
    ASSERT_TRUE(pub.publish(reg));
    EXPECT_EQ(pub.publishes(), 1u);
    EXPECT_EQ(pub.failures(), 0u);
    const std::string first = pub.last_json();
    EXPECT_EQ(first, snapshot_to_json(reg));
    EXPECT_EQ(pub.last_prometheus(),
              obs::telemetry::snapshot_to_prometheus(reg));

    // The published file matches the in-memory front buffer, and no
    // temp file is left behind.
    std::ifstream in(cfg.json_path, std::ios::binary);
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_EQ(body.str(), first);
    EXPECT_FALSE(fs::exists(cfg.json_path + ".tmp"));
    EXPECT_FALSE(fs::exists(cfg.prom_path + ".tmp"));

    // Second publish flips the buffers; the front moves on.
    reg.counter("c").inc(41);
    ASSERT_TRUE(pub.publish(reg));
    EXPECT_NE(pub.last_json(), first);
    EXPECT_NE(pub.last_json().find("\"c\": 42"), std::string::npos);

    fs::remove_all(dir);
}

TEST(TelemetryExport, UnwritablePathCountsAsFailureButBuffersAdvance) {
    obs::telemetry::SnapshotPublisherConfig cfg;
    cfg.json_path = "/nonexistent-dir-for-br-telemetry/out.json";
    obs::telemetry::SnapshotPublisher pub(cfg);
    obs::MetricsRegistry reg;
    reg.counter("c").inc(5);
    EXPECT_FALSE(pub.publish(reg));
    EXPECT_EQ(pub.failures(), 1u);
    EXPECT_EQ(pub.last_json(), snapshot_to_json(reg));
}

}  // namespace
}  // namespace blinkradar
