// Ingest front-end coverage: "BRWF" wire round-trip and corruption
// tolerance (fuzz sweeps that must never throw past the stream
// boundary), per-stream backpressure determinism across shard/thread
// sweeps, admission control, stall watchdogs, and the overload drill —
// producers at 4x the sustainable rate must engage the shed ladder in
// its documented order without losing a frame silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "core/pipeline.hpp"
#include "fleet/fleet_engine.hpp"
#include "ingest/byte_source.hpp"
#include "ingest/frame_queue.hpp"
#include "ingest/frontend.hpp"
#include "ingest/wire_fault.hpp"
#include "ingest/wire_format.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/span.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"

namespace blinkradar {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kStreamHeaderBytes = 8;
constexpr std::size_t kHelloRecordBytes = 20 + 88 + 4;

std::size_t frame_record_bytes(std::size_t n_bins) {
    return 20 + (12 + 16 * n_bins) + 4;
}

sim::ScenarioConfig ingest_scenario(std::uint64_t seed, Seconds duration) {
    sim::ScenarioConfig sc;
    Rng rng(42);
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = duration;
    sc.seed = seed;
    return sc;
}

std::vector<sim::SimulatedSession> make_sessions(std::size_t n,
                                                 Seconds duration) {
    std::vector<sim::SimulatedSession> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(
            sim::simulate_session(ingest_scenario(500 + i, duration)));
    return out;
}

std::vector<std::uint8_t> encode(const sim::SimulatedSession& sim,
                                 std::uint64_t tag) {
    ingest::WireHello hello;
    hello.radar = sim.radar;
    hello.stream_tag = tag;
    return ingest::WireEncoder::encode_session(hello, sim.frames);
}

void expect_frames_bit_exact(const radar::RadarFrame& a,
                             const radar::RadarFrame& b) {
    EXPECT_EQ(a.timestamp_s, b.timestamp_s);
    ASSERT_EQ(a.bins.size(), b.bins.size());
    for (std::size_t i = 0; i < a.bins.size(); ++i) {
        EXPECT_EQ(a.bins[i].real(), b.bins[i].real());
        EXPECT_EQ(a.bins[i].imag(), b.bins[i].imag());
    }
}

/// Decode everything a byte vector holds, pushing in `chunk`-sized
/// slices. Returns the decoded frames.
radar::FrameSeries decode_all(ingest::WireDecoder& dec,
                              const std::vector<std::uint8_t>& bytes,
                              std::size_t chunk = 4096) {
    radar::FrameSeries frames;
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
        const std::size_t n = std::min(chunk, bytes.size() - off);
        dec.push({bytes.data() + off, n});
        while (auto rec = dec.next())
            if (rec->type == ingest::RecordType::kFrame)
                frames.push_back(std::move(rec->frame));
    }
    return frames;
}

// ------------------------------------------------------------ wire format

TEST(IngestWire, RoundTripIsBitExactAtAnyChunkSize) {
    const auto sims = make_sessions(1, 2.0);
    const auto bytes = encode(sims[0], 77);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{4096}}) {
        ingest::WireDecoder dec;
        const radar::FrameSeries frames = decode_all(dec, bytes, chunk);
        ASSERT_EQ(frames.size(), sims[0].frames.size()) << "chunk=" << chunk;
        for (std::size_t i = 0; i < frames.size(); ++i)
            expect_frames_bit_exact(frames[i], sims[0].frames[i]);

        ASSERT_TRUE(dec.has_hello());
        EXPECT_EQ(dec.hello().stream_tag, 77u);
        EXPECT_EQ(dec.hello().radar.carrier_hz, sims[0].radar.carrier_hz);
        EXPECT_EQ(dec.hello().radar.frame_period_s,
                  sims[0].radar.frame_period_s);
        EXPECT_TRUE(dec.saw_bye());
        EXPECT_EQ(dec.stats().total_errors(), 0u);
        EXPECT_EQ(dec.stats().frames_decoded, frames.size());
        EXPECT_EQ(dec.stats().quarantined_bytes, 0u);
        EXPECT_EQ(dec.stats().seq_gaps, 0u);
        EXPECT_EQ(dec.stats().seq_regressions, 0u);
    }
}

TEST(IngestWire, MidFrameEofLeavesTailBufferedWithoutError) {
    const auto sims = make_sessions(1, 1.0);
    auto bytes = encode(sims[0], 0);
    const std::size_t rec = frame_record_bytes(sims[0].radar.n_bins());
    // Cut in the middle of the 4th frame record.
    const std::size_t cut =
        kStreamHeaderBytes + kHelloRecordBytes + 3 * rec + rec / 2;
    ASSERT_LT(cut, bytes.size());
    bytes.resize(cut);

    ingest::WireDecoder dec;
    const radar::FrameSeries frames = decode_all(dec, bytes);
    EXPECT_EQ(frames.size(), 3u);
    EXPECT_FALSE(dec.saw_bye());
    EXPECT_EQ(dec.stats().total_errors(), 0u);
    EXPECT_GT(dec.buffered_bytes(), 0u);  // the amputated tail
}

TEST(IngestWire, CrcMismatchCostsOneRecordAndResyncs) {
    const auto sims = make_sessions(1, 1.0);
    auto bytes = encode(sims[0], 0);
    const std::size_t rec = frame_record_bytes(sims[0].radar.n_bins());
    // Flip one payload byte inside the 3rd frame record.
    bytes[kStreamHeaderBytes + kHelloRecordBytes + 2 * rec + 40] ^= 0x10;

    ingest::WireDecoder dec;
    const radar::FrameSeries frames = decode_all(dec, bytes);
    EXPECT_EQ(frames.size(), sims[0].frames.size() - 1);
    const ingest::DecodeStats& st = dec.stats();
    EXPECT_GE(st.errors[static_cast<std::size_t>(
                  ingest::DecodeError::kCrcMismatch)],
              1u);
    EXPECT_GE(st.resyncs, 1u);
    EXPECT_GT(st.quarantined_bytes, 0u);
    EXPECT_EQ(st.seq_gaps, 1u);  // the lost record shows up in seq space
    EXPECT_TRUE(dec.saw_bye());
}

TEST(IngestWire, GarbagePreambleIsQuarantined) {
    const auto sims = make_sessions(1, 1.0);
    const auto clean = encode(sims[0], 0);
    std::vector<std::uint8_t> bytes(64, 0xEE);
    bytes.insert(bytes.end(), clean.begin(), clean.end());

    ingest::WireDecoder dec;
    const radar::FrameSeries frames = decode_all(dec, bytes);
    EXPECT_EQ(frames.size(), sims[0].frames.size());
    EXPECT_GE(dec.stats().errors[static_cast<std::size_t>(
                  ingest::DecodeError::kBadStreamMagic)],
              1u);
    EXPECT_EQ(dec.stats().quarantined_bytes, 64u);
    EXPECT_TRUE(dec.saw_bye());
}

TEST(IngestWire, FrameBeforeHelloIsRejectedPerRecord) {
    const auto sims = make_sessions(1, 1.0);
    const auto full = encode(sims[0], 0);
    // Stream header + records, with the hello record spliced out.
    std::vector<std::uint8_t> bytes(full.begin(),
                                    full.begin() + kStreamHeaderBytes);
    bytes.insert(bytes.end(),
                 full.begin() + kStreamHeaderBytes + kHelloRecordBytes,
                 full.end());

    ingest::WireDecoder dec;
    const radar::FrameSeries frames = decode_all(dec, bytes);
    EXPECT_TRUE(frames.empty());
    EXPECT_FALSE(dec.has_hello());
    EXPECT_EQ(dec.stats().errors[static_cast<std::size_t>(
                  ingest::DecodeError::kFrameBeforeHello)],
              sims[0].frames.size());
}

TEST(IngestWire, DuplicateHelloIsCountedAndSkipped) {
    const auto sims = make_sessions(1, 1.0);
    auto bytes = encode(sims[0], 0);
    // Replay the hello record just before the bye (a reconnecting
    // producer restarting its stream).
    const std::vector<std::uint8_t> hello_rec(
        bytes.begin() + kStreamHeaderBytes,
        bytes.begin() + kStreamHeaderBytes + kHelloRecordBytes);
    bytes.insert(bytes.end() - 32, hello_rec.begin(), hello_rec.end());

    ingest::WireDecoder dec;
    const radar::FrameSeries frames = decode_all(dec, bytes);
    EXPECT_EQ(frames.size(), sims[0].frames.size());
    EXPECT_EQ(dec.stats().errors[static_cast<std::size_t>(
                  ingest::DecodeError::kDuplicateHello)],
              1u);
    EXPECT_GE(dec.stats().seq_regressions, 1u);
    EXPECT_TRUE(dec.saw_bye());
}

TEST(IngestWire, OversizedRecordsAreRejectedByTheCeiling) {
    const auto sims = make_sessions(1, 1.0);
    const auto bytes = encode(sims[0], 0);
    // A ceiling below the frame payload (but >= the hello payload).
    ingest::WireDecoder dec(96);
    const radar::FrameSeries frames = decode_all(dec, bytes);
    EXPECT_TRUE(frames.empty());
    EXPECT_TRUE(dec.has_hello());
    EXPECT_EQ(dec.stats().errors[static_cast<std::size_t>(
                  ingest::DecodeError::kOversizedRecord)],
              sims[0].frames.size());
    EXPECT_TRUE(dec.saw_bye());
}

TEST(IngestWire, DuplicatedAndRemovedRecordsShowInSeqAccounting) {
    const auto sims = make_sessions(1, 1.0);
    const auto clean = encode(sims[0], 0);
    const std::size_t rec = frame_record_bytes(sims[0].radar.n_bins());
    const std::size_t frame0 = kStreamHeaderBytes + kHelloRecordBytes;

    // Re-deliver frame 2 right after itself (duplicated transport chunk).
    auto dup = clean;
    dup.insert(dup.begin() + static_cast<std::ptrdiff_t>(frame0 + 3 * rec),
               clean.begin() + static_cast<std::ptrdiff_t>(frame0 + 2 * rec),
               clean.begin() + static_cast<std::ptrdiff_t>(frame0 + 3 * rec));
    ingest::WireDecoder d1;
    EXPECT_EQ(decode_all(d1, dup).size(), sims[0].frames.size() + 1);
    EXPECT_EQ(d1.stats().seq_regressions, 1u);

    // Remove frame 2 entirely (records lost in transport).
    auto gap = clean;
    gap.erase(gap.begin() + static_cast<std::ptrdiff_t>(frame0 + 2 * rec),
              gap.begin() + static_cast<std::ptrdiff_t>(frame0 + 3 * rec));
    ingest::WireDecoder d2;
    EXPECT_EQ(decode_all(d2, gap).size(), sims[0].frames.size() - 1);
    EXPECT_EQ(d2.stats().seq_gaps, 1u);
    EXPECT_EQ(d2.stats().total_errors(), 0u);  // clean loss, not corruption
}

// ------------------------------------------------------------- fuzz sweep

TEST(IngestFuzz, FaultInjectorSweepNeverThrowsAndAccountsEveryByte) {
    const auto sims = make_sessions(1, 2.0);
    const auto clean = encode(sims[0], 9);

    ingest::WireFaultConfig fc;
    fc.chunk_bytes = 256;
    fc.truncate_rate = 0.05;
    fc.bitflip_rate = 0.05;
    fc.duplicate_rate = 0.05;
    fc.reorder_rate = 0.05;
    fc.drop_rate = 0.03;
    fc.garbage_rate = 0.05;

    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ingest::WireFaultInjector inj(fc, seed);
        const auto corrupted = inj.corrupt(clean);

        ingest::WireDecoder dec;
        const radar::FrameSeries frames = decode_all(dec, corrupted, 777);
        EXPECT_LE(frames.size(), sims[0].frames.size() + 4);  // dups allowed
        EXPECT_EQ(dec.stats().bytes_in, corrupted.size());
        EXPECT_LE(dec.stats().quarantined_bytes, dec.stats().bytes_in);
    }
}

TEST(IngestFuzz, InjectorScheduleIsSeedDeterministic) {
    const auto sims = make_sessions(1, 1.0);
    const auto clean = encode(sims[0], 0);
    ingest::WireFaultConfig fc;
    fc.truncate_rate = 0.1;
    fc.bitflip_rate = 0.1;
    fc.duplicate_rate = 0.1;
    fc.reorder_rate = 0.1;
    fc.drop_rate = 0.05;
    fc.garbage_rate = 0.1;

    ingest::WireFaultInjector a(fc, 1234), b(fc, 1234), c(fc, 4321);
    const auto out_a = a.corrupt(clean);
    const auto out_b = b.corrupt(clean);
    const auto out_c = c.corrupt(clean);
    EXPECT_EQ(out_a, out_b);
    EXPECT_NE(out_a, out_c);

    // Bit-identical corruption implies bit-identical decode accounting.
    ingest::WireDecoder da, db;
    decode_all(da, out_a);
    decode_all(db, out_b);
    EXPECT_EQ(da.stats().frames_decoded, db.stats().frames_decoded);
    EXPECT_EQ(da.stats().quarantined_bytes, db.stats().quarantined_bytes);
    EXPECT_EQ(da.stats().errors, db.stats().errors);
}

TEST(IngestFuzz, RandomMutationsNeverThrowPastTheStreamBoundary) {
    const auto sims = make_sessions(1, 1.0);
    const auto clean = encode(sims[0], 0);
    Rng rng(7);

    for (int iter = 0; iter < 60; ++iter) {
        auto bytes = clean;
        const int mutations = rng.uniform_int(1, 8);
        for (int m = 0; m < mutations; ++m) {
            switch (rng.uniform_int(0, 2)) {
                case 0: {  // flip a byte
                    const std::size_t i = static_cast<std::size_t>(
                        rng.uniform_int(0,
                                        static_cast<int>(bytes.size() - 1)));
                    bytes[i] = static_cast<std::uint8_t>(
                        rng.uniform_int(0, 255));
                    break;
                }
                case 1: {  // truncate a suffix
                    const std::size_t keep = static_cast<std::size_t>(
                        rng.uniform_int(0,
                                        static_cast<int>(bytes.size() - 1)));
                    bytes.resize(keep);
                    if (bytes.empty()) bytes.push_back(0);
                    break;
                }
                case 2: {  // insert garbage mid-stream
                    const std::size_t at = static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<int>(bytes.size())));
                    const int n = rng.uniform_int(1, 32);
                    std::vector<std::uint8_t> junk;
                    for (int i = 0; i < n; ++i)
                        junk.push_back(static_cast<std::uint8_t>(
                            rng.uniform_int(0, 255)));
                    bytes.insert(bytes.begin() +
                                     static_cast<std::ptrdiff_t>(at),
                                 junk.begin(), junk.end());
                    break;
                }
            }
        }
        ingest::WireDecoder dec;
        decode_all(dec, bytes, 333);  // must not throw for any mutation
        EXPECT_EQ(dec.stats().bytes_in, bytes.size());
    }

    // Pure random garbage, including pathological sizes.
    for (const std::size_t size :
         {std::size_t{0}, std::size_t{1}, std::size_t{19}, std::size_t{4096}}) {
        std::vector<std::uint8_t> junk;
        for (std::size_t i = 0; i < size; ++i)
            junk.push_back(
                static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
        ingest::WireDecoder dec;
        decode_all(dec, junk, 97);
        EXPECT_EQ(dec.stats().frames_decoded, 0u);
    }
}

// ------------------------------------------------------------ frame queue

radar::RadarFrame tiny_frame(double t) {
    radar::RadarFrame f;
    f.timestamp_s = t;
    f.bins.resize(1, dsp::Complex(t, -t));
    return f;
}

TEST(IngestQueue, EveryPolicyAccountsEveryFrame) {
    for (const auto policy : {ingest::BackpressurePolicy::kBlock,
                              ingest::BackpressurePolicy::kDropOldest,
                              ingest::BackpressurePolicy::kDropNewest}) {
        ingest::BoundedFrameQueue q(4, policy);
        for (int i = 0; i < 6; ++i) q.push(tiny_frame(i), 0);

        std::vector<radar::RadarFrame> frames;
        std::vector<std::uint64_t> ages;
        q.pop_into(SIZE_MAX, 3, frames, ages);
        ASSERT_EQ(frames.size(), 4u);
        for (const std::uint64_t age : ages) EXPECT_EQ(age, 3u);

        const ingest::FrameQueueStats st = q.stats();
        switch (policy) {
            case ingest::BackpressurePolicy::kBlock:
                EXPECT_EQ(st.accepted, 4u);
                EXPECT_EQ(st.would_block, 2u);
                EXPECT_EQ(st.dropped(), 0u);
                EXPECT_EQ(frames.front().timestamp_s, 0.0);
                break;
            case ingest::BackpressurePolicy::kDropOldest:
                EXPECT_EQ(st.accepted, 6u);
                EXPECT_EQ(st.dropped_oldest, 2u);
                // The two oldest died; the window slid forward.
                EXPECT_EQ(frames.front().timestamp_s, 2.0);
                EXPECT_EQ(frames.back().timestamp_s, 5.0);
                break;
            case ingest::BackpressurePolicy::kDropNewest:
                EXPECT_EQ(st.accepted, 4u);
                EXPECT_EQ(st.dropped_newest, 2u);
                // What was queued stayed intact.
                EXPECT_EQ(frames.front().timestamp_s, 0.0);
                EXPECT_EQ(frames.back().timestamp_s, 3.0);
                break;
        }
        // No silent loss: everything pushed is accepted, refused, or
        // dropped — and the accepted ones all came back out.
        EXPECT_EQ(st.accepted + st.would_block + st.dropped_newest, 6u);
        EXPECT_EQ(st.accepted - st.dropped_oldest, frames.size());
    }
}

// ------------------------------------------------------- frontend basics

void expect_no_silent_loss(const ingest::IngestFrontend& fe,
                           ingest::StreamId id) {
    const ingest::StreamStats st = fe.stream_stats(id);
    EXPECT_EQ(st.frames_decoded, st.frames_delivered + st.frames_dropped +
                                     st.queued + (st.holding ? 1 : 0))
        << "stream " << id;
}

TEST(IngestFrontend, FileReplayMatchesDirectPipelineBitExactly) {
    const auto sims = make_sessions(1, 4.0);

    core::BlinkRadarPipeline ref_pipe(sims[0].radar);
    std::vector<core::FrameResult> ref;
    for (const radar::RadarFrame& f : sims[0].frames)
        ref.push_back(ref_pipe.process(f));

    const std::string path = "ingest_replay_test.brwf";
    {
        const auto bytes = encode(sims[0], 1);
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }

    ThreadPool pool(2);
    fleet::FleetEngine engine(fleet::FleetConfig{}, &pool);
    ingest::IngestFrontend fe(ingest::IngestConfig{}, engine);

    const ingest::Admission adm =
        fe.open_stream(std::make_unique<ingest::FileReplaySource>(path));
    ASSERT_TRUE(adm.admitted());

    std::size_t ticks = 0;
    while (!fe.drained() && ticks++ < 500) fe.pump();
    ASSERT_TRUE(fe.drained());
    ASSERT_TRUE(fe.session_of(adm.id).has_value());
    const fleet::SessionId sid = *fe.session_of(adm.id);

    const auto& got = engine.results(sid);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].waveform_value, ref[i].waveform_value) << i;
        EXPECT_EQ(got[i].health, ref[i].health) << i;
    }
    expect_no_silent_loss(fe, adm.id);
    EXPECT_TRUE(fe.stream_stats(adm.id).saw_bye);

    const fleet::SessionStats final_stats = fe.close_stream(adm.id);
    EXPECT_EQ(final_stats.frames_processed, sims[0].frames.size());
    EXPECT_EQ(fe.stream_count(), 0u);
    std::remove(path.c_str());
}

TEST(IngestFrontend, AdmissionTokenBucketRefusesBurstsThenRefills) {
    ThreadPool pool(1);
    fleet::FleetEngine engine(fleet::FleetConfig{}, &pool);
    ingest::IngestConfig cfg;
    cfg.admission.capacity = 2.0;
    cfg.admission.refill_per_tick = 0.5;
    ingest::IngestFrontend fe(cfg, engine);

    auto src = [] {
        return std::make_unique<ingest::MemoryByteSource>(
            std::vector<std::uint8_t>{});
    };
    EXPECT_TRUE(fe.open_stream(src()).admitted());
    EXPECT_TRUE(fe.open_stream(src()).admitted());
    EXPECT_EQ(fe.open_stream(src()).outcome,
              ingest::AdmissionOutcome::kRefusedTokens);

    fe.pump();
    fe.pump();  // +1.0 token
    EXPECT_TRUE(fe.open_stream(src()).admitted());
    EXPECT_EQ(fe.open_stream(src()).outcome,
              ingest::AdmissionOutcome::kRefusedTokens);
}

TEST(IngestFrontend, CloseStreamDrainsQueuedFrames) {
    const auto sims = make_sessions(1, 2.0);
    ThreadPool pool(1);
    fleet::FleetEngine engine(fleet::FleetConfig{}, &pool);
    ingest::IngestConfig cfg;
    cfg.governor.budget_frames_per_tick = 1;  // almost nothing delivers
    // Park the ladder so the huge backlog can't force drops.
    cfg.governor.widen_at = 1e5;
    cfg.governor.force_drop_at = 2e5;
    cfg.governor.evict_at = 3e5;
    cfg.governor.refuse_at = 4e5;
    cfg.stream.queue_capacity = 256;
    ingest::IngestFrontend fe(cfg, engine);

    const auto adm = fe.open_stream(std::make_unique<ingest::MemoryByteSource>(
        encode(sims[0], 0)));
    ASSERT_TRUE(adm.admitted());
    // A few pumps decode everything (the per-tick read budget spans only
    // part of the stream) while delivering just one frame per tick.
    std::size_t ticks = 0;
    while (fe.stream_stats(adm.id).frames_decoded < sims[0].frames.size() &&
           ticks++ < 50)
        fe.pump();

    const ingest::StreamStats st = fe.stream_stats(adm.id);
    EXPECT_EQ(st.frames_decoded, sims[0].frames.size());
    EXPECT_GT(st.queued, 0u);

    // Drain-then-release, through FleetEngine::close: every decoded
    // frame must be processed, none abandoned in the queue or inbox.
    const fleet::SessionStats final_stats = fe.close_stream(adm.id);
    EXPECT_EQ(final_stats.frames_processed, sims[0].frames.size());
}

namespace {
/// A source that stays silent until reconnect() is called, then serves
/// the wrapped bytes — the watchdog drill's stalled transport.
class StallingSource : public ingest::ByteSource {
public:
    explicit StallingSource(std::vector<std::uint8_t> bytes)
        : inner_(std::move(bytes)) {}

    std::size_t read(std::uint8_t* out, std::size_t max) override {
        if (!connected_) return 0;
        return inner_.read(out, max);
    }
    bool exhausted() const override {
        return connected_ && inner_.exhausted();
    }
    void reconnect() override { connected_ = true; }

private:
    ingest::MemoryByteSource inner_;
    bool connected_ = false;
};
}  // namespace

TEST(IngestFrontend, WatchdogReconnectsAStalledStream) {
    const auto sims = make_sessions(1, 1.0);
    ThreadPool pool(1);
    fleet::FleetEngine engine(fleet::FleetConfig{}, &pool);
    ingest::IngestConfig cfg;
    cfg.stream.stall_ticks = 3;
    cfg.stream.backoff_base_ticks = 2;
    ingest::IngestFrontend fe(cfg, engine);

    const auto adm = fe.open_stream(
        std::make_unique<StallingSource>(encode(sims[0], 0)));
    ASSERT_TRUE(adm.admitted());

    std::size_t ticks = 0;
    while (!fe.drained() && ticks++ < 100) fe.pump();
    ASSERT_TRUE(fe.drained());

    const ingest::StreamStats st = fe.stream_stats(adm.id);
    EXPECT_GE(st.reconnects, 1u);
    EXPECT_EQ(st.frames_decoded, sims[0].frames.size());
    expect_no_silent_loss(fe, adm.id);
}

TEST(IngestFrontend, MetricsSurfaceDeliveryAndDecodeAccounting) {
    const auto sims = make_sessions(1, 1.0);
    ThreadPool pool(1);
    fleet::FleetEngine engine(fleet::FleetConfig{}, &pool);
    obs::MetricsRegistry reg;
    ingest::IngestFrontend fe(ingest::IngestConfig{}, engine, &reg);

    const auto adm = fe.open_stream(std::make_unique<ingest::MemoryByteSource>(
        encode(sims[0], 0)));
    ASSERT_TRUE(adm.admitted());
    std::size_t ticks = 0;
    while (!fe.drained() && ticks++ < 200) fe.pump();

    EXPECT_EQ(reg.counter("ingest.streams.opened").value(), 1u);
    EXPECT_EQ(reg.counter("ingest.frames.delivered").value(),
              sims[0].frames.size());
    EXPECT_EQ(reg.gauge("ingest.frames.decoded").value(),
              static_cast<double>(sims[0].frames.size()));
    EXPECT_EQ(reg.gauge("ingest.decode.errors").value(), 0.0);
    EXPECT_GT(reg.histogram("ingest.pump_ns").count(), 0u);
    EXPECT_GT(reg.gauge("ingest.bytes_in").value(), 0.0);
}

// -------------------------------------- backpressure determinism sweep

struct SweepStream {
    std::uint64_t decoded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t processed = 0;
    std::vector<core::DetectedBlink> blinks;
};

std::vector<SweepStream> run_backpressure(
    ingest::BackpressurePolicy policy, std::size_t n_shards,
    std::size_t n_threads, const std::vector<sim::SimulatedSession>& sims,
    const std::vector<std::vector<std::uint8_t>>& encoded,
    std::size_t trickle_bytes) {
    ThreadPool pool(n_threads);
    fleet::FleetConfig fcfg;
    fcfg.n_shards = n_shards;
    fleet::FleetEngine engine(fcfg, &pool);

    ingest::IngestConfig cfg;
    cfg.governor.budget_frames_per_tick = 16;
    // Park the shed ladder: this test isolates the queue policies.
    cfg.governor.widen_at = 1e5;
    cfg.governor.force_drop_at = 2e5;
    cfg.governor.evict_at = 3e5;
    cfg.governor.refuse_at = 4e5;
    cfg.stream.queue_capacity = 8;
    cfg.stream.policy = policy;
    cfg.admission.capacity = 16.0;
    ingest::IngestFrontend fe(cfg, engine);

    std::vector<ingest::StreamId> ids;
    for (const auto& bytes : encoded) {
        const auto adm = fe.open_stream(
            std::make_unique<ingest::MemoryByteSource>(bytes,
                                                       trickle_bytes));
        EXPECT_TRUE(adm.admitted());
        ids.push_back(adm.id);
    }

    std::size_t ticks = 0;
    while (!fe.drained() && ticks++ < 3000) fe.pump();
    EXPECT_TRUE(fe.drained());

    std::vector<SweepStream> out;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const ingest::StreamStats st = fe.stream_stats(ids[i]);
        SweepStream row;
        row.decoded = st.frames_decoded;
        row.delivered = st.frames_delivered;
        row.dropped = st.frames_dropped;
        EXPECT_EQ(st.queued, 0u);
        EXPECT_FALSE(st.holding);
        expect_no_silent_loss(fe, ids[i]);
        const fleet::SessionId sid = *fe.session_of(ids[i]);
        row.blinks = engine.blinks(sid);
        row.processed = fe.close_stream(ids[i]).frames_processed;
        out.push_back(std::move(row));
    }
    (void)sims;
    return out;
}

TEST(IngestBackpressure, EightStreamsThreePoliciesBitIdenticalAcrossSweep) {
    const std::size_t kStreams = 8;
    const auto sims = make_sessions(kStreams, 3.0);
    std::vector<std::vector<std::uint8_t>> encoded;
    for (std::size_t i = 0; i < kStreams; ++i)
        encoded.push_back(encode(sims[i], i));
    // Trickle ~3 frames of bytes per tick so queues fill faster than the
    // 16-frame global budget drains them — real backpressure, every run.
    const std::size_t trickle =
        3 * frame_record_bytes(sims[0].radar.n_bins());

    const std::size_t shard_counts[] = {1, 3, 8};
    const std::size_t pool_sizes[] = {1, 2, 7};
    for (const auto policy : {ingest::BackpressurePolicy::kBlock,
                              ingest::BackpressurePolicy::kDropOldest,
                              ingest::BackpressurePolicy::kDropNewest}) {
        const auto baseline =
            run_backpressure(policy, 1, 1, sims, encoded, trickle);

        std::uint64_t total_dropped = 0;
        for (std::size_t s = 0; s < kStreams; ++s) {
            EXPECT_EQ(baseline[s].decoded, sims[s].frames.size());
            EXPECT_EQ(baseline[s].delivered, baseline[s].processed);
            total_dropped += baseline[s].dropped;
        }
        if (policy == ingest::BackpressurePolicy::kBlock)
            EXPECT_EQ(total_dropped, 0u);  // block never loses frames
        else
            EXPECT_GT(total_dropped, 0u);  // pressure really happened

        for (const std::size_t n_shards : shard_counts) {
            for (const std::size_t n_threads : pool_sizes) {
                if (n_shards == 1 && n_threads == 1) continue;
                const auto got = run_backpressure(policy, n_shards,
                                                  n_threads, sims, encoded,
                                                  trickle);
                for (std::size_t s = 0; s < kStreams; ++s) {
                    EXPECT_EQ(got[s].decoded, baseline[s].decoded)
                        << "policy=" << to_string(policy)
                        << " shards=" << n_shards
                        << " threads=" << n_threads << " stream=" << s;
                    EXPECT_EQ(got[s].delivered, baseline[s].delivered);
                    EXPECT_EQ(got[s].dropped, baseline[s].dropped);
                    EXPECT_EQ(got[s].processed, baseline[s].processed);
                    ASSERT_EQ(got[s].blinks.size(),
                              baseline[s].blinks.size());
                    for (std::size_t b = 0; b < got[s].blinks.size(); ++b) {
                        EXPECT_EQ(got[s].blinks[b].peak_s,
                                  baseline[s].blinks[b].peak_s);
                        EXPECT_EQ(got[s].blinks[b].magnitude,
                                  baseline[s].blinks[b].magnitude);
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------- overload drill

/// The deterministic slice of an aggregated telemetry snapshot — what
/// the bit-identity sweep compares. Excluded: engine.sessions_stolen
/// (scheduling-dependent), per-shard roll-ups (shape follows n_shards),
/// per-laggard detail (ranked by wall-clock stage time), and pump_ns
/// (wall time). Histograms whose *values* are wall durations (the stage
/// timers) contribute their deterministic frame counts only; the SLO
/// latency and queue-age histograms — tick-derived values — must match
/// bucket for bucket.
std::string telemetry_identity_subset(const obs::MetricsRegistry& out) {
    const auto excluded = [](const std::string& name) {
        if (name == "fleet.engine.sessions_stolen") return true;
        if (name.rfind("fleet.shard", 0) == 0) return true;
        if (name == "ingest.pump_ns") return true;
        if (name.rfind("fleet.s", 0) == 0 && name.size() > 7 &&
            name[7] >= '0' && name[7] <= '9')
            return true;
        return false;
    };
    const auto deterministic_values = [](const std::string& name) {
        return name == "ingest.slo.enqueue_to_result_ns" ||
               name == "ingest.queue_age_ticks";
    };
    std::string s;
    for (const auto& [name, c] : out.counters()) {
        if (excluded(name)) continue;
        s += name;
        s += '=';
        s += std::to_string(c.value());
        s += '\n';
    }
    for (const auto& [name, g] : out.gauges()) {
        if (excluded(name)) continue;
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", g.value());
        s += name;
        s += '=';
        s += buf;
        s += '\n';
    }
    for (const auto& [name, h] : out.histograms()) {
        if (excluded(name)) continue;
        s += name;
        s += " count=";
        s += std::to_string(h.count());
        if (deterministic_values(name)) {
            s += " sum=";
            s += std::to_string(h.sum_ns());
            s += " min=";
            s += std::to_string(h.min_ns());
            s += " max=";
            s += std::to_string(h.max_ns());
            s += " buckets=";
            for (const std::uint64_t b : h.counts()) {
                s += std::to_string(b);
                s += ',';
            }
        }
        s += '\n';
    }
    return s;
}

/// Parse a span JSONL record and assert every hop is present with
/// monotonically non-decreasing timestamps:
/// decode -> enqueue -> admit -> pump -> stage[0..7] -> result.
void expect_span_monotone(const std::string& rec) {
    ASSERT_FALSE(rec.empty());
    std::vector<std::uint64_t> ts;
    for (const char* key : {"\"decode_ns\":", "\"enqueue_ns\":",
                            "\"admit_ns\":", "\"pump_ns\":"}) {
        const std::size_t pos = rec.find(key);
        ASSERT_NE(pos, std::string::npos) << key << " missing in " << rec;
        ts.push_back(
            std::strtoull(rec.c_str() + pos + std::strlen(key), nullptr, 10));
    }
    const std::size_t spos = rec.find("\"stage_ns\":[");
    ASSERT_NE(spos, std::string::npos) << rec;
    const char* p = rec.c_str() + spos + std::strlen("\"stage_ns\":[");
    for (int i = 0; i < 8; ++i) {
        char* end = nullptr;
        ts.push_back(std::strtoull(p, &end, 10));
        ASSERT_NE(p, end) << "stage " << i << " missing in " << rec;
        p = *end == ',' ? end + 1 : end;
    }
    const std::size_t rpos = rec.find("\"result_ns\":");
    ASSERT_NE(rpos, std::string::npos) << rec;
    ts.push_back(std::strtoull(
        rec.c_str() + rpos + std::strlen("\"result_ns\":"), nullptr, 10));
    EXPECT_GT(ts[0], 0u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_GE(ts[i], ts[i - 1]) << "hop " << i << " in " << rec;
}

struct DrillOutcome {
    std::vector<SweepStream> streams;
    std::vector<std::array<std::uint64_t, 3>> shed;  // tick, from, to
    std::vector<std::uint64_t> pump_ns;
    bool refused_at_top = false;
    bool residency_tightened = false;
    fleet::ResidencyPolicy final_residency{};
    ingest::ShedLevel final_level = ingest::ShedLevel::kNormal;
    std::string telemetry;    ///< deterministic aggregated subset
    std::string span_record;  ///< last completed span JSONL
    std::uint64_t spans_completed = 0;
    bool slo_burned_during_shed = false;
    bool slo_burning_after = false;
    std::uint64_t slo_good = 0;
    std::uint64_t slo_bad = 0;
};

DrillOutcome run_overload(std::size_t n_shards, std::size_t n_threads,
                          const std::vector<sim::SimulatedSession>& sims,
                          const std::vector<std::vector<std::uint8_t>>&
                              encoded) {
    ThreadPool pool(n_threads);
    obs::telemetry::SpanCollector spans;
    fleet::FleetConfig fcfg;
    fcfg.n_shards = n_shards;
    fcfg.collect_metrics = true;
    fcfg.span_collector = &spans;
    fleet::FleetEngine engine(fcfg, &pool);

    obs::MetricsRegistry reg;
    ingest::IngestConfig cfg;
    cfg.governor.budget_frames_per_tick = 24;
    cfg.governor.engage_ticks = 2;
    cfg.governor.release_ticks = 4;
    cfg.stream.queue_capacity = 64;
    cfg.stream.policy = ingest::BackpressurePolicy::kBlock;
    cfg.admission.capacity = 16.0;
    ingest::IngestFrontend fe(cfg, engine, &reg, nullptr, &spans);

    // Producers at 4x the sustainable rate: the budget sustains 4
    // frames/stream/tick across 6 streams; each source trickles 16.
    const std::size_t trickle =
        16 * frame_record_bytes(sims[0].radar.n_bins());
    std::vector<ingest::StreamId> ids;
    for (const auto& bytes : encoded) {
        const auto adm = fe.open_stream(
            std::make_unique<ingest::MemoryByteSource>(bytes, trickle));
        EXPECT_TRUE(adm.admitted());
        ids.push_back(adm.id);
    }

    DrillOutcome out;
    std::size_t ticks = 0;
    while (!fe.drained() && ticks++ < 3000) {
        const ingest::PumpReport rep = fe.pump();
        out.pump_ns.push_back(rep.pump_ns);
        if (fe.shed_level() == ingest::ShedLevel::kRefuseAdmissions &&
            !out.refused_at_top) {
            const auto adm = fe.open_stream(
                std::make_unique<ingest::MemoryByteSource>(
                    std::vector<std::uint8_t>{}));
            out.refused_at_top =
                adm.outcome == ingest::AdmissionOutcome::kRefusedShed;
        }
        if (fe.shed_level() >= ingest::ShedLevel::kEvictIdle &&
            engine.residency_policy().evict_idle_after_pumps == 1)
            out.residency_tightened = true;
        if (fe.shed_level() >= ingest::ShedLevel::kWidenSampling &&
            fe.slo() != nullptr && fe.slo()->burning())
            out.slo_burned_during_shed = true;
    }
    EXPECT_TRUE(fe.drained());
    // Idle ticks after the sources dry up walk the ladder back down.
    for (int i = 0; i < 40; ++i) {
        const ingest::PumpReport rep = fe.pump();
        out.pump_ns.push_back(rep.pump_ns);
    }
    out.final_level = fe.shed_level();
    out.final_residency = engine.residency_policy();

    // Telemetry capture, before close_stream tears sessions down.
    out.slo_burning_after = fe.slo()->burning();
    out.slo_good = fe.slo()->good();
    out.slo_bad = fe.slo()->bad();
    fe.publish_telemetry();
    out.telemetry = telemetry_identity_subset(fe.aggregator().output());
    out.span_record = spans.last_record();
    out.spans_completed = spans.completed();

    for (const ingest::ShedEvent& e : fe.shed_events())
        out.shed.push_back({e.tick, static_cast<std::uint64_t>(e.from),
                            static_cast<std::uint64_t>(e.to)});

    for (const auto id : ids) {
        const ingest::StreamStats st = fe.stream_stats(id);
        SweepStream row;
        row.decoded = st.frames_decoded;
        row.delivered = st.frames_delivered;
        row.dropped = st.frames_dropped;
        EXPECT_EQ(st.queued, 0u);
        EXPECT_FALSE(st.holding);
        expect_no_silent_loss(fe, id);
        // Under a blocked stream forced to drop_oldest, every drop is a
        // drop_oldest — nothing vanished through an unrecorded path.
        const ingest::FrameQueueStats q = fe.queue_stats(id);
        EXPECT_EQ(q.dropped_newest, 0u);
        const fleet::SessionId sid = *fe.session_of(id);
        row.blinks = engine.blinks(sid);
        row.processed = fe.close_stream(id).frames_processed;
        out.streams.push_back(std::move(row));
    }
    return out;
}

TEST(IngestOverload, ShedLadderEngagesInOrderWithNoSilentLossAndBitIdentity) {
    const std::size_t kStreams = 6;
    const auto sims = make_sessions(kStreams, 8.0);
    std::vector<std::vector<std::uint8_t>> encoded;
    for (std::size_t i = 0; i < kStreams; ++i)
        encoded.push_back(encode(sims[i], i));

    const DrillOutcome base = run_overload(1, 1, sims, encoded);

    // The ladder engaged rung by rung, in its documented order.
    ASSERT_GE(base.shed.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(base.shed[i][1], i) << "transition " << i;
        EXPECT_EQ(base.shed[i][2], i + 1) << "transition " << i;
    }
    // Every step the ladder took was a single rung.
    for (const auto& e : base.shed)
        EXPECT_EQ(std::max(e[1], e[2]) - std::min(e[1], e[2]), 1u);
    // Overload responses actually happened...
    EXPECT_TRUE(base.refused_at_top);
    EXPECT_TRUE(base.residency_tightened);
    std::uint64_t total_dropped = 0;
    for (const auto& s : base.streams) total_dropped += s.dropped;
    EXPECT_GT(total_dropped, 0u);  // forced drop_oldest shed real frames
    // ...and were fully released once the overload passed.
    EXPECT_EQ(base.final_level, ingest::ShedLevel::kNormal);
    EXPECT_EQ(base.final_residency.max_resident, 0u);
    EXPECT_EQ(base.final_residency.evict_idle_after_pumps, 0u);
    // Delivered frames were all processed; drops are the only loss, and
    // they are counted per stream.
    for (const auto& s : base.streams) {
        EXPECT_EQ(s.delivered, s.processed);
        EXPECT_EQ(s.decoded, s.delivered + s.dropped);
    }

    // p99 engine-pump latency under the 40 ms fleet SLO, even at 4x.
    std::vector<std::uint64_t> lat = base.pump_ns;
    std::sort(lat.begin(), lat.end());
    const std::uint64_t p99 = lat[(lat.size() * 99) / 100];
    EXPECT_LT(p99, 40'000'000u);

    // SLO burn-rate: the error budget burned while the shed ladder was
    // engaged (queued frames aged past the 40 ms objective), and the
    // burn recovered once the overload released.
    EXPECT_TRUE(base.slo_burned_during_shed);
    EXPECT_FALSE(base.slo_burning_after);
    EXPECT_GT(base.slo_bad, 0u);
    EXPECT_GT(base.slo_good, 0u);

    // A sampled frame completed its span: every hop from decode to
    // result present, timestamps monotonically non-decreasing.
    EXPECT_GT(base.spans_completed, 0u);
    expect_span_monotone(base.span_record);

    // The aggregated snapshot's deterministic slice is non-trivial.
    EXPECT_NE(base.telemetry.find("fleet.stage."), std::string::npos);
    EXPECT_NE(base.telemetry.find("ingest.slo.good"), std::string::npos);

    // Bit-identical shed schedule and outputs at any shard/thread count.
    const std::size_t shard_counts[] = {3, 8};
    const std::size_t pool_sizes[] = {2, 7};
    for (const std::size_t n_shards : shard_counts) {
        for (const std::size_t n_threads : pool_sizes) {
            const DrillOutcome got =
                run_overload(n_shards, n_threads, sims, encoded);
            EXPECT_EQ(got.shed, base.shed)
                << "shards=" << n_shards << " threads=" << n_threads;
            // Aggregated fleet telemetry is bit-identical on its
            // deterministic slice at any shard/thread count, and the
            // SLO tallies replay exactly.
            EXPECT_EQ(got.telemetry, base.telemetry)
                << "shards=" << n_shards << " threads=" << n_threads;
            EXPECT_EQ(got.slo_good, base.slo_good);
            EXPECT_EQ(got.slo_bad, base.slo_bad);
            EXPECT_EQ(got.slo_burned_during_shed,
                      base.slo_burned_during_shed);
            ASSERT_EQ(got.streams.size(), base.streams.size());
            for (std::size_t s = 0; s < got.streams.size(); ++s) {
                EXPECT_EQ(got.streams[s].decoded, base.streams[s].decoded);
                EXPECT_EQ(got.streams[s].delivered,
                          base.streams[s].delivered);
                EXPECT_EQ(got.streams[s].dropped, base.streams[s].dropped);
                EXPECT_EQ(got.streams[s].processed,
                          base.streams[s].processed);
                ASSERT_EQ(got.streams[s].blinks.size(),
                          base.streams[s].blinks.size());
                for (std::size_t b = 0; b < got.streams[s].blinks.size();
                     ++b)
                    EXPECT_EQ(got.streams[s].blinks[b].peak_s,
                              base.streams[s].blinks[b].peak_s);
            }
        }
    }
}

// ------------------------------------------------------ concurrency (TSan)

TEST(IngestConcurrency, PipeProducersAgainstThePumpDrill) {
    const std::size_t kStreams = 3;
    const auto sims = make_sessions(kStreams, 3.0);

    // Pipes outlive the front-end (sources borrow their buffers).
    std::vector<std::unique_ptr<ingest::BytePipe>> pipes;
    for (std::size_t i = 0; i < kStreams; ++i)
        pipes.push_back(std::make_unique<ingest::BytePipe>(16 * 1024));

    ThreadPool pool(2);
    fleet::FleetConfig fcfg;
    fcfg.record_results = false;
    fleet::FleetEngine engine(fcfg, &pool);
    ingest::IngestConfig cfg;
    cfg.stream.queue_capacity = 32;
    ingest::IngestFrontend fe(cfg, engine);

    std::vector<ingest::StreamId> ids;
    for (std::size_t i = 0; i < kStreams; ++i) {
        const auto adm = fe.open_stream(pipes[i]->make_source());
        ASSERT_TRUE(adm.admitted());
        ids.push_back(adm.id);
    }

    // Producer threads push whole sessions through the bounded pipes,
    // living with short writes (the reader applies backpressure).
    std::atomic<std::size_t> producers_done{0};
    std::vector<std::thread> producers;
    for (std::size_t i = 0; i < kStreams; ++i) {
        producers.emplace_back([&, i] {
            const auto bytes = encode(sims[i], i);
            std::size_t off = 0;
            while (off < bytes.size()) {
                const std::size_t n = std::min<std::size_t>(
                    4096, bytes.size() - off);
                const std::size_t accepted = pipes[i]->write(
                    std::span<const std::uint8_t>(bytes.data() + off, n));
                off += accepted;
                if (accepted == 0) std::this_thread::yield();
            }
            pipes[i]->close();
            producers_done.fetch_add(1, std::memory_order_release);
        });
    }

    // Keep pumping until every producer has finished, even past the
    // drain budget: a producer blocked on a full pipe needs the pump to
    // keep reading, so stopping early would deadlock the joins below
    // (seen on heavily loaded CI where the pump thread outruns starved
    // producers through the whole tick budget).
    std::size_t ticks = 0;
    while ((producers_done.load(std::memory_order_acquire) < kStreams ||
            !fe.drained()) &&
           ticks++ < 200000)
        fe.pump();
    ASSERT_EQ(producers_done.load(), kStreams);
    for (auto& p : producers) p.join();
    ASSERT_TRUE(fe.drained());

    for (std::size_t i = 0; i < kStreams; ++i) {
        const ingest::StreamStats st = fe.stream_stats(ids[i]);
        EXPECT_EQ(st.frames_decoded, sims[i].frames.size());
        EXPECT_TRUE(st.saw_bye);
        EXPECT_EQ(st.frames_dropped, 0u);  // block policy never drops
        expect_no_silent_loss(fe, ids[i]);
        const fleet::SessionStats final_stats = fe.close_stream(ids[i]);
        EXPECT_EQ(final_stats.frames_processed, sims[i].frames.size());
    }
}

}  // namespace
}  // namespace blinkradar
