#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "dsp/smoothing.hpp"
#include "dsp/stats.hpp"

namespace blinkradar::dsp {
namespace {

TEST(MovingAverage, FlatSignalIsUnchanged) {
    const RealSignal x(50, 3.5);
    const RealSignal y = moving_average(x, 7);
    for (const double v : y) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(MovingAverage, ReducesNoiseVariance) {
    Rng rng(1);
    RealSignal x(5000);
    for (auto& v : x) v = rng.normal(0, 1);
    const RealSignal y = moving_average(x, 9);
    // A 9-point average divides white-noise variance by ~9.
    EXPECT_LT(variance(y), variance(x) / 5.0);
}

TEST(MovingAverage, PreservesMeanOfLongSignal) {
    Rng rng(2);
    RealSignal x(2000);
    for (auto& v : x) v = rng.normal(2.0, 1.0);
    const RealSignal y = moving_average(x, 15);
    EXPECT_NEAR(mean(y), mean(x), 0.02);
}

TEST(MovingAverage, EdgesUseShrunkWindows) {
    const RealSignal x = {10.0, 0.0, 0.0, 0.0, 0.0};
    const RealSignal y = moving_average(x, 3);
    // First output averages x[0..1] only.
    EXPECT_DOUBLE_EQ(y[0], 5.0);
    EXPECT_DOUBLE_EQ(y[1], 10.0 / 3.0);
}

TEST(MovingAverage, WindowOneIsIdentity) {
    const RealSignal x = {1.0, -2.0, 3.0};
    const RealSignal y = moving_average(x, 1);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(MovingAverage, ComplexVariantSmoothsBothComponents) {
    ComplexSignal z(40);
    for (std::size_t i = 0; i < z.size(); ++i)
        z[i] = Complex(i % 2 ? 1.0 : -1.0, i % 2 ? -1.0 : 1.0);
    const ComplexSignal s = moving_average(z, 8);
    for (std::size_t i = 10; i < 30; ++i) {
        EXPECT_LT(std::abs(s[i].real()), 0.2);
        EXPECT_LT(std::abs(s[i].imag()), 0.2);
    }
}

TEST(MedianFilter, RemovesImpulsesCompletely) {
    RealSignal x(41, 1.0);
    x[20] = 100.0;  // a single-sample spike
    const RealSignal y = median_filter(x, 5);
    for (const double v : y) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(MedianFilter, PreservesStepEdges) {
    RealSignal x(40, 0.0);
    for (std::size_t i = 20; i < 40; ++i) x[i] = 1.0;
    const RealSignal y = median_filter(x, 5);
    EXPECT_DOUBLE_EQ(y[10], 0.0);
    EXPECT_DOUBLE_EQ(y[30], 1.0);
    // The step stays a step (no ramp like a mean filter would create).
    EXPECT_DOUBLE_EQ(y[19], 0.0);
    EXPECT_DOUBLE_EQ(y[20], 1.0);
}

TEST(MedianFilter, RequiresOddWindow) {
    const RealSignal x(10, 0.0);
    EXPECT_THROW(median_filter(x, 4), blinkradar::ContractViolation);
}

TEST(ExponentialSmooth, AlphaOneIsIdentity) {
    const RealSignal x = {1.0, 5.0, -2.0};
    const RealSignal y = exponential_smooth(x, 1.0);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(ExponentialSmooth, ConvergesToStepValue) {
    RealSignal x(200, 1.0);
    const RealSignal y = exponential_smooth(x, 0.1);
    EXPECT_NEAR(y.back(), 1.0, 1e-6);
}

TEST(ExponentialSmooth, InvalidAlphaThrows) {
    const RealSignal x(5, 0.0);
    EXPECT_THROW(exponential_smooth(x, 0.0), blinkradar::ContractViolation);
    EXPECT_THROW(exponential_smooth(x, 1.5), blinkradar::ContractViolation);
}

TEST(SavitzkyGolay, PreservesPolynomialsUpToOrder) {
    // A quadratic is reproduced exactly by a quadratic SG filter
    // (away from the renormalised edges).
    RealSignal x(60);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double t = static_cast<double>(i);
        x[i] = 0.5 * t * t - 3.0 * t + 2.0;
    }
    const RealSignal y = savitzky_golay(x, 11, 2);
    for (std::size_t i = 6; i < 54; ++i) EXPECT_NEAR(y[i], x[i], 1e-8);
}

TEST(SavitzkyGolay, SmoothsNoiseButKeepsPeakBetterThanMean) {
    // A narrow Gaussian bump with noise: SG should preserve the peak
    // height better than a same-width moving average.
    Rng rng(3);
    RealSignal x(101);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = static_cast<double>(i) - 50.0;
        x[i] = std::exp(-d * d / 18.0) + rng.normal(0, 0.02);
    }
    const RealSignal sg = savitzky_golay(x, 11, 3);
    const RealSignal ma = moving_average(x, 11);
    EXPECT_GT(sg[50], ma[50]);
    EXPECT_NEAR(sg[50], 1.0, 0.1);
}

TEST(SavitzkyGolay, InvalidParamsThrow) {
    const RealSignal x(30, 0.0);
    EXPECT_THROW(savitzky_golay(x, 10, 2), blinkradar::ContractViolation);
    EXPECT_THROW(savitzky_golay(x, 5, 5), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::dsp
