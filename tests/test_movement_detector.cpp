#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "core/movement_detector.hpp"

namespace blinkradar::core {
namespace {

constexpr double kFps = 25.0;

dsp::ComplexSignal noise_frame(std::size_t n, double sigma, Rng& rng) {
    dsp::ComplexSignal f(n);
    for (auto& v : f) v = dsp::Complex(rng.normal(0, sigma), rng.normal(0, sigma));
    return f;
}

TEST(MovementDetector, QuietStreamNeverTriggers) {
    Rng rng(1);
    MovementDetector md(PipelineConfig{}, kFps);
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(md.push(noise_frame(151, 0.01, rng)));
}

TEST(MovementDetector, LargeJumpTriggers) {
    Rng rng(2);
    MovementDetector md(PipelineConfig{}, kFps);
    for (int i = 0; i < 200; ++i) md.push(noise_frame(151, 0.01, rng));
    // A posture shift: every bin jumps by an amplitude far above noise.
    dsp::ComplexSignal shifted = noise_frame(151, 0.01, rng);
    for (auto& v : shifted) v += dsp::Complex(1.0, -1.0);
    EXPECT_TRUE(md.push(shifted));
}

TEST(MovementDetector, NoJudgementBeforeBaselineEstablished) {
    Rng rng(3);
    MovementDetector md(PipelineConfig{}, kFps);
    // Even a big change in the first frames must not trigger: the median
    // window is not primed yet.
    dsp::ComplexSignal big(151, dsp::Complex(10, 10));
    EXPECT_FALSE(md.push(noise_frame(151, 0.01, rng)));
    EXPECT_FALSE(md.push(big));
}

TEST(MovementDetector, TriggeredFramesDontPoisonTheMedian) {
    Rng rng(4);
    MovementDetector md(PipelineConfig{}, kFps);
    for (int i = 0; i < 200; ++i) md.push(noise_frame(151, 0.01, rng));
    // Sustained large movement keeps triggering frame after frame (the
    // huge diffs are excluded from the median history).
    int triggers = 0;
    for (int i = 0; i < 10; ++i) {
        dsp::ComplexSignal f = noise_frame(151, 0.01, rng);
        const double amp = i % 2 == 0 ? 2.0 : -2.0;  // keep frames changing
        for (auto& v : f) v += dsp::Complex(amp, amp);
        if (md.push(f)) ++triggers;
    }
    EXPECT_GE(triggers, 8);
}

TEST(MovementDetector, ResetForgetsBaseline) {
    Rng rng(5);
    MovementDetector md(PipelineConfig{}, kFps);
    for (int i = 0; i < 200; ++i) md.push(noise_frame(151, 0.01, rng));
    md.reset();
    dsp::ComplexSignal big(151, dsp::Complex(5, 5));
    EXPECT_FALSE(md.push(big));  // no baseline: no judgement
}

TEST(MovementDetector, LastDifferenceExposed) {
    Rng rng(6);
    MovementDetector md(PipelineConfig{}, kFps);
    md.push(dsp::ComplexSignal(10, dsp::Complex(0, 0)));
    md.push(dsp::ComplexSignal(10, dsp::Complex(1, 0)));
    EXPECT_NEAR(md.last_difference(), 10.0, 1e-12);
}

TEST(MovementDetector, SensitivityScalesWithConfig) {
    // The same disturbance triggers at factor 10 but not at factor 1e6.
    Rng rng1(7), rng2(7);
    PipelineConfig lo, hi;
    lo.movement_threshold_factor = 10.0;
    hi.movement_threshold_factor = 1e6;
    MovementDetector mlo(lo, kFps), mhi(hi, kFps);
    for (int i = 0; i < 200; ++i) {
        mlo.push(noise_frame(151, 0.01, rng1));
        mhi.push(noise_frame(151, 0.01, rng2));
    }
    dsp::ComplexSignal f1 = noise_frame(151, 0.01, rng1);
    dsp::ComplexSignal f2 = f1;
    for (auto& v : f1) v += dsp::Complex(0.3, 0.3);
    for (auto& v : f2) v += dsp::Complex(0.3, 0.3);
    EXPECT_TRUE(mlo.push(f1));
    EXPECT_FALSE(mhi.push(f2));
}

TEST(MovementDetector, RejectsEmptyFrameAndBadConfig) {
    MovementDetector md(PipelineConfig{}, kFps);
    EXPECT_THROW(md.push(dsp::ComplexSignal{}),
                 blinkradar::ContractViolation);
    PipelineConfig bad;
    bad.movement_threshold_factor = 0.5;
    EXPECT_THROW(MovementDetector(bad, kFps), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::core
