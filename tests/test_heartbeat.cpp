#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "physio/heartbeat.hpp"

namespace blinkradar::physio {
namespace {

constexpr double kFs = 100.0;

TEST(Heartbeat, DisplacementBoundedByAmplitude) {
    HeartbeatParams params;
    params.head_amplitude_m = 0.001;
    const HeartbeatModel m(params, 60.0, kFs, Rng(1));
    for (double t = 0.0; t < 60.0; t += 0.03)
        EXPECT_LE(std::abs(m.head_displacement(t)), 0.00055);
}

TEST(Heartbeat, FundamentalNearConfiguredRate) {
    HeartbeatParams params;
    params.rate_hz = 1.2;
    params.rate_jitter = 0.01;
    const HeartbeatModel m(params, 120.0, kFs, Rng(2));
    dsp::RealSignal x(4096);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = m.head_displacement(static_cast<double>(i) / 25.0);
    const dsp::RealSignal mag = dsp::magnitude_spectrum_real(x);
    std::size_t peak = 5;  // skip DC region
    for (std::size_t k = 5; k < mag.size(); ++k)
        if (mag[k] > mag[peak]) peak = k;
    const double peak_hz = static_cast<double>(peak) * 25.0 / 4096.0;
    EXPECT_NEAR(peak_hz, 1.2, 0.15);
}

TEST(Heartbeat, HarmonicsGiveNonSinusoidalShape) {
    // With harmonics the positive and negative half-waves differ; a pure
    // sine would have max == -min.
    HeartbeatParams params;
    params.rate_jitter = 0.0;
    const HeartbeatModel m(params, 30.0, kFs, Rng(3));
    double lo = 1e9, hi = -1e9;
    for (double t = 5.0; t < 25.0; t += 0.01) {
        lo = std::min(lo, m.head_displacement(t));
        hi = std::max(hi, m.head_displacement(t));
    }
    EXPECT_GT(std::abs(hi + lo), 0.02 * (hi - lo));
}

TEST(Heartbeat, ZeroAmplitudeIsFlat) {
    HeartbeatParams params;
    params.head_amplitude_m = 0.0;
    const HeartbeatModel m(params, 10.0, kFs, Rng(4));
    for (double t = 0.0; t < 10.0; t += 0.1)
        EXPECT_DOUBLE_EQ(m.head_displacement(t), 0.0);
}

TEST(Heartbeat, DeterministicForSeed) {
    const HeartbeatParams params;
    const HeartbeatModel a(params, 15.0, kFs, Rng(5));
    const HeartbeatModel b(params, 15.0, kFs, Rng(5));
    for (double t = 0.0; t < 15.0; t += 0.41)
        EXPECT_DOUBLE_EQ(a.head_displacement(t), b.head_displacement(t));
}

TEST(Heartbeat, InvalidParamsThrow) {
    HeartbeatParams params;
    params.rate_hz = -1.0;
    EXPECT_THROW(HeartbeatModel(params, 10.0, kFs, Rng(1)),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::physio
