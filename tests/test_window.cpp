#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "dsp/window.hpp"

namespace blinkradar::dsp {
namespace {

class WindowShapes : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowShapes, IsSymmetric) {
    const RealSignal w = make_window(GetParam(), 33);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
}

TEST_P(WindowShapes, PeaksAtCenterWithValueOne) {
    const RealSignal w = make_window(GetParam(), 31);
    const double centre = w[15];
    EXPECT_NEAR(centre, 1.0, 1e-9);
    for (const double v : w) EXPECT_LE(v, centre + 1e-12);
}

TEST_P(WindowShapes, ValuesAreNonNegative) {
    const RealSignal w = make_window(GetParam(), 64);
    for (const double v : w) EXPECT_GE(v, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WindowShapes,
                         ::testing::Values(WindowType::kRectangular,
                                           WindowType::kHamming,
                                           WindowType::kHann,
                                           WindowType::kBlackman));

TEST(Window, RectangularIsAllOnes) {
    const RealSignal w = make_window(WindowType::kRectangular, 10);
    for (const double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HammingEndpointsAreClassic008) {
    const RealSignal w = make_window(WindowType::kHamming, 27);
    EXPECT_NEAR(w.front(), 0.08, 1e-12);
    EXPECT_NEAR(w.back(), 0.08, 1e-12);
}

TEST(Window, HannEndpointsAreZero) {
    const RealSignal w = make_window(WindowType::kHann, 27);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
}

TEST(Window, SingleSampleWindowIsOne) {
    const RealSignal w = make_window(WindowType::kHamming, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(Window, ApplyMultipliesElementwise) {
    const RealSignal sig = {2.0, 4.0, 6.0};
    const RealSignal win = {0.5, 1.0, 0.25};
    const RealSignal out = apply_window(sig, win);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 4.0);
    EXPECT_DOUBLE_EQ(out[2], 1.5);
}

TEST(Window, ApplyRejectsSizeMismatch) {
    const RealSignal sig = {1.0, 2.0};
    const RealSignal win = {1.0};
    EXPECT_THROW(apply_window(sig, win), blinkradar::ContractViolation);
}

TEST(Window, CoherentGainOfRectangularIsOne) {
    const RealSignal w = make_window(WindowType::kRectangular, 16);
    EXPECT_DOUBLE_EQ(coherent_gain(w), 1.0);
}

TEST(Window, CoherentGainOfHammingNearPoint54) {
    const RealSignal w = make_window(WindowType::kHamming, 1001);
    EXPECT_NEAR(coherent_gain(w), 0.54, 0.01);
}

}  // namespace
}  // namespace blinkradar::dsp
