#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "vehicle/vibration.hpp"

namespace blinkradar::vehicle {
namespace {

constexpr double kFs = 100.0;

TEST(Vibration, RmsMatchesSpec) {
    RoadVibrationSpec spec;
    spec.continuous_rms_m = 0.001;
    spec.vibration_bw_hz = 5.0;
    const VibrationModel m(spec, 120.0, kFs, Rng(1));
    EXPECT_NEAR(m.rms(), 0.001, 0.0002);
}

TEST(Vibration, ZeroSpecIsSilent) {
    RoadVibrationSpec spec;
    spec.continuous_rms_m = 0.0;
    const VibrationModel m(spec, 30.0, kFs, Rng(2));
    for (double t = 0.0; t < 30.0; t += 0.2)
        EXPECT_DOUBLE_EQ(m.displacement(t), 0.0);
}

TEST(Vibration, BumpsAddTransients) {
    RoadVibrationSpec spec;
    spec.continuous_rms_m = 0.0;
    spec.bump_rate_per_min = 20.0;
    spec.bump_amplitude_m = 0.005;
    const VibrationModel m(spec, 120.0, kFs, Rng(3));
    double peak = 0.0;
    for (double t = 0.0; t < 120.0; t += 0.01)
        peak = std::max(peak, std::abs(m.displacement(t)));
    EXPECT_GT(peak, 0.002);
    // But bumps are sparse: the overall RMS stays well below the peak.
    EXPECT_LT(m.rms(), peak / 3.0);
}

TEST(Vibration, SwayIsSlowAndBounded) {
    RoadVibrationSpec spec;
    spec.continuous_rms_m = 0.0;
    spec.sway_amplitude_m = 0.004;
    spec.sway_rate_hz = 0.15;
    const VibrationModel m(spec, 60.0, kFs, Rng(4));
    for (double t = 0.0; t < 60.0; t += 0.1)
        EXPECT_LE(std::abs(m.displacement(t)), 0.0045);
    // Slow: consecutive 0.1 s samples barely differ.
    for (double t = 1.0; t < 59.0; t += 1.1) {
        EXPECT_LT(std::abs(m.displacement(t + 0.1) - m.displacement(t)),
                  0.0011);
    }
}

TEST(Vibration, ForRoadUsesTheRoadSpec) {
    const VibrationModel smooth =
        VibrationModel::for_road(RoadType::kSmoothHighway, 60.0, kFs, Rng(5));
    const VibrationModel bumpy =
        VibrationModel::for_road(RoadType::kBumpyRoad, 60.0, kFs, Rng(5));
    EXPECT_GT(bumpy.rms(), smooth.rms() * 2.0);
}

TEST(Vibration, DeterministicForSeed) {
    const RoadVibrationSpec spec = vibration_spec(RoadType::kBumpyRoad);
    const VibrationModel a(spec, 30.0, kFs, Rng(6));
    const VibrationModel b(spec, 30.0, kFs, Rng(6));
    for (double t = 0.0; t < 30.0; t += 0.7)
        EXPECT_DOUBLE_EQ(a.displacement(t), b.displacement(t));
}

TEST(Vibration, InvalidDurationThrows) {
    EXPECT_THROW(VibrationModel(RoadVibrationSpec{}, 0.0, kFs, Rng(1)),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::vehicle
