#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "dsp/background.hpp"

namespace blinkradar::dsp {
namespace {

TEST(LoopbackFilter, StaticSceneIsRemovedFromFirstFrame) {
    LoopbackFilter bg(4, 0.01);
    const ComplexSignal frame = {Complex(1, 2), Complex(-3, 0), Complex(0, 5),
                                 Complex(7, -1)};
    // First frame primes the background: output is exactly zero.
    const ComplexSignal out1 = bg.process(frame);
    for (const auto& v : out1) EXPECT_NEAR(std::abs(v), 0.0, 1e-15);
    // And stays zero for a static scene.
    for (int i = 0; i < 50; ++i) {
        const ComplexSignal out = bg.process(frame);
        for (const auto& v : out) EXPECT_NEAR(std::abs(v), 0.0, 1e-12);
    }
}

TEST(LoopbackFilter, DynamicComponentSurvives) {
    LoopbackFilter bg(1, 0.001);
    const Complex statics(5, -2);
    const Complex primed = statics + Complex(0.5, 0.0);  // first sample
    double max_out = 0.0;
    for (int i = 0; i < 300; ++i) {
        const double ph = constants::kTwoPi * i / 40.0;
        const Complex dyn(0.5 * std::cos(ph), 0.5 * std::sin(ph));
        const ComplexSignal out = bg.process(ComplexSignal{statics + dyn});
        if (i > 50) {
            // The slow filter stays near its primed value (the first
            // frame), so the rotating component survives: over a rotation
            // |out| sweeps up to the circle's diameter.
            EXPECT_NEAR(std::abs(bg.background()[0] - primed), 0.0, 0.15);
            max_out = std::max(max_out, std::abs(out[0]));
        }
    }
    EXPECT_GT(max_out, 0.8);
}

TEST(LoopbackFilter, TracksSlowBackgroundChange) {
    LoopbackFilter bg(1, 0.05);
    // Step the static level; the filter should re-converge.
    for (int i = 0; i < 100; ++i) bg.process(ComplexSignal{Complex(1, 0)});
    ComplexSignal out;
    for (int i = 0; i < 200; ++i) out = bg.process(ComplexSignal{Complex(4, 0)});
    EXPECT_NEAR(std::abs(out[0]), 0.0, 0.01);
}

TEST(LoopbackFilter, ResetReprimesOnNextFrame) {
    LoopbackFilter bg(1, 0.01);
    for (int i = 0; i < 10; ++i) bg.process(ComplexSignal{Complex(1, 1)});
    bg.reset();
    const ComplexSignal out = bg.process(ComplexSignal{Complex(9, -9)});
    EXPECT_NEAR(std::abs(out[0]), 0.0, 1e-12);
}

TEST(LoopbackFilter, RejectsWrongFrameSize) {
    LoopbackFilter bg(4, 0.01);
    EXPECT_THROW(bg.process(ComplexSignal(3)), blinkradar::ContractViolation);
}

TEST(LoopbackFilter, RejectsInvalidAlpha) {
    EXPECT_THROW(LoopbackFilter(4, 0.0), blinkradar::ContractViolation);
    EXPECT_THROW(LoopbackFilter(4, 1.0), blinkradar::ContractViolation);
    EXPECT_THROW(LoopbackFilter(0, 0.5), blinkradar::ContractViolation);
}

TEST(MeanBackground, RemovesMeanExactly) {
    Rng rng(1);
    std::vector<ComplexSignal> frames(20, ComplexSignal(3));
    for (auto& f : frames)
        for (auto& v : f)
            v = Complex(rng.normal(2, 1), rng.normal(-1, 1));
    const auto out = subtract_mean_background(frames);
    for (std::size_t b = 0; b < 3; ++b) {
        Complex sum(0, 0);
        for (const auto& f : out) sum += f[b];
        EXPECT_NEAR(std::abs(sum), 0.0, 1e-10);
    }
}

TEST(MeanBackground, StaticFramesBecomeZero) {
    const std::vector<ComplexSignal> frames(5, ComplexSignal{Complex(3, 4)});
    const auto out = subtract_mean_background(frames);
    for (const auto& f : out) EXPECT_NEAR(std::abs(f[0]), 0.0, 1e-12);
}

TEST(MeanBackground, RejectsRaggedFrames) {
    std::vector<ComplexSignal> frames = {ComplexSignal(3), ComplexSignal(4)};
    EXPECT_THROW(subtract_mean_background(frames),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::dsp
