#include <gtest/gtest.h>

#include <sstream>

#include "common/contracts.hpp"
#include "eval/report.hpp"

namespace blinkradar::eval {
namespace {

TEST(Report, FmtFormatsWithPrecision) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(95.5, 1), "95.5");
    EXPECT_EQ(fmt(-2.0, 0), "-2");
}

TEST(Report, TablePrintsAlignedColumns) {
    AsciiTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"very-long-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header, rule, two rows.
    EXPECT_NE(out.find("| very-long-name |"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
    // All lines equally wide.
    std::istringstream lines(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (width == 0) width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Report, NumericRowHelper) {
    AsciiTable t({"label", "a", "b"});
    t.add_row("row", {1.234, 5.678}, 1);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("1.2"), std::string::npos);
    EXPECT_NE(os.str().find("5.7"), std::string::npos);
}

TEST(Report, RowArityEnforced) {
    AsciiTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), blinkradar::ContractViolation);
    EXPECT_THROW(t.add_row("label", {1.0, 2.0}),
                 blinkradar::ContractViolation);
}

TEST(Report, BannerHasTitle) {
    std::ostringstream os;
    banner(os, "Fig. 13a");
    EXPECT_NE(os.str().find("== Fig. 13a =="), std::string::npos);
}

TEST(Report, EmptyHeadersRejected) {
    EXPECT_THROW(AsciiTable({}), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::eval
