#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "radar/simulator.hpp"

namespace blinkradar::radar {
namespace {

RadarConfig quiet_config() {
    RadarConfig cfg;
    cfg.noise_sigma = 0.0;
    cfg.phase_noise_rad = 0.0;
    return cfg;
}

DynamicPath static_path(const std::string& name, Meters range, double amp,
                        bool rolloff = true) {
    return DynamicPath{name, [range](Seconds) { return range; },
                       [amp](Seconds) { return amp; }, rolloff};
}

TEST(FrameSimulator, FrameHasConfiguredBinsAndTimestamps) {
    const RadarConfig cfg = quiet_config();
    FrameSimulator sim(cfg, {static_path("p", 0.4, 1.0)}, Rng(1));
    const RadarFrame f0 = sim.next();
    const RadarFrame f1 = sim.next();
    EXPECT_EQ(f0.bins.size(), cfg.n_bins());
    EXPECT_DOUBLE_EQ(f0.timestamp_s, 0.0);
    EXPECT_DOUBLE_EQ(f1.timestamp_s, cfg.frame_period_s);
}

TEST(FrameSimulator, PathAppearsAtItsBinWithReferenceAmplitude) {
    const RadarConfig cfg = quiet_config();
    // At the reference range the roll-off is exactly 1.
    FrameSimulator sim(cfg, {static_path("p", cfg.reference_range_m, 0.8)},
                       Rng(1));
    const RadarFrame f = sim.next();
    const std::size_t bin = static_cast<std::size_t>(cfg.reference_range_m /
                                                     cfg.bin_spacing_m);
    EXPECT_NEAR(std::abs(f.bins[bin]), 0.8, 0.01);
}

TEST(FrameSimulator, PhaseFollowsMinus4PiFcROverC) {
    const RadarConfig cfg = quiet_config();
    FrameSimulator sim(cfg, {static_path("p", 0.4, 1.0)}, Rng(1));
    const RadarFrame f = sim.next();
    const std::size_t bin = static_cast<std::size_t>(0.4 / cfg.bin_spacing_m);
    const double expected = std::remainder(
        -2.0 * constants::kTwoPi * cfg.carrier_hz * 0.4 /
            constants::kSpeedOfLight,
        constants::kTwoPi);
    EXPECT_NEAR(std::arg(f.bins[bin]), expected, 1e-9);
}

TEST(FrameSimulator, RadarEquationRollOff) {
    const RadarConfig cfg = quiet_config();
    FrameSimulator sim(cfg,
                       {static_path("near", 0.4, 1.0),
                        static_path("far", 0.8, 1.0)},
                       Rng(1));
    const RadarFrame f = sim.next();
    const std::size_t near_bin = static_cast<std::size_t>(0.4 / cfg.bin_spacing_m);
    const std::size_t far_bin = static_cast<std::size_t>(0.8 / cfg.bin_spacing_m);
    // Amplitude ~ 1/R^2: doubling the range quarters the amplitude.
    EXPECT_NEAR(std::abs(f.bins[far_bin]) / std::abs(f.bins[near_bin]), 0.25,
                0.02);
}

TEST(FrameSimulator, NearFieldRollOffIsCapped) {
    RadarConfig cfg = quiet_config();
    cfg.min_rolloff_range_m = 0.15;
    FrameSimulator sim(cfg,
                       {static_path("close", 0.10, 1.0),
                        static_path("cap", 0.15, 1.0)},
                       Rng(1));
    const RadarFrame f = sim.next();
    const std::size_t b10 = static_cast<std::size_t>(0.10 / cfg.bin_spacing_m);
    const std::size_t b15 = static_cast<std::size_t>(0.15 / cfg.bin_spacing_m);
    // Both sit inside/at the cap: equal effective roll-off (the 0.10 m
    // bin additionally collects PSF spill, so allow a loose tolerance).
    EXPECT_NEAR(std::abs(f.bins[b10]), std::abs(f.bins[b15]),
                0.3 * std::abs(f.bins[b15]));
}

TEST(FrameSimulator, NoRolloffFlagBypassesRadarEquation) {
    const RadarConfig cfg = quiet_config();
    FrameSimulator sim(cfg, {static_path("leak", 0.05, 2.0, false)}, Rng(1));
    const RadarFrame f = sim.next();
    const std::size_t bin = static_cast<std::size_t>(0.05 / cfg.bin_spacing_m);
    EXPECT_NEAR(std::abs(f.bins[bin]), 2.0, 0.05);
}

TEST(FrameSimulator, MovingPathRotatesPhase) {
    const RadarConfig cfg = quiet_config();
    // 1 mm/s towards the radar.
    DynamicPath moving{"m", [](Seconds t) { return 0.4 - 0.001 * t; },
                       [](Seconds) { return 1.0; }};
    FrameSimulator sim(cfg, {moving}, Rng(1));
    const RadarFrame f0 = sim.next();
    FrameSeries rest = sim.generate(1.0);
    const std::size_t bin = static_cast<std::size_t>(0.4 / cfg.bin_spacing_m);
    // After 1 s the path moved 1 mm => phase advanced 4 pi fc d / c.
    const double dphi =
        std::arg(rest.back().bins[bin] * std::conj(f0.bins[bin]));
    const double expected = std::remainder(
        2.0 * constants::kTwoPi * cfg.carrier_hz * 0.001 /
            constants::kSpeedOfLight,
        constants::kTwoPi);
    EXPECT_NEAR(dphi, expected, 0.02);
}

TEST(FrameSimulator, ZeroAmplitudePathContributesNothing) {
    const RadarConfig cfg = quiet_config();
    FrameSimulator sim(cfg, {static_path("off", 0.4, 0.0)}, Rng(1));
    const RadarFrame f = sim.next();
    for (const auto& v : f.bins) EXPECT_DOUBLE_EQ(std::abs(v), 0.0);
}

TEST(FrameSimulator, NoiseMatchesConfiguredSigma) {
    RadarConfig cfg = quiet_config();
    cfg.noise_sigma = 0.01;
    FrameSimulator sim(cfg, {static_path("p", 0.4, 0.0)}, Rng(7));
    double acc = 0.0;
    std::size_t n = 0;
    for (int i = 0; i < 50; ++i) {
        const RadarFrame f = sim.next();
        for (const auto& v : f.bins) {
            acc += std::norm(v);
            ++n;
        }
    }
    // E[|noise|^2] = 2 sigma^2.
    EXPECT_NEAR(acc / static_cast<double>(n), 2.0 * 0.01 * 0.01, 2e-5);
}

TEST(FrameSimulator, DeterministicForSameSeed) {
    const RadarConfig cfg = [] {
        RadarConfig c;
        c.noise_sigma = 0.01;
        return c;
    }();
    FrameSimulator a(cfg, {static_path("p", 0.4, 1.0)}, Rng(5));
    FrameSimulator b(cfg, {static_path("p", 0.4, 1.0)}, Rng(5));
    for (int i = 0; i < 20; ++i) {
        const RadarFrame fa = a.next();
        const RadarFrame fb = b.next();
        for (std::size_t k = 0; k < fa.bins.size(); ++k)
            EXPECT_EQ(fa.bins[k], fb.bins[k]);
    }
}

TEST(FrameSimulator, GenerateProducesRequestedDuration) {
    const RadarConfig cfg = quiet_config();
    FrameSimulator sim(cfg, {static_path("p", 0.4, 1.0)}, Rng(1));
    const FrameSeries series = sim.generate(2.0);
    EXPECT_EQ(series.size(), 50u);  // 2 s at 25 fps
    EXPECT_EQ(sim.frames_produced(), 50u);
}

TEST(FrameSimulator, RejectsEmptySceneAndNullCallbacks) {
    const RadarConfig cfg = quiet_config();
    EXPECT_THROW(FrameSimulator(cfg, {}, Rng(1)),
                 blinkradar::ContractViolation);
    DynamicPath broken{"b", nullptr, [](Seconds) { return 1.0; }};
    EXPECT_THROW(FrameSimulator(cfg, {broken}, Rng(1)),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::radar
