// core::Supervisor: the escalation ladder (retry -> warm restore ->
// backoff -> cold restart), double-buffered snapshot slots with
// corruption fallback, the injectable-clock stall watchdog, and the
// determinism of the whole recovery schedule.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/supervisor.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {
namespace {

sim::ScenarioConfig reference_scenario(std::uint64_t seed,
                                       Seconds duration = 30.0) {
    sim::ScenarioConfig sc;
    Rng rng(42);
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = duration;
    sc.seed = seed;
    return sc;
}

void expect_stats_eq(const SupervisorStats& a, const SupervisorStats& b) {
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.frame_faults, b.frame_faults);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.warm_restores, b.warm_restores);
    EXPECT_EQ(a.cold_restarts, b.cold_restarts);
    EXPECT_EQ(a.snapshots, b.snapshots);
    EXPECT_EQ(a.snapshot_failures, b.snapshot_failures);
    EXPECT_EQ(a.restore_failures, b.restore_failures);
    EXPECT_EQ(a.backoff_skipped, b.backoff_skipped);
    EXPECT_EQ(a.stalls, b.stalls);
}

struct FaultWindow {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  ///< half-open frame-index range that faults
};

Supervisor::FaultHook faulting_frames(const FaultWindow& window) {
    return [window](std::uint64_t frame_index) {
        if (frame_index >= window.begin && frame_index < window.end)
            throw std::runtime_error("test: injected fault");
    };
}

}  // namespace

TEST(Supervisor, CleanRunIsBitIdenticalToBarePipeline) {
    // Checkpointing only serialises — it must never perturb detection.
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(21, 20.0));
    BlinkRadarPipeline bare(s.radar);
    SupervisorConfig config;
    config.snapshot_interval_frames = 40;
    config.stall_timeout_s = 0.0;
    Supervisor sup(s.radar, {}, config);
    for (const auto& f : s.frames) {
        const FrameResult a = bare.process(f);
        const FrameResult b = sup.process(f);
        EXPECT_EQ(a.blink.has_value(), b.blink.has_value());
        EXPECT_EQ(a.waveform_value, b.waveform_value);
        EXPECT_EQ(a.cold_start, b.cold_start);
        EXPECT_EQ(a.health, b.health);
    }
    EXPECT_EQ(bare.blinks().size(), sup.pipeline().blinks().size());
    EXPECT_GT(sup.stats().snapshots, 0u);
    EXPECT_EQ(sup.stats().frame_faults, 0u);
    EXPECT_EQ(sup.stats().warm_restores, 0u);
    EXPECT_EQ(sup.stats().cold_restarts, 0u);
}

TEST(Supervisor, TransientFaultIsRetriedInPlace) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(22, 15.0));
    SupervisorConfig config;
    config.snapshot_interval_frames = 50;
    config.stall_timeout_s = 0.0;
    Supervisor sup(s.radar, {}, config);
    // One attempt faults at frame 200; the in-place retry must absorb it.
    std::size_t throws_left = 1;
    sup.set_fault_hook([&](std::uint64_t frame_index) {
        if (frame_index == 200 && throws_left > 0) {
            --throws_left;
            throw std::runtime_error("test: transient fault");
        }
    });
    for (const auto& f : s.frames) sup.process(f);
    EXPECT_EQ(sup.stats().frame_faults, 1u);
    EXPECT_EQ(sup.stats().retries, 1u);
    EXPECT_EQ(sup.stats().warm_restores, 0u);
    EXPECT_EQ(sup.stats().cold_restarts, 0u);
}

TEST(Supervisor, PersistentFaultWarmRestoresFromSnapshot) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(23, 15.0));
    SupervisorConfig config;
    config.snapshot_interval_frames = 50;
    config.stall_timeout_s = 0.0;
    Supervisor sup(s.radar, {}, config);
    // Both the attempt and its retry fault: the ladder must restore from
    // the last checkpoint and finish the frame on the restored pipeline.
    std::size_t throws_left = 2;
    sup.set_fault_hook([&](std::uint64_t frame_index) {
        if (frame_index == 200 && throws_left > 0) {
            --throws_left;
            throw std::runtime_error("test: persistent fault");
        }
    });
    FrameResult at_fault;
    for (std::size_t i = 0; i < s.frames.size(); ++i) {
        const FrameResult r = sup.process(s.frames[i]);
        if (i == 200) at_fault = r;
    }
    EXPECT_EQ(sup.stats().frame_faults, 2u);
    EXPECT_EQ(sup.stats().warm_restores, 1u);
    EXPECT_EQ(sup.stats().cold_restarts, 0u);
    // The frame that faulted was completed after the restore, not dropped.
    EXPECT_NE(at_fault.quality, FrameVerdict::kQuarantined);
    // Detection survived the restore: blinks keep accumulating.
    EXPECT_GT(sup.pipeline().blinks().size(), 0u);
}

TEST(Supervisor, NoSnapshotMeansColdRestart) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(24, 10.0));
    SupervisorConfig config;
    config.snapshot_interval_frames = 0;  // checkpointing disabled
    config.stall_timeout_s = 0.0;
    Supervisor sup(s.radar, {}, config);
    std::size_t throws_left = 2;
    sup.set_fault_hook([&](std::uint64_t frame_index) {
        if (frame_index == 150 && throws_left > 0) {
            --throws_left;
            throw std::runtime_error("test: fault with nothing to restore");
        }
    });
    for (const auto& f : s.frames) sup.process(f);
    EXPECT_EQ(sup.stats().warm_restores, 0u);
    EXPECT_EQ(sup.stats().cold_restarts, 1u);
    EXPECT_FALSE(sup.has_snapshot());
}

TEST(Supervisor, CrashStormClimbsTheFullLadder) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(25, 30.0));
    SupervisorConfig config;
    config.snapshot_interval_frames = 50;
    config.max_warm_restores = 2;
    config.backoff_base_frames = 4;
    config.backoff_cap_frames = 32;
    config.stall_timeout_s = 0.0;
    Supervisor sup(s.radar, {}, config);
    // Every attempt in a 150-frame window faults: retries fail, warm
    // restores fail to stop the storm, backoff windows drain, and the
    // ladder must eventually cold restart — without ever throwing out.
    sup.set_fault_hook(faulting_frames({300, 450}));
    for (const auto& f : s.frames) {
        EXPECT_NO_THROW(sup.process(f));
    }
    const SupervisorStats& st = sup.stats();
    EXPECT_GT(st.frame_faults, 0u);
    EXPECT_EQ(st.warm_restores, 2u);  // the configured ladder budget
    EXPECT_GT(st.backoff_skipped, 0u);
    EXPECT_GE(st.cold_restarts, 1u);
    // After the storm the pipeline reconverges and detects again.
    EXPECT_GT(sup.pipeline().blinks().size(), 0u);
}

TEST(Supervisor, RecoveryScheduleIsDeterministic) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(26, 20.0));
    SupervisorConfig config;
    config.snapshot_interval_frames = 50;
    config.max_warm_restores = 2;
    config.backoff_base_frames = 4;
    config.seed = 99;
    config.stall_timeout_s = 0.0;
    SupervisorStats runs[2];
    for (auto& run : runs) {
        Supervisor sup(s.radar, {}, config);
        sup.set_fault_hook(faulting_frames({200, 320}));
        for (const auto& f : s.frames) sup.process(f);
        run = sup.stats();
    }
    expect_stats_eq(runs[0], runs[1]);
}

TEST(Supervisor, CorruptNewestSlotFallsBackToOlderSlot) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(27, 30.0));
    const std::string dir = testing::TempDir();
    SupervisorConfig config;
    config.snapshot_interval_frames = 100;
    config.snapshot_dir = dir;
    config.snapshot_basename = "slot_fallback_test";
    config.max_warm_restores = 1;
    config.backoff_base_frames = 2;
    config.backoff_cap_frames = 4;
    config.stall_timeout_s = 0.0;
    Supervisor sup(s.radar, {}, config);

    // Clean run long enough to fill both slots (snapshots at 100, 200).
    std::size_t i = 0;
    for (; i < 220; ++i) sup.process(s.frames[i]);
    ASSERT_GE(sup.stats().snapshots, 2u);
    const std::string slot0 = dir + "/slot_fallback_test.slot0.snap";
    const std::string slot1 = dir + "/slot_fallback_test.slot1.snap";
    ASSERT_NO_THROW(state::read_snapshot_file(slot0));
    ASSERT_NO_THROW(state::read_snapshot_file(slot1));

    // A storm long enough to exhaust the warm budget and cold restart
    // (which drops the in-memory checkpoint), then keep faulting: the
    // next warm restore must come from disk. Corrupt the newest slot
    // (slot1, written at frame 200) so only the older slot0 can serve.
    {
        std::fstream f(slot1, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(30);
        f.put('\xFF');
    }
    sup.set_fault_hook(faulting_frames({220, 320}));
    for (; i < s.frames.size(); ++i) sup.process(s.frames[i]);

    const SupervisorStats& st = sup.stats();
    EXPECT_GE(st.cold_restarts, 1u);
    EXPECT_GE(st.restore_failures, 1u);  // the corrupted slot1
    EXPECT_GE(st.warm_restores, 2u);     // memory first, then disk
}

TEST(Supervisor, StallWatchdogUsesInjectedClock) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(28, 10.0));
    SupervisorConfig config;
    config.snapshot_interval_frames = 1000000;  // periodic: effectively off
    config.stall_timeout_s = 5.0;
    Supervisor sup(s.radar, {}, config);
    double fake_now = 0.0;
    sup.set_clock([&] { return fake_now; });
    sup.process(s.frames[0]);
    fake_now = 0.1;
    sup.process(s.frames[1]);
    EXPECT_EQ(sup.stats().stalls, 0u);
    fake_now = 60.0;  // the feed wedged for a minute
    sup.process(s.frames[2]);
    EXPECT_EQ(sup.stats().stalls, 1u);
    // The watchdog forces a prompt checkpoint despite the huge interval.
    EXPECT_EQ(sup.stats().snapshots, 1u);
    fake_now = 60.2;
    sup.process(s.frames[3]);
    EXPECT_EQ(sup.stats().stalls, 1u);  // normal cadence: no new trip
}

TEST(Supervisor, RestoreFromFileResumesBitIdentically) {
    // Cross-process resume: supervisor A checkpoints to disk mid-run; a
    // fresh supervisor B (new pipeline) restores the file and replays
    // the tail — outputs must match an uninterrupted pipeline exactly.
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(29, 20.0));
    const std::string dir = testing::TempDir();
    SupervisorConfig config;
    config.snapshot_interval_frames = 0;  // manual checkpoints only
    config.snapshot_dir = dir;
    config.snapshot_basename = "resume_file_test";
    config.stall_timeout_s = 0.0;

    BlinkRadarPipeline reference(s.radar);
    Supervisor a(s.radar, {}, config);
    const std::size_t split = 250;
    for (std::size_t i = 0; i < split; ++i) {
        reference.process(s.frames[i]);
        a.process(s.frames[i]);
    }
    ASSERT_TRUE(a.snapshot_now());
    const std::string path = dir + "/resume_file_test.slot0.snap";

    Supervisor b(s.radar, {}, config);
    b.restore_from_file(path);
    for (std::size_t i = split; i < s.frames.size(); ++i) {
        const FrameResult want = reference.process(s.frames[i]);
        const FrameResult got = b.process(s.frames[i]);
        EXPECT_EQ(want.blink.has_value(), got.blink.has_value());
        EXPECT_EQ(want.waveform_value, got.waveform_value);
        EXPECT_EQ(want.health, got.health);
    }
    EXPECT_EQ(reference.blinks().size(), b.pipeline().blinks().size());

    // A damaged file is rejected and the supervisor keeps its pipeline.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(25);
        f.put('\x7E');
    }
    EXPECT_THROW(b.restore_from_file(path), state::SnapshotError);
}

}  // namespace blinkradar::core
