#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "radar/channel.hpp"
#include "radar/config.hpp"
#include "radar/receiver.hpp"

namespace blinkradar::radar {
namespace {

constexpr double kFs = 32e9;

RadarConfig test_config() {
    RadarConfig cfg;
    cfg.max_range_m = 1.0;
    cfg.noise_sigma = 0.0;
    cfg.phase_noise_rad = 0.0;
    return cfg;
}

dsp::ComplexSignal profile_for_path(const RadarConfig& cfg, double gain,
                                    Meters range) {
    const Receiver rx(cfg, kFs);
    const dsp::RealSignal tx = rx.pulse().sample_transmitted(kFs);
    const MultipathChannel ch({Path{"p", gain, range, 0.0}});
    const dsp::RealSignal wave = ch.propagate(
        tx, kFs, 0, cfg.frame_period_s,
        2.0 * cfg.max_range_m / constants::kSpeedOfLight +
            rx.pulse().duration_s());
    return rx.range_profile(wave);
}

TEST(Receiver, ProfilePeaksAtPathRange) {
    const RadarConfig cfg = test_config();
    const dsp::ComplexSignal profile = profile_for_path(cfg, 1.0, 0.42);
    std::size_t peak = 0;
    for (std::size_t b = 0; b < profile.size(); ++b)
        if (std::abs(profile[b]) > std::abs(profile[peak])) peak = b;
    EXPECT_NEAR(static_cast<double>(peak) * cfg.bin_spacing_m, 0.42, 0.02);
}

TEST(Receiver, PeakPhaseFollowsEquation6) {
    // A path at range R carries phase -4 pi fc R / c after downconversion
    // — the law the whole detection method rests on (paper Eq. 6/9).
    const RadarConfig cfg = test_config();
    const Meters r1 = 0.400;
    const Meters r2 = 0.4002;  // 0.2 mm further
    const dsp::ComplexSignal p1 = profile_for_path(cfg, 1.0, r1);
    const dsp::ComplexSignal p2 = profile_for_path(cfg, 1.0, r2);
    const std::size_t bin = static_cast<std::size_t>(r1 / cfg.bin_spacing_m);
    const double measured =
        std::arg(p2[bin] * std::conj(p1[bin]));
    const double expected = -2.0 * constants::kTwoPi * cfg.carrier_hz *
                            (r2 - r1) / constants::kSpeedOfLight;
    // Wrap both into (-pi, pi] for comparison.
    const double wrap = std::remainder(expected, constants::kTwoPi);
    EXPECT_NEAR(measured, wrap, 0.05);
}

TEST(Receiver, AmplitudeScalesWithPathGain) {
    const RadarConfig cfg = test_config();
    const dsp::ComplexSignal p1 = profile_for_path(cfg, 1.0, 0.4);
    const dsp::ComplexSignal p2 = profile_for_path(cfg, 0.25, 0.4);
    const std::size_t bin = static_cast<std::size_t>(0.4 / cfg.bin_spacing_m);
    EXPECT_NEAR(std::abs(p2[bin]) / std::abs(p1[bin]), 0.25, 0.01);
}

TEST(Receiver, ProfileDecaysAwayFromPath) {
    const RadarConfig cfg = test_config();
    const dsp::ComplexSignal profile = profile_for_path(cfg, 1.0, 0.5);
    const std::size_t bin = static_cast<std::size_t>(0.5 / cfg.bin_spacing_m);
    const double peak = std::abs(profile[bin]);
    const std::size_t off = static_cast<std::size_t>(0.8 / cfg.bin_spacing_m);
    EXPECT_LT(std::abs(profile[off]), 0.02 * peak);
}

TEST(Receiver, DownconvertRejectsEmpty) {
    const Receiver rx(test_config(), kFs);
    EXPECT_THROW(rx.downconvert(dsp::RealSignal{}),
                 blinkradar::ContractViolation);
}

TEST(Receiver, RequiresNyquistRate) {
    EXPECT_THROW(Receiver(test_config(), 10e9),
                 blinkradar::ContractViolation);
}

TEST(RadarConfig, DerivedQuantities) {
    const RadarConfig cfg;
    EXPECT_NEAR(cfg.range_resolution_m(), 0.107, 0.001);
    EXPECT_DOUBLE_EQ(cfg.frame_rate_hz(), 25.0);
    EXPECT_NEAR(cfg.wavelength_m(), 0.0411, 0.0001);
    EXPECT_EQ(cfg.n_bins(), 151u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(RadarConfig, ValidateCatchesNonsense) {
    RadarConfig cfg;
    cfg.bin_spacing_m = 0.0;
    EXPECT_THROW(cfg.validate(), blinkradar::ContractViolation);
    cfg = RadarConfig{};
    cfg.bandwidth_hz = 20e9;  // > 2 fc
    EXPECT_THROW(cfg.validate(), blinkradar::ContractViolation);
    cfg = RadarConfig{};
    cfg.frame_period_s = -1.0;
    EXPECT_THROW(cfg.validate(), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::radar
