#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"

namespace blinkradar::dsp {
namespace {

constexpr double kFs = 1000.0;

RealSignal tone(double freq_hz, std::size_t n) {
    RealSignal x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::sin(constants::kTwoPi * freq_hz * i / kFs);
    return x;
}

double rms_tail(const RealSignal& x, std::size_t skip) {
    double acc = 0;
    for (std::size_t i = skip; i < x.size(); ++i) acc += x[i] * x[i];
    return std::sqrt(acc / static_cast<double>(x.size() - skip));
}

TEST(FirDesign, UnityDcGain) {
    const auto f = FirFilter::low_pass(26, 100.0, kFs);
    EXPECT_NEAR(f.magnitude_response(0.0, kFs), 1.0, 1e-12);
}

TEST(FirDesign, TapsCountIsOrderPlusOne) {
    const auto f = FirFilter::low_pass(26, 100.0, kFs);
    EXPECT_EQ(f.taps().size(), 27u);
    EXPECT_EQ(f.order(), 26u);
}

TEST(FirDesign, TapsAreSymmetricLinearPhase) {
    const auto f = FirFilter::low_pass(26, 120.0, kFs);
    const auto& t = f.taps();
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_NEAR(t[i], t[t.size() - 1 - i], 1e-14);
}

class LowPassCutoffs : public ::testing::TestWithParam<double> {};

TEST_P(LowPassCutoffs, PassesBelowAttenuatesAbove) {
    const double cutoff = GetParam();
    const auto f = FirFilter::low_pass(48, cutoff, kFs);
    // Passband: half the cutoff. Stopband: twice the cutoff.
    EXPECT_GT(f.magnitude_response(cutoff * 0.4, kFs), 0.9);
    EXPECT_LT(f.magnitude_response(cutoff * 2.5, kFs), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, LowPassCutoffs,
                         ::testing::Values(50.0, 100.0, 150.0, 200.0));

TEST(FirFilter, LowPassSuppressesHighTone) {
    const auto f = FirFilter::low_pass(48, 100.0, kFs);
    const RealSignal low = f.filter(tone(30.0, 800));
    const RealSignal high = f.filter(tone(400.0, 800));
    EXPECT_GT(rms_tail(low, 100), 0.6);   // ~0.707 for a passed sine
    EXPECT_LT(rms_tail(high, 100), 0.02);
}

TEST(FirFilter, HighPassSuppressesLowTone) {
    const auto f = FirFilter::high_pass(48, 100.0, kFs);
    const RealSignal low = f.filter(tone(20.0, 800));
    const RealSignal high = f.filter(tone(300.0, 800));
    EXPECT_LT(rms_tail(low, 100), 0.05);
    EXPECT_GT(rms_tail(high, 100), 0.6);
}

TEST(FirFilter, BandPassSelectsBand) {
    const auto f = FirFilter::band_pass(64, 80.0, 160.0, kFs);
    EXPECT_LT(rms_tail(f.filter(tone(20.0, 1000)), 200), 0.05);
    EXPECT_GT(rms_tail(f.filter(tone(120.0, 1000)), 200), 0.55);
    EXPECT_LT(rms_tail(f.filter(tone(350.0, 1000)), 200), 0.05);
}

TEST(FirFilter, GroupDelayIsHalfOrder) {
    const auto f = FirFilter::low_pass(26, 100.0, kFs);
    EXPECT_DOUBLE_EQ(f.group_delay_samples(), 13.0);
}

TEST(FirFilter, FiltFiltHasNoDelay) {
    const auto f = FirFilter::low_pass(26, 100.0, kFs);
    // Slow ramp: zero-phase filtering should track it closely mid-signal.
    RealSignal ramp(400);
    for (std::size_t i = 0; i < ramp.size(); ++i)
        ramp[i] = static_cast<double>(i) * 0.01;
    const RealSignal out = f.filtfilt(ramp);
    for (std::size_t i = 100; i < 300; ++i)
        EXPECT_NEAR(out[i], ramp[i], 0.005);
}

TEST(FirFilter, ComplexFilteringMatchesPerComponent) {
    const auto f = FirFilter::low_pass(26, 100.0, kFs);
    const RealSignal re = tone(50.0, 200);
    const RealSignal im = tone(80.0, 200);
    ComplexSignal z(200);
    for (std::size_t i = 0; i < 200; ++i) z[i] = Complex(re[i], im[i]);
    const ComplexSignal zf = f.filter(z);
    const RealSignal rf = f.filter(re);
    const RealSignal imf = f.filter(im);
    for (std::size_t i = 0; i < 200; ++i) {
        EXPECT_NEAR(zf[i].real(), rf[i], 1e-12);
        EXPECT_NEAR(zf[i].imag(), imf[i], 1e-12);
    }
}

TEST(FirFilter, OutputLengthEqualsInputLength) {
    const auto f = FirFilter::low_pass(26, 100.0, kFs);
    EXPECT_EQ(f.filter(tone(50.0, 123)).size(), 123u);
}

TEST(FirDesign, InvalidParametersThrow) {
    EXPECT_THROW(FirFilter::low_pass(1, 100.0, kFs),
                 blinkradar::ContractViolation);
    EXPECT_THROW(FirFilter::low_pass(26, 600.0, kFs),
                 blinkradar::ContractViolation);  // beyond Nyquist
    EXPECT_THROW(FirFilter::high_pass(27, 100.0, kFs),
                 blinkradar::ContractViolation);  // odd order
    EXPECT_THROW(FirFilter::band_pass(64, 200.0, 100.0, kFs),
                 blinkradar::ContractViolation);  // inverted band
    EXPECT_THROW(FirFilter(RealSignal{}), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::dsp
