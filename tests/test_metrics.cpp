#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "eval/metrics.hpp"

namespace blinkradar::eval {
namespace {

physio::BlinkEvent truth(double start, double dur = 0.2) {
    return physio::BlinkEvent{start, dur};
}

core::DetectedBlink det(double peak) {
    return core::DetectedBlink{peak, 0.3, 0.05, 3.0};
}

TEST(Metrics, PerfectDetectionScoresFull) {
    const std::vector<physio::BlinkEvent> t = {truth(1.0), truth(5.0),
                                               truth(9.0)};
    const std::vector<core::DetectedBlink> d = {det(1.1), det(5.1), det(9.1)};
    const MatchResult m = match_blinks(t, d);
    EXPECT_EQ(m.matched, 3u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(m.precision(), 1.0);
    EXPECT_DOUBLE_EQ(m.f1(), 1.0);
    EXPECT_EQ(m.false_positives(), 0u);
    EXPECT_EQ(m.missed(), 0u);
}

TEST(Metrics, ToleranceBoundsMatching) {
    const std::vector<physio::BlinkEvent> t = {truth(5.0)};
    // truth mid = 5.1; detection 0.3 s away matches at 0.4 tolerance but
    // not at 0.2.
    const std::vector<core::DetectedBlink> d = {det(5.4)};
    EXPECT_EQ(match_blinks(t, d, 0.4).matched, 1u);
    EXPECT_EQ(match_blinks(t, d, 0.2).matched, 0u);
}

TEST(Metrics, DetectionUsedOnlyOnce) {
    // Two truth blinks near one detection: only one can match.
    const std::vector<physio::BlinkEvent> t = {truth(5.0), truth(5.3)};
    const std::vector<core::DetectedBlink> d = {det(5.2)};
    const MatchResult m = match_blinks(t, d);
    EXPECT_EQ(m.matched, 1u);
    EXPECT_EQ(m.missed(), 1u);
}

TEST(Metrics, FalsePositivesCounted) {
    const std::vector<physio::BlinkEvent> t = {truth(5.0)};
    const std::vector<core::DetectedBlink> d = {det(5.1), det(20.0),
                                                det(30.0)};
    const MatchResult m = match_blinks(t, d);
    EXPECT_EQ(m.matched, 1u);
    EXPECT_EQ(m.false_positives(), 2u);
    EXPECT_DOUBLE_EQ(m.precision(), 1.0 / 3.0);
}

TEST(Metrics, TruthHitFlagsAlignWithEvents) {
    const std::vector<physio::BlinkEvent> t = {truth(1.0), truth(5.0),
                                               truth(9.0)};
    const std::vector<core::DetectedBlink> d = {det(1.1), det(9.1)};
    const MatchResult m = match_blinks(t, d);
    ASSERT_EQ(m.truth_hit.size(), 3u);
    EXPECT_TRUE(m.truth_hit[0]);
    EXPECT_FALSE(m.truth_hit[1]);
    EXPECT_TRUE(m.truth_hit[2]);
}

TEST(Metrics, EmptyInputsBehave) {
    const MatchResult none = match_blinks({}, {});
    EXPECT_DOUBLE_EQ(none.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(none.precision(), 1.0);
    const std::vector<core::DetectedBlink> d = {det(1.0)};
    const MatchResult fp_only = match_blinks({}, d);
    EXPECT_DOUBLE_EQ(fp_only.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(fp_only.precision(), 0.0);
}

TEST(Metrics, MissRunStatsCountRunLengths) {
    //                   1     1  1        2           3+
    const std::vector<bool> hits = {false, true, false, true, false, true,
                                    false, false, true, false, false, false,
                                    true};
    const MissRunStats s = miss_run_stats(hits);
    // 13 truth blinks: three 1-runs, one 2-run, one 3-run.
    EXPECT_NEAR(s.pct_run1, 100.0 * 3.0 / 13.0, 1e-9);
    EXPECT_NEAR(s.pct_run2, 100.0 * 1.0 / 13.0, 1e-9);
    EXPECT_NEAR(s.pct_run3, 100.0 * 1.0 / 13.0, 1e-9);
}

TEST(Metrics, MissRunStatsAllHit) {
    const std::vector<bool> hits(20, true);
    const MissRunStats s = miss_run_stats(hits);
    EXPECT_DOUBLE_EQ(s.pct_run1, 0.0);
    EXPECT_DOUBLE_EQ(s.pct_run2, 0.0);
    EXPECT_DOUBLE_EQ(s.pct_run3, 0.0);
}

TEST(Metrics, MissRunStatsEmpty) {
    const MissRunStats s = miss_run_stats({});
    EXPECT_DOUBLE_EQ(s.pct_run1, 0.0);
}

TEST(Metrics, GreedyMatchingPrefersClosest) {
    const std::vector<physio::BlinkEvent> t = {truth(5.0)};
    const std::vector<core::DetectedBlink> d = {det(5.3), det(5.12)};
    const MatchResult m = match_blinks(t, d);
    EXPECT_EQ(m.matched, 1u);
    // The 5.12 detection (nearest to truth mid 5.1) is consumed; 5.3 is FP.
    EXPECT_EQ(m.false_positives(), 1u);
}

TEST(Metrics, ToleranceMustBePositive) {
    EXPECT_THROW(match_blinks({}, {}, 0.0), blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::eval
