#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"

namespace blinkradar {
namespace {

std::string read_all(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class CsvTest : public ::testing::Test {
protected:
    std::string path_ = ::testing::TempDir() + "br_csv_test.csv";
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
    {
        CsvWriter csv(path_, {"t", "value"});
        csv.row(std::vector<double>{1.0, 2.5});
        csv.row(std::vector<double>{2.0, -3.0});
        EXPECT_EQ(csv.rows_written(), 2u);
    }
    EXPECT_EQ(read_all(path_), "t,value\n1,2.5\n2,-3\n");
}

TEST_F(CsvTest, WritesStringCells) {
    {
        CsvWriter csv(path_, {"name", "score"});
        csv.row(std::vector<std::string>{"alpha", "1.5"});
    }
    EXPECT_EQ(read_all(path_), "name,score\nalpha,1.5\n");
}

TEST_F(CsvTest, DoublesRoundTripExactly) {
    // Values chosen to break 6-significant-digit formatting: a full-
    // precision irrational, a timestamp with many integral digits, a
    // tiny value, and a negative with a long tail.
    const std::vector<double> values = {0.1234567890123456, 1691234567.891,
                                        5e-300, -2.0 / 3.0};
    {
        CsvWriter csv(path_, {"a", "b", "c", "d"});
        csv.row(values);
    }
    std::ifstream in(path_);
    std::string header, line;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, line));
    std::istringstream cells(line);
    std::string cell;
    for (const double expected : values) {
        ASSERT_TRUE(std::getline(cells, cell, ','));
        EXPECT_EQ(std::stod(cell), expected) << "cell: " << cell;
    }
}

TEST_F(CsvTest, QuotesCellsWithSeparatorsAndQuotes) {
    {
        CsvWriter csv(path_, {"plain", "with,comma"});
        csv.row(std::vector<std::string>{"say \"hi\"", "two\nlines"});
    }
    EXPECT_EQ(read_all(path_),
              "plain,\"with,comma\"\n\"say \"\"hi\"\"\",\"two\nlines\"\n");
}

TEST_F(CsvTest, RejectsWrongArity) {
    CsvWriter csv(path_, {"a", "b", "c"});
    EXPECT_THROW(csv.row(std::vector<double>{1.0}), ContractViolation);
}

TEST_F(CsvTest, RejectsUnopenablePath) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
                 std::runtime_error);
}

}  // namespace
}  // namespace blinkradar
