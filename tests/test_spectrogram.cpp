#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/spectrogram.hpp"

namespace blinkradar::dsp {
namespace {

TEST(Spectrogram, SegmentCountMatchesHop) {
    const RealSignal x(1000, 0.0);
    const Spectrogram s = stft(x, 100.0, 128, 64);
    // floor((1000 - 128) / 64) + 1 = 14 segments.
    EXPECT_EQ(s.power.size(), 14u);
    EXPECT_DOUBLE_EQ(s.hop_s, 0.64);
    EXPECT_DOUBLE_EQ(s.bin_hz, 100.0 / 128.0);
}

TEST(Spectrogram, StationaryTonePeaksInItsBin) {
    constexpr double kFs = 256.0;
    constexpr double kTone = 32.0;
    RealSignal x(2048);
    for (std::size_t n = 0; n < x.size(); ++n)
        x[n] = std::sin(constants::kTwoPi * kTone * n / kFs);
    const Spectrogram s = stft(x, kFs, 256, 128);
    for (const RealSignal& seg : s.power) {
        std::size_t peak = 0;
        for (std::size_t k = 0; k < seg.size(); ++k)
            if (seg[k] > seg[peak]) peak = k;
        EXPECT_NEAR(static_cast<double>(peak) * s.bin_hz, kTone, s.bin_hz);
    }
}

TEST(Spectrogram, TracksFrequencyStep) {
    constexpr double kFs = 256.0;
    RealSignal x(4096);
    for (std::size_t n = 0; n < x.size(); ++n) {
        const double f = n < 2048 ? 20.0 : 80.0;
        x[n] = std::sin(constants::kTwoPi * f * n / kFs);
    }
    const Spectrogram s = stft(x, kFs, 256, 256);
    auto peak_hz = [&](const RealSignal& seg) {
        std::size_t peak = 0;
        for (std::size_t k = 0; k < seg.size(); ++k)
            if (seg[k] > seg[peak]) peak = k;
        return static_cast<double>(peak) * s.bin_hz;
    };
    EXPECT_NEAR(peak_hz(s.power.front()), 20.0, 2.0);
    EXPECT_NEAR(peak_hz(s.power.back()), 80.0, 2.0);
}

TEST(Spectrogram, RejectsBadParameters) {
    const RealSignal x(100, 0.0);
    EXPECT_THROW(stft(x, 0.0, 32, 16), blinkradar::ContractViolation);
    EXPECT_THROW(stft(x, 100.0, 2, 16), blinkradar::ContractViolation);
    EXPECT_THROW(stft(x, 100.0, 32, 0), blinkradar::ContractViolation);
    EXPECT_THROW(stft(RealSignal(10, 0.0), 100.0, 32, 16),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::dsp
