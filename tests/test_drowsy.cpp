#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "core/drowsy.hpp"

namespace blinkradar::core {
namespace {

TEST(Drowsy, ThresholdBetweenClassMeans) {
    DrowsinessDetector d;
    const double awake[] = {18.0, 20.0, 19.0};
    const double drowsy[] = {26.0, 28.0, 27.0};
    d.train(awake, drowsy);
    ASSERT_TRUE(d.trained());
    EXPECT_GT(d.threshold_rate(), 20.0);
    EXPECT_LT(d.threshold_rate(), 26.0);
    EXPECT_DOUBLE_EQ(d.awake_mean(), 19.0);
    EXPECT_DOUBLE_EQ(d.drowsy_mean(), 27.0);
}

TEST(Drowsy, ClassifiesAgainstThreshold) {
    DrowsinessDetector d;
    const double awake[] = {18.0, 20.0};
    const double drowsy[] = {27.0, 29.0};
    d.train(awake, drowsy);
    EXPECT_EQ(d.classify(17.0), DrowsinessLabel::kAwake);
    EXPECT_EQ(d.classify(30.0), DrowsinessLabel::kDrowsy);
}

TEST(Drowsy, SpreadWeightedThresholdLeansAwayFromNoisyClass) {
    DrowsinessDetector d;
    // Awake is very tight, drowsy is very noisy: the threshold should sit
    // closer to the awake mean.
    const double awake[] = {20.0, 20.0, 20.0, 20.1};
    const double drowsy[] = {24.0, 36.0, 28.0, 32.0};
    d.train(awake, drowsy);
    const double midpoint = (20.0 + 30.0) / 2.0;
    EXPECT_LT(d.threshold_rate(), midpoint);
}

TEST(Drowsy, SingleWindowPerClassUsesMidpoint) {
    DrowsinessDetector d;
    const double awake[] = {20.0};
    const double drowsy[] = {30.0};
    d.train(awake, drowsy);
    EXPECT_DOUBLE_EQ(d.threshold_rate(), 25.0);
}

TEST(Drowsy, InvertedTrainingDegradesGracefully) {
    DrowsinessDetector d;
    const double awake[] = {28.0};
    const double drowsy[] = {22.0};
    EXPECT_NO_THROW(d.train(awake, drowsy));
    EXPECT_TRUE(d.trained());
    EXPECT_DOUBLE_EQ(d.threshold_rate(), 25.0);
}

TEST(Drowsy, ClassifyBeforeTrainThrows) {
    DrowsinessDetector d;
    EXPECT_THROW(d.classify(20.0), blinkradar::ContractViolation);
}

TEST(Drowsy, EmptyTrainingThrows) {
    DrowsinessDetector d;
    const double some[] = {20.0};
    EXPECT_THROW(d.train({}, some), blinkradar::ContractViolation);
    EXPECT_THROW(d.train(some, {}), blinkradar::ContractViolation);
}

TEST(WindowRates, CountsPerMinuteWindows) {
    std::vector<DetectedBlink> blinks;
    // 10 blinks in minute 1, 20 in minute 2.
    for (int i = 0; i < 10; ++i)
        blinks.push_back({5.0 + i * 5.0, 0.2, 0.05, 3.0});
    for (int i = 0; i < 20; ++i)
        blinks.push_back({61.0 + i * 2.8, 0.2, 0.05, 3.0});
    const auto rates = window_blink_rates(blinks, 120.0);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 10.0);
    EXPECT_DOUBLE_EQ(rates[1], 20.0);
}

TEST(WindowRates, PartialTrailingWindowIsScaled) {
    std::vector<DetectedBlink> blinks;
    for (int i = 0; i < 15; ++i)
        blinks.push_back({60.0 + i * 1.9, 0.2, 0.05, 3.0});
    // 90 s session: one full window plus a 30 s half window (kept since
    // it is exactly half) — its count is scaled to a per-minute rate.
    const auto rates = window_blink_rates(blinks, 90.0);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 0.0);
    EXPECT_NEAR(rates[1], 2.0 * 15.0, 4.0);
}

TEST(WindowRates, DurationFilterSelectsLongBlinks) {
    std::vector<DetectedBlink> blinks = {
        {10.0, 0.2, 0.05, 3.0},   // short (awake-like)
        {20.0, 0.9, 0.05, 3.0},   // long (drowsy-like)
        {30.0, 1.1, 0.05, 3.0},   // long
    };
    const auto all = window_blink_rates(blinks, 60.0, 60.0, 0.0);
    const auto longs = window_blink_rates(blinks, 60.0, 60.0, 0.75);
    EXPECT_DOUBLE_EQ(all[0], 3.0);
    EXPECT_DOUBLE_EQ(longs[0], 2.0);
}

TEST(WindowRates, StrengthFilterSelectsConfidentBlinks) {
    std::vector<DetectedBlink> blinks = {
        {10.0, 0.2, 0.05, 1.1},
        {20.0, 0.2, 0.05, 5.0},
    };
    const auto confident = window_blink_rates(blinks, 60.0, 60.0, 0.0, 2.0);
    EXPECT_DOUBLE_EQ(confident[0], 1.0);
}

TEST(WindowRates, CustomWindowLength) {
    std::vector<DetectedBlink> blinks = {{10.0, 0.2, 0.05, 3.0},
                                         {40.0, 0.2, 0.05, 3.0}};
    const auto rates = window_blink_rates(blinks, 60.0, 30.0);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 2.0);  // 1 blink / 0.5 min
    EXPECT_DOUBLE_EQ(rates[1], 2.0);
}

TEST(WindowRates, RejectsBadArguments) {
    std::vector<DetectedBlink> blinks;
    EXPECT_THROW(window_blink_rates(blinks, 0.0),
                 blinkradar::ContractViolation);
    EXPECT_THROW(window_blink_rates(blinks, 60.0, 0.0),
                 blinkradar::ContractViolation);
}

}  // namespace
}  // namespace blinkradar::core
