#include <gtest/gtest.h>

#include "vehicle/road.hpp"

namespace blinkradar::vehicle {
namespace {

TEST(Road, AllNineTypesEnumerated) {
    EXPECT_EQ(all_road_types().size(), 9u);
}

TEST(Road, ClassGroupingMatchesPaperFig16b) {
    EXPECT_EQ(road_class(RoadType::kSmoothHighway), RoadClass::kSmooth);
    EXPECT_EQ(road_class(RoadType::kBumpyRoad), RoadClass::kBumpy);
    EXPECT_EQ(road_class(RoadType::kUphill), RoadClass::kSlope);
    EXPECT_EQ(road_class(RoadType::kDownhill), RoadClass::kSlope);
    EXPECT_EQ(road_class(RoadType::kIntersection), RoadClass::kManeuver);
    EXPECT_EQ(road_class(RoadType::kLeftTurn), RoadClass::kManeuver);
    EXPECT_EQ(road_class(RoadType::kRightTurn), RoadClass::kManeuver);
    EXPECT_EQ(road_class(RoadType::kRoundabout), RoadClass::kManeuver);
    EXPECT_EQ(road_class(RoadType::kUTurn), RoadClass::kManeuver);
}

TEST(Road, BumpyHasMostVibrationEnergy) {
    const auto smooth = vibration_spec(RoadType::kSmoothHighway);
    const auto bumpy = vibration_spec(RoadType::kBumpyRoad);
    EXPECT_GT(bumpy.continuous_rms_m, smooth.continuous_rms_m * 3.0);
    EXPECT_GT(bumpy.bump_rate_per_min, 0.0);
    EXPECT_DOUBLE_EQ(smooth.bump_rate_per_min, 0.0);
}

TEST(Road, ManeuversSwayMoreThanSlopes) {
    const auto slope = vibration_spec(RoadType::kUphill);
    const auto turn = vibration_spec(RoadType::kLeftTurn);
    const auto uturn = vibration_spec(RoadType::kUTurn);
    EXPECT_GT(turn.sway_amplitude_m, slope.sway_amplitude_m);
    EXPECT_GT(uturn.sway_amplitude_m, turn.sway_amplitude_m);
}

TEST(Road, DisturbanceOrderingSmoothToBumpy) {
    // The paper's Fig. 16b ordering: smooth disturbs least; bumpy most.
    auto energy = [](RoadType t) {
        const auto s = vibration_spec(t);
        return s.continuous_rms_m + s.bump_rate_per_min * s.bump_amplitude_m +
               0.1 * s.sway_amplitude_m;
    };
    EXPECT_LT(energy(RoadType::kSmoothHighway), energy(RoadType::kUphill));
    EXPECT_LT(energy(RoadType::kUphill), energy(RoadType::kRoundabout));
    EXPECT_LT(energy(RoadType::kRoundabout), energy(RoadType::kBumpyRoad));
}

TEST(Road, NamesAreUniqueAndNonEmpty) {
    std::vector<std::string> names;
    for (const RoadType t : all_road_types()) {
        const std::string n = to_string(t);
        EXPECT_FALSE(n.empty());
        for (const auto& prev : names) EXPECT_NE(prev, n);
        names.push_back(n);
    }
    EXPECT_EQ(to_string(RoadClass::kSmooth), "smooth");
    EXPECT_EQ(to_string(RoadClass::kManeuver), "maneuver");
}

}  // namespace
}  // namespace blinkradar::vehicle
