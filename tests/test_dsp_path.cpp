// The pipeline-level DSP path choice (core::DspPath): resolution of kAuto
// (env override, default), snapshot/resume bit-exactness of the SoA path,
// rejection of mixed-path restores via the PIPE fingerprint, wire-format
// equality of the SoA snapshot serialization, and end-to-end agreement of
// the two paths on detection outcomes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/env_config.hpp"
#include "common/random.hpp"
#include "core/pipeline.hpp"
#include "physio/driver_profile.hpp"
#include "sim/scenario.hpp"
#include "state/snapshot.hpp"

namespace blinkradar::core {
namespace {

sim::ScenarioConfig reference_scenario(std::uint64_t seed,
                                       Seconds duration = 30.0) {
    sim::ScenarioConfig sc;
    Rng rng(42);
    sc.driver = physio::sample_participants(1, rng).front();
    sc.duration_s = duration;
    sc.seed = seed;
    return sc;
}

void expect_bitwise_eq(double a, double b, const char* what,
                       std::size_t frame) {
    std::uint64_t ab = 0, bb = 0;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << what << " diverged at replay frame " << frame
                      << ": " << a << " vs " << b;
}

void expect_identical(const FrameResult& a, const FrameResult& b,
                      std::size_t frame) {
    ASSERT_EQ(a.blink.has_value(), b.blink.has_value())
        << "blink presence diverged at replay frame " << frame;
    if (a.blink) {
        expect_bitwise_eq(a.blink->peak_s, b.blink->peak_s, "blink.peak_s",
                          frame);
        expect_bitwise_eq(a.blink->magnitude, b.blink->magnitude,
                          "blink.magnitude", frame);
    }
    EXPECT_EQ(a.restarted, b.restarted) << "at replay frame " << frame;
    EXPECT_EQ(a.cold_start, b.cold_start) << "at replay frame " << frame;
    expect_bitwise_eq(a.waveform_value, b.waveform_value, "waveform_value",
                      frame);
    EXPECT_EQ(a.health, b.health) << "at replay frame " << frame;
}

std::vector<std::uint8_t> snapshot_of(const BlinkRadarPipeline& pipe) {
    state::StateWriter writer;
    pipe.save_state(writer);
    return writer.finish();
}

/// RAII environment-variable override (tests run single-threaded).
/// Production code reads the one-time process_config() snapshot, not
/// getenv, so each change re-resolves the snapshot through the
/// test-only reload hook.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
        reload_process_config_for_testing();
    }
    ~ScopedEnv() {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
        reload_process_config_for_testing();
    }

private:
    const char* name_;
    bool had_old_ = false;
    std::string old_;
};

TEST(DspPath, AutoResolvesToSimdByDefault) {
    const ScopedEnv env("BLINKRADAR_DSP_PATH", nullptr);
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(1, 1.0));
    PipelineConfig config;  // dsp_path defaults to kAuto
    const BlinkRadarPipeline pipe(s.radar, config);
    EXPECT_EQ(pipe.dsp_path(), DspPath::kSimd);
    // The resolved value is written back into the pipeline's config copy.
    EXPECT_EQ(pipe.config().dsp_path, DspPath::kSimd);
}

TEST(DspPath, EnvOverridesAutoButNotExplicit) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(1, 1.0));
    {
        const ScopedEnv env("BLINKRADAR_DSP_PATH", "scalar");
        PipelineConfig config;
        const BlinkRadarPipeline auto_pipe(s.radar, config);
        EXPECT_EQ(auto_pipe.dsp_path(), DspPath::kScalar);

        config.dsp_path = DspPath::kSimd;  // explicit beats env
        const BlinkRadarPipeline explicit_pipe(s.radar, config);
        EXPECT_EQ(explicit_pipe.dsp_path(), DspPath::kSimd);
    }
    {
        const ScopedEnv env("BLINKRADAR_DSP_PATH", "simd");
        PipelineConfig config;
        const BlinkRadarPipeline pipe(s.radar, config);
        EXPECT_EQ(pipe.dsp_path(), DspPath::kSimd);
    }
    {
        // Unknown values fall through to the default.
        const ScopedEnv env("BLINKRADAR_DSP_PATH", "quantum");
        PipelineConfig config;
        const BlinkRadarPipeline pipe(s.radar, config);
        EXPECT_EQ(pipe.dsp_path(), DspPath::kSimd);
    }
}

/// test_resume-style drill pinned to one explicit path: process [0,
/// split), snapshot, restore into a fresh pipeline, replay the tail on
/// both and require byte-identical results.
void run_path_resume_drill(DspPath path, std::size_t split,
                           std::size_t full_reselect_stride = 1) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(7, 30.0));
    PipelineConfig config;
    config.dsp_path = path;
    config.full_reselect_stride = full_reselect_stride;
    ASSERT_LT(split, s.frames.size());

    BlinkRadarPipeline original(s.radar, config);
    for (std::size_t i = 0; i < split; ++i) original.process(s.frames[i]);

    const std::vector<std::uint8_t> bytes = snapshot_of(original);
    BlinkRadarPipeline restored(s.radar, config);
    {
        state::StateReader reader(bytes);
        restored.restore_state(reader);
    }

    for (std::size_t i = split; i < s.frames.size(); ++i) {
        const FrameResult a = original.process(s.frames[i]);
        const FrameResult b = restored.process(s.frames[i]);
        expect_identical(a, b, i);
    }
    ASSERT_EQ(original.blinks().size(), restored.blinks().size());
    EXPECT_EQ(original.selected_bin(), restored.selected_bin());
}

TEST(DspPath, SimdSnapshotsRestoreBitIdentically) {
    // Splits inside cold start, right after bin selection, and deep in
    // steady state (SoA window ring partially evicted).
    for (const std::size_t split : {20u, 70u, 600u}) {
        SCOPED_TRACE("split=" + std::to_string(split));
        run_path_resume_drill(DspPath::kSimd, split);
    }
}

TEST(DspPath, ScalarSnapshotsRestoreBitIdentically) {
    run_path_resume_drill(DspPath::kScalar, 300);
}

TEST(DspPath, KeepCheckStrideResumesBitIdentically) {
    // full_reselect_stride > 1 (the opt-in keep-check reselect cadence)
    // makes the local/full phase part of pipeline state; a mid-cadence
    // snapshot must resume on the same phase or replay diverges at the
    // next reselect.
    run_path_resume_drill(DspPath::kSimd, 640, 4);
}

TEST(DspPath, KeepCheckStrideStillDetects) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(2, 30.0));
    PipelineConfig config;
    config.dsp_path = DspPath::kSimd;
    config.full_reselect_stride = 4;
    BlinkRadarPipeline pipe(s.radar, config);
    for (const auto& frame : s.frames) pipe.process(frame);
    ASSERT_TRUE(pipe.selected_bin().has_value());
    EXPECT_FALSE(pipe.blinks().empty());
}

TEST(DspPath, MixedPathRestoreIsRejectedBothWays) {
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(3, 10.0));
    PipelineConfig scalar_config;
    scalar_config.dsp_path = DspPath::kScalar;
    PipelineConfig simd_config;
    simd_config.dsp_path = DspPath::kSimd;

    BlinkRadarPipeline scalar_pipe(s.radar, scalar_config);
    BlinkRadarPipeline simd_pipe(s.radar, simd_config);
    for (std::size_t i = 0; i < 100; ++i) {
        scalar_pipe.process(s.frames[i]);
        simd_pipe.process(s.frames[i]);
    }
    const std::vector<std::uint8_t> scalar_bytes = snapshot_of(scalar_pipe);
    const std::vector<std::uint8_t> simd_bytes = snapshot_of(simd_pipe);

    {
        BlinkRadarPipeline target(s.radar, simd_config);
        state::StateReader reader(scalar_bytes);
        EXPECT_THROW(target.restore_state(reader), state::SnapshotError);
    }
    {
        BlinkRadarPipeline target(s.radar, scalar_config);
        state::StateReader reader(simd_bytes);
        EXPECT_THROW(target.restore_state(reader), state::SnapshotError);
    }
    // Matching paths still restore fine (the guard is the path byte, not
    // some broader fingerprint drift).
    {
        BlinkRadarPipeline target(s.radar, simd_config);
        state::StateReader reader(simd_bytes);
        EXPECT_NO_THROW(target.restore_state(reader));
    }
}

TEST(DspPath, PlanesSerializationMatchesComplexSpanBytes) {
    Rng rng(5);
    for (const std::size_t n : {0u, 1u, 5u, 151u}) {
        dsp::ComplexSignal aos(n);
        std::vector<double> re(n), im(n);
        for (std::size_t j = 0; j < n; ++j) {
            re[j] = rng.normal(0.0, 1.0);
            im[j] = rng.normal(0.0, 1.0);
            aos[j] = dsp::Complex(re[j], im[j]);
        }
        const std::uint32_t tag = state::make_tag("TEST");
        state::StateWriter wa;
        wa.begin_section(tag, 1);
        wa.write_complex_span(aos);
        wa.end_section();
        state::StateWriter wb;
        wb.begin_section(tag, 1);
        wb.write_complex_planes(re, im);
        wb.end_section();
        const std::vector<std::uint8_t> ba = wa.finish();
        const std::vector<std::uint8_t> bb = wb.finish();
        ASSERT_EQ(ba, bb) << "wire bytes differ at n=" << n;

        // And the SoA reader deinterleaves the complex-span bytes.
        state::StateReader reader(ba);
        ASSERT_EQ(reader.open_section(tag), 1);
        std::vector<double> re2, im2;
        reader.read_complex_planes_into(re2, im2);
        ASSERT_EQ(re2.size(), n);
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(re[j], re2[j]);
            EXPECT_EQ(im[j], im2[j]);
        }
    }
}

TEST(DspPath, PathsAgreeOnDetectionOutcomes) {
    // The paths are deliberately not bit-identical (fused reduction order,
    // capped selection), but on the reference scene they must tell the
    // same story: same selected bin, blink counts within one event.
    const sim::SimulatedSession s =
        simulate_session(reference_scenario(2, 30.0));
    PipelineConfig scalar_config;
    scalar_config.dsp_path = DspPath::kScalar;
    PipelineConfig simd_config;
    simd_config.dsp_path = DspPath::kSimd;

    BlinkRadarPipeline scalar_pipe(s.radar, scalar_config);
    BlinkRadarPipeline simd_pipe(s.radar, simd_config);
    for (const auto& frame : s.frames) {
        scalar_pipe.process(frame);
        simd_pipe.process(frame);
    }
    ASSERT_TRUE(scalar_pipe.selected_bin().has_value());
    ASSERT_TRUE(simd_pipe.selected_bin().has_value());
    EXPECT_EQ(*scalar_pipe.selected_bin(), *simd_pipe.selected_bin());
    const auto diff =
        static_cast<long long>(scalar_pipe.blinks().size()) -
        static_cast<long long>(simd_pipe.blinks().size());
    EXPECT_LE(std::abs(diff), 1)
        << "scalar found " << scalar_pipe.blinks().size()
        << " blinks, simd found " << simd_pipe.blinks().size();
}

}  // namespace
}  // namespace blinkradar::core
